// Minimal command-line argument parser for the iop-* tools.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments; unknown options are an error so typos fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace iop::util {

class Args {
 public:
  /// Declare before parse().  Flags take no value.
  void addOption(const std::string& name, std::string help,
                 std::optional<std::string> defaultValue = std::nullopt);
  void addFlag(const std::string& name, std::string help);

  /// Parse argv; throws std::invalid_argument on unknown options or a
  /// missing value.  `--help` sets helpRequested().
  void parse(int argc, const char* const* argv);

  bool helpRequested() const noexcept { return helpRequested_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;  ///< throws if absent
  std::string getOr(const std::string& name,
                    const std::string& fallback) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool flag(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Usage text from the declared options.
  std::string usage(const std::string& program,
                    const std::string& description) const;

 private:
  struct Option {
    std::string help;
    std::optional<std::string> defaultValue;
    bool isFlag = false;
  };

  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flagsSet_;
  std::vector<std::string> positional_;
  bool helpRequested_ = false;
};

}  // namespace iop::util
