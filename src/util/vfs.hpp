// The durability layer every on-disk store writes through.
//
// Two jobs, one choke point:
//
//  * Real durability barriers.  A "committed" file is only crash-safe
//    when its bytes were fsync()ed before the rename and the directory
//    entry was fsync()ed after it; an appended record is only durable
//    once the data hit the file *and* (for a fresh file) its directory.
//    replaceFile()/appendFile()/AppendStream place exactly those
//    barriers, so the sweep stores, the capture archive and the run
//    journal inherit crash consistency from one implementation instead
//    of five ad-hoc ones.
//
//  * Deterministic crash-point injection.  Every barrier-crossing
//    (Durability::Durable) operation bumps a process-wide counter; when
//    the counter reaches the configured crash point the operation
//    simulates what a power cut at its weakest moment leaves behind — a
//    truncated committed file, an orphaned temp, a half-appended record,
//    or nothing at all — and the process exits immediately with
//    kCrashExitCode.  With a single-threaded writer the Nth barrier op is
//    always the same op, so the crash harness can enumerate every crash
//    point of a run and assert that fsck + resume converge.
//
// Durability::Scratch keeps the atomic temp+rename shape but skips both
// the fsyncs and the crash accounting — for observational outputs
// (telemetry snapshots) that may be produced on background threads and
// must not perturb the deterministic barrier-op numbering.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

namespace iop::util::vfs {

enum class Durability {
  Scratch,  ///< atomic shape only: no fsync, no crash accounting
  Durable,  ///< full barriers; counted as one crash-injectable op
};

/// Exit code of a simulated crash (distinct from every tool's normal
/// 0/1/2/130 codes, so harnesses can tell "injected crash" from "died").
constexpr int kCrashExitCode = 86;

/// Arm the crash injector: the `point`-th Durable op (1-based, counted
/// process-wide) tears and exits.  0 disarms.  The environment variables
/// IOP_CRASH_POINT / IOP_CRASH_MODE arm it for whole processes.
void setCrashPoint(std::uint64_t point);
std::uint64_t crashPoint();

/// Force one tear mode for the injected crash (see the mode table in
/// docs/DURABILITY.md); -1 (default) derives the mode from the op number
/// so an enumeration sweep exercises all of them.
void setCrashMode(int mode);

/// Durable barrier ops performed so far in this process.
std::uint64_t barrierOps();
void resetBarrierOps();

/// fsync one file / the directory containing `path`.  Throws
/// std::runtime_error when the kernel refuses — a failed barrier means
/// the durability contract does not hold, which callers must not paper
/// over.  No-ops on platforms without fsync semantics.
void fsyncFile(const std::filesystem::path& path);
void fsyncParentDir(const std::filesystem::path& path);

/// Atomically replace `path` with `text`: unique temp (pid + counter),
/// write, fsync temp, rename, fsync parent directory.  The temp file is
/// unlinked on any failure, so an interrupted writer leaks nothing it
/// can help.  Concurrent writers of the same content-addressed path are
/// harmless: both rename identical bytes into place.
void replaceFile(const std::filesystem::path& path, const std::string& text,
                 Durability durability = Durability::Durable);

/// Append `data` to `path` (creating it if needed), flush, fsync the
/// file, and — when this append created the file — fsync the parent
/// directory.  One barrier op.
void appendFile(const std::filesystem::path& path, const std::string& data,
                Durability durability = Durability::Durable);

/// A long-lived append handle (the run journal): every append() is
/// written, flushed and fsync()ed as one barrier op.  append() reports
/// failure by returning false instead of throwing — an append-only
/// telemetry stream hitting ENOSPC must never take the campaign down —
/// and stays failed once it failed.
class AppendStream {
 public:
  /// Opens `path` ("wb" when `truncate`, else "ab").  Throws when the
  /// file cannot be opened.
  AppendStream(std::filesystem::path path, Durability durability,
               bool truncate = false);
  ~AppendStream();

  AppendStream(const AppendStream&) = delete;
  AppendStream& operator=(const AppendStream&) = delete;

  /// False on the first write/flush/fsync failure and every call after.
  bool append(const std::string& data);
  bool failed() const noexcept { return failed_; }
  const std::string& lastError() const noexcept { return lastError_; }
  void close();

 private:
  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
  Durability durability_;
  bool failed_ = false;
  std::string lastError_;
};

}  // namespace iop::util::vfs
