// Deterministic pseudo-random number generation for the simulator.
//
// Every source of randomness in the repository flows through iop::util::Rng
// so that a simulation run is reproducible from its seed alone.  The
// generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so
// that small integer seeds produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace iop::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator, so it can
/// be used with <random> distributions, although the simulator only relies
/// on the small set of helpers below to stay bit-reproducible across
/// standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box-Muller, deterministic pairing).
  double normal(double mean, double stddev) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool haveSpareNormal_ = false;
  double spareNormal_ = 0.0;
};

}  // namespace iop::util
