#include "util/text.hpp"

#include <cctype>

namespace iop::util {

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace iop::util
