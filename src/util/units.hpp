// Byte/time unit constants, formatting, and parsing.
//
// The paper expresses phase weights as "32MB", "4GB", ... and bandwidths in
// MB/s.  Following IOR/IOzone convention (and the paper), "KB/MB/GB" here are
// binary units (2^10/2^20/2^30 bytes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iop::util {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;
inline constexpr std::uint64_t TiB = 1024ULL * GiB;

/// Render a byte count using the largest unit that divides it exactly
/// ("32MB", "4GB"), falling back to a scaled decimal ("10.1MB") otherwise.
/// Mirrors the paper's table notation.
std::string formatBytes(std::uint64_t bytes);

/// Render a byte count always scaled with two decimals ("10.12 MB").
std::string formatBytesApprox(std::uint64_t bytes);

/// Parse "32MB", "256KB", "1GB", "1048576", "4g" into bytes.
/// Throws std::invalid_argument on malformed input.
std::uint64_t parseBytes(std::string_view text);

/// Render seconds as "1234.56" style fixed-point with the given precision.
std::string formatSeconds(double seconds, int precision = 2);

/// Render a bandwidth (bytes/second) in MB/s, paper convention.
std::string formatBandwidthMiBs(double bytesPerSecond, int precision = 2);

/// Convert bytes/second to MiB/second.
double toMiBs(double bytesPerSecond);

/// Convert MiB/second to bytes/second.
double fromMiBs(double mibPerSecond);

}  // namespace iop::util
