#include "util/units.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace iop::util {

std::string formatBytes(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t size;
    const char* suffix;
  };
  static constexpr Unit units[] = {
      {TiB, "TB"}, {GiB, "GB"}, {MiB, "MB"}, {KiB, "KB"}};
  for (const auto& u : units) {
    if (bytes >= u.size && bytes % u.size == 0) {
      return std::to_string(bytes / u.size) + u.suffix;
    }
  }
  if (bytes >= MiB) return formatBytesApprox(bytes);
  return std::to_string(bytes) + "B";
}

std::string formatBytesApprox(std::uint64_t bytes) {
  const char* suffix = "B";
  double value = static_cast<double>(bytes);
  if (bytes >= TiB) {
    value /= static_cast<double>(TiB);
    suffix = "TB";
  } else if (bytes >= GiB) {
    value /= static_cast<double>(GiB);
    suffix = "GB";
  } else if (bytes >= MiB) {
    value /= static_cast<double>(MiB);
    suffix = "MB";
  } else if (bytes >= KiB) {
    value /= static_cast<double>(KiB);
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f%s", value, suffix);
  return buf;
}

std::uint64_t parseBytes(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("parseBytes: empty input");
  std::size_t i = 0;
  std::uint64_t value = 0;
  bool sawDigit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    sawDigit = true;
    ++i;
  }
  if (!sawDigit) throw std::invalid_argument("parseBytes: no digits");
  // Skip whitespace between number and unit.
  while (i < text.size() && text[i] == ' ') ++i;
  if (i == text.size()) return value;
  const char unit = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text[i])));
  std::uint64_t mult = 1;
  switch (unit) {
    case 'k': mult = KiB; break;
    case 'm': mult = MiB; break;
    case 'g': mult = GiB; break;
    case 't': mult = TiB; break;
    case 'b': mult = 1; break;
    default:
      throw std::invalid_argument("parseBytes: unknown unit suffix");
  }
  ++i;
  // Optional trailing "B" / "iB".
  if (i < text.size() && (text[i] == 'i' || text[i] == 'I')) ++i;
  if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  if (i != text.size()) throw std::invalid_argument("parseBytes: trailing junk");
  return value * mult;
}

std::string formatSeconds(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, seconds);
  return buf;
}

double toMiBs(double bytesPerSecond) {
  return bytesPerSecond / static_cast<double>(MiB);
}

double fromMiBs(double mibPerSecond) {
  return mibPerSecond * static_cast<double>(MiB);
}

std::string formatBandwidthMiBs(double bytesPerSecond, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f MB/s", precision, toMiBs(bytesPerSecond));
  return buf;
}

}  // namespace iop::util
