#include "util/intervals.hpp"

#include <algorithm>

namespace iop::util {

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Find the first interval that could overlap or touch [begin, end).
  auto it = map_.upper_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;  // touches or overlaps from left
  }
  std::uint64_t newBegin = begin;
  std::uint64_t newEnd = end;
  while (it != map_.end() && it->first <= newEnd) {
    newBegin = std::min(newBegin, it->first);
    newEnd = std::max(newEnd, it->second);
    total_ -= it->second - it->first;
    it = map_.erase(it);
  }
  map_.emplace(newBegin, newEnd);
  total_ += newEnd - newBegin;
}

void IntervalSet::erase(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  auto it = map_.upper_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != map_.end() && it->first < end) {
    const std::uint64_t ivBegin = it->first;
    const std::uint64_t ivEnd = it->second;
    total_ -= ivEnd - ivBegin;
    it = map_.erase(it);
    if (ivBegin < begin) {
      map_.emplace(ivBegin, begin);
      total_ += begin - ivBegin;
    }
    if (ivEnd > end) {
      map_.emplace(end, ivEnd);
      total_ += ivEnd - end;
      break;
    }
  }
}

std::uint64_t IntervalSet::coveredBytes(std::uint64_t begin,
                                        std::uint64_t end) const {
  if (begin >= end) return 0;
  std::uint64_t covered = 0;
  auto it = map_.upper_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const std::uint64_t lo = std::max(begin, it->first);
    const std::uint64_t hi = std::min(end, it->second);
    if (hi > lo) covered += hi - lo;
  }
  return covered;
}

bool IntervalSet::contains(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  return coveredBytes(begin, end) == end - begin;
}

std::vector<IntervalSet::Interval> IntervalSet::gaps(std::uint64_t begin,
                                                     std::uint64_t end) const {
  std::vector<Interval> out;
  if (begin >= end) return out;
  std::uint64_t cursor = begin;
  auto it = map_.upper_bound(begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    if (it->first > cursor) out.emplace_back(cursor, it->first);
    cursor = std::max(cursor, it->second);
    if (cursor >= end) break;
  }
  if (cursor < end) out.emplace_back(cursor, end);
  return out;
}

std::optional<IntervalSet::Interval> IntervalSet::firstIntervalAtOrAfter(
    std::uint64_t offset) const {
  if (map_.empty()) return std::nullopt;
  auto it = map_.lower_bound(offset);
  if (it == map_.end()) it = map_.begin();  // wrap to the lowest offset
  return Interval{it->first, it->second};
}

std::vector<IntervalSet::Interval> IntervalSet::intervals() const {
  std::vector<Interval> out;
  out.reserve(map_.size());
  for (const auto& [b, e] : map_) out.emplace_back(b, e);
  return out;
}

}  // namespace iop::util
