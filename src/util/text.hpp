// Small string utilities shared by the trace reader/writer and report code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iop::util {

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string> splitWhitespace(std::string_view text);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace iop::util
