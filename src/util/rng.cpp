#include "util/rng.hpp"

#include <cmath>

namespace iop::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection-free enough for simulation purposes: the modulo
  // bias for n << 2^64 is negligible, but we use widening multiply anyway.
  unsigned __int128 wide = static_cast<unsigned __int128>(next()) * n;
  return static_cast<std::uint64_t>(wide >> 64);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (haveSpareNormal_) {
    haveSpareNormal_ = false;
    return mean + stddev * spareNormal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spareNormal_ = r * std::sin(theta);
  haveSpareNormal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::split() noexcept {
  return Rng{next()};
}

}  // namespace iop::util
