#include "util/fsatomic.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace iop::util {

void writeFileAtomically(const std::filesystem::path& path,
                         const std::string& text) {
  // Unique temp name per call: shared cache directories may see the same
  // key written by several threads or processes at once.
  static std::atomic<unsigned long> counter{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long>(getpid())) +
      "." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      throw std::runtime_error("failed writing " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace iop::util
