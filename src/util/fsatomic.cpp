#include "util/fsatomic.hpp"

#include "util/vfs.hpp"

namespace iop::util {

void writeFileAtomically(const std::filesystem::path& path,
                         const std::string& text) {
  vfs::replaceFile(path, text, vfs::Durability::Durable);
}

}  // namespace iop::util
