// Plain-text table rendering used by the benchmark harness to print the
// paper's tables (Table VIII, IX, ..., XIV) in a readable aligned format.
#pragma once

#include <string>
#include <vector>

namespace iop::util {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// A simple monospace table: set a title and header once, append rows, then
/// render.  Cells are strings; numeric formatting is the caller's concern.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Define the header row.  Must be called before addRow.
  void setHeader(std::vector<std::string> header,
                 std::vector<Align> align = {});

  /// Append a data row.  Rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> row);

  /// Append a horizontal separator between row groups.
  void addSeparator();

  /// Render with box-drawing ASCII (+---+ style).
  std::string render() const;

  /// Render as tab-separated values (for machine consumption).
  std::string renderTsv() const;

  std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
};

}  // namespace iop::util
