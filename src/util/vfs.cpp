#include "util/vfs.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#ifdef _WIN32
#include <io.h>
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace iop::util::vfs {

namespace {

std::atomic<std::uint64_t> gBarrierOps{0};
std::atomic<std::uint64_t> gCrashPoint{0};
std::atomic<int> gCrashMode{-1};
std::once_flag gEnvOnce;

void loadCrashEnv() {
  std::call_once(gEnvOnce, [] {
    if (const char* env = std::getenv("IOP_CRASH_POINT")) {
      gCrashPoint.store(std::strtoull(env, nullptr, 10),
                        std::memory_order_relaxed);
    }
    if (const char* env = std::getenv("IOP_CRASH_MODE")) {
      gCrashMode.store(std::atoi(env), std::memory_order_relaxed);
    }
  });
}

struct CrashPlan {
  bool crash = false;
  int mode = 0;
};

/// Count one Durable barrier op; tells the caller whether this op is the
/// armed crash point and which tear mode to simulate.
CrashPlan noteBarrierOp() {
  loadCrashEnv();
  const std::uint64_t op =
      gBarrierOps.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t point = gCrashPoint.load(std::memory_order_relaxed);
  if (point == 0 || op != point) return {};
  int mode = gCrashMode.load(std::memory_order_relaxed);
  if (mode < 0) mode = static_cast<int>(op % 3);
  return {true, mode};
}

/// A simulated power cut: no destructors, no stdio flushing, nothing —
/// the on-disk state is exactly what the tear left behind.
[[noreturn]] void crashNow() { std::_Exit(kCrashExitCode); }

void writeRaw(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    throw std::runtime_error("vfs: failed writing " + path.string());
  }
}

void rawAppend(const std::filesystem::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << data;
  out.flush();
}

std::filesystem::path uniqueTempName(const std::filesystem::path& path) {
  // Unique per call: shared cache directories may see the same key
  // written by several threads or processes at once.
  static std::atomic<unsigned long> counter{0};
  return path.string() + ".tmp." +
         std::to_string(static_cast<long>(getpid())) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

#ifndef _WIN32
void fsyncFd(int fd, const std::filesystem::path& path) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("vfs: fsync " + path.string() + ": " +
                             std::strerror(err));
  }
  ::close(fd);
}
#endif

}  // namespace

void setCrashPoint(std::uint64_t point) {
  loadCrashEnv();  // a later env read must not clobber an explicit arm
  gCrashPoint.store(point, std::memory_order_relaxed);
}

std::uint64_t crashPoint() {
  loadCrashEnv();
  return gCrashPoint.load(std::memory_order_relaxed);
}

void setCrashMode(int mode) {
  loadCrashEnv();
  gCrashMode.store(mode, std::memory_order_relaxed);
}

std::uint64_t barrierOps() {
  return gBarrierOps.load(std::memory_order_relaxed);
}

void resetBarrierOps() {
  gBarrierOps.store(0, std::memory_order_relaxed);
}

void fsyncFile(const std::filesystem::path& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("vfs: cannot open " + path.string() +
                             " for fsync: " + std::strerror(errno));
  }
  fsyncFd(fd, path);
#else
  (void)path;
#endif
}

void fsyncParentDir(const std::filesystem::path& path) {
#ifndef _WIN32
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("vfs: cannot open directory " + dir.string() +
                             " for fsync: " + std::strerror(errno));
  }
  fsyncFd(fd, dir);
#else
  (void)path;
#endif
}

void replaceFile(const std::filesystem::path& path, const std::string& text,
                 Durability durability) {
  const std::filesystem::path tmp = uniqueTempName(path);
  if (durability == Durability::Durable) {
    const CrashPlan plan = noteBarrierOp();
    if (plan.crash) {
      // The three torn states a power cut can leave a replace in:
      //   mode 0  truncated bytes renamed into place (data not durable,
      //           rename was)
      //   mode 1  an orphaned, torn temp next to the intact old file
      //   mode 2  nothing at all (the whole op dropped)
      const std::string prefix = text.substr(0, text.size() / 2);
      if (plan.mode % 3 == 0) {
        writeRaw(tmp, prefix);
        std::filesystem::rename(tmp, path);
      } else if (plan.mode % 3 == 1) {
        writeRaw(tmp, prefix);
      }
      crashNow();
    }
  }
  try {
    writeRaw(tmp, text);
    if (durability == Durability::Durable) fsyncFile(tmp);
    std::filesystem::rename(tmp, path);
  } catch (...) {
    // Never leak the temp: a failed replace leaves the directory exactly
    // as it was (fsck sweeps the temps of writers that died too hard to
    // reach this handler).
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  if (durability == Durability::Durable) fsyncParentDir(path);
}

void appendFile(const std::filesystem::path& path, const std::string& data,
                Durability durability) {
  const bool fresh = !std::filesystem::exists(path);
  if (durability == Durability::Durable) {
    const CrashPlan plan = noteBarrierOp();
    if (plan.crash) {
      // Torn append states: a half-written record (no terminator) or a
      // dropped one.
      if (plan.mode % 2 == 0 && !data.empty()) {
        rawAppend(path, data.substr(0, data.size() / 2));
      }
      crashNow();
    }
  }
  std::FILE* file = std::fopen(path.string().c_str(), "ab");
  if (file == nullptr) {
    throw std::runtime_error("vfs: cannot append to " + path.string() +
                             ": " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(data.data(), 1, data.size(), file) == data.size() &&
      std::fflush(file) == 0;
#ifndef _WIN32
  const bool synced =
      durability != Durability::Durable || ::fsync(fileno(file)) == 0;
#else
  const bool synced = true;
#endif
  const int err = errno;
  std::fclose(file);
  if (!wrote || !synced) {
    throw std::runtime_error("vfs: failed appending to " + path.string() +
                             ": " + std::strerror(err));
  }
  if (durability == Durability::Durable && fresh) fsyncParentDir(path);
}

AppendStream::AppendStream(std::filesystem::path path, Durability durability,
                           bool truncate)
    : path_(std::move(path)), durability_(durability) {
  const bool fresh = truncate || !std::filesystem::exists(path_);
  file_ = std::fopen(path_.string().c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("vfs: cannot open " + path_.string() + ": " +
                             std::strerror(errno));
  }
#ifndef _WIN32
  if (durability_ == Durability::Durable && fresh) {
    fsyncParentDir(path_);  // the file's directory entry is durable too
  }
#else
  (void)fresh;
#endif
}

AppendStream::~AppendStream() { close(); }

bool AppendStream::append(const std::string& data) {
  if (file_ == nullptr || failed_) return false;
  if (durability_ == Durability::Durable) {
    const CrashPlan plan = noteBarrierOp();
    if (plan.crash) {
      if (plan.mode % 2 == 0 && !data.empty()) {
        std::fwrite(data.data(), 1, data.size() / 2, file_);
        std::fflush(file_);
      }
      crashNow();
    }
  }
  errno = 0;
  const bool wrote =
      std::fwrite(data.data(), 1, data.size(), file_) == data.size() &&
      std::fflush(file_) == 0;
#ifndef _WIN32
  const bool synced = !wrote || durability_ != Durability::Durable ||
                      ::fsync(fileno(file_)) == 0;
#else
  const bool synced = true;
#endif
  if (!wrote || !synced) {
    failed_ = true;
    lastError_ = errno != 0 ? std::strerror(errno) : "short write";
    return false;
  }
  return true;
}

void AppendStream::close() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

}  // namespace iop::util::vfs
