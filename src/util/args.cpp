#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

namespace iop::util {

void Args::addOption(const std::string& name, std::string help,
                     std::optional<std::string> defaultValue) {
  options_[name] = Option{std::move(help), std::move(defaultValue), false};
}

void Args::addFlag(const std::string& name, std::string help) {
  options_[name] = Option{std::move(help), std::nullopt, true};
}

void Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      helpRequested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inlineValue;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      inlineValue = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
    if (it->second.isFlag) {
      if (inlineValue) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      flagsSet_.insert(name);
      continue;
    }
    if (inlineValue) {
      values_[name] = *inlineValue;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + name + " needs a value");
      }
      values_[name] = argv[++i];
    }
  }
}

bool Args::has(const std::string& name) const {
  if (values_.count(name) != 0) return true;
  auto it = options_.find(name);
  return it != options_.end() && it->second.defaultValue.has_value();
}

std::string Args::get(const std::string& name) const {
  auto v = values_.find(name);
  if (v != values_.end()) return v->second;
  auto it = options_.find(name);
  if (it != options_.end() && it->second.defaultValue) {
    return *it->second.defaultValue;
  }
  throw std::invalid_argument("missing required option --" + name);
}

std::string Args::getOr(const std::string& name,
                        const std::string& fallback) const {
  return has(name) ? get(name) : fallback;
}

std::int64_t Args::getInt(const std::string& name,
                          std::int64_t fallback) const {
  if (!has(name)) return fallback;
  return std::stoll(get(name));
}

double Args::getDouble(const std::string& name, double fallback) const {
  if (!has(name)) return fallback;
  return std::stod(get(name));
}

bool Args::flag(const std::string& name) const {
  return flagsSet_.count(name) != 0;
}

std::string Args::usage(const std::string& program,
                        const std::string& description) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n" << description << "\n\n";
  out << "options:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    if (!opt.isFlag) out << " <value>";
    out << "\n      " << opt.help;
    if (opt.defaultValue) out << " (default: " << *opt.defaultValue << ")";
    out << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace iop::util
