// Half-open byte-interval set used by the page-cache model to track which
// device ranges are resident, and by tests to validate file coverage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace iop::util {

/// An ordered set of disjoint half-open intervals [begin, end) over uint64.
/// Adjacent/overlapping inserts coalesce.  All operations are O(log n) plus
/// the number of intervals touched.
class IntervalSet {
 public:
  using Interval = std::pair<std::uint64_t, std::uint64_t>;

  /// Insert [begin, end); coalesces with neighbours.  Empty ranges ignored.
  void insert(std::uint64_t begin, std::uint64_t end);

  /// Remove [begin, end); may split an existing interval.
  void erase(std::uint64_t begin, std::uint64_t end);

  /// Bytes of [begin, end) covered by the set.
  std::uint64_t coveredBytes(std::uint64_t begin, std::uint64_t end) const;

  /// True if [begin, end) is fully covered.
  bool contains(std::uint64_t begin, std::uint64_t end) const;

  /// Sub-ranges of [begin, end) NOT covered by the set, in order.
  std::vector<Interval> gaps(std::uint64_t begin, std::uint64_t end) const;

  /// Total bytes covered by the whole set.
  std::uint64_t totalBytes() const noexcept { return total_; }

  std::size_t intervalCount() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept {
    map_.clear();
    total_ = 0;
  }

  /// All intervals in ascending order.
  std::vector<Interval> intervals() const;

  /// First interval whose begin is >= offset; falls back to the first
  /// interval overall (wrap-around), or nullopt when empty.  O(log n).
  std::optional<Interval> firstIntervalAtOrAfter(std::uint64_t offset) const;

 private:
  // key = begin, value = end.
  std::map<std::uint64_t, std::uint64_t> map_;
  std::uint64_t total_ = 0;
};

}  // namespace iop::util
