#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace iop::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::setHeader(std::vector<std::string> header,
                      std::vector<Align> align) {
  header_ = std::move(header);
  align_ = std::move(align);
  align_.resize(header_.size(), Align::Right);
}

void Table::addRow(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(Row{std::move(row), false});
}

void Table::addSeparator() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string line = "+";
    for (auto w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      line += ' ';
      if (align_[c] == Align::Right) line.append(pad, ' ');
      line += cell;
      if (align_[c] == Align::Left) line.append(pad, ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  out << hline() << renderRow(header_) << hline();
  for (const auto& row : rows_) {
    if (row.separator) {
      out << hline();
    } else {
      out << renderRow(row.cells);
    }
  }
  out << hline();
  return out.str();
}

std::string Table::renderTsv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << '\t';
    out << header_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) out << '\t';
      out << row.cells[c];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace iop::util
