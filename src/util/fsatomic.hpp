// Atomic file replacement, shared by every on-disk store in the repo
// (sweep campaign/shared stores, the obs capture archive).
#pragma once

#include <filesystem>
#include <string>

namespace iop::util {

/// Atomically and durably replace `path` with `text`: the historical
/// name for util::vfs::replaceFile with full durability barriers (fsync
/// the temp before the rename, fsync the parent directory after).  Every
/// call writes through a distinct temp name (pid + counter), so
/// concurrent writers — other threads or other processes sharing a cache
/// directory — never observe a partial file and never clobber each
/// other's temp files; the temp is unlinked if the write or rename
/// fails.  Racing writers of the same content-addressed key are
/// harmless: both rename identical bytes into place.
void writeFileAtomically(const std::filesystem::path& path,
                         const std::string& text);

}  // namespace iop::util
