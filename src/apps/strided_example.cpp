#include "apps/strided_example.hpp"

#include <stdexcept>

#include "mpi/file.hpp"

namespace iop::apps {

namespace {

sim::Task<void> stridedExampleMain(mpi::Rank& rank,
                                   const StridedExampleParams& p) {
  if (p.rsBytes % p.etypeBytes != 0) {
    throw std::invalid_argument("rs must be a multiple of the etype");
  }
  const std::uint64_t opEtypes = p.rsBytes / p.etypeBytes;
  const std::uint64_t np = static_cast<std::uint64_t>(rank.np());

  auto file = co_await rank.open(p.mount, p.fileName,
                                 mpi::AccessType::Shared);
  // Each process sees tiles of `opEtypes` etypes every np*opEtypes etypes,
  // shifted by its rank: the classic strided partitioning of Figure 5.
  file->setView(static_cast<std::uint64_t>(rank.id()) * p.rsBytes,
                p.etypeBytes, opEtypes, np * opEtypes);

  for (int d = 0; d < p.dumps; ++d) {
    for (int e = 0; e < p.commEventsBetweenDumps; ++e) {
      co_await rank.allreduce(64);
    }
    co_await rank.compute(p.computeBetweenDumps);
    co_await file->writeAtAll(static_cast<std::uint64_t>(d) * opEtypes,
                              p.rsBytes);
  }
  // Verification pass: back-to-back reads form a single rep-40 phase.
  for (int d = 0; d < p.dumps; ++d) {
    co_await file->readAtAll(static_cast<std::uint64_t>(d) * opEtypes,
                             p.rsBytes);
  }
  co_await file->close();
}

}  // namespace

mpi::Runtime::RankMain makeStridedExample(StridedExampleParams params) {
  return [params](mpi::Rank& rank) {
    return stridedExampleMain(rank, params);
  };
}

}  // namespace iop::apps
