#include "apps/roms.hpp"

#include <stdexcept>

#include "mpi/file.hpp"

namespace iop::apps {

namespace {

sim::Task<void> romsMain(mpi::Rank& rank, const RomsParams& p) {
  if (p.gridBytesPerRank % p.etypeBytes != 0 ||
      p.hisRecordPerRank % p.etypeBytes != 0 ||
      p.rstRecordPerRank % p.etypeBytes != 0) {
    throw std::invalid_argument("record sizes must be whole etypes");
  }
  const std::uint64_t np = static_cast<std::uint64_t>(rank.np());
  const std::uint64_t id = static_cast<std::uint64_t>(rank.id());

  // Startup: read this rank's tile of the grid file.
  auto grid = co_await rank.open(p.mount, p.gridFile,
                                 mpi::AccessType::Shared);
  grid->setView(0, p.etypeBytes, 1, 1);
  co_await grid->readAtAll(id * (p.gridBytesPerRank / p.etypeBytes),
                           p.gridBytesPerRank);
  co_await grid->close();

  auto his = co_await rank.open(p.mount, p.historyFile,
                                mpi::AccessType::Shared);
  his->setView(0, p.etypeBytes, 1, 1);
  auto rst = co_await rank.open(p.mount, p.restartFile,
                                mpi::AccessType::Shared);
  rst->setView(0, p.etypeBytes, 1, 1);

  const std::uint64_t hisEtypes = p.hisRecordPerRank / p.etypeBytes;
  const std::uint64_t rstEtypes = p.rstRecordPerRank / p.etypeBytes;
  std::uint64_t hisRecord = 0;
  std::uint64_t rstRecord = 0;
  for (int step = 1; step <= p.steps; ++step) {
    for (int e = 0; e < p.commEventsPerStep; ++e) {
      co_await rank.allreduce(1024);
    }
    co_await rank.compute(p.computePerStep);
    if (step % p.hisInterval == 0) {
      co_await his->writeAtAll(
          hisEtypes * id + hisEtypes * np * hisRecord, p.hisRecordPerRank);
      ++hisRecord;
    }
    if (step % p.rstInterval == 0) {
      co_await rst->writeAtAll(
          rstEtypes * id + rstEtypes * np * rstRecord, p.rstRecordPerRank);
      ++rstRecord;
    }
  }
  co_await his->close();
  co_await rst->close();
}

}  // namespace

mpi::Runtime::RankMain makeRoms(RomsParams params) {
  return [params](mpi::Rank& rank) { return romsMain(rank, params); };
}

}  // namespace iop::apps
