#include "apps/flash_io.hpp"

#include "hdf5/h5.hpp"

namespace iop::apps {

std::uint64_t flashSlabBytes(const FlashIoParams& params) {
  return static_cast<std::uint64_t>(params.blocksPerRank) *
         static_cast<std::uint64_t>(params.cellsPerBlock) * 8;
}

namespace {

sim::Task<void> flashIoMain(mpi::Rank& rank, const FlashIoParams& p) {
  const std::uint64_t slab = flashSlabBytes(p);
  const std::uint64_t np = static_cast<std::uint64_t>(rank.np());

  auto file = co_await hdf5::H5File::create(rank, p.mount, p.fileName);

  // Header datasets: simulation parameters, refinement info, ... written
  // independently by rank 0 (H5Dwrite with the default transfer plist).
  for (int h = 0; h < p.headerDatasets; ++h) {
    auto ds = co_await file->createDataset(
        rank, "header" + std::to_string(h), p.headerBytes);
    if (rank.id() == 0) {
      co_await ds.writeIndependent(0, p.headerBytes);
    }
    co_await rank.barrier();
  }

  // Unknowns: one large dataset per variable, one collective hyperslab
  // per rank, block-partitioned by rank.
  for (int u = 0; u < p.unknowns; ++u) {
    auto ds = co_await file->createDataset(rank, "unk" + std::to_string(u),
                                           slab * np, p.chunkBytes);
    co_await rank.compute(p.computeBetweenVariables);
    co_await ds.writeHyperslab(
        rank, slab * static_cast<std::uint64_t>(rank.id()), slab);
  }
  co_await file->close(rank);
}

}  // namespace

mpi::Runtime::RankMain makeFlashIo(FlashIoParams params) {
  return [params](mpi::Rank& rank) { return flashIoMain(rank, params); };
}

}  // namespace iop::apps
