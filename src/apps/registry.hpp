// Name-based application factory shared by the iop-* tools and the sweep
// campaign engine: build a RankMain for an application from a name and a
// key=value parameter map, without every caller re-encoding the knobs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"

namespace iop::apps {

using AppParams = std::map<std::string, std::string>;

/// Applications makeApp understands, with their accepted parameter keys
/// (for usage text and campaign-file validation).
std::vector<std::string> knownApps();

/// True when `app` names a known application.
bool isKnownApp(const std::string& app);

/// Build the rank-main for `app` writing under `mount`.  Accepted params:
///   btio:      class=A|B|C|D  subtype=full|simple
///   madbench2: kpix=N  bins=N  gangs=N
///   roms:      steps=N
///   flash-io:  unknowns=N
///   example:   (none)
/// Throws std::invalid_argument on an unknown app, unknown parameter key,
/// or malformed value.
mpi::Runtime::RankMain makeApp(const std::string& app,
                               const std::string& mount,
                               const AppParams& params = {});

}  // namespace iop::apps
