#include "apps/btio.hpp"

#include <stdexcept>

#include "mpi/file.hpp"

namespace iop::apps {

const char* btClassName(BtClass c) {
  switch (c) {
    case BtClass::A: return "A";
    case BtClass::B: return "B";
    case BtClass::C: return "C";
    case BtClass::D: return "D";
  }
  return "?";
}

int btClassMesh(BtClass c) {
  switch (c) {
    case BtClass::A: return 64;
    case BtClass::B: return 102;
    case BtClass::C: return 162;
    case BtClass::D: return 408;
  }
  return 0;
}

int btClassDumps(BtClass c) { return c == BtClass::D ? 50 : 40; }

std::uint64_t btioRequestSize(const BtioParams& params, int np) {
  const std::uint64_t n = static_cast<std::uint64_t>(btClassMesh(params.cls));
  const std::uint64_t cells = n * n * n;
  const std::uint64_t cellsPerProc =
      (cells + static_cast<std::uint64_t>(np) - 1) /
      static_cast<std::uint64_t>(np);
  return cellsPerProc * params.etypeBytes;
}

namespace {

sim::Task<void> btioMain(mpi::Rank& rank, const BtioParams& p) {
  const std::uint64_t rs = btioRequestSize(p, rank.np());
  const std::uint64_t rsEtypes = rs / p.etypeBytes;
  const std::uint64_t np = static_cast<std::uint64_t>(rank.np());
  const int dumps =
      p.dumpsOverride > 0 ? p.dumpsOverride : btClassDumps(p.cls);

  auto file = co_await rank.open(p.mount, p.fileName,
                                 mpi::AccessType::Shared);
  file->setView(0, p.etypeBytes, 1, 1);  // contiguous cells

  for (int d = 0; d < dumps; ++d) {
    // 5 solver timesteps between dumps.
    for (int step = 0; step < 5; ++step) {
      for (int e = 0; e < p.commEventsPerStep; ++e) {
        co_await rank.allreduce(2048);
      }
      double compute = p.computePerStep;
      if (p.jitterFraction > 0) {
        compute *= 1.0 + p.jitterFraction *
                             rank.engine().rng().uniform(-1.0, 1.0);
      }
      co_await rank.compute(compute);
    }
    const std::uint64_t offset =
        rsEtypes * static_cast<std::uint64_t>(rank.id()) +
        rsEtypes * np * static_cast<std::uint64_t>(d);
    if (p.fullSubtype) {
      co_await file->writeAtAll(offset, rs);
    } else {
      co_await file->writeAt(offset, rs);
    }
  }

  // Verification: re-read every dump's slice, back-to-back.
  for (int d = 0; d < dumps; ++d) {
    const std::uint64_t offset =
        rsEtypes * static_cast<std::uint64_t>(rank.id()) +
        rsEtypes * np * static_cast<std::uint64_t>(d);
    if (p.fullSubtype) {
      co_await file->readAtAll(offset, rs);
    } else {
      co_await file->readAt(offset, rs);
    }
  }
  co_await file->close();
}

}  // namespace

mpi::Runtime::RankMain makeBtio(BtioParams params) {
  return [params](mpi::Rank& rank) { return btioMain(rank, params); };
}

}  // namespace iop::apps
