// ROMS-style ocean-model I/O kernel (the paper's Section V ongoing work:
// "we are analyzing upwelling of ROMs framework that use HDF5 parallel to
// writing operations.  This application open different files in executing
// time and we can observe that our model is applicable to each file").
//
// Three files, mirroring ROMS' NetCDF/HDF5 layout:
//   grid file    — read once collectively at startup,
//   history file — one collective record append every `hisInterval`
//                  timesteps (rank-blocked records),
//   restart file — a larger collective record every `rstInterval` steps.
//
// The point for the methodology: the phase analysis runs per file, and
// the global model interleaves the files' phases on the shared tick
// timeline.
#pragma once

#include <cstdint>
#include <string>

#include "mpi/runtime.hpp"

namespace iop::apps {

struct RomsParams {
  std::string mount;
  std::string gridFile = "grid.nc";
  std::string historyFile = "ocean_his.nc";
  std::string restartFile = "ocean_rst.nc";
  int steps = 60;
  int hisInterval = 5;
  int rstInterval = 20;
  std::uint64_t gridBytesPerRank = 4ULL << 20;
  std::uint64_t hisRecordPerRank = 8ULL << 20;
  std::uint64_t rstRecordPerRank = 24ULL << 20;
  int commEventsPerStep = 2;
  double computePerStep = 0.05;
  std::uint64_t etypeBytes = 8;  ///< one double, HDF5 dataset element
};

mpi::Runtime::RankMain makeRoms(RomsParams params);

}  // namespace iop::apps
