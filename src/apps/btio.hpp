// NAS BT-IO kernel (NPB Block-Tridiagonal with I/O, the paper's Section
// IV-B workload).
//
// Every 5 solver timesteps the entire solution field (5 doubles per mesh
// point) is appended to a shared file with collective MPI-IO (subtype
// FULL); after all timesteps the benchmark reads every dump back for
// verification.  Classes set the mesh: A=64^3/200 steps, B=102^3/200,
// C=162^3/200, D=408^3/250 — i.e. 40 dumps for A-C and 50 for D, which is
// exactly Table XI's phase structure: `dumps` write phases with
//   initOffset = rs*idP + rs*np*(ph-1)
// plus one read phase of rep `dumps`.
//
// The per-process request is rs ~= N^3*40/np bytes (10.6 MB for class C on
// 16 processes — the "request size 10MB" of the paper's BT-IO metadata).
// The file view uses an etype of 40 bytes (one 5-double mesh cell).
//
// Subtype SIMPLE issues the same requests independently (no collective
// buffering) — the ablation DESIGN.md calls out.
#pragma once

#include <cstdint>
#include <string>

#include "mpi/runtime.hpp"

namespace iop::apps {

enum class BtClass { A, B, C, D };

const char* btClassName(BtClass c);
int btClassMesh(BtClass c);   ///< N (mesh is N^3)
int btClassDumps(BtClass c);  ///< solution dumps (timesteps / 5)

struct BtioParams {
  std::string mount;
  std::string fileName = "btio.out";
  BtClass cls = BtClass::C;
  bool fullSubtype = true;  ///< FULL = collective; SIMPLE = independent
  int dumpsOverride = 0;    ///< 0 = class default
  /// Solver communication events per timestep (5 timesteps per dump):
  /// these create the tick gaps separating the write phases.
  int commEventsPerStep = 2;
  double computePerStep = 0.1;
  /// Multiplicative noise on compute times (0 = deterministic): models
  /// run-to-run variability for repeatability studies.
  double jitterFraction = 0;
  std::uint64_t etypeBytes = 40;
};

/// Per-process bytes per dump, rounded to whole etypes.
std::uint64_t btioRequestSize(const BtioParams& params, int np);

mpi::Runtime::RankMain makeBtio(BtioParams params);

}  // namespace iop::apps
