// The paper's running example (Figures 2-5): a 4-process application that
// sets a strided file view (etype 40 B) and performs 40 collective writes
// separated by solver communication, then 40 back-to-back collective
// reads.  Request size 10 612 080 B and view-offset stride 265 302 etypes
// reproduce Figure 2's trace rows.
#pragma once

#include <cstdint>
#include <string>

#include "mpi/runtime.hpp"

namespace iop::apps {

struct StridedExampleParams {
  std::string mount;
  std::string fileName = "example.dat";
  std::uint64_t rsBytes = 10612080;
  std::uint64_t etypeBytes = 40;
  int dumps = 40;
  /// Communication events between consecutive writes (creates the tick
  /// gaps that make each write its own phase, like Figure 2's ticks
  /// 148, 269, 390, ...).
  int commEventsBetweenDumps = 4;
  double computeBetweenDumps = 0.4;
};

/// Rank entry point for the example application.
mpi::Runtime::RankMain makeStridedExample(StridedExampleParams params);

}  // namespace iop::apps
