#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/btio.hpp"
#include "apps/flash_io.hpp"
#include "apps/madbench.hpp"
#include "apps/roms.hpp"
#include "apps/strided_example.hpp"

namespace iop::apps {

namespace {

[[noreturn]] void badValue(const std::string& app, const std::string& key,
                           const std::string& value) {
  throw std::invalid_argument("app " + app + ": bad value '" + value +
                              "' for parameter '" + key + "'");
}

int intParam(const std::string& app, const AppParams& params,
             const std::string& key, int fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    std::size_t used = 0;
    const int v = std::stoi(it->second, &used);
    if (used != it->second.size()) badValue(app, key, it->second);
    return v;
  } catch (const std::invalid_argument&) {
    badValue(app, key, it->second);
  } catch (const std::out_of_range&) {
    badValue(app, key, it->second);
  }
}

BtClass parseBtClass(const std::string& name) {
  if (name == "A" || name == "a") return BtClass::A;
  if (name == "B" || name == "b") return BtClass::B;
  if (name == "C" || name == "c") return BtClass::C;
  if (name == "D" || name == "d") return BtClass::D;
  throw std::invalid_argument("unknown BT class '" + name + "'");
}

void rejectUnknownKeys(const std::string& app, const AppParams& params,
                       std::initializer_list<const char*> known) {
  for (const auto& [key, value] : params) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::invalid_argument("app " + app + ": unknown parameter '" +
                                  key + "=" + value + "'");
    }
  }
}

}  // namespace

std::vector<std::string> knownApps() {
  return {"btio", "madbench2", "roms", "flash-io", "example"};
}

bool isKnownApp(const std::string& app) {
  for (const auto& known : knownApps()) {
    if (app == known) return true;
  }
  return false;
}

mpi::Runtime::RankMain makeApp(const std::string& app,
                               const std::string& mount,
                               const AppParams& params) {
  if (app == "btio") {
    rejectUnknownKeys(app, params, {"class", "subtype"});
    BtioParams p;
    p.mount = mount;
    if (const auto it = params.find("class"); it != params.end()) {
      p.cls = parseBtClass(it->second);
    }
    if (const auto it = params.find("subtype"); it != params.end()) {
      if (it->second != "full" && it->second != "simple") {
        badValue(app, "subtype", it->second);
      }
      p.fullSubtype = it->second != "simple";
    }
    return makeBtio(p);
  }
  if (app == "madbench2") {
    rejectUnknownKeys(app, params, {"kpix", "bins", "gangs"});
    MadbenchParams p;
    p.mount = mount;
    p.kpix = intParam(app, params, "kpix", p.kpix);
    p.bins = intParam(app, params, "bins", p.bins);
    p.gangs = intParam(app, params, "gangs", p.gangs);
    return makeMadbench(p);
  }
  if (app == "roms") {
    rejectUnknownKeys(app, params, {"steps"});
    RomsParams p;
    p.mount = mount;
    p.steps = intParam(app, params, "steps", p.steps);
    return makeRoms(p);
  }
  if (app == "flash-io") {
    rejectUnknownKeys(app, params, {"unknowns"});
    FlashIoParams p;
    p.mount = mount;
    p.unknowns = intParam(app, params, "unknowns", p.unknowns);
    return makeFlashIo(p);
  }
  if (app == "example") {
    rejectUnknownKeys(app, params, {});
    StridedExampleParams p;
    p.mount = mount;
    return makeStridedExample(p);
  }
  throw std::invalid_argument("unknown application '" + app + "'");
}

}  // namespace iop::apps
