// FLASH-IO style checkpoint kernel: the HDF5 checkpointing pattern of the
// FLASH astrophysics code, built on the simplified parallel-HDF5 layer.
//
// One checkpoint file holds a handful of small header datasets (written
// independently by rank 0 — metadata noise in the trace) followed by
// `unknowns` large block-structured datasets, each written with one
// collective hyperslab per rank.  This is the workload class the paper's
// Section V flags as future work for the methodology (HDF5 library,
// metadata operations mixed with bulk data).
#pragma once

#include <cstdint>
#include <string>

#include "mpi/runtime.hpp"

namespace iop::apps {

struct FlashIoParams {
  std::string mount;
  std::string fileName = "flash_chk_0001";
  int unknowns = 24;        ///< large per-variable datasets
  int blocksPerRank = 80;   ///< AMR blocks per process
  int cellsPerBlock = 512;  ///< 8x8x8
  int headerDatasets = 4;   ///< small rank-0-written metadata datasets
  std::uint64_t headerBytes = 16 * 1024;
  std::uint64_t chunkBytes = 0;  ///< 0 = contiguous dataset layout
  double computeBetweenVariables = 0.05;
};

/// Bytes one rank contributes to one unknown's dataset.
std::uint64_t flashSlabBytes(const FlashIoParams& params);

mpi::Runtime::RankMain makeFlashIo(FlashIoParams params);

}  // namespace iop::apps
