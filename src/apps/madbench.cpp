#include "apps/madbench.hpp"

#include <stdexcept>

#include "mpi/file.hpp"

namespace iop::apps {

std::uint64_t madbenchRequestSize(const MadbenchParams& params, int np) {
  if (params.rsOverrideBytes != 0) return params.rsOverrideBytes;
  const std::uint64_t npix =
      static_cast<std::uint64_t>(params.kpix) * 1024;
  return npix * npix * 8 / static_cast<std::uint64_t>(np);
}

namespace {

sim::Task<void> busyWork(mpi::Rank& rank, const MadbenchParams& p) {
  double t = p.busyWorkSeconds;
  if (p.jitterFraction > 0) {
    t *= 1.0 + p.jitterFraction * rank.engine().rng().uniform(-1.0, 1.0);
  }
  co_await rank.compute(t);
}

sim::Task<void> madbenchMain(mpi::Rank& rank, const MadbenchParams& p) {
  if (p.bins < 2) throw std::invalid_argument("bins must be >= 2");
  const std::uint64_t rs = madbenchRequestSize(p, rank.np());
  const std::uint64_t base =
      static_cast<std::uint64_t>(rank.id()) *
      static_cast<std::uint64_t>(p.bins) * rs;

  auto file = co_await rank.open(p.mount, p.fileName,
                                 mpi::AccessType::Shared);

  auto writeBin = [](mpi::File& f, std::uint64_t base0, std::uint64_t rs0,
                     int bin) -> sim::Task<void> {
    f.seek(base0 + static_cast<std::uint64_t>(bin) * rs0);
    co_await f.write(rs0);
  };
  auto readBin = [](mpi::File& f, std::uint64_t base0, std::uint64_t rs0,
                    int bin) -> sim::Task<void> {
    f.seek(base0 + static_cast<std::uint64_t>(bin) * rs0);
    co_await f.read(rs0);
  };

  // --- S: build and write each component matrix.
  for (int bin = 0; bin < p.bins; ++bin) {
    co_await busyWork(rank, p);
    co_await writeBin(*file, base, rs, bin);
  }
  co_await rank.barrier();

  // --- W: read each matrix, rewrite it; software pipeline with lag 2.
  {
    int nextRead = 0;
    int nextWrite = 0;
    for (int step = 0; step < p.bins + 2; ++step) {
      if (nextRead < p.bins) {
        co_await readBin(*file, base, rs, nextRead++);
      }
      if (step >= 2) {
        co_await busyWork(rank, p);
        co_await writeBin(*file, base, rs, nextWrite++);
      }
    }
  }
  co_await rank.barrier();

  // --- C: read every matrix.
  for (int bin = 0; bin < p.bins; ++bin) {
    co_await readBin(*file, base, rs, bin);
    co_await busyWork(rank, p);
  }
  co_await file->close();
}

/// Multi-gang variant: W and C synchronize within a gang communicator
/// (matrices are redistributed over processor subsets for their
/// manipulation, as the paper describes).
sim::Task<void> madbenchGangMain(mpi::Rank& rank, const MadbenchParams& p,
                                 mpi::Comm& gang) {
  co_await gang.barrier(rank);
  co_await madbenchMain(rank, p);
  co_await gang.barrier(rank);
}

}  // namespace

mpi::Runtime::RankMain makeMadbench(MadbenchParams params) {
  if (params.gangs <= 1) {
    return [params](mpi::Rank& rank) { return madbenchMain(rank, params); };
  }
  // Gang communicators are created lazily on first use, one per gang.
  auto gangComms =
      std::make_shared<std::map<int, mpi::Comm*>>();
  return [params, gangComms](mpi::Rank& rank) -> sim::Task<void> {
    const int gangSize = rank.np() / params.gangs;
    const int gangId = gangSize > 0 ? rank.id() / gangSize : 0;
    auto it = gangComms->find(gangId);
    if (it == gangComms->end()) {
      std::vector<int> members;
      for (int r = gangId * gangSize;
           r < (gangId + 1) * gangSize && r < rank.np(); ++r) {
        members.push_back(r);
      }
      it = gangComms->emplace(gangId,
                              &rank.runtime().createComm(members)).first;
    }
    return madbenchGangMain(rank, params, *it->second);
  };
}

}  // namespace iop::apps
