// MADbench2 I/O-mode kernel (Carter/Borrill/Oliker's CMB analysis
// benchmark, the paper's Section IV-A workload).
//
// The out-of-core matrix store is a shared file laid out rank-major: rank
// idP owns a contiguous region of `bins` slices of rs bytes at
// idP*bins*rs.  The three I/O-active functions (IO mode skips D and
// replaces calculation/communication with busy-work):
//
//   S  writes each of the `bins` component matrices        (bins writes)
//   W  reads each matrix, rewrites it, software-pipelined
//      with a lag of 2 (read bins 0,1; then read i / write i-2; then
//      write the last two)                                  (bins R + bins W)
//   C  reads every matrix                                   (bins reads)
//
// With 16 processes, 8KPIX and 8 bins this reproduces the paper's Table
// VIII: rs = (8*1024)^2 * 8 / 16 = 32 MB and the five-phase structure
// with initOffset = idP*8*32MB (+- 2*32MB for the pipelined W edges).
//
// I/O is non-collective with individual file pointers (seek + read/write),
// matching the paper's extracted metadata.  Multi-gang runs add gang
// barriers around W and C (matrices manipulated per gang).
#pragma once

#include <cstdint>
#include <string>

#include "mpi/runtime.hpp"

namespace iop::apps {

struct MadbenchParams {
  std::string mount;
  std::string fileName = "madbench.dat";
  int kpix = 8;  ///< map size in units of 1024 pixels (8KPIX)
  int bins = 8;
  int gangs = 1;  ///< multi-gang mode: W and C synchronize per gang
  /// Busy-work between I/O calls (IO mode replaces real work with this);
  /// it is *not* an MPI event, so ticks stay contiguous inside functions.
  double busyWorkSeconds = 0.2;
  /// Multiplicative noise on the busy-work (0 = deterministic).
  double jitterFraction = 0;
  std::uint64_t rsOverrideBytes = 0;  ///< 0 = derive from kpix and np
};

/// Per-process slice size: npix^2 * 8 / np with npix = kpix * 1024.
std::uint64_t madbenchRequestSize(const MadbenchParams& params, int np);

mpi::Runtime::RankMain makeMadbench(MadbenchParams params);

}  // namespace iop::apps
