// iostat-style device monitor (the paper runs `iostat -x -p 1` on each I/O
// node; Figure 8 plots sectors/s and %util per disk over time).
//
// A DeviceMonitor samples cumulative disk counters every `interval`
// simulated seconds and reports per-interval rates.  Start it before the
// workload, stop it after; the sampling loop wakes once more after stop()
// and exits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace iop::monitor {

struct DiskSample {
  double sectorsReadPerSec = 0;
  double sectorsWrittenPerSec = 0;
  double utilization = 0;  ///< 0..1 busy fraction of the interval
};

struct Sample {
  double time = 0;  ///< end of the sampling interval
  std::vector<DiskSample> disks;
};

class DeviceMonitor {
 public:
  DeviceMonitor(sim::Engine& engine, std::vector<storage::Disk*> disks,
                double interval = 1.0);

  /// Spawn the sampling process (idempotent).
  void start();

  /// Ask the sampler to exit at its next wake-up.
  void stop() noexcept { stopRequested_ = true; }

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  const std::vector<storage::Disk*>& disks() const noexcept {
    return disks_;
  }

  /// CSV: time,disk,sectors_r/s,sectors_w/s,util%
  std::string renderCsv() const;

  /// Peak utilization seen on any disk (Fig. 8's "about 100%" check).
  double peakUtilization() const;

 private:
  sim::Task<void> samplerLoop();
  void observeSample(const Sample& sample);

  sim::Engine& engine_;
  std::vector<storage::Disk*> disks_;
  double interval_;
  bool started_ = false;
  bool stopRequested_ = false;

  struct Baseline {
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    double busyIntegral = 0;
  };
  std::vector<Baseline> baselines_;
  std::vector<Sample> samples_;
};

}  // namespace iop::monitor
