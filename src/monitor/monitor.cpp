#include "monitor/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/hub.hpp"

namespace iop::monitor {

DeviceMonitor::DeviceMonitor(sim::Engine& engine,
                             std::vector<storage::Disk*> disks,
                             double interval)
    : engine_(engine), disks_(std::move(disks)), interval_(interval) {
  if (interval_ <= 0) throw std::invalid_argument("interval must be > 0");
  baselines_.resize(disks_.size());
}

void DeviceMonitor::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    baselines_[i].bytesRead = disks_[i]->counters().bytesRead;
    baselines_[i].bytesWritten = disks_[i]->counters().bytesWritten;
    baselines_[i].busyIntegral = disks_[i]->busyIntegral(engine_.now());
  }
  engine_.spawn(samplerLoop());
}

sim::Task<void> DeviceMonitor::samplerLoop() {
  while (!stopRequested_) {
    co_await engine_.delay(interval_);
    Sample sample;
    sample.time = engine_.now();
    sample.disks.resize(disks_.size());
    for (std::size_t i = 0; i < disks_.size(); ++i) {
      const auto& c = disks_[i]->counters();
      const double busy = disks_[i]->busyIntegral(engine_.now());
      auto& base = baselines_[i];
      auto& ds = sample.disks[i];
      ds.sectorsReadPerSec =
          static_cast<double>(c.bytesRead - base.bytesRead) /
          storage::kSectorBytes / interval_;
      ds.sectorsWrittenPerSec =
          static_cast<double>(c.bytesWritten - base.bytesWritten) /
          storage::kSectorBytes / interval_;
      ds.utilization = (busy - base.busyIntegral) / interval_;
      base.bytesRead = c.bytesRead;
      base.bytesWritten = c.bytesWritten;
      base.busyIntegral = busy;
    }
    observeSample(sample);
    samples_.push_back(std::move(sample));
  }
}

/// Mirror one iostat sample into the observability layer: the Fig.-8 data
/// appears as counter tracks on the same device tracks that carry the disk
/// request spans, plus peak-utilization metrics.
void DeviceMonitor::observeSample(const Sample& sample) {
  obs::Hub* o = engine_.obs();
  if (o == nullptr) return;
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    const auto& ds = sample.disks[i];
    if (o->trace != nullptr) {
      // Same (kind, name) key as the disk's own spans -> same track.
      const int tid = o->trace->track(obs::TrackKind::Device,
                                      disks_[i]->params().name);
      o->trace->counterSample(obs::TrackKind::Device, tid, "sectors_r/s",
                              sample.time, ds.sectorsReadPerSec);
      o->trace->counterSample(obs::TrackKind::Device, tid, "sectors_w/s",
                              sample.time, ds.sectorsWrittenPerSec);
      o->trace->counterSample(obs::TrackKind::Device, tid, "util %",
                              sample.time, ds.utilization * 100.0);
    }
    if (o->metrics != nullptr) {
      auto& peak =
          o->metrics->gauge("monitor." + disks_[i]->params().name +
                            ".peak_utilization");
      if (ds.utilization > peak.value()) peak.set(ds.utilization);
    }
  }
  if (o->metrics != nullptr) o->metrics->counter("monitor.samples").add(1);
}

std::string DeviceMonitor::renderCsv() const {
  std::ostringstream out;
  out << "time,disk,sectors_r_per_s,sectors_w_per_s,util_pct\n";
  char buf[160];
  for (const auto& sample : samples_) {
    for (std::size_t i = 0; i < sample.disks.size(); ++i) {
      const auto& ds = sample.disks[i];
      std::snprintf(buf, sizeof buf, "%.1f,%s,%.0f,%.0f,%.1f\n", sample.time,
                    disks_[i]->params().name.c_str(), ds.sectorsReadPerSec,
                    ds.sectorsWrittenPerSec, ds.utilization * 100.0);
      out << buf;
    }
  }
  return out.str();
}

double DeviceMonitor::peakUtilization() const {
  double peak = 0;
  for (const auto& sample : samples_) {
    for (const auto& ds : sample.disks) {
      peak = std::max(peak, ds.utilization);
    }
  }
  return peak;
}

}  // namespace iop::monitor
