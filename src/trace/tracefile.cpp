#include "trace/tracefile.hpp"
#include "obs/profiler.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"
#include "util/text.hpp"

namespace iop::trace {

namespace fs = std::filesystem;

namespace {

std::string traceFileName(const std::string& app, int rank) {
  return app + ".trace." + std::to_string(rank);
}

void writeRankFile(const fs::path& path,
                   const std::vector<Record>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out << "# iop-trace v1\n";
  out << "# IdP IdF MPI-Operation Offset tick RequestSize time duration\n";
  char buf[256];
  for (const auto& r : records) {
    std::snprintf(buf, sizeof buf,
                  "%d %d %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %.9f %.9f\n",
                  r.rank, r.fileId, r.op.c_str(), r.offsetUnits, r.tick,
                  r.requestBytes, r.time, r.duration);
    out << buf;
  }
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

std::vector<Record> readRankFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::vector<Record> records;
  std::string line;
  while (std::getline(in, line)) {
    auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = util::splitWhitespace(trimmed);
    if (tokens.size() != 8) {
      throw std::runtime_error("malformed trace line in " + path.string() +
                               ": " + line);
    }
    Record r;
    r.rank = std::stoi(tokens[0]);
    r.fileId = std::stoi(tokens[1]);
    r.op = tokens[2];
    r.offsetUnits = std::stoull(tokens[3]);
    r.tick = std::stoull(tokens[4]);
    r.requestBytes = std::stoull(tokens[5]);
    r.time = std::stod(tokens[6]);
    r.duration = std::stod(tokens[7]);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace

void writeTraces(const fs::path& dir, const TraceData& data) {
  IOP_PROFILE_SCOPE("trace.write");
  fs::create_directories(dir);
  for (int rank = 0; rank < data.np; ++rank) {
    writeRankFile(dir / traceFileName(data.appName, rank),
                  data.perRank[static_cast<std::size_t>(rank)]);
  }
  std::ofstream meta(dir / (data.appName + ".meta"));
  if (!meta) throw std::runtime_error("cannot open meta file");
  meta << "# iop-trace-meta v1\n";
  meta << "app " << data.appName << "\n";
  meta << "np " << data.np << "\n";
  for (const auto& f : data.files) {
    meta << "file " << f.fileId << ' ' << f.path << ' ' << (f.shared ? 1 : 0)
         << ' ' << f.etypeBytes << ' ' << f.viewDisp << ' '
         << f.filetypeBlock << ' ' << f.filetypeStride << ' '
         << (f.sawCollective ? 1 : 0) << ' ' << (f.sawExplicitOffsets ? 1 : 0)
         << ' ' << (f.sawIndividualPointers ? 1 : 0) << ' ' << f.np << "\n";
  }
  for (std::size_t i = 0; i < data.commEventsPerRank.size(); ++i) {
    meta << "comm " << i << ' ' << data.commEventsPerRank[i] << "\n";
  }
  if (!meta) throw std::runtime_error("meta write failed");
}

TraceData readTraces(const fs::path& dir, const std::string& appName) {
  IOP_PROFILE_SCOPE("trace.parse");
  TraceData data;
  data.appName = appName;
  std::ifstream meta(dir / (appName + ".meta"));
  if (!meta) {
    throw std::runtime_error("cannot open meta file for " + appName);
  }
  std::string line;
  while (std::getline(meta, line)) {
    auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = util::splitWhitespace(trimmed);
    if (tokens[0] == "np") {
      data.np = std::stoi(tokens.at(1));
    } else if (tokens[0] == "file") {
      if (tokens.size() < 12) {
        throw std::runtime_error("malformed meta file line: " + line);
      }
      FileMeta f;
      f.fileId = std::stoi(tokens[1]);
      f.path = tokens[2];
      f.shared = tokens[3] == "1";
      f.etypeBytes = std::stoull(tokens[4]);
      f.viewDisp = std::stoull(tokens[5]);
      f.filetypeBlock = std::stoull(tokens[6]);
      f.filetypeStride = std::stoull(tokens[7]);
      f.sawCollective = tokens[8] == "1";
      f.sawExplicitOffsets = tokens[9] == "1";
      f.sawIndividualPointers = tokens[10] == "1";
      f.np = std::stoi(tokens[11]);
      if (tokens.size() > 12) f.sawNonBlocking = tokens[12] == "1";
      data.files.push_back(std::move(f));
    } else if (tokens[0] == "comm") {
      const auto rank = static_cast<std::size_t>(std::stoul(tokens.at(1)));
      if (data.commEventsPerRank.size() <= rank) {
        data.commEventsPerRank.resize(rank + 1, 0);
      }
      data.commEventsPerRank[rank] = std::stoull(tokens.at(2));
    }
  }
  if (data.np <= 0) throw std::runtime_error("meta file missing np");
  data.perRank.resize(static_cast<std::size_t>(data.np));
  data.commEventsPerRank.resize(static_cast<std::size_t>(data.np), 0);
  for (int rank = 0; rank < data.np; ++rank) {
    data.perRank[static_cast<std::size_t>(rank)] =
        readRankFile(dir / traceFileName(appName, rank));
  }
  return data;
}

std::string renderTraceTable(const TraceData& data, int rank,
                             std::size_t maxRows) {
  util::Table table("TraceFile of process " + std::to_string(rank) + " (" +
                    data.appName + ")");
  table.setHeader({"IdP", "IdF", "MPI-Operation", "Offset", "tick",
                   "RequestSize", "time", "duration"},
                  {util::Align::Right, util::Align::Right, util::Align::Left,
                   util::Align::Right, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  const auto& records = data.perRank.at(static_cast<std::size_t>(rank));
  std::size_t count = 0;
  for (const auto& r : records) {
    if (maxRows != 0 && count++ >= maxRows) break;
    char timeBuf[32], durBuf[32];
    std::snprintf(timeBuf, sizeof timeBuf, "%.6f", r.time);
    std::snprintf(durBuf, sizeof durBuf, "%.6f", r.duration);
    table.addRow({std::to_string(r.rank), std::to_string(r.fileId), r.op,
                  std::to_string(r.offsetUnits), std::to_string(r.tick),
                  std::to_string(r.requestBytes), timeBuf, durBuf});
  }
  return table.render();
}

}  // namespace iop::trace
