#include "trace/tracefile.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/table.hpp"
#include "util/text.hpp"

namespace iop::trace {

namespace fs = std::filesystem;

namespace {

std::string traceFileName(const std::string& app, int rank) {
  return app + ".trace." + std::to_string(rank);
}

void writeRankFile(const fs::path& path,
                   const std::vector<Record>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out << "# iop-trace v1\n";
  out << "# IdP IdF MPI-Operation Offset tick RequestSize time duration\n";
  char buf[256];
  for (const auto& r : records) {
    std::snprintf(buf, sizeof buf,
                  "%d %d %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %.9f %.9f\n",
                  r.rank, r.fileId, r.op.c_str(), r.offsetUnits, r.tick,
                  r.requestBytes, r.time, r.duration);
    out << buf;
  }
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

// --------------------------------------------------------------- parsing
//
// Rank files are parsed in a single pass over one whole-file buffer with
// std::from_chars — no per-line streams, no per-token string copies.  A
// trace directory is read back once per characterization, and on large
// apps this path dominated model extraction.

constexpr bool isSpace(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Advance past blanks; the cursor stops at a token, '\n', or `end`.
const char* skipBlanks(const char* p, const char* end) noexcept {
  while (p != end && isSpace(*p)) ++p;
  return p;
}

std::string_view nextToken(const char*& p, const char* end) noexcept {
  p = skipBlanks(p, end);
  const char* start = p;
  while (p != end && !isSpace(*p) && *p != '\n') ++p;
  return {start, static_cast<std::size_t>(p - start)};
}

template <typename T>
bool parseNumber(std::string_view token, T& out) noexcept {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

std::string readWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::string text;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(text.data(), size);
  }
  if (in.bad()) throw std::runtime_error("read failed: " + path.string());
  return text;
}

/// Render a (possibly hostile) input line for an error message: control
/// bytes — including NULs, which would silently truncate the excerpt —
/// are escaped as \xNN, and long lines are cut at 80 characters.  Error
/// text must be safe to print to a terminal no matter what was in the
/// file.
std::string sanitizeExcerpt(const char* lineStart, const char* end) {
  constexpr std::size_t kMaxExcerpt = 80;
  const char* lineEnd = lineStart;
  while (lineEnd != end && *lineEnd != '\n') ++lineEnd;
  std::string out;
  out.reserve(kMaxExcerpt + 16);
  for (const char* p = lineStart; p != lineEnd; ++p) {
    if (out.size() >= kMaxExcerpt) {
      out += "... (";
      out += std::to_string(static_cast<std::size_t>(lineEnd - lineStart));
      out += " bytes)";
      return out;
    }
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    }
  }
  return out;
}

std::vector<Record> readRankFile(const fs::path& path) {
  const std::string text = readWholeFile(path);
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n')));
  const char* p = text.data();
  const char* const end = p + text.size();
  std::size_t lineNo = 1;
  while (p != end) {
    const char* const lineStart = p;
    p = skipBlanks(p, end);
    if (p == end) break;
    if (*p == '\n') {
      ++p;
      ++lineNo;
      continue;
    }
    if (*p == '#') {  // comment line
      while (p != end && *p != '\n') ++p;
      continue;  // the '\n' (if any) is consumed by the next iteration
    }
    Record r;
    const std::string_view t0 = nextToken(p, end);
    const std::string_view t1 = nextToken(p, end);
    const std::string_view op = nextToken(p, end);
    const std::string_view t3 = nextToken(p, end);
    const std::string_view t4 = nextToken(p, end);
    const std::string_view t5 = nextToken(p, end);
    const std::string_view t6 = nextToken(p, end);
    const std::string_view t7 = nextToken(p, end);
    const char* const afterFields = skipBlanks(p, end);
    const bool ok = parseNumber(t0, r.rank) && parseNumber(t1, r.fileId) &&
                    !op.empty() && parseNumber(t3, r.offsetUnits) &&
                    parseNumber(t4, r.tick) &&
                    parseNumber(t5, r.requestBytes) &&
                    parseNumber(t6, r.time) && parseNumber(t7, r.duration) &&
                    (afterFields == end || *afterFields == '\n');
    if (!ok) {
      // A truncated final record (mid-write kill) and a corrupted line
      // land here alike; file:line plus a sanitized excerpt makes the
      // defect findable with a text editor.
      throw std::runtime_error(
          path.string() + ":" + std::to_string(lineNo) +
          ": malformed trace record (want 'IdP IdF op Offset tick "
          "RequestSize time duration'): " +
          sanitizeExcerpt(lineStart, end));
    }
    r.op.assign(op);
    p = afterFields;
    if (p != end) {
      ++p;  // consume '\n'
      ++lineNo;
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace

void writeTraces(const fs::path& dir, const TraceData& data) {
  IOP_PROFILE_SCOPE("trace.write");
  fs::create_directories(dir);
  for (int rank = 0; rank < data.np; ++rank) {
    writeRankFile(dir / traceFileName(data.appName, rank),
                  data.perRank[static_cast<std::size_t>(rank)]);
  }
  std::ofstream meta(dir / (data.appName + ".meta"));
  if (!meta) throw std::runtime_error("cannot open meta file");
  meta << "# iop-trace-meta v1\n";
  meta << "app " << data.appName << "\n";
  meta << "np " << data.np << "\n";
  for (const auto& f : data.files) {
    meta << "file " << f.fileId << ' ' << f.path << ' ' << (f.shared ? 1 : 0)
         << ' ' << f.etypeBytes << ' ' << f.viewDisp << ' '
         << f.filetypeBlock << ' ' << f.filetypeStride << ' '
         << (f.sawCollective ? 1 : 0) << ' ' << (f.sawExplicitOffsets ? 1 : 0)
         << ' ' << (f.sawIndividualPointers ? 1 : 0) << ' ' << f.np << "\n";
  }
  for (std::size_t i = 0; i < data.commEventsPerRank.size(); ++i) {
    meta << "comm " << i << ' ' << data.commEventsPerRank[i] << "\n";
  }
  if (!meta) throw std::runtime_error("meta write failed");
}

TraceData readTraces(const fs::path& dir, const std::string& appName) {
  IOP_PROFILE_SCOPE("trace.parse");
  TraceData data;
  data.appName = appName;
  const fs::path metaPath = dir / (appName + ".meta");
  std::ifstream meta(metaPath);
  if (!meta) {
    throw std::runtime_error("cannot open meta file for " + appName);
  }
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(meta, line)) {
    ++lineNo;
    auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = util::splitWhitespace(trimmed);
    // std::sto* throw bare "stoi"/out-of-range on hostile tokens; rewrap
    // everything with the file:line so the bad record is findable.
    try {
      if (tokens[0] == "np") {
        data.np = std::stoi(tokens.at(1));
      } else if (tokens[0] == "file") {
        if (tokens.size() < 12) {
          throw std::runtime_error("needs at least 12 fields");
        }
        FileMeta f;
        f.fileId = std::stoi(tokens[1]);
        f.path = tokens[2];
        f.shared = tokens[3] == "1";
        f.etypeBytes = std::stoull(tokens[4]);
        f.viewDisp = std::stoull(tokens[5]);
        f.filetypeBlock = std::stoull(tokens[6]);
        f.filetypeStride = std::stoull(tokens[7]);
        f.sawCollective = tokens[8] == "1";
        f.sawExplicitOffsets = tokens[9] == "1";
        f.sawIndividualPointers = tokens[10] == "1";
        f.np = std::stoi(tokens[11]);
        if (tokens.size() > 12) f.sawNonBlocking = tokens[12] == "1";
        data.files.push_back(std::move(f));
      } else if (tokens[0] == "comm") {
        const auto rank =
            static_cast<std::size_t>(std::stoul(tokens.at(1)));
        if (data.commEventsPerRank.size() <= rank) {
          data.commEventsPerRank.resize(rank + 1, 0);
        }
        data.commEventsPerRank[rank] = std::stoull(tokens.at(2));
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(metaPath.string() + ":" +
                               std::to_string(lineNo) +
                               ": malformed meta record (" + e.what() + ")");
    }
  }
  if (data.np <= 0) throw std::runtime_error("meta file missing np");
  data.perRank.resize(static_cast<std::size_t>(data.np));
  data.commEventsPerRank.resize(static_cast<std::size_t>(data.np), 0);
  for (int rank = 0; rank < data.np; ++rank) {
    data.perRank[static_cast<std::size_t>(rank)] =
        readRankFile(dir / traceFileName(appName, rank));
  }
  return data;
}

std::string renderTraceTable(const TraceData& data, int rank,
                             std::size_t maxRows) {
  util::Table table("TraceFile of process " + std::to_string(rank) + " (" +
                    data.appName + ")");
  table.setHeader({"IdP", "IdF", "MPI-Operation", "Offset", "tick",
                   "RequestSize", "time", "duration"},
                  {util::Align::Right, util::Align::Right, util::Align::Left,
                   util::Align::Right, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  const auto& records = data.perRank.at(static_cast<std::size_t>(rank));
  std::size_t count = 0;
  for (const auto& r : records) {
    if (maxRows != 0 && count++ >= maxRows) break;
    char timeBuf[32], durBuf[32];
    std::snprintf(timeBuf, sizeof timeBuf, "%.6f", r.time);
    std::snprintf(durBuf, sizeof durBuf, "%.6f", r.duration);
    table.addRow({std::to_string(r.rank), std::to_string(r.fileId), r.op,
                  std::to_string(r.offsetUnits), std::to_string(r.tick),
                  std::to_string(r.requestBytes), timeBuf, durBuf});
  }
  return table.render();
}

}  // namespace iop::trace
