// Darshan-style aggregate trace counters.
//
// The paper starts from Darshan before switching to PAS2P-style tracing
// ("We have utilized Darshan in the beginning of our research"); the
// counter view is still the quickest sanity check of a trace, so the
// tracing tool keeps it: per-file operation counts, byte totals, request
// size histogram, sequential-access fraction, and I/O time — the numbers
// darshan-parser would print, computed from the full record stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace iop::trace {

/// Darshan's POSIX access-size bins.
inline constexpr std::array<std::uint64_t, 9> kSizeBinUpper = {
    100,        1024,        10 * 1024,        100 * 1024, 1024 * 1024,
    4u << 20,   10u << 20,   100u << 20,       1u << 30};

struct FileSummary {
  int fileId = 0;
  std::string path;
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t collectiveOps = 0;
  std::uint64_t independentOps = 0;
  std::uint64_t minRequest = 0;
  std::uint64_t maxRequest = 0;
  /// Request counts per size bin (kSizeBinUpper boundaries, last bin is
  /// "larger").
  std::array<std::uint64_t, kSizeBinUpper.size() + 1> sizeBins{};
  /// Fraction of operations whose offset continues the same rank's
  /// previous operation on this file (Darshan's SEQ counter).
  double sequentialFraction = 0;
  /// Sum of operation durations across ranks.
  double ioTimeSeconds = 0;
};

struct TraceSummary {
  std::string appName;
  int np = 0;
  std::vector<FileSummary> files;
  std::uint64_t totalBytes = 0;
  double totalIoTimeSeconds = 0;

  /// darshan-parser-like text rendering.
  std::string render() const;
};

TraceSummary summarizeTrace(const TraceData& data);

}  // namespace iop::trace
