// Tracing tool: the repository's equivalent of the paper's extended PAS2P
// with MPI-IO interposition (Section III-A1).
//
// The Tracer implements the mpi::TraceSink interposition interface and
// accumulates, per MPI process, the Figure-2 record stream (IdP IdF
// MPI-Operation Offset tick RequestSize time duration) plus per-file
// metadata.  TraceData is the portable result: it can be saved to
// Figure-2-style text files and read back, which is what makes the
// characterization stage a strictly offline, one-time activity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/tracehook.hpp"

namespace iop::trace {

using Record = mpi::IoCallRecord;
using FileMeta = mpi::FileMetaRecord;

/// A complete application trace: one record stream per rank + file metadata.
struct TraceData {
  std::string appName;
  int np = 0;
  std::vector<std::vector<Record>> perRank;  ///< indexed by rank, tick order
  std::vector<FileMeta> files;
  std::vector<std::uint64_t> commEventsPerRank;

  /// All I/O records of one file across ranks, ordered by (rank, tick).
  std::vector<Record> recordsForFile(int fileId) const;

  /// Total bytes moved by op kind ("write"/"read" classified by name).
  std::uint64_t totalBytes() const;

  const FileMeta* fileMeta(int fileId) const;
};

/// True if the MPI op name is a write (otherwise it is a read).
bool isWriteOp(const std::string& op);
/// True if the MPI op name is collective (ends in _all).
bool isCollectiveOp(const std::string& op);

class Tracer final : public mpi::TraceSink {
 public:
  explicit Tracer(std::string appName, int np);

  void onIoCall(const Record& record) override;
  void onFileMeta(const FileMeta& record) override;
  void onCommEvent(int rank, std::uint64_t tick, const std::string& op,
                   double time) override;

  const TraceData& data() const noexcept { return data_; }
  TraceData takeData() { return std::move(data_); }

 private:
  TraceData data_;
};

}  // namespace iop::trace
