// Trace persistence in the paper's Figure-2 text format.
//
// One file per rank (`<app>.trace.<rank>`) with columns
//   IdP IdF MPI-Operation Offset tick RequestSize time duration
// plus one metadata file (`<app>.meta`) holding np and the per-file
// characteristics.  Round-tripping a trace through disk is what decouples
// the characterization machine from the analysis machine.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace iop::trace {

/// Write `<app>.trace.<rank>` files and `<app>.meta` into `dir`.
/// Creates the directory if needed.  Throws std::runtime_error on I/O
/// failure.
void writeTraces(const std::filesystem::path& dir, const TraceData& data);

/// Read a trace previously written by writeTraces.
TraceData readTraces(const std::filesystem::path& dir,
                     const std::string& appName);

/// Render one rank's records as a Figure-2-style table (for reports).
std::string renderTraceTable(const TraceData& data, int rank,
                             std::size_t maxRows = 0);

}  // namespace iop::trace
