#include "trace/summary.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::trace {

namespace {

std::size_t sizeBinIndex(std::uint64_t bytes) {
  for (std::size_t i = 0; i < kSizeBinUpper.size(); ++i) {
    if (bytes <= kSizeBinUpper[i]) return i;
  }
  return kSizeBinUpper.size();
}

std::string sizeBinLabel(std::size_t index) {
  static const char* kLabels[] = {
      "0-100",   "100-1K",  "1K-10K",   "10K-100K", "100K-1M",
      "1M-4M",   "4M-10M",  "10M-100M", "100M-1G",  ">1G"};
  return kLabels[index];
}

}  // namespace

TraceSummary summarizeTrace(const TraceData& data) {
  TraceSummary summary;
  summary.appName = data.appName;
  summary.np = data.np;

  std::map<int, FileSummary> byFile;
  // Per (rank, file) previous end offset, for the sequential counter.
  // Offsets are in etype units of the file view; request sizes are bytes.
  std::map<std::pair<int, int>, std::uint64_t> prevEnd;
  std::map<int, std::uint64_t> sequentialOps;
  std::map<int, std::uint64_t> etypeOf;

  for (const auto& f : data.files) {
    FileSummary fs;
    fs.fileId = f.fileId;
    fs.path = f.path;
    byFile.emplace(f.fileId, std::move(fs));
    etypeOf[f.fileId] = f.etypeBytes == 0 ? 1 : f.etypeBytes;
  }

  for (const auto& rankRecords : data.perRank) {
    for (const auto& rec : rankRecords) {
      auto& fs = byFile[rec.fileId];
      if (fs.fileId == 0 && rec.fileId != 0) fs.fileId = rec.fileId;
      if (isWriteOp(rec.op)) {
        ++fs.writeOps;
        fs.bytesWritten += rec.requestBytes;
      } else {
        ++fs.readOps;
        fs.bytesRead += rec.requestBytes;
      }
      if (isCollectiveOp(rec.op)) {
        ++fs.collectiveOps;
      } else {
        ++fs.independentOps;
      }
      if (fs.minRequest == 0 || rec.requestBytes < fs.minRequest) {
        fs.minRequest = rec.requestBytes;
      }
      fs.maxRequest = std::max(fs.maxRequest, rec.requestBytes);
      ++fs.sizeBins[sizeBinIndex(rec.requestBytes)];
      fs.ioTimeSeconds += rec.duration;

      const auto key = std::make_pair(rec.rank, rec.fileId);
      auto etypeIt = etypeOf.find(rec.fileId);
      const std::uint64_t etype =
          etypeIt != etypeOf.end() ? etypeIt->second : 1;
      auto it = prevEnd.find(key);
      if (it != prevEnd.end() && rec.offsetUnits == it->second) {
        ++sequentialOps[rec.fileId];
      }
      prevEnd[key] = rec.offsetUnits + rec.requestBytes / etype;

      summary.totalBytes += rec.requestBytes;
      summary.totalIoTimeSeconds += rec.duration;
    }
  }

  for (auto& [fileId, fs] : byFile) {
    const std::uint64_t ops = fs.readOps + fs.writeOps;
    if (ops > 1) {
      // The first op of each rank can never be sequential; normalize by
      // the number of follow-up operations.
      std::uint64_t followUps = 0;
      for (const auto& [key, end] : prevEnd) {
        (void)end;
        if (key.second == fileId) ++followUps;
      }
      const std::uint64_t denominator = ops - followUps;
      fs.sequentialFraction =
          denominator > 0 ? static_cast<double>(sequentialOps[fileId]) /
                                static_cast<double>(denominator)
                          : 0.0;
    }
    summary.files.push_back(fs);
  }
  return summary;
}

std::string TraceSummary::render() const {
  std::ostringstream out;
  out << "trace summary: " << appName << ", " << np << " processes, "
      << util::formatBytesApprox(totalBytes) << " moved, "
      << util::formatSeconds(totalIoTimeSeconds)
      << " s of summed operation time\n";
  util::Table table;
  table.setHeader({"file", "reads", "writes", "bytes read", "bytes written",
                   "coll", "indep", "req min..max", "seq%"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right,
                   util::Align::Right});
  for (const auto& f : files) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.0f%%", f.sequentialFraction * 100);
    table.addRow({f.path, std::to_string(f.readOps),
                  std::to_string(f.writeOps),
                  util::formatBytesApprox(f.bytesRead),
                  util::formatBytesApprox(f.bytesWritten),
                  std::to_string(f.collectiveOps),
                  std::to_string(f.independentOps),
                  util::formatBytesApprox(f.minRequest) + ".." +
                      util::formatBytesApprox(f.maxRequest),
                  pct});
  }
  out << table.render();
  out << "request size histogram (all files):\n";
  std::array<std::uint64_t, kSizeBinUpper.size() + 1> total{};
  for (const auto& f : files) {
    for (std::size_t i = 0; i < total.size(); ++i) {
      total[i] += f.sizeBins[i];
    }
  }
  for (std::size_t i = 0; i < total.size(); ++i) {
    if (total[i] == 0) continue;
    out << "  " << sizeBinLabel(i) << ": " << total[i] << "\n";
  }
  return out.str();
}

}  // namespace iop::trace
