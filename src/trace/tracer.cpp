#include "trace/tracer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/text.hpp"

namespace iop::trace {

bool isWriteOp(const std::string& op) {
  return op.find("write") != std::string::npos;
}

bool isCollectiveOp(const std::string& op) {
  return util::startsWith(op, "MPI_File_") &&
         op.size() >= 4 && op.compare(op.size() - 4, 4, "_all") == 0;
}

std::vector<Record> TraceData::recordsForFile(int fileId) const {
  std::vector<Record> out;
  for (const auto& rankRecords : perRank) {
    for (const auto& r : rankRecords) {
      if (r.fileId == fileId) out.push_back(r);
    }
  }
  return out;
}

std::uint64_t TraceData::totalBytes() const {
  std::uint64_t total = 0;
  for (const auto& rankRecords : perRank) {
    for (const auto& r : rankRecords) total += r.requestBytes;
  }
  return total;
}

const FileMeta* TraceData::fileMeta(int fileId) const {
  for (const auto& f : files) {
    if (f.fileId == fileId) return &f;
  }
  return nullptr;
}

Tracer::Tracer(std::string appName, int np) {
  data_.appName = std::move(appName);
  data_.np = np;
  data_.perRank.resize(static_cast<std::size_t>(np));
  data_.commEventsPerRank.resize(static_cast<std::size_t>(np), 0);
}

void Tracer::onIoCall(const Record& record) {
  if (record.rank < 0 || record.rank >= data_.np) {
    throw std::out_of_range("trace record rank out of range");
  }
  data_.perRank[static_cast<std::size_t>(record.rank)].push_back(record);
}

void Tracer::onFileMeta(const FileMeta& record) {
  data_.files.push_back(record);
}

void Tracer::onCommEvent(int rank, std::uint64_t, const std::string&,
                         double) {
  if (rank >= 0 && rank < data_.np) {
    ++data_.commEventsPerRank[static_cast<std::size_t>(rank)];
  }
}

}  // namespace iop::trace
