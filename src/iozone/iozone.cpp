#include "iozone/iozone.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::iozone {

const char* patternName(Pattern p) {
  switch (p) {
    case Pattern::SequentialWrite: return "seq-write";
    case Pattern::SequentialRead: return "seq-read";
    case Pattern::StridedWrite: return "strided-write";
    case Pattern::StridedRead: return "strided-read";
    case Pattern::RandomWrite: return "random-write";
    case Pattern::RandomRead: return "random-read";
  }
  return "?";
}

bool isWritePattern(Pattern p) {
  return p == Pattern::SequentialWrite || p == Pattern::StridedWrite ||
         p == Pattern::RandomWrite;
}

namespace {

/// Offsets visited by one pass, in order.
std::vector<std::uint64_t> passOffsets(Pattern pattern,
                                       std::uint64_t fileSize,
                                       std::uint64_t rs,
                                       std::uint64_t strideFactor,
                                       std::uint64_t seed) {
  const std::uint64_t count = fileSize / rs;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count);
  switch (pattern) {
    case Pattern::SequentialWrite:
    case Pattern::SequentialRead:
      for (std::uint64_t i = 0; i < count; ++i) offsets.push_back(i * rs);
      break;
    case Pattern::StridedWrite:
    case Pattern::StridedRead: {
      // Visit offset 0, S, 2S, ... wrapping with phase shift, S = f*RS.
      const std::uint64_t stride = strideFactor * rs;
      const std::uint64_t lanes = strideFactor;
      for (std::uint64_t lane = 0; lane < lanes; ++lane) {
        for (std::uint64_t o = lane * rs; o + rs <= fileSize; o += stride) {
          offsets.push_back(o);
        }
      }
      break;
    }
    case Pattern::RandomWrite:
    case Pattern::RandomRead: {
      for (std::uint64_t i = 0; i < count; ++i) offsets.push_back(i * rs);
      util::Rng rng(seed);
      rng.shuffle(offsets);
      break;
    }
  }
  return offsets;
}

struct PassOutcome {
  double seconds = 0;
  std::uint64_t bytes = 0;
};

sim::Task<void> runPass(sim::Engine& engine, storage::IoServer& server,
                        Pattern pattern,
                        std::vector<std::uint64_t> offsets, std::uint64_t rs,
                        bool includeFlush, std::uint64_t fileBase,
                        PassOutcome& outcome) {
  const double start = engine.now();
  const bool isWrite = isWritePattern(pattern);
  std::uint64_t bytes = 0;
  for (std::uint64_t offset : offsets) {
    if (isWrite) {
      co_await server.handleWrite(fileBase + offset, rs);
    } else {
      co_await server.handleRead(fileBase + offset, rs);
    }
    bytes += rs;
  }
  if (isWrite && includeFlush) co_await server.sync();
  outcome.seconds = engine.now() - start;
  outcome.bytes = bytes;
}

}  // namespace

std::string IozoneResult::renderTable() const {
  util::Table table("IOzone sweep (MB/s)");
  table.setHeader({"Pattern", "RecordSize", "Bandwidth"},
                  {util::Align::Left, util::Align::Right,
                   util::Align::Right});
  for (const auto& cell : cells) {
    table.addRow({patternName(cell.pattern),
                  util::formatBytes(cell.recordSize),
                  util::formatSeconds(util::toMiBs(cell.bandwidth), 1)});
  }
  return table.render();
}

IozoneResult runIozone(sim::Engine& engine, storage::IoServer& server,
                       const IozoneParams& params) {
  IozoneResult result;
  std::uint64_t fileSize = params.fileSize;
  if (fileSize == 0) fileSize = 2 * server.cache().params().sizeBytes;
  // Distinct extent region per pass so a read pass never hits data a
  // previous pass cached (drop + separate regions = cold start).
  std::uint64_t region = 0;
  const std::uint64_t regionSpan = 1ULL << 42;

  for (std::uint64_t rs : params.recordSizes) {
    if (rs == 0 || rs > fileSize) {
      throw std::invalid_argument("record size must be in (0, fileSize]");
    }
    for (Pattern pattern : params.patterns) {
      server.cache().dropClean();
      const std::uint64_t base = region++ * regionSpan;
      // Read patterns need data on "disk": sequential-write the region
      // first (untimed), then drop caches.
      if (!isWritePattern(pattern)) {
        PassOutcome prep;
        engine.spawn(runPass(engine, server, Pattern::SequentialWrite,
                             passOffsets(Pattern::SequentialWrite, fileSize,
                                         rs, params.strideFactor,
                                         params.randomSeed),
                             rs, true, base, prep));
        engine.drain();
        server.cache().dropClean();
      }
      PassOutcome outcome;
      engine.spawn(runPass(engine, server, pattern,
                           passOffsets(pattern, fileSize, rs,
                                       params.strideFactor,
                                       params.randomSeed),
                           rs, params.includeFlush, base, outcome));
      engine.drain();
      IozoneCell cell;
      cell.pattern = pattern;
      cell.recordSize = rs;
      cell.bandwidth = outcome.seconds > 0
                           ? static_cast<double>(outcome.bytes) /
                                 outcome.seconds
                           : 0;
      result.cells.push_back(cell);
      auto& peak = isWritePattern(pattern) ? result.peakWriteBandwidth
                                           : result.peakReadBandwidth;
      peak = std::max(peak, cell.bandwidth);
    }
  }
  return result;
}

}  // namespace iop::iozone
