// IOzone-style device/local-filesystem benchmark (the paper's Table IV).
//
// Runs directly on one I/O server (through its page cache onto the block
// device — "I/O devices on local filesystem" level) and sweeps record
// sizes across access patterns: sequential (-i0 -i1), strided (-i5, stride
// = factor * RS) and random (-i2).  The file size defaults to twice the
// server's cache ("minimum size = 2 * RAM"), the paper's rule for pushing
// the measurement past the page cache.
//
// The per-configuration peak BW_PK of eqs. (3)-(4) is the maximum cell per
// operation type, summed over I/O nodes for parallel filesystems (that
// aggregation lives in analysis/peaks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "storage/server.hpp"

namespace iop::iozone {

enum class Pattern {
  SequentialWrite,
  SequentialRead,
  StridedWrite,
  StridedRead,
  RandomWrite,
  RandomRead,
};

const char* patternName(Pattern p);
bool isWritePattern(Pattern p);

struct IozoneParams {
  /// 0 = twice the server cache size (the paper's 2*RAM rule).
  std::uint64_t fileSize = 0;
  std::vector<std::uint64_t> recordSizes = {
      64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20, 16ULL << 20};
  std::vector<Pattern> patterns = {
      Pattern::SequentialWrite, Pattern::SequentialRead,
      Pattern::StridedWrite,    Pattern::StridedRead,
      Pattern::RandomWrite,     Pattern::RandomRead};
  std::uint64_t strideFactor = 4;  ///< -i5 stride = factor * RS
  std::uint64_t randomSeed = 11;
  /// Include fsync (drain write-back) in write timings, like iozone -e.
  bool includeFlush = true;
};

struct IozoneCell {
  Pattern pattern;
  std::uint64_t recordSize = 0;
  double bandwidth = 0;  ///< bytes/s
};

struct IozoneResult {
  std::vector<IozoneCell> cells;
  double peakWriteBandwidth = 0;  ///< max over write cells (bytes/s)
  double peakReadBandwidth = 0;   ///< max over read cells (bytes/s)

  std::string renderTable() const;
};

/// Run the sweep on one I/O server.  Uses the server's engine; caches are
/// dropped between passes.
IozoneResult runIozone(sim::Engine& engine, storage::IoServer& server,
                       const IozoneParams& params = {});

}  // namespace iop::iozone
