// FaultInjector: binds a parsed FaultPlan to one instantiated cluster.
//
// attach() resolves the plan's selectors against the configuration's disks,
// nodes, and rank placement, installs a storage::FaultPort per affected
// target, and wires StripedFS failover through RecoveryHooks.  Every
// random decision (transient-error draws, backoff jitter) comes from
// per-port xoshiro streams split off a master seeded by
// mix(replicaSeed, hash(plan.canonicalText())) in deterministic attach
// order — so one (plan, seed) pair reproduces the exact same fault
// history, retry counts, and Time_io on any host and at any -j.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "storage/faults.hpp"
#include "util/rng.hpp"

namespace iop::configs {
struct ClusterConfig;
}

namespace iop::fault {

/// One injected-fault occurrence, in simulation order.
struct FaultEvent {
  double time = 0.0;
  std::string kind;    ///< "retry", "exhausted", "failover"
  std::string target;  ///< device/NIC name, or "from->to" for failover
  double seconds = 0.0;  ///< stall paid (retry) — 0 otherwise
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Install ports + recovery hooks on the configuration's topology.
  /// Throws std::invalid_argument if a selector matches nothing (a typo'd
  /// plan should fail loudly, not silently inject nothing).  Call once,
  /// before the workload runs; the injector must outlive the run.
  void attach(configs::ClusterConfig& config);

  const FaultPlan& plan() const noexcept { return plan_; }
  std::uint64_t seed() const noexcept { return seed_; }
  const storage::RetryPolicy& policy() const noexcept {
    return plan_.policy;
  }

  struct Accounting {
    std::uint64_t retries = 0;     ///< failed attempts that were retried
    std::uint64_t exhausted = 0;   ///< operations that gave up (IoFault)
    std::uint64_t failovers = 0;   ///< slices retargeted to another server
    double stallSeconds = 0.0;     ///< total retry/backoff/timeout stall
  };
  const Accounting& accounting() const noexcept { return accounting_; }

  /// Injected-fault history in simulation order (capped; see
  /// eventsTruncated).  Byte-identical across replicas of one
  /// (plan, seed) pair — the determinism tests diff this rendering.
  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool eventsTruncated() const noexcept { return eventsTruncated_; }
  std::string renderEventLog() const;

 private:
  class Port;

  void record(double time, const char* kind, std::string target,
              double seconds);

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  util::Rng master_;
  bool attached_ = false;
  Accounting accounting_;
  std::vector<FaultEvent> events_;
  bool eventsTruncated_ = false;
  std::vector<std::unique_ptr<Port>> ports_;
};

/// Convenience used by the estimator and tools: construct an injector for
/// (plan, seed), attach it to `config`, park ownership in
/// `config.faults`, and return it.  No-op (returns null) for empty plans,
/// preserving the zero-perturbation fast path.
std::shared_ptr<FaultInjector> installFaults(configs::ClusterConfig& config,
                                             const FaultPlan& plan,
                                             std::uint64_t seed);

}  // namespace iop::fault
