#include "fault/plan.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace iop::fault {

namespace {

constexpr double kForever = std::numeric_limits<double>::infinity();

std::vector<std::string> splitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

class LineParser {
 public:
  LineParser(const std::string& sourceName, int line)
      : sourceName_(sourceName), line_(line) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument(sourceName_ + ":" + std::to_string(line_) +
                                ": " + message);
  }

  double number(const std::string& text, const std::string& what) const {
    double value = 0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) {
      fail("bad " + what + " '" + text + "'");
    }
    return value;
  }

  /// "2s" / "500ms" / "3us" / bare seconds.  `relative` (out) is set when
  /// the value begins with '+'.
  double time(std::string text, const std::string& what,
              bool* relative = nullptr) const {
    if (relative != nullptr) *relative = false;
    if (!text.empty() && text.front() == '+') {
      if (relative == nullptr) fail("'" + text + "': '+' not allowed here");
      *relative = true;
      text.erase(text.begin());
    }
    double scale = 1.0;
    if (text.size() > 2 && text.compare(text.size() - 2, 2, "ms") == 0) {
      scale = 1e-3;
      text.resize(text.size() - 2);
    } else if (text.size() > 2 &&
               text.compare(text.size() - 2, 2, "us") == 0) {
      scale = 1e-6;
      text.resize(text.size() - 2);
    } else if (text.size() > 1 && text.back() == 's') {
      text.pop_back();
    }
    const double value = number(text, what);
    if (value < 0) fail(what + " must be >= 0");
    return value * scale;
  }

  /// "x4" / "x1.5" slowdown factor.
  double factor(const std::string& text) const {
    if (text.size() < 2 || text.front() != 'x') {
      fail("expected a slowdown factor like 'x4', got '" + text + "'");
    }
    const double value = number(text.substr(1), "factor");
    if (value < 1.0) fail("slowdown factor must be >= 1");
    return value;
  }

  /// Split "key=value"; fails if `=` is missing.
  std::pair<std::string, std::string> keyValue(const std::string& text) const {
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
      fail("expected key=value, got '" + text + "'");
    }
    return {text.substr(0, eq), text.substr(eq + 1)};
  }

 private:
  const std::string& sourceName_;
  int line_;
};

/// Window / probability options shared by disk/node/net rules.
void applyRuleOption(const LineParser& p, FaultRule& rule,
                     const std::string& token) {
  const auto [key, value] = p.keyValue(token);
  if (key == "from") {
    rule.from = p.time(value, "from");
  } else if (key == "until") {
    rule.until = p.time(value, "until");
  } else if (key == "p") {
    const double prob = p.number(value, "probability");
    if (prob < 0.0 || prob > 1.0) p.fail("p must be in [0, 1]");
    rule.probability = prob;
  } else {
    p.fail("unknown option '" + key + "'");
  }
}

FaultRule parseTargetRule(const LineParser& p, FaultRule::Target target,
                          const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) {
    p.fail("expected: <disk|node> <selector> <fault> [options]");
  }
  FaultRule rule;
  rule.target = target;
  rule.selector = tokens[1];
  rule.until = kForever;
  const std::string& kind = tokens[2];
  std::size_t next = 3;
  if (kind == "transient-error") {
    rule.kind = FaultRule::Kind::TransientError;
    rule.probability = 1.0;
  } else if (kind == "slow") {
    rule.kind = FaultRule::Kind::Slow;
    if (next >= tokens.size()) p.fail("slow needs a factor (e.g. x4)");
    rule.factor = p.factor(tokens[next++]);
  } else if (kind == "down") {
    rule.kind = FaultRule::Kind::Down;
  } else if (kind == "crash") {
    // Sugar for a down window: crash at=T restart=+D.
    rule.kind = FaultRule::Kind::Down;
    double at = 0.0;
    double restart = kForever;
    bool haveAt = false;
    for (; next < tokens.size(); ++next) {
      const auto [key, value] = p.keyValue(tokens[next]);
      if (key == "at") {
        at = p.time(value, "at");
        haveAt = true;
      } else if (key == "restart") {
        bool relative = false;
        restart = p.time(value, "restart", &relative);
        if (!relative && haveAt && restart < at) {
          p.fail("restart before the crash");
        }
        if (relative) restart = -restart;  // resolved after `at` is known
      } else {
        p.fail("unknown option '" + key + "' for crash");
      }
    }
    if (!haveAt) p.fail("crash needs at=<time>");
    rule.from = at;
    rule.until = restart == kForever ? kForever
                 : restart < 0      ? at - restart
                                    : restart;
    if (rule.until <= rule.from) p.fail("restart before the crash");
    return rule;
  } else {
    p.fail("unknown fault '" + kind +
           "' (expected transient-error, slow, down, or crash)");
  }
  for (; next < tokens.size(); ++next) {
    applyRuleOption(p, rule, tokens[next]);
  }
  if (rule.until <= rule.from) p.fail("empty fault window (until <= from)");
  return rule;
}

FaultRule parseNetRule(const LineParser& p,
                       const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) {
    p.fail("expected: net <straggler|transient-error> rank=N [options]");
  }
  FaultRule rule;
  rule.target = FaultRule::Target::NetRank;
  rule.until = kForever;
  const std::string& kind = tokens[1];
  std::size_t next = 2;
  if (kind == "straggler") {
    rule.kind = FaultRule::Kind::Slow;
  } else if (kind == "transient-error") {
    rule.kind = FaultRule::Kind::TransientError;
    rule.probability = 1.0;
  } else {
    p.fail("unknown net fault '" + kind +
           "' (expected straggler or transient-error)");
  }
  bool haveRank = false;
  for (; next < tokens.size(); ++next) {
    const std::string& token = tokens[next];
    if (token.front() == 'x') {
      rule.factor = p.factor(token);
      continue;
    }
    const auto [key, value] = p.keyValue(token);
    if (key == "rank") {
      const double rank = p.number(value, "rank");
      if (rank < 0 || rank != static_cast<double>(static_cast<int>(rank))) {
        p.fail("rank must be a non-negative integer");
      }
      rule.rank = static_cast<int>(rank);
      haveRank = true;
    } else {
      applyRuleOption(p, rule, token);
    }
  }
  if (!haveRank) p.fail("net faults need rank=<N>");
  if (rule.kind == FaultRule::Kind::Slow && rule.factor <= 1.0) {
    p.fail("straggler needs a factor (e.g. x4)");
  }
  if (rule.until <= rule.from) p.fail("empty fault window (until <= from)");
  return rule;
}

void parsePolicy(const LineParser& p, storage::RetryPolicy& policy,
                 const std::vector<std::string>& tokens) {
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto [key, value] = p.keyValue(tokens[i]);
    if (key == "timeout") {
      policy.timeoutSec = p.time(value, "timeout");
    } else if (key == "retries") {
      const double n = p.number(value, "retries");
      if (n < 0 || n != static_cast<double>(static_cast<int>(n))) {
        p.fail("retries must be a non-negative integer");
      }
      policy.maxRetries = static_cast<int>(n);
    } else if (key == "backoff") {
      policy.backoffBaseSec = p.time(value, "backoff");
    } else if (key == "max-backoff") {
      policy.backoffMaxSec = p.time(value, "max-backoff");
    } else if (key == "jitter") {
      const double j = p.number(value, "jitter");
      if (j < 0.0 || j >= 1.0) p.fail("jitter must be in [0, 1)");
      policy.jitter = j;
    } else if (key == "failover") {
      if (value == "on") {
        policy.failover = true;
      } else if (value == "off") {
        policy.failover = false;
      } else {
        p.fail("failover must be on or off");
      }
    } else {
      p.fail("unknown policy knob '" + key + "'");
    }
  }
}

std::string renderTime(double t) {
  return t == kForever ? "forever" : formatDouble(t) + "s";
}

}  // namespace

/// Same scheme as the sweep store's number rendering, so plan identities
/// and event logs are stable across platforms.
std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[40];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

std::string FaultPlan::canonicalText() const {
  std::ostringstream out;
  out << "faultplan v1\n";
  out << "policy timeout=" << formatDouble(policy.timeoutSec)
      << "s retries=" << policy.maxRetries
      << " backoff=" << formatDouble(policy.backoffBaseSec)
      << "s max-backoff=" << formatDouble(policy.backoffMaxSec)
      << "s jitter=" << formatDouble(policy.jitter)
      << " failover=" << (policy.failover ? "on" : "off") << "\n";
  for (const FaultRule& rule : rules) {
    switch (rule.target) {
      case FaultRule::Target::Disk:
        out << "disk " << rule.selector;
        break;
      case FaultRule::Target::Node:
        out << "node " << rule.selector;
        break;
      case FaultRule::Target::NetRank:
        out << "net rank=" << rule.rank;
        break;
    }
    switch (rule.kind) {
      case FaultRule::Kind::TransientError:
        out << " transient-error p=" << formatDouble(rule.probability);
        break;
      case FaultRule::Kind::Slow:
        out << " slow x" << formatDouble(rule.factor);
        break;
      case FaultRule::Kind::Down:
        out << " down";
        break;
    }
    out << " from=" << renderTime(rule.from)
        << " until=" << renderTime(rule.until) << "\n";
  }
  return out.str();
}

FaultPlan parseFaultPlan(const std::string& text,
                         const std::string& sourceName) {
  FaultPlan plan;
  plan.source = sourceName;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = splitTokens(line);
    if (tokens.empty()) continue;
    const LineParser p(sourceName, lineNo);
    const std::string& directive = tokens[0];
    if (directive == "policy") {
      parsePolicy(p, plan.policy, tokens);
    } else if (directive == "disk") {
      FaultRule rule = parseTargetRule(p, FaultRule::Target::Disk, tokens);
      rule.line = lineNo;
      plan.rules.push_back(std::move(rule));
    } else if (directive == "node") {
      FaultRule rule = parseTargetRule(p, FaultRule::Target::Node, tokens);
      rule.line = lineNo;
      plan.rules.push_back(std::move(rule));
    } else if (directive == "net") {
      FaultRule rule = parseNetRule(p, tokens);
      rule.line = lineNo;
      plan.rules.push_back(std::move(rule));
    } else {
      p.fail("unknown directive '" + directive +
             "' (expected policy, disk, node, or net)");
    }
  }
  return plan;
}

FaultPlan loadFaultPlan(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read fault plan: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseFaultPlan(buffer.str(), path.string());
}

}  // namespace iop::fault
