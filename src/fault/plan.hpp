// Declarative fault plans: a small text format describing *when* and
// *where* the simulated I/O subsystem misbehaves.
//
//   # comments and blank lines are ignored
//   policy timeout=0.5s retries=8 backoff=2ms jitter=0.25 failover=on
//   disk d0 transient-error p=0.01 from=2s until=10s
//   disk *  slow x2 from=4s
//   disk raid5-d1 down from=3s until=6s
//   node n3 crash at=5s restart=+2s
//   net straggler rank=7 x4 from=1s
//
// Selectors: `*` matches every target of the kind; `dN`/`nN` selects the
// N-th disk/node of the attached configuration; anything else matches a
// device/node name exactly.  Times accept `s`/`ms`/`us` suffixes (bare
// numbers are seconds); `restart=+2s` is relative to `at`.  Parsing is
// strict — malformed lines fail with `file:line:` diagnostics, never
// silently skip.
//
// Determinism contract: a plan's canonicalText() plus a replica seed fully
// determine every injected fault, retry, backoff-jitter draw, and failover
// in a run (see docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/faults.hpp"

namespace iop::fault {

struct FaultRule {
  enum class Target { Disk, Node, NetRank };
  enum class Kind { TransientError, Slow, Down };

  Target target = Target::Disk;
  Kind kind = Kind::Slow;
  std::string selector;      ///< name, dN/nN index, or "*" (unused for rank)
  int rank = -1;             ///< NetRank only
  double probability = 0.0;  ///< TransientError: per-attempt failure rate
  double factor = 1.0;       ///< Slow: service-time multiplier (>= 1)
  double from = 0.0;         ///< window start (inclusive), sim seconds
  double until = 0.0;        ///< window end (exclusive); +inf = forever
  int line = 0;              ///< 1-based source line (diagnostics)

  bool activeAt(double now) const noexcept {
    return now >= from && now < until;
  }
};

struct FaultPlan {
  std::string source;  ///< file path or label the plan was parsed from
  storage::RetryPolicy policy;
  std::vector<FaultRule> rules;

  bool empty() const noexcept { return rules.empty(); }

  /// Normalized re-rendering: whitespace- and comment-insensitive, with
  /// shortest-round-trip numbers.  This is the plan's identity for cache
  /// keys and for seeding the injector's RNG streams.
  std::string canonicalText() const;
};

/// Parse a plan from text.  `sourceName` labels diagnostics ("plan.fault:3:
/// ...").  Throws std::invalid_argument on any malformed line.
FaultPlan parseFaultPlan(const std::string& text,
                         const std::string& sourceName);

/// Read + parse a plan file.  Throws std::runtime_error if unreadable.
FaultPlan loadFaultPlan(const std::filesystem::path& path);

/// Shortest decimal that round-trips the exact double; the number format
/// used by canonicalText() and the injector's event log.
std::string formatDouble(double v);

}  // namespace iop::fault
