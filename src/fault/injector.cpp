#include "fault/injector.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "configs/configs.hpp"
#include "storage/disk.hpp"
#include "storage/topology.hpp"

namespace iop::fault {

namespace {

/// Hard cap on the recorded event history: a pathological plan (p=1 on a
/// hot disk) must not turn a simulation into an OOM.
constexpr std::size_t kMaxEvents = 100000;

/// FNV-1a over the canonical plan text, mixed into the replica seed so
/// that two plans with the same seed get unrelated streams.
std::uint64_t hashText(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Selector match for "dN"/"nN" index forms.
bool indexSelector(const std::string& selector, char prefix,
                   std::size_t index) {
  if (selector.size() < 2 || selector.front() != prefix) return false;
  for (std::size_t i = 1; i < selector.size(); ++i) {
    if (selector[i] < '0' || selector[i] > '9') return false;
  }
  return selector.substr(1) == std::to_string(index);
}

}  // namespace

/// One target's fault stream: the rules that apply to it plus a private
/// RNG split off the injector's master in attach order.
class FaultInjector::Port final : public storage::FaultPort {
 public:
  Port(FaultInjector& owner, std::string target, util::Rng rng)
      : owner_(owner), target_(std::move(target)), rng_(rng) {}

  void addRule(const FaultRule* rule) { rules_.push_back(rule); }
  bool hasRules() const noexcept { return !rules_.empty(); }
  const std::string& target() const noexcept { return target_; }

  storage::FaultVerdict onAttempt(double now, storage::IoOp,
                                  std::uint64_t) override {
    storage::FaultVerdict verdict;
    // Down windows first — they are time-driven and consume no randomness,
    // so skipping the probability draws below stays deterministic.
    for (const FaultRule* rule : rules_) {
      if (rule->kind == FaultRule::Kind::Down && rule->activeAt(now)) {
        verdict.kind = storage::FaultVerdict::Kind::Down;
        return verdict;
      }
    }
    for (const FaultRule* rule : rules_) {
      if (!rule->activeAt(now)) continue;
      switch (rule->kind) {
        case FaultRule::Kind::TransientError:
          if (verdict.kind == storage::FaultVerdict::Kind::Ok &&
              rng_.uniform() < rule->probability) {
            verdict.kind = storage::FaultVerdict::Kind::TransientError;
          }
          break;
        case FaultRule::Kind::Slow:
          verdict.slowFactor = std::max(verdict.slowFactor, rule->factor);
          break;
        case FaultRule::Kind::Down:
          break;  // handled above
      }
    }
    return verdict;
  }

  const storage::RetryPolicy& policy() const override {
    return owner_.plan_.policy;
  }

  double backoffDraw() override { return rng_.uniform(); }

  void noteRetry(double now, double stallSec) override {
    ++owner_.accounting_.retries;
    owner_.accounting_.stallSeconds += stallSec;
    owner_.record(now, "retry", target_, stallSec);
  }

  void noteExhausted(double now) override {
    ++owner_.accounting_.exhausted;
    owner_.record(now, "exhausted", target_, 0.0);
  }

 private:
  FaultInjector& owner_;
  std::string target_;
  util::Rng rng_;
  std::vector<const FaultRule*> rules_;
};

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      seed_(seed),
      master_(seed ^ hashText(plan_.canonicalText())) {}

FaultInjector::~FaultInjector() = default;

void FaultInjector::record(double time, const char* kind,
                           std::string target, double seconds) {
  if (events_.size() >= kMaxEvents) {
    eventsTruncated_ = true;
    return;
  }
  events_.push_back(FaultEvent{time, kind, std::move(target), seconds});
}

std::string FaultInjector::renderEventLog() const {
  std::ostringstream out;
  out << "fault-events v1 plan=" << hashText(plan_.canonicalText())
      << " seed=" << seed_ << "\n";
  for (const FaultEvent& e : events_) {
    out << "t=" << formatDouble(e.time) << " " << e.kind << " " << e.target;
    if (e.seconds != 0.0) out << " stall=" << formatDouble(e.seconds);
    out << "\n";
  }
  if (eventsTruncated_) out << "(truncated at " << kMaxEvents << ")\n";
  return out.str();
}

void FaultInjector::attach(configs::ClusterConfig& config) {
  if (attached_) {
    throw std::logic_error("FaultInjector::attach called twice");
  }
  attached_ = true;
  storage::Topology& topology = *config.topology;
  const std::vector<storage::Disk*> disks = topology.allDisks();
  const std::vector<storage::Node*> nodes = topology.allNodes();
  std::vector<std::size_t> matched(plan_.rules.size(), 0);

  // Ranks place round-robin over the configuration's compute nodes
  // (mpi::Runtime uses the same rule), so a `net ... rank=R` rule lands on
  // the NIC that rank R actually uses.
  auto rankNode = [&](int rank) -> std::size_t {
    if (config.computeNodes.empty()) {
      throw std::invalid_argument("fault plan " + plan_.source +
                                  ": configuration has no compute nodes");
    }
    return config.computeNodes[static_cast<std::size_t>(rank) %
                               config.computeNodes.size()];
  };

  // Deterministic attach order — every disk in topology order, then every
  // node — so the master RNG splits identically for one (plan, seed) no
  // matter the host or thread count.
  for (std::size_t d = 0; d < disks.size(); ++d) {
    auto port = std::make_unique<Port>(*this, disks[d]->params().name,
                                       master_.split());
    for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
      const FaultRule& rule = plan_.rules[r];
      if (rule.target != FaultRule::Target::Disk) continue;
      if (rule.selector == "*" || rule.selector == disks[d]->params().name ||
          indexSelector(rule.selector, 'd', d)) {
        port->addRule(&rule);
        ++matched[r];
      }
    }
    if (port->hasRules()) {
      disks[d]->setFaultPort(port.get());
      ports_.push_back(std::move(port));
    }
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    auto port =
        std::make_unique<Port>(*this, nodes[n]->name(), master_.split());
    for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
      const FaultRule& rule = plan_.rules[r];
      if (rule.target == FaultRule::Target::Node) {
        if (rule.selector == "*" || rule.selector == nodes[n]->name() ||
            indexSelector(rule.selector, 'n', n)) {
          port->addRule(&rule);
          ++matched[r];
        }
      } else if (rule.target == FaultRule::Target::NetRank) {
        if (rankNode(rule.rank) == n) {
          port->addRule(&rule);
          ++matched[r];
        }
      }
    }
    if (port->hasRules()) {
      nodes[n]->setFaultPort(port.get());
      ports_.push_back(std::move(port));
    }
  }

  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    if (matched[r] != 0) continue;
    const FaultRule& rule = plan_.rules[r];
    throw std::invalid_argument(
        plan_.source + ":" + std::to_string(rule.line) + ": selector '" +
        (rule.target == FaultRule::Target::NetRank
             ? "rank=" + std::to_string(rule.rank)
             : rule.selector) +
        "' matches nothing in configuration " + config.name);
  }

  // Recovery wiring on the evaluated mount: the plan's retry policy plus
  // failover accounting.
  storage::RecoveryHooks hooks;
  hooks.policy = &plan_.policy;
  hooks.onFailover = [this](double now, const std::string& from,
                            const std::string& to) {
    ++accounting_.failovers;
    record(now, "failover", from + "->" + to, 0.0);
  };
  topology.fs(config.mount).setRecovery(std::move(hooks));
}

std::shared_ptr<FaultInjector> installFaults(configs::ClusterConfig& config,
                                             const FaultPlan& plan,
                                             std::uint64_t seed) {
  if (plan.empty()) return nullptr;
  auto injector = std::make_shared<FaultInjector>(plan, seed);
  injector->attach(config);
  config.faults = injector;
  return injector;
}

}  // namespace iop::fault
