// An I/O node: the node's CPU, a page cache, and a block device.
//
// Filesystem models route requests here after the network hop; iozone-style
// device benchmarks drive a server directly (local filesystem level).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/blockdev.hpp"
#include "storage/cache.hpp"
#include "storage/network.hpp"

namespace iop::storage {

struct ServerParams {
  double cpuPerRequest = 40.0e-6;  ///< s of CPU per I/O request
  CacheParams cache;
};

class IoServer {
 public:
  IoServer(sim::Engine& engine, Node& node,
           std::unique_ptr<BlockDevice> device, ServerParams params)
      : engine_(engine),
        node_(node),
        params_(params),
        device_(std::move(device)),
        cache_(engine, *device_, params.cache),
        cpu_(engine, 1) {}

  /// Service a write request landing on this server (post-network).
  /// `cause` is the obs activity the request serves (-1 = none); it is
  /// forwarded down through the cache to the device for dependency edges.
  sim::Task<void> handleWrite(std::uint64_t offset, std::uint64_t size,
                              std::int64_t cause = -1);

  /// Service a read request landing on this server (post-network).
  sim::Task<void> handleRead(std::uint64_t offset, std::uint64_t size,
                             std::int64_t cause = -1);

  /// Cheap metadata operation (open/close/stat).
  sim::Task<void> handleMetadata();

  /// fsync: push all dirty cache contents to the device.
  sim::Task<void> sync() { return cache_.flushAll(); }

  Node& node() noexcept { return node_; }
  BlockDevice& device() noexcept { return *device_; }
  PageCache& cache() noexcept { return cache_; }
  const ServerParams& params() const noexcept { return params_; }

  void shutdown() { cache_.shutdown(); }

 private:
  sim::Engine& engine_;
  Node& node_;
  ServerParams params_;
  std::unique_ptr<BlockDevice> device_;
  PageCache cache_;
  sim::Resource cpu_;
};

}  // namespace iop::storage
