// An I/O node: the node's CPU, a page cache, and a block device.
//
// Filesystem models route requests here after the network hop; iozone-style
// device benchmarks drive a server directly (local filesystem level).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/blockdev.hpp"
#include "storage/cache.hpp"
#include "storage/network.hpp"

namespace iop::storage {

struct ServerParams {
  double cpuPerRequest = 40.0e-6;  ///< s of CPU per I/O request
  CacheParams cache;
};

/// Arbitration point in front of a server's data path (QoS, multi-tenant).
/// admit() suspends the request until the arbiter grants it; release()
/// signals completion so the next queued request can be dispatched.  The
/// server only consults the arbiter for requests carrying a tenant-job tag
/// (job >= 0), so untenanted runs are byte-identical with or without one.
class ServerArbiter {
 public:
  virtual ~ServerArbiter() = default;
  virtual sim::Task<void> admit(int job, std::uint64_t bytes, bool isWrite,
                                std::int64_t cause) = 0;
  virtual void release(int job) = 0;
};

class IoServer {
 public:
  IoServer(sim::Engine& engine, Node& node,
           std::unique_ptr<BlockDevice> device, ServerParams params)
      : engine_(engine),
        node_(node),
        params_(params),
        device_(std::move(device)),
        cache_(engine, *device_, params.cache),
        cpu_(engine, 1) {}

  /// Service a write request landing on this server (post-network).
  /// `cause` is the obs activity the request serves (-1 = none); it is
  /// forwarded down through the cache to the device for dependency edges.
  /// `job` is the tenant-job tag of the issuing client node (-1 = none);
  /// tagged requests pass through the arbiter when one is installed.
  sim::Task<void> handleWrite(std::uint64_t offset, std::uint64_t size,
                              std::int64_t cause = -1, int job = -1);

  /// Service a read request landing on this server (post-network).
  sim::Task<void> handleRead(std::uint64_t offset, std::uint64_t size,
                             std::int64_t cause = -1, int job = -1);

  /// Cheap metadata operation (open/close/stat).
  sim::Task<void> handleMetadata();

  /// fsync: push all dirty cache contents to the device.
  sim::Task<void> sync() { return cache_.flushAll(); }

  Node& node() noexcept { return node_; }
  BlockDevice& device() noexcept { return *device_; }
  PageCache& cache() noexcept { return cache_; }
  const ServerParams& params() const noexcept { return params_; }

  void shutdown() { cache_.shutdown(); }

  /// Install / detach the QoS arbiter (null = none; the default).  Only
  /// requests with a tenant-job tag consult it — see ServerArbiter.
  void setArbiter(ServerArbiter* arbiter) noexcept { arbiter_ = arbiter; }
  ServerArbiter* arbiter() const noexcept { return arbiter_; }

 private:
  sim::Engine& engine_;
  Node& node_;
  ServerParams params_;
  std::unique_ptr<BlockDevice> device_;
  PageCache cache_;
  sim::Resource cpu_;
  ServerArbiter* arbiter_ = nullptr;
};

}  // namespace iop::storage
