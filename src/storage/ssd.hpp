// Solid-state device model.
//
// Unlike the rotational Disk, an SSD pays no positioning time: random and
// sequential access cost the same.  Internal parallelism is modeled as
// `channels` independent flash channels striped at `channelStripe` —
// large requests engage all channels, small ones a single channel — and
// steady-state garbage collection shows up as a write-amplification
// factor on the media time of writes.
//
// Useful for what-if studies on top of the paper's methodology: replace a
// configuration's RAID with an SSD and re-estimate an application's I/O
// time from its unchanged model (bench/tabx_ssd_whatif).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "storage/blockdev.hpp"
#include "storage/disk.hpp"

namespace iop::storage {

struct SsdParams {
  std::string name = "ssd";
  double readBandwidth = 500.0e6;   ///< bytes/s, all channels combined
  double writeBandwidth = 430.0e6;
  double readLatency = 60.0e-6;     ///< per-request, s
  double writeLatency = 25.0e-6;
  int channels = 4;
  std::uint64_t channelStripe = 64ULL << 10;
  /// Steady-state GC write amplification (media bytes per payload byte).
  double writeAmplification = 1.3;
};

class Ssd final : public BlockDevice {
 public:
  Ssd(sim::Engine& engine, SsdParams params);

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

  const SsdParams& params() const noexcept { return params_; }

 private:
  sim::Engine& engine_;
  SsdParams params_;
  /// Flash channels reuse the Disk machinery with zero positioning time;
  /// their counters make the monitor and conservation checks work
  /// unchanged.
  std::vector<std::unique_ptr<Disk>> channels_;
};

}  // namespace iop::storage
