// Solid-state device model.
//
// Unlike the rotational Disk, an SSD pays no positioning time: random and
// sequential access cost the same.  Internal parallelism is modeled as
// `channels` independent flash channels striped at `channelStripe` —
// large requests engage all channels, small ones a single channel — and
// steady-state garbage collection shows up as a write-amplification
// factor on the media time of writes.
//
// Useful for what-if studies on top of the paper's methodology: replace a
// configuration's RAID with an SSD and re-estimate an application's I/O
// time from its unchanged model (bench/tabx_ssd_whatif).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/blockdev.hpp"
#include "storage/disk.hpp"

namespace iop::storage {

struct SsdParams {
  std::string name = "ssd";
  double readBandwidth = 500.0e6;   ///< bytes/s, all channels combined
  double writeBandwidth = 430.0e6;
  double readLatency = 60.0e-6;     ///< per-request, s
  double writeLatency = 25.0e-6;
  int channels = 4;
  std::uint64_t channelStripe = 64ULL << 10;
  /// Steady-state GC write amplification (media bytes per payload byte).
  double writeAmplification = 1.3;
};

class Ssd final : public BlockDevice {
 public:
  Ssd(sim::Engine& engine, SsdParams params);

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

  const SsdParams& params() const noexcept { return params_; }

 private:
  sim::Engine& engine_;
  SsdParams params_;
  /// Flash channels reuse the Disk machinery with zero positioning time;
  /// their counters make the monitor and conservation checks work
  /// unchanged.
  std::vector<std::unique_ptr<Disk>> channels_;
};

/// Burst-buffer staging tier (bbThemis-style what-if): a bounded SSD
/// capacity that absorbs writes at flash speed and drains them to the
/// backing store in the background.
struct BurstBufferParams {
  SsdParams ssd;  ///< the staging device
  std::uint64_t capacityBytes = 8ULL << 30;
};

/// Absorb-and-drain write staging in front of a slower backing tier.
///
/// absorb() pays the staging SSD's write cost (blocking only when the
/// bounded capacity is full of undrained data), then a background drainer
/// reads each segment back from flash and hands it to `drain` — typically
/// a filesystem write to the disk tier.  Requests larger than the whole
/// capacity spill: they bypass staging and go straight to `drain`.
///
/// Lifecycle mirrors PageCache: the constructor spawns the drainer; call
/// flush() to wait for a full drain and shutdown() to let it exit so
/// Engine::run() completes.
class BurstBuffer {
 public:
  using DrainFn = std::function<sim::Task<void>(
      int fileId, std::uint64_t offset, std::uint64_t size,
      std::int64_t cause)>;

  BurstBuffer(sim::Engine& engine, BurstBufferParams params, DrainFn drain);

  /// Stage a write (or spill it when it cannot fit at all).
  sim::Task<void> absorb(int fileId, std::uint64_t offset,
                         std::uint64_t size, std::int64_t cause = -1);

  /// Block until every staged byte reached the backing store.
  sim::Task<void> flush();

  /// Tell the drainer to exit once drained.  Idempotent.
  void shutdown();

  std::uint64_t stagedBytes() const noexcept { return stagedBytes_; }
  std::uint64_t absorbedBytes() const noexcept { return absorbedBytes_; }
  std::uint64_t spilledBytes() const noexcept { return spilledBytes_; }
  std::uint64_t drainedBytes() const noexcept { return drainedBytes_; }
  const BurstBufferParams& params() const noexcept { return params_; }

 private:
  struct Segment {
    int fileId = 0;
    std::uint64_t fileOffset = 0;   ///< backing-store destination
    std::uint64_t stageOffset = 0;  ///< where the bytes sit on flash
    std::uint64_t size = 0;
    std::int64_t cause = -1;
  };

  sim::Task<void> drainerLoop();

  sim::Engine& engine_;
  BurstBufferParams params_;
  DrainFn drain_;
  Ssd staging_;
  std::deque<Segment> queue_;
  std::uint64_t stageCursor_ = 0;  ///< rolling flash offset (wraps)
  std::uint64_t stagedBytes_ = 0;
  std::uint64_t absorbedBytes_ = 0;
  std::uint64_t spilledBytes_ = 0;
  std::uint64_t drainedBytes_ = 0;
  bool draining_ = false;
  bool shutdown_ = false;
  sim::CondVar itemsCv_;  ///< drainer waits for work
  sim::CondVar spaceCv_;  ///< absorb waits for staging space
  sim::CondVar idleCv_;   ///< flush waits for full drain
};

}  // namespace iop::storage
