// Fault-injection hook points for the storage and network layers.
//
// The storage stack stays ignorant of fault *plans* (src/fault parses and
// schedules those); it only knows how to consult an abstract FaultPort
// before each device/NIC attempt and how to recover: bounded retry with
// exponential backoff + jitter, a per-attempt timeout while a target is
// down, and an IoFault once retries are exhausted.  A null port is the
// fast path — no RNG draws, no extra awaits, bit-identical behaviour to a
// build without fault injection (the zero-perturbation gate).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace iop::storage {

enum class IoOp;  // disk.hpp

/// Recovery knobs shared by every layer that retries (disk arm, NIC
/// transfer, striped-FS failover).  One instance per fault plan; the
/// `policy` directive in a plan overrides fields.
struct RetryPolicy {
  double timeoutSec = 0.5;    ///< charged per attempt against a down target
  int maxRetries = 8;         ///< retries after the first attempt
  double backoffBaseSec = 2.0e-3;  ///< first retry delay (doubles per retry)
  double backoffMaxSec = 0.5;      ///< exponential backoff cap
  double jitter = 0.25;       ///< +/- fraction of the backoff, seeded
  bool failover = true;       ///< striped FS may retarget surviving servers
};

/// EIO in simulation form: an operation that exhausted its retries.  The
/// target names the device/NIC that failed so blame tables and failover
/// logs stay readable.
class IoFault : public std::runtime_error {
 public:
  IoFault(std::string target, const std::string& what)
      : std::runtime_error(what), target_(std::move(target)) {}
  const std::string& target() const noexcept { return target_; }

 private:
  std::string target_;
};

/// What the injector decided about one attempt.
struct FaultVerdict {
  enum class Kind {
    Ok,              ///< proceed (possibly slowed)
    TransientError,  ///< this attempt fails fast (media error, dropped RPC)
    Down,            ///< target is offline; the attempt burns the timeout
  };
  Kind kind = Kind::Ok;
  double slowFactor = 1.0;  ///< >= 1; straggler/latency-spike multiplier
};

/// Per-target hook installed by fault::FaultInjector.  All methods are
/// called from simulation coroutines (single-threaded per engine).
class FaultPort {
 public:
  virtual ~FaultPort() = default;

  /// Consulted immediately before each attempt at sim time `now`.
  virtual FaultVerdict onAttempt(double now, IoOp op,
                                 std::uint64_t bytes) = 0;

  virtual const RetryPolicy& policy() const = 0;

  /// Deterministic uniform draw in [0, 1) from the port's private seeded
  /// stream; consumed only for backoff jitter on failed attempts.
  virtual double backoffDraw() = 0;

  /// Accounting: a failed attempt that will be retried after `stallSec`.
  virtual void noteRetry(double now, double stallSec) = 0;

  /// Accounting: retries exhausted; an IoFault is about to be thrown.
  virtual void noteExhausted(double now) = 0;
};

/// Backoff before retry number `attempt` (0-based): exponential growth
/// capped at backoffMaxSec, with seeded jitter spreading retries so lock-
/// step clients do not re-collide.  `draw` is uniform in [0, 1).
double backoffDelay(const RetryPolicy& policy, int attempt, double draw);

}  // namespace iop::storage
