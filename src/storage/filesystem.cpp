#include "storage/filesystem.hpp"

#include <algorithm>

#include "sim/sync.hpp"

namespace iop::storage {

double FileSystem::idealDeviceBandwidth(IoOp op) {
  double sum = 0;
  for (IoServer* s : dataServers()) sum += s->device().idealBandwidth(op);
  return sum;
}

std::uint64_t FileSystem::fileBase(int fileId) {
  auto [it, inserted] = fileBases_.emplace(fileId, nextBase_);
  if (inserted) nextBase_ += kFileWindow;
  return it->second;
}

// ---------------------------------------------------------------------- NFS

sim::Task<void> NfsFS::write(Node& client, int fileId, std::uint64_t offset,
                             std::uint64_t size, std::int64_t cause) {
  const std::uint64_t base = fileBase(fileId);
  std::uint64_t cursor = 0;
  while (cursor < size) {
    const std::uint64_t chunk = std::min(size - cursor, params_.rpcSize);
    co_await engine_.delay(params_.clientPerRpcOverhead);
    co_await transfer(engine_, client, server_.node(), chunk, cause);
    co_await server_.handleWrite(base + offset + cursor, chunk, cause,
                                 client.tenantJob());
    cursor += chunk;
  }
}

sim::Task<void> NfsFS::read(Node& client, int fileId, std::uint64_t offset,
                            std::uint64_t size, std::int64_t cause) {
  const std::uint64_t base = fileBase(fileId);
  std::uint64_t cursor = 0;
  while (cursor < size) {
    const std::uint64_t chunk = std::min(size - cursor, params_.rpcSize);
    co_await engine_.delay(params_.clientPerRpcOverhead);
    // Request RPC to the server, data response back.
    co_await transfer(engine_, client, server_.node(), 256, cause);
    co_await server_.handleRead(base + offset + cursor, chunk, cause,
                                client.tenantJob());
    co_await transfer(engine_, server_.node(), client, chunk, cause);
    cursor += chunk;
  }
}

sim::Task<void> NfsFS::metadataOp(Node& client, std::int64_t cause) {
  co_await transfer(engine_, client, server_.node(), 256, cause);
  co_await server_.handleMetadata();
  co_await transfer(engine_, server_.node(), client, 256, cause);
}

std::string NfsFS::describe() const {
  return "nfs(server=" + server_.node().name() +
         ", dev=" + server_.device().describe() + ")";
}

// ------------------------------------------------------------------ Striped

StripedFS::StripedFS(sim::Engine& engine, std::vector<IoServer*> dataServers,
                     IoServer* metadataServer, Params params)
    : FileSystem(engine),
      dataServers_(std::move(dataServers)),
      metadataServer_(metadataServer),
      params_(params) {}

int StripedFS::effectiveStripeCount() const noexcept {
  const int n = static_cast<int>(dataServers_.size());
  if (params_.stripeCount <= 0 || params_.stripeCount > n) return n;
  return params_.stripeCount;
}

int StripedFS::firstServer(int fileId) const noexcept {
  return fileId % static_cast<int>(dataServers_.size());
}

sim::Task<void> StripedFS::striped(Node& client, int fileId,
                                   std::uint64_t offset, std::uint64_t size,
                                   IoOp op, std::int64_t cause) {
  const std::uint64_t base = fileBase(fileId);
  const int count = effectiveStripeCount();
  const int first = firstServer(fileId);
  const int total = static_cast<int>(dataServers_.size());

  struct Slice {
    std::uint64_t firstOffset = 0;
    std::uint64_t bytes = 0;
    bool touched = false;
  };
  std::vector<Slice> slices(static_cast<std::size_t>(count));

  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    const std::uint64_t stripe = cursor / params_.stripeUnit;
    const std::uint64_t within = cursor % params_.stripeUnit;
    const std::uint64_t chunk =
        std::min(end - cursor, params_.stripeUnit - within);
    const std::size_t idx =
        static_cast<std::size_t>(stripe % static_cast<std::uint64_t>(count));
    const std::uint64_t serverOffset =
        base + (stripe / static_cast<std::uint64_t>(count)) *
                   params_.stripeUnit +
        within;
    auto& slice = slices[idx];
    if (!slice.touched) {
      slice.firstOffset = serverOffset;
      slice.touched = true;
    }
    slice.bytes += chunk;
    cursor += chunk;
  }

  std::vector<sim::Task<void>> ops;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    if (!slices[i].touched) continue;
    const std::size_t serverIdx = static_cast<std::size_t>(
        (first + static_cast<int>(i)) % total);
    ops.push_back(
        recovery_.policy != nullptr
            ? perServerWithFailover(client, serverIdx,
                                    slices[i].firstOffset, slices[i].bytes,
                                    op, cause)
            : perServer(client, *dataServers_[serverIdx],
                        slices[i].firstOffset, slices[i].bytes, op, cause));
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

sim::Task<void> StripedFS::perServerWithFailover(
    Node& client, std::size_t serverIdx, std::uint64_t offset,
    std::uint64_t size, IoOp op, std::int64_t cause) {
  // Failover models replica redirection cost in *time* only: the slice's
  // server-local offsets are replayed verbatim on the replacement, which
  // keeps sequentiality modelling intact without tracking placement.
  const std::size_t total = dataServers_.size();
  std::size_t tried = 0;
  std::size_t idx = serverIdx;
  for (;;) {
    std::string failedNode;
    try {
      co_await perServer(client, *dataServers_[idx], offset, size, op,
                         cause);
      co_return;
    } catch (const IoFault&) {
      ++tried;
      if (!recovery_.policy->failover || tried >= total) throw;
      failedNode = dataServers_[idx]->node().name();
    }
    idx = (idx + 1) % total;
    if (recovery_.onFailover) {
      recovery_.onFailover(engine_.now(), failedNode,
                           dataServers_[idx]->node().name());
    }
  }
}

sim::Task<void> StripedFS::perServer(Node& client, IoServer& server,
                                     std::uint64_t offset, std::uint64_t size,
                                     IoOp op, std::int64_t cause) {
  std::uint64_t cursor = 0;
  while (cursor < size) {
    const std::uint64_t chunk = std::min(size - cursor, params_.rpcSize);
    co_await engine_.delay(params_.clientPerRpcOverhead);
    if (op == IoOp::Write) {
      co_await transfer(engine_, client, server.node(), chunk, cause);
      co_await server.handleWrite(offset + cursor, chunk, cause,
                                  client.tenantJob());
    } else {
      co_await transfer(engine_, client, server.node(), 256, cause);
      co_await server.handleRead(offset + cursor, chunk, cause,
                                 client.tenantJob());
      co_await transfer(engine_, server.node(), client, chunk, cause);
    }
    cursor += chunk;
  }
}

sim::Task<void> StripedFS::write(Node& client, int fileId,
                                 std::uint64_t offset, std::uint64_t size,
                                 std::int64_t cause) {
  return striped(client, fileId, offset, size, IoOp::Write, cause);
}

sim::Task<void> StripedFS::read(Node& client, int fileId,
                                std::uint64_t offset, std::uint64_t size,
                                std::int64_t cause) {
  return striped(client, fileId, offset, size, IoOp::Read, cause);
}

sim::Task<void> StripedFS::metadataOp(Node& client, std::int64_t cause) {
  IoServer* mds = metadataServer_ ? metadataServer_ : dataServers_.front();
  co_await transfer(engine_, client, mds->node(), 256, cause);
  co_await mds->handleMetadata();
  co_await transfer(engine_, mds->node(), client, 256, cause);
}

std::vector<IoServer*> StripedFS::servers() {
  std::vector<IoServer*> out = dataServers_;
  if (metadataServer_ != nullptr) {
    if (std::find(out.begin(), out.end(), metadataServer_) == out.end()) {
      out.push_back(metadataServer_);
    }
  }
  return out;
}

std::string StripedFS::describe() const {
  return "striped(" + std::to_string(dataServers_.size()) +
         " servers, stripe=" + std::to_string(params_.stripeUnit) +
         ", count=" + std::to_string(effectiveStripeCount()) + ")";
}

}  // namespace iop::storage
