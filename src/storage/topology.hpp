// Topology: the complete description of one "I/O configuration" in the
// paper's sense — compute nodes, I/O nodes, their devices and caches, and
// the filesystems mounted on top (Table VI / Table VII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "storage/filesystem.hpp"
#include "storage/network.hpp"
#include "storage/server.hpp"

namespace iop::storage {

class Topology {
 public:
  explicit Topology(sim::Engine& engine) : engine_(engine) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  sim::Engine& engine() noexcept { return engine_; }

  /// Add a node (compute or I/O); returns a stable reference.
  Node& addNode(const std::string& name, LinkParams link);

  /// Attach an I/O server (device + cache) to a node.
  IoServer& addServer(Node& node, std::unique_ptr<BlockDevice> device,
                      ServerParams params);

  /// Mount a filesystem under a name ("/raid/raid5", "/mnt/pvfs2", ...).
  FileSystem& mount(const std::string& mountPoint,
                    std::unique_ptr<FileSystem> fs);

  FileSystem& fs(const std::string& mountPoint);
  Node& node(std::size_t index);
  std::size_t nodeCount() const noexcept { return nodes_.size(); }
  const std::vector<std::unique_ptr<IoServer>>& ioServers() const noexcept {
    return servers_;
  }

  /// All disks of all servers (for monitoring).
  std::vector<Disk*> allDisks();

  /// All nodes, compute and I/O (for network fault injection).
  std::vector<Node*> allNodes();

  /// Stop background cache flushers so Engine::run() can complete; call
  /// once the workload is done (the MPI runtime does this automatically).
  void shutdown();

  /// Drop all servers' clean cached data (like drop_caches before a
  /// benchmark pass).
  void dropCaches();

  /// Human-readable inventory.
  std::string describe() const;

 private:
  sim::Engine& engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<IoServer>> servers_;
  std::map<std::string, std::unique_ptr<FileSystem>> mounts_;
};

}  // namespace iop::storage
