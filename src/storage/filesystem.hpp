// Filesystem models: local, NFS-like single-server, and striped parallel
// (PVFS2/Lustre-like).
//
// A filesystem maps (fileId, file offset) onto device offsets of one or
// more I/O servers and charges the network + server costs of getting the
// bytes there.  File extents are allocated lazily: each fileId receives a
// large contiguous window per server, so within-file sequentiality on the
// client translates into sequential device access — matching how extent
// allocators behave for the large files of scientific workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/faults.hpp"
#include "storage/network.hpp"
#include "storage/server.hpp"

namespace iop::storage {

/// Recovery wiring installed by fault::FaultInjector: the retry policy of
/// the active fault plan (null = no plan attached, take the unmodified
/// fast path) and a callback for failover accounting.
struct RecoveryHooks {
  const RetryPolicy* policy = nullptr;
  /// (sim time, failed server node, replacement server node)
  std::function<void(double, const std::string&, const std::string&)>
      onFailover;
};

class FileSystem {
 public:
  explicit FileSystem(sim::Engine& engine) : engine_(engine) {}
  virtual ~FileSystem() = default;

  /// `cause` is the obs activity the request serves (-1 = none); it is
  /// forwarded through the network and server layers for dependency edges.
  /// Defaults live on these base declarations only.
  virtual sim::Task<void> write(Node& client, int fileId,
                                std::uint64_t offset, std::uint64_t size,
                                std::int64_t cause = -1) = 0;
  virtual sim::Task<void> read(Node& client, int fileId,
                               std::uint64_t offset, std::uint64_t size,
                               std::int64_t cause = -1) = 0;

  /// Metadata round-trip (open/close/stat).
  virtual sim::Task<void> metadataOp(Node& client,
                                     std::int64_t cause = -1) = 0;

  /// Servers backing this filesystem (for peak analysis + monitoring).
  virtual std::vector<IoServer*> servers() = 0;

  /// Servers that hold file data (excludes a dedicated metadata server).
  virtual std::vector<IoServer*> dataServers() { return servers(); }

  /// Sum of the data devices' ideal streaming bandwidth — the
  /// "devices in parallel, no other components" quantity behind the
  /// paper's eq. (4).
  double idealDeviceBandwidth(IoOp op);

  virtual std::string describe() const = 0;

  /// Attach (or detach, with a default-constructed value) recovery wiring.
  void setRecovery(RecoveryHooks hooks) { recovery_ = std::move(hooks); }
  const RecoveryHooks& recovery() const noexcept { return recovery_; }

 protected:
  RecoveryHooks recovery_;
  /// Per-server window base for a file; lazily assigns a fresh window.
  std::uint64_t fileBase(int fileId);

  sim::Engine& engine_;

 private:
  static constexpr std::uint64_t kFileWindow = 1ULL << 40;  // 1 TiB
  std::map<int, std::uint64_t> fileBases_;
  std::uint64_t nextBase_ = 0;
};

/// All data on one server reached over the network with fixed-size RPCs
/// (NFSv3: wsize/rsize chunking, synchronous-ish request/response reads,
/// server-side write-back caching).  Also models a purely local filesystem
/// when the client *is* the server node (the network layer then charges a
/// memory copy only).
struct NfsParams {
  std::uint64_t rpcSize = 1ULL << 20;  ///< wsize/rsize
  double clientPerRpcOverhead = 120.0e-6;
};

class NfsFS final : public FileSystem {
 public:
  using Params = NfsParams;

  NfsFS(sim::Engine& engine, IoServer& server, Params params = {})
      : FileSystem(engine), server_(server), params_(params) {}

  sim::Task<void> write(Node& client, int fileId, std::uint64_t offset,
                        std::uint64_t size, std::int64_t cause = -1) override;
  sim::Task<void> read(Node& client, int fileId, std::uint64_t offset,
                       std::uint64_t size, std::int64_t cause = -1) override;
  sim::Task<void> metadataOp(Node& client, std::int64_t cause = -1) override;
  std::vector<IoServer*> servers() override { return {&server_}; }
  std::string describe() const override;

 private:
  IoServer& server_;
  Params params_;
};

/// Parallel filesystem: files striped round-robin over N data servers
/// (PVFS2 I/O nodes or Lustre OSSes) with a metadata server.
struct StripedParams {
  std::uint64_t stripeUnit = 64ULL << 10;  ///< PVFS2 default 64 KB
  std::uint64_t rpcSize = 1ULL << 20;
  double clientPerRpcOverhead = 120.0e-6;
  /// Servers actually used per file (Lustre stripe_count); 0 = all.
  int stripeCount = 0;
};

class StripedFS final : public FileSystem {
 public:
  using Params = StripedParams;

  StripedFS(sim::Engine& engine, std::vector<IoServer*> dataServers,
            IoServer* metadataServer, Params params);

  sim::Task<void> write(Node& client, int fileId, std::uint64_t offset,
                        std::uint64_t size, std::int64_t cause = -1) override;
  sim::Task<void> read(Node& client, int fileId, std::uint64_t offset,
                       std::uint64_t size, std::int64_t cause = -1) override;
  sim::Task<void> metadataOp(Node& client, std::int64_t cause = -1) override;
  std::vector<IoServer*> servers() override;
  std::vector<IoServer*> dataServers() override { return dataServers_; }
  std::string describe() const override;

 private:

  /// Split [offset, offset+size) into per-server aggregated slices and move
  /// them concurrently.
  sim::Task<void> striped(Node& client, int fileId, std::uint64_t offset,
                          std::uint64_t size, IoOp op, std::int64_t cause);
  sim::Task<void> perServer(Node& client, IoServer& server,
                            std::uint64_t offset, std::uint64_t size,
                            IoOp op, std::int64_t cause);
  /// perServer plus graceful degradation: on IoFault, retarget the slice
  /// at the next surviving data server (when the active recovery policy
  /// allows failover), else rethrow.  Only instantiated when a fault plan
  /// is attached, so healthy runs keep the exact legacy task tree.
  sim::Task<void> perServerWithFailover(Node& client, std::size_t serverIdx,
                                        std::uint64_t offset,
                                        std::uint64_t size, IoOp op,
                                        std::int64_t cause);
  int effectiveStripeCount() const noexcept;
  /// First server index for a file (round-robin placement by fileId).
  int firstServer(int fileId) const noexcept;

  std::vector<IoServer*> dataServers_;
  IoServer* metadataServer_;
  Params params_;
};

}  // namespace iop::storage
