#include "storage/ssd.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sync.hpp"

namespace iop::storage {

Ssd::Ssd(sim::Engine& engine, SsdParams params)
    : engine_(engine), params_(std::move(params)) {
  if (params_.channels < 1) {
    throw std::invalid_argument("SSD needs at least one channel");
  }
  if (params_.channelStripe == 0) {
    throw std::invalid_argument("channel stripe must be > 0");
  }
  if (params_.writeAmplification < 1.0) {
    throw std::invalid_argument("write amplification must be >= 1");
  }
  for (int c = 0; c < params_.channels; ++c) {
    DiskParams dp;
    dp.name = params_.name + "-ch" + std::to_string(c);
    dp.seqReadBw = params_.readBandwidth / params_.channels;
    dp.seqWriteBw = params_.writeBandwidth / params_.channels /
                    params_.writeAmplification;
    dp.positionTime = 0;  // no seeks: random == sequential
    dp.perRequestOverhead = 0;  // charged once per request below
    channels_.push_back(std::make_unique<Disk>(engine, dp));
  }
}

sim::Task<void> Ssd::access(std::uint64_t offset, std::uint64_t size,
                            IoOp op, std::int64_t cause) {
  // Per-request controller latency, then the payload striped over the
  // flash channels (aggregated per channel, like a RAID0 row).
  co_await engine_.delay(op == IoOp::Read ? params_.readLatency
                                          : params_.writeLatency);
  const std::size_t n = channels_.size();
  struct Slice {
    std::uint64_t firstOffset = 0;
    std::uint64_t bytes = 0;
    bool touched = false;
  };
  std::vector<Slice> slices(n);
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    const std::uint64_t stripe = cursor / params_.channelStripe;
    const std::uint64_t within = cursor % params_.channelStripe;
    const std::uint64_t chunk =
        std::min(end - cursor, params_.channelStripe - within);
    auto& slice = slices[static_cast<std::size_t>(stripe % n)];
    if (!slice.touched) {
      slice.firstOffset = (stripe / n) * params_.channelStripe + within;
      slice.touched = true;
    }
    slice.bytes += chunk;
    cursor += chunk;
  }
  std::vector<sim::Task<void>> ops;
  for (std::size_t c = 0; c < n; ++c) {
    if (slices[c].touched) {
      ops.push_back(channels_[c]->access(slices[c].firstOffset,
                                         slices[c].bytes, op, cause));
    }
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

void Ssd::collectDisks(std::vector<Disk*>& out) {
  for (auto& c : channels_) out.push_back(c.get());
}

double Ssd::idealBandwidth(IoOp op) const noexcept {
  return op == IoOp::Read
             ? params_.readBandwidth
             : params_.writeBandwidth / params_.writeAmplification;
}

std::string Ssd::describe() const {
  return "ssd(" + params_.name + ", " + std::to_string(params_.channels) +
         " channels)";
}

// ------------------------------------------------------------- BurstBuffer

BurstBuffer::BurstBuffer(sim::Engine& engine, BurstBufferParams params,
                         DrainFn drain)
    : engine_(engine),
      params_(std::move(params)),
      drain_(std::move(drain)),
      staging_(engine, params_.ssd),
      itemsCv_(engine),
      spaceCv_(engine),
      idleCv_(engine) {
  if (params_.capacityBytes == 0) {
    throw std::invalid_argument("burst buffer capacity must be > 0");
  }
  if (!drain_) {
    throw std::invalid_argument("burst buffer needs a drain function");
  }
  engine_.spawn(drainerLoop());
}

sim::Task<void> BurstBuffer::absorb(int fileId, std::uint64_t offset,
                                    std::uint64_t size, std::int64_t cause) {
  if (size == 0) co_return;
  if (size > params_.capacityBytes) {
    // Can never fit: spill straight to the backing store, synchronously.
    spilledBytes_ += size;
    co_await drain_(fileId, offset, size, cause);
    co_return;
  }
  while (stagedBytes_ + size > params_.capacityBytes) {
    co_await spaceCv_.wait();
  }
  const std::uint64_t stageOffset = stageCursor_ % params_.capacityBytes;
  stageCursor_ += size;
  stagedBytes_ += size;
  absorbedBytes_ += size;
  co_await staging_.access(stageOffset, size, IoOp::Write, cause);
  queue_.push_back(Segment{fileId, offset, stageOffset, size, cause});
  itemsCv_.notifyAll();
}

sim::Task<void> BurstBuffer::drainerLoop() {
  for (;;) {
    while (queue_.empty()) {
      if (shutdown_) co_return;
      co_await itemsCv_.wait();
    }
    const Segment seg = queue_.front();
    queue_.pop_front();
    draining_ = true;
    // Read the bytes back from flash, then hand them to the backing tier.
    // Background drain writes stay causeless, like the page-cache flusher.
    co_await staging_.access(seg.stageOffset, seg.size, IoOp::Read, -1);
    co_await drain_(seg.fileId, seg.fileOffset, seg.size, -1);
    stagedBytes_ -= seg.size;
    drainedBytes_ += seg.size;
    draining_ = false;
    spaceCv_.notifyAll();
    if (queue_.empty()) idleCv_.notifyAll();
  }
}

sim::Task<void> BurstBuffer::flush() {
  while (!queue_.empty() || draining_) {
    co_await idleCv_.wait();
  }
}

void BurstBuffer::shutdown() {
  shutdown_ = true;
  itemsCv_.notifyAll();
}

}  // namespace iop::storage
