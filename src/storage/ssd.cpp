#include "storage/ssd.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sync.hpp"

namespace iop::storage {

Ssd::Ssd(sim::Engine& engine, SsdParams params)
    : engine_(engine), params_(std::move(params)) {
  if (params_.channels < 1) {
    throw std::invalid_argument("SSD needs at least one channel");
  }
  if (params_.channelStripe == 0) {
    throw std::invalid_argument("channel stripe must be > 0");
  }
  if (params_.writeAmplification < 1.0) {
    throw std::invalid_argument("write amplification must be >= 1");
  }
  for (int c = 0; c < params_.channels; ++c) {
    DiskParams dp;
    dp.name = params_.name + "-ch" + std::to_string(c);
    dp.seqReadBw = params_.readBandwidth / params_.channels;
    dp.seqWriteBw = params_.writeBandwidth / params_.channels /
                    params_.writeAmplification;
    dp.positionTime = 0;  // no seeks: random == sequential
    dp.perRequestOverhead = 0;  // charged once per request below
    channels_.push_back(std::make_unique<Disk>(engine, dp));
  }
}

sim::Task<void> Ssd::access(std::uint64_t offset, std::uint64_t size,
                            IoOp op, std::int64_t cause) {
  // Per-request controller latency, then the payload striped over the
  // flash channels (aggregated per channel, like a RAID0 row).
  co_await engine_.delay(op == IoOp::Read ? params_.readLatency
                                          : params_.writeLatency);
  const std::size_t n = channels_.size();
  struct Slice {
    std::uint64_t firstOffset = 0;
    std::uint64_t bytes = 0;
    bool touched = false;
  };
  std::vector<Slice> slices(n);
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    const std::uint64_t stripe = cursor / params_.channelStripe;
    const std::uint64_t within = cursor % params_.channelStripe;
    const std::uint64_t chunk =
        std::min(end - cursor, params_.channelStripe - within);
    auto& slice = slices[static_cast<std::size_t>(stripe % n)];
    if (!slice.touched) {
      slice.firstOffset = (stripe / n) * params_.channelStripe + within;
      slice.touched = true;
    }
    slice.bytes += chunk;
    cursor += chunk;
  }
  std::vector<sim::Task<void>> ops;
  for (std::size_t c = 0; c < n; ++c) {
    if (slices[c].touched) {
      ops.push_back(channels_[c]->access(slices[c].firstOffset,
                                         slices[c].bytes, op, cause));
    }
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

void Ssd::collectDisks(std::vector<Disk*>& out) {
  for (auto& c : channels_) out.push_back(c.get());
}

double Ssd::idealBandwidth(IoOp op) const noexcept {
  return op == IoOp::Read
             ? params_.readBandwidth
             : params_.writeBandwidth / params_.writeAmplification;
}

std::string Ssd::describe() const {
  return "ssd(" + params_.name + ", " + std::to_string(params_.channels) +
         " channels)";
}

}  // namespace iop::storage
