#include "storage/faults.hpp"

#include <algorithm>

namespace iop::storage {

double backoffDelay(const RetryPolicy& policy, int attempt, double draw) {
  double delay = policy.backoffBaseSec;
  for (int i = 0; i < attempt && delay < policy.backoffMaxSec; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, policy.backoffMaxSec);
  // draw in [0,1) -> jitter factor in [1 - jitter, 1 + jitter).
  return delay * (1.0 + policy.jitter * (2.0 * draw - 1.0));
}

}  // namespace iop::storage
