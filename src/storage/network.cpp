#include "storage/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/hub.hpp"
#include "storage/disk.hpp"  // IoOp definition for fault-port attempts

namespace iop::storage {

void Node::setDegradation(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("degradation factor must be >= 1");
  }
  degradation_ = factor;
}

LinkParams gigabitEthernet() {
  // 1 Gb/s line rate; ~117 MB/s effective after TCP/IP framing.
  return LinkParams{117.0e6, 60.0e-6, 30.0e-6};
}

LinkParams infiniband20G() {
  // DDR 4x Infiniband: 20 Gb/s signalling, ~1.9 GB/s effective payload.
  return LinkParams{1.9e9, 4.0e-6, 2.0e-6};
}

sim::Task<void> transfer(sim::Engine& engine, Node& src, Node& dst,
                         std::uint64_t bytes, std::int64_t cause) {
  std::int64_t act = -1;
  if (obs::Hub* o = engine.obs(); o != nullptr) {
    if (o->metrics != nullptr) {
      o->metrics
          ->counter(&src == &dst ? "net.loopback_bytes" : "net.bytes")
          .add(static_cast<double>(bytes));
    }
    if (o->edges != nullptr && &src != &dst) {
      act = o->edges->begin(obs::ActKind::Network, -1,
                            src.name() + "->" + dst.name(), engine.now(),
                            bytes, cause);
    }
  }
  if (&src == &dst) {
    // Loopback: a memory copy at a generous in-node rate.
    co_await engine.delay(static_cast<double>(bytes) / 4.0e9);
    co_return;
  }
  co_await src.tx().acquire();
  co_await dst.rx().acquire();
  // Fault injection: either endpoint's port can fail or slow the transfer.
  // With both ports null (the default) this loop body never runs and the
  // path below is bit-identical to an uninstrumented build.
  double slow = 1.0;
  if (src.faultPort() != nullptr || dst.faultPort() != nullptr) {
    int attempt = 0;
    for (;;) {
      FaultVerdict worst{};
      FaultPort* blame = nullptr;
      Node* blameNode = nullptr;
      for (Node* endpoint : {&src, &dst}) {
        FaultPort* port = endpoint->faultPort();
        if (port == nullptr) continue;
        const FaultVerdict v =
            port->onAttempt(engine.now(), IoOp::Write, bytes);
        worst.slowFactor = std::max(worst.slowFactor, v.slowFactor);
        if (static_cast<int>(v.kind) > static_cast<int>(worst.kind)) {
          worst.kind = v.kind;
          blame = port;
          blameNode = endpoint;
        }
      }
      if (worst.kind == FaultVerdict::Kind::Ok) {
        slow = worst.slowFactor;
        break;
      }
      const RetryPolicy& policy = blame->policy();
      const double cost = worst.kind == FaultVerdict::Kind::Down
                              ? policy.timeoutSec
                              : src.link().perMessageOverhead;
      if (attempt >= policy.maxRetries) {
        co_await engine.delay(cost);
        dst.rx().release();
        src.tx().release();
        blame->noteExhausted(engine.now());
        if (act >= 0) {
          if (obs::Hub* o = engine.obs();
              o != nullptr && o->edges != nullptr) {
            o->edges->end(act, engine.now());
          }
        }
        throw IoFault(blameNode->name(),
                      "nic " + blameNode->name() + ": transfer " +
                          src.name() + "->" + dst.name() + " failed after " +
                          std::to_string(attempt + 1) + " attempts");
      }
      const double stall =
          cost + backoffDelay(policy, attempt, blame->backoffDraw());
      co_await engine.delay(stall);
      blame->noteRetry(engine.now(), stall);
      ++attempt;
    }
  }
  const double bw = std::min(src.link().bandwidth, dst.link().bandwidth);
  // A degraded endpoint slows the whole transfer (the path runs at the
  // slowest NIC); loopback copies never touch a NIC and stay unscaled.
  const double degrade =
      std::max(src.degradation(), dst.degradation()) * slow;
  const double t = (src.link().latency + src.link().perMessageOverhead +
                    dst.link().perMessageOverhead +
                    static_cast<double>(bytes) / bw) *
                   degrade;
  co_await engine.delay(t);
  dst.rx().release();
  src.tx().release();
  if (act >= 0) {
    if (obs::Hub* o = engine.obs(); o != nullptr && o->edges != nullptr) {
      o->edges->end(act, engine.now());
    }
  }
}

}  // namespace iop::storage
