#include "storage/server.hpp"

namespace iop::storage {

sim::Task<void> IoServer::handleWrite(std::uint64_t offset,
                                      std::uint64_t size,
                                      std::int64_t cause) {
  co_await cpu_.use(params_.cpuPerRequest);
  co_await cache_.write(offset, size, cause);
}

sim::Task<void> IoServer::handleRead(std::uint64_t offset,
                                     std::uint64_t size, std::int64_t cause) {
  co_await cpu_.use(params_.cpuPerRequest);
  co_await cache_.read(offset, size, cause);
}

sim::Task<void> IoServer::handleMetadata() {
  co_await cpu_.use(params_.cpuPerRequest * 2);
}

}  // namespace iop::storage
