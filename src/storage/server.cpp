#include "storage/server.hpp"

namespace iop::storage {

sim::Task<void> IoServer::handleWrite(std::uint64_t offset,
                                      std::uint64_t size, std::int64_t cause,
                                      int job) {
  const bool gated = arbiter_ != nullptr && job >= 0;
  if (gated) co_await arbiter_->admit(job, size, /*isWrite=*/true, cause);
  try {
    co_await cpu_.use(params_.cpuPerRequest);
    co_await cache_.write(offset, size, cause);
  } catch (...) {
    if (gated) arbiter_->release(job);
    throw;
  }
  if (gated) arbiter_->release(job);
}

sim::Task<void> IoServer::handleRead(std::uint64_t offset, std::uint64_t size,
                                     std::int64_t cause, int job) {
  const bool gated = arbiter_ != nullptr && job >= 0;
  if (gated) co_await arbiter_->admit(job, size, /*isWrite=*/false, cause);
  try {
    co_await cpu_.use(params_.cpuPerRequest);
    co_await cache_.read(offset, size, cause);
  } catch (...) {
    if (gated) arbiter_->release(job);
    throw;
  }
  if (gated) arbiter_->release(job);
}

sim::Task<void> IoServer::handleMetadata() {
  co_await cpu_.use(params_.cpuPerRequest * 2);
}

}  // namespace iop::storage
