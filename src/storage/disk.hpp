// Rotational/solid-state disk model.
//
// A Disk is a single-arm FCFS server.  A request pays:
//   perRequestOverhead                        (controller + command setup)
//   + positionTime  if not sequential w.r.t. the previous request's end
//   + size / bandwidth(op)                    (media transfer)
//
// Sequential detection uses the last accessed end offset with a small
// tolerance window (read-ahead hides small forward jumps).  Counters mirror
// what Linux exposes via /proc/diskstats so the iostat-style monitor
// (src/monitor) can report sectors/s and %util like the paper's Figure 8.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/faults.hpp"

namespace iop::storage {

enum class IoOp { Read, Write };

/// "sector" in the iostat sense.
inline constexpr std::uint64_t kSectorBytes = 512;

struct DiskParams {
  std::string name = "disk";
  double seqReadBw = 100.0e6;   ///< bytes/s sustained sequential read
  double seqWriteBw = 95.0e6;   ///< bytes/s sustained sequential write
  double positionTime = 8.0e-3; ///< s, average seek + rotational latency
  double perRequestOverhead = 0.1e-3;  ///< s, command/controller overhead
  std::uint64_t seqWindow = 512 * 1024;  ///< forward jump still "sequential"
};

/// Cumulative activity counters (monotonic, like /proc/diskstats).
struct DiskCounters {
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t positionEvents = 0;  ///< requests that paid a seek
  std::uint64_t retryEvents = 0;     ///< failed attempts that were retried
  std::uint64_t faultEvents = 0;     ///< requests that exhausted retries

  std::uint64_t sectorsRead() const noexcept {
    return bytesRead / kSectorBytes;
  }
  std::uint64_t sectorsWritten() const noexcept {
    return bytesWritten / kSectorBytes;
  }
};

class Disk {
 public:
  Disk(sim::Engine& engine, DiskParams params)
      : engine_(engine), params_(std::move(params)), arm_(engine, 1) {}

  /// Perform one request; suspends for queueing + service time.  `cause`
  /// is the obs activity that issued the request (-1 = background work,
  /// e.g. cache write-back); used for critical-path dependency edges.
  sim::Task<void> access(std::uint64_t offset, std::uint64_t size, IoOp op,
                         std::int64_t cause = -1);

  /// Pure service time (no queueing) the next `access` with these arguments
  /// would take; used by tests and by analytic peak estimation.
  double serviceTime(std::uint64_t offset, std::uint64_t size,
                     IoOp op) const noexcept;

  const DiskCounters& counters() const noexcept { return counters_; }
  const DiskParams& params() const noexcept { return params_; }

  /// Busy-time integral (seconds of arm activity) up to `asOf`; the monitor
  /// differentiates this for %util.
  double busyIntegral(sim::Time asOf) const { return arm_.busyIntegral(asOf); }

  /// Degradation injection: scale service times by `factor` (>= 1) from
  /// now on — a failing/remapping drive, a rebuilding RAID member, or a
  /// contended virtualized disk.  1 restores full speed.
  void setDegradation(double factor);
  double degradation() const noexcept { return degradation_; }

  /// Fault injection: consult `port` before every attempt (null detaches;
  /// the default).  The port outlives the disk's workload — it is owned by
  /// the fault::FaultInjector attached to the cluster.
  void setFaultPort(FaultPort* port) noexcept { fault_ = port; }
  FaultPort* faultPort() const noexcept { return fault_; }

 private:
  bool isSequential(std::uint64_t offset) const noexcept;

  sim::Engine& engine_;
  DiskParams params_;
  sim::Resource arm_;
  DiskCounters counters_;
  std::uint64_t lastEnd_ = 0;
  bool touched_ = false;
  double degradation_ = 1.0;
  FaultPort* fault_ = nullptr;
  int obsTrack_ = -1;  ///< cached trace track id (lazily registered)
  bool queueWarned_ = false;  ///< saturation warning fired once per disk
};

}  // namespace iop::storage
