// Write-back page cache fronting a block device.
//
// Writes are absorbed at memory speed until the dirty limit, then throttle
// to the background flusher's drain rate — this is what lets an NFS server
// accept a burst at network speed while its disks trail behind, the effect
// visible in the paper's Figure 8 (device activity extending beyond the
// application's I/O phases).  Reads hit resident intervals at memory speed
// and go to the device for the gaps.
//
// Lifecycle: the constructor spawns a flusher process; call shutdown() once
// the workload is finished (Topology::shutdown does this) so the flusher
// drains and exits, letting Engine::run() complete.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/blockdev.hpp"
#include "util/intervals.hpp"

namespace iop::storage {

struct CacheParams {
  bool enabled = true;
  /// Write-through: every write goes to the device synchronously (PVFS2's
  /// trove sync behaviour); reads still hit resident data.
  bool writeThrough = false;
  std::uint64_t sizeBytes = 768ULL << 20;   ///< resident capacity
  double memBandwidth = 2.5e9;              ///< bytes/s copy speed
  double dirtyLimitFraction = 0.4;          ///< of sizeBytes
  std::uint64_t flushChunk = 4ULL << 20;    ///< background write size
};

class PageCache {
 public:
  PageCache(sim::Engine& engine, BlockDevice& device, CacheParams params);

  /// Buffered write: memcpy cost + dirty-throttling; device writes happen
  /// in the background.  `cause` is the obs activity the write serves
  /// (-1 = none); background flusher writes stay causeless.
  sim::Task<void> write(std::uint64_t offset, std::uint64_t size,
                        std::int64_t cause = -1);

  /// Buffered read: resident bytes at memory speed, gaps from the device.
  sim::Task<void> read(std::uint64_t offset, std::uint64_t size,
                       std::int64_t cause = -1);

  /// Block until all dirty data reached the device (fsync semantics).
  sim::Task<void> flushAll();

  /// Tell the flusher to exit once drained.  Idempotent.
  void shutdown();

  /// Drop clean resident data (echo 3 > drop_caches); dirty data is
  /// unaffected.  Used between benchmark passes to defeat reuse.
  void dropClean();

  std::uint64_t dirtyBytes() const noexcept {
    return dirty_.totalBytes() + flushInFlight_;
  }
  std::uint64_t residentBytes() const noexcept {
    return resident_.totalBytes();
  }
  const CacheParams& params() const noexcept { return params_; }

  /// Cumulative accounting for tests/reports.
  std::uint64_t readHitBytes() const noexcept { return readHitBytes_; }
  std::uint64_t readMissBytes() const noexcept { return readMissBytes_; }

  /// True once the backing device exhausted its retries under fault
  /// injection; every subsequent write/read/flush throws IoFault.
  bool failed() const noexcept { return failed_; }

 private:
  sim::Task<void> flusherLoop();
  void evictIfNeeded();
  std::uint64_t dirtyLimit() const noexcept {
    return static_cast<std::uint64_t>(
        params_.dirtyLimitFraction * static_cast<double>(params_.sizeBytes));
  }

  sim::Engine& engine_;
  BlockDevice& device_;
  CacheParams params_;

  util::IntervalSet resident_;
  // FIFO of inserted intervals for eviction.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> fifo_;

  // Dirty byte ranges pending background writes.  An interval set (not a
  // FIFO) so that interleaved small writes from many clients coalesce into
  // the per-region contiguous runs a real page cache flushes; the flusher
  // sweeps offsets in elevator order, which keeps RAID5 rows full.
  util::IntervalSet dirty_;
  std::uint64_t flushCursor_ = 0;
  std::uint64_t flushInFlight_ = 0;

  sim::CondVar dirtyCv_;   // flusher waits for work
  sim::CondVar spaceCv_;   // writers wait for dirty space
  sim::CondVar idleCv_;    // flushAll waits for full drain

  bool shutdown_ = false;

  // Set when the flusher's device write exhausted its retries: the cache
  // is permanently broken, dirty data is lost, and foreground requests
  // surface the stored error instead of touching the dead device.
  bool failed_ = false;
  std::string failedTarget_;
  std::string failedWhat_;

  [[noreturn]] void throwFailed() const;

  std::uint64_t readHitBytes_ = 0;
  std::uint64_t readMissBytes_ = 0;

  void obsNoteRead(std::uint64_t hitBytes, std::uint64_t missBytes);
  void obsSampleDirty();
  std::int64_t obsBegin(std::uint64_t bytes, std::int64_t cause);
  void obsEnd(std::int64_t act);
  int obsTrack_ = -1;          ///< cached trace track id
  double obsNextSample_ = 0;   ///< throttle for the dirty-bytes track
  std::string obsLabel_;       ///< cached activity label
};

}  // namespace iop::storage
