#include "storage/disk.hpp"

#include <stdexcept>

#include "obs/hub.hpp"

namespace iop::storage {

bool Disk::isSequential(std::uint64_t offset) const noexcept {
  if (!touched_) return true;  // first access: treat as positioned
  return offset >= lastEnd_ && offset - lastEnd_ <= params_.seqWindow;
}

double Disk::serviceTime(std::uint64_t offset, std::uint64_t size,
                         IoOp op) const noexcept {
  const double bw =
      op == IoOp::Read ? params_.seqReadBw : params_.seqWriteBw;
  double t = params_.perRequestOverhead + static_cast<double>(size) / bw;
  if (!isSequential(offset)) t += params_.positionTime;
  return t * degradation_;
}

void Disk::setDegradation(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("degradation factor must be >= 1");
  }
  degradation_ = factor;
}

sim::Task<void> Disk::access(std::uint64_t offset, std::uint64_t size,
                             IoOp op) {
  if (obs::Hub* o = engine_.obs(); o != nullptr && o->metrics != nullptr) {
    // Depth seen by this request on arrival: waiters + the one in service.
    o->metrics
        ->histogram("disk.queue_depth", obs::depthBuckets())
        .observe(static_cast<double>(arm_.queueLength() + arm_.inUse()));
  }
  co_await arm_.acquire();
  // Evaluate sequentiality after queueing: the arm position is whatever the
  // previous request left behind.
  const double t = serviceTime(offset, size, op);
  if (!isSequential(offset)) ++counters_.positionEvents;
  lastEnd_ = offset + size;
  touched_ = true;
  if (op == IoOp::Read) {
    ++counters_.readOps;
    counters_.bytesRead += size;
  } else {
    ++counters_.writeOps;
    counters_.bytesWritten += size;
  }
  const double start = engine_.now();
  co_await engine_.delay(t);
  arm_.release();
  if (obs::Hub* o = engine_.obs(); o != nullptr) {
    const bool read = op == IoOp::Read;
    if (o->metrics != nullptr) {
      o->metrics->counter(read ? "disk.bytes_read" : "disk.bytes_written")
          .add(static_cast<double>(size));
    }
    if (o->trace != nullptr) {
      if (obsTrack_ < 0) {
        obsTrack_ = o->trace->track(obs::TrackKind::Device, params_.name);
      }
      o->trace->span(obs::TrackKind::Device, obsTrack_,
                     read ? "read" : "write", "disk", start, engine_.now(),
                     "\"offset\":" + std::to_string(offset) +
                         ",\"bytes\":" + std::to_string(size));
    }
  }
}

}  // namespace iop::storage
