#include "storage/disk.hpp"

#include <stdexcept>

#include "obs/hub.hpp"

namespace iop::storage {

bool Disk::isSequential(std::uint64_t offset) const noexcept {
  if (!touched_) return true;  // first access: treat as positioned
  return offset >= lastEnd_ && offset - lastEnd_ <= params_.seqWindow;
}

double Disk::serviceTime(std::uint64_t offset, std::uint64_t size,
                         IoOp op) const noexcept {
  const double bw =
      op == IoOp::Read ? params_.seqReadBw : params_.seqWriteBw;
  double t = params_.perRequestOverhead + static_cast<double>(size) / bw;
  if (!isSequential(offset)) t += params_.positionTime;
  return t * degradation_;
}

void Disk::setDegradation(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("degradation factor must be >= 1");
  }
  degradation_ = factor;
}

sim::Task<void> Disk::access(std::uint64_t offset, std::uint64_t size,
                             IoOp op, std::int64_t cause) {
  std::int64_t act = -1;
  if (obs::Hub* o = engine_.obs(); o != nullptr) {
    // Depth seen by this request on arrival: waiters + the one in service.
    const int depth = arm_.queueLength() + arm_.inUse();
    if (o->metrics != nullptr) {
      o->metrics->histogram("disk.queue_depth", obs::depthBuckets())
          .observe(static_cast<double>(depth));
    }
    if (depth >= 64 && !queueWarned_ && o->wantsLog(obs::LogLevel::Warn)) {
      queueWarned_ = true;
      o->log->warn("disk", "queue_saturated",
                   "\"disk\":\"" +
                       obs::TraceRecorder::jsonEscape(params_.name) +
                       "\",\"depth\":" + std::to_string(depth) +
                       ",\"sim_time\":" + std::to_string(engine_.now()));
    }
    if (o->edges != nullptr) {
      // The activity opens at arrival, so queue wait is inside it — the
      // critical path sees the latency the *request* experienced.
      act = o->edges->begin(obs::ActKind::Disk, -1, params_.name,
                            engine_.now(), size, cause);
    }
  }
  co_await arm_.acquire();
  // Fault injection: consult the port before each attempt.  The null-port
  // fast path takes the first branch immediately with slowFactor 1.0 —
  // no RNG draws, no extra awaits, bit-identical to an uninstrumented run.
  double slow = 1.0;
  if (fault_ != nullptr) {
    int attempt = 0;
    for (;;) {
      const FaultVerdict verdict = fault_->onAttempt(engine_.now(), op, size);
      if (verdict.kind == FaultVerdict::Kind::Ok) {
        slow = verdict.slowFactor;
        break;
      }
      const RetryPolicy& policy = fault_->policy();
      // A down device burns the full per-attempt timeout; a transient
      // error fails fast after the controller overhead.
      const double cost = verdict.kind == FaultVerdict::Kind::Down
                              ? policy.timeoutSec
                              : params_.perRequestOverhead * degradation_;
      if (attempt >= policy.maxRetries) {
        ++counters_.faultEvents;
        co_await engine_.delay(cost);
        arm_.release();
        fault_->noteExhausted(engine_.now());
        if (obs::Hub* o = engine_.obs(); o != nullptr && o->edges != nullptr) {
          o->edges->end(act, engine_.now());
        }
        throw IoFault(params_.name,
                      "disk " + params_.name + ": I/O error after " +
                          std::to_string(attempt + 1) + " attempts");
      }
      const double stall =
          cost + backoffDelay(policy, attempt, fault_->backoffDraw());
      ++counters_.retryEvents;
      co_await engine_.delay(stall);
      fault_->noteRetry(engine_.now(), stall);
      ++attempt;
    }
  }
  // Evaluate sequentiality after queueing: the arm position is whatever the
  // previous request left behind.
  const double t = serviceTime(offset, size, op);
  if (!isSequential(offset)) ++counters_.positionEvents;
  lastEnd_ = offset + size;
  touched_ = true;
  if (op == IoOp::Read) {
    ++counters_.readOps;
    counters_.bytesRead += size;
  } else {
    ++counters_.writeOps;
    counters_.bytesWritten += size;
  }
  const double start = engine_.now();
  co_await engine_.delay(t * slow);
  arm_.release();
  if (obs::Hub* o = engine_.obs(); o != nullptr) {
    const bool read = op == IoOp::Read;
    if (o->edges != nullptr) o->edges->end(act, engine_.now());
    if (o->metrics != nullptr) {
      o->metrics->counter(read ? "disk.bytes_read" : "disk.bytes_written")
          .add(static_cast<double>(size));
    }
    if (o->trace != nullptr) {
      if (obsTrack_ < 0) {
        obsTrack_ = o->trace->track(obs::TrackKind::Device, params_.name);
      }
      o->trace->span(obs::TrackKind::Device, obsTrack_,
                     read ? "read" : "write", "disk", start, engine_.now(),
                     "\"offset\":" + std::to_string(offset) +
                         ",\"bytes\":" + std::to_string(size));
    }
  }
}

}  // namespace iop::storage
