#include "storage/disk.hpp"

#include <stdexcept>

namespace iop::storage {

bool Disk::isSequential(std::uint64_t offset) const noexcept {
  if (!touched_) return true;  // first access: treat as positioned
  return offset >= lastEnd_ && offset - lastEnd_ <= params_.seqWindow;
}

double Disk::serviceTime(std::uint64_t offset, std::uint64_t size,
                         IoOp op) const noexcept {
  const double bw =
      op == IoOp::Read ? params_.seqReadBw : params_.seqWriteBw;
  double t = params_.perRequestOverhead + static_cast<double>(size) / bw;
  if (!isSequential(offset)) t += params_.positionTime;
  return t * degradation_;
}

void Disk::setDegradation(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("degradation factor must be >= 1");
  }
  degradation_ = factor;
}

sim::Task<void> Disk::access(std::uint64_t offset, std::uint64_t size,
                             IoOp op) {
  co_await arm_.acquire();
  // Evaluate sequentiality after queueing: the arm position is whatever the
  // previous request left behind.
  const double t = serviceTime(offset, size, op);
  if (!isSequential(offset)) ++counters_.positionEvents;
  lastEnd_ = offset + size;
  touched_ = true;
  if (op == IoOp::Read) {
    ++counters_.readOps;
    counters_.bytesRead += size;
  } else {
    ++counters_.writeOps;
    counters_.bytesWritten += size;
  }
  co_await engine_.delay(t);
  arm_.release();
}

}  // namespace iop::storage
