// Cluster nodes and the interconnect model.
//
// Each node has a NIC with separate transmit and receive FCFS channels; a
// transfer occupies src.tx and dst.rx for latency + size/bandwidth.  The
// switch fabric is assumed non-blocking (true for the paper's GbE and
// Infiniband clusters at these scales): endpoint NICs are the bottleneck.
// Acquisition is always tx before rx, which makes cycles — and therefore
// deadlock — impossible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/faults.hpp"

namespace iop::storage {

struct LinkParams {
  double bandwidth = 117.0e6;       ///< bytes/s effective (1 GbE w/ TCP)
  double latency = 60.0e-6;         ///< s one-way
  double perMessageOverhead = 30.0e-6;  ///< s protocol/stack cost
};

/// Preset: 1 Gb Ethernet with TCP overheads (the paper's Aohyper/config C).
LinkParams gigabitEthernet();

/// Preset: 20 Gb/s Infiniband (the paper's Finisterrae).
LinkParams infiniband20G();

class Node {
 public:
  Node(sim::Engine& engine, int id, std::string name, LinkParams link)
      : id_(id),
        name_(std::move(name)),
        link_(link),
        tx_(engine, 1),
        rx_(engine, 1) {}

  int id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const LinkParams& link() const noexcept { return link_; }
  sim::Resource& tx() noexcept { return tx_; }
  sim::Resource& rx() noexcept { return rx_; }

  /// Fault injection: scale every transfer touching this NIC by `factor`
  /// (>= 1; throws below).  Mirrors Disk::setDegradation so regression
  /// gates can cover transfer-bound configurations (--degrade-net).
  void setDegradation(double factor);
  double degradation() const noexcept { return degradation_; }

  /// Fault injection: consult `port` before every transfer touching this
  /// NIC (null detaches; the default).  Crash windows and stragglers from
  /// a fault plan arrive through here.
  void setFaultPort(FaultPort* port) noexcept { fault_ = port; }
  FaultPort* faultPort() const noexcept { return fault_; }

  /// Multi-tenant co-scheduling: which tenant job this node's traffic
  /// belongs to (-1 = untenanted; the default).  Filesystems forward the
  /// tag to the I/O servers so the QoS arbiter can tell jobs apart.
  void setTenantJob(int job) noexcept { tenantJob_ = job; }
  int tenantJob() const noexcept { return tenantJob_; }

 private:
  int id_;
  std::string name_;
  LinkParams link_;
  sim::Resource tx_;
  sim::Resource rx_;
  double degradation_ = 1.0;
  FaultPort* fault_ = nullptr;
  int tenantJob_ = -1;
};

/// Point-to-point transfer of `bytes` from src to dst.  Same-node transfers
/// cost only a memory copy.  `cause` is the obs::EdgeRecorder activity
/// that issued the transfer (-1 = none); it threads causal dependency
/// edges through the storage stack for critical-path analysis.
sim::Task<void> transfer(sim::Engine& engine, Node& src, Node& dst,
                         std::uint64_t bytes, std::int64_t cause = -1);

}  // namespace iop::storage
