// Block-device layer: single disks, RAID arrays, and JBOD concatenation.
//
// Arrays split a logical request into per-member segments and service the
// members concurrently (sim::whenAll), which is what gives RAID its
// bandwidth scaling in the model.  RAID5 additionally models the
// small-write read-modify-write penalty and parity traffic — the reason
// configuration A (RAID5) and configuration B (JBOD) behave differently in
// the paper's Tables IX and X.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace iop::storage {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Service one logical request.  `cause` is the obs activity that issued
  /// it (-1 = background); forwarded to the member disks for dependency
  /// edges.
  virtual sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                                 IoOp op, std::int64_t cause = -1) = 0;

  /// Member disks, for monitoring and peak estimation.
  virtual void collectDisks(std::vector<Disk*>& out) = 0;

  /// Ideal streaming bandwidth (bytes/s) for the op, ignoring latency —
  /// the "devices working in parallel without influence of other
  /// components" number the paper uses for BW_PK reasoning.
  virtual double idealBandwidth(IoOp op) const noexcept = 0;

  virtual std::string describe() const = 0;
};

/// A device backed by one disk.
class SingleDisk final : public BlockDevice {
 public:
  SingleDisk(sim::Engine& engine, DiskParams params)
      : disk_(engine, std::move(params)) {}

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

  Disk& disk() noexcept { return disk_; }

 private:
  Disk disk_;
};

/// RAID0: striping, no redundancy.  A request touching k members issues k
/// concurrent accesses of ~size/k.
class Raid0 final : public BlockDevice {
 public:
  Raid0(sim::Engine& engine, std::vector<DiskParams> members,
        std::uint64_t stripeUnit);

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

 private:
  sim::Engine& engine_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::uint64_t stripeUnit_;
};

/// RAID5: striping with rotating parity over n members.
///
/// Reads behave like RAID0 over n members (parity rotates, so every member
/// holds data).  Writes distinguish:
///  * full-stripe spans: write data + parity concurrently; the parity
///    overhead is a factor n/(n-1) of extra bytes.
///  * partial-stripe edges: read-modify-write, charged as read + write of
///    the touched chunk plus parity read + write.
class Raid5 final : public BlockDevice {
 public:
  Raid5(sim::Engine& engine, std::vector<DiskParams> members,
        std::uint64_t stripeUnit);

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

  std::uint64_t stripeWidth() const noexcept {
    return stripeUnit_ * (disks_.size() - 1);
  }

 private:
  sim::Task<void> writePartial(std::uint64_t offset, std::uint64_t size,
                               std::int64_t cause);

  sim::Engine& engine_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::uint64_t stripeUnit_;
};

/// JBOD-style concatenation: members appended one after another; a request
/// lands on (at most a few) members by address range.  `memberSpan` is the
/// logical size of each member's address window.
class Concat final : public BlockDevice {
 public:
  Concat(sim::Engine& engine, std::vector<DiskParams> members,
         std::uint64_t memberSpan);

  sim::Task<void> access(std::uint64_t offset, std::uint64_t size,
                         IoOp op, std::int64_t cause = -1) override;
  void collectDisks(std::vector<Disk*>& out) override;
  double idealBandwidth(IoOp op) const noexcept override;
  std::string describe() const override;

 private:
  sim::Engine& engine_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::uint64_t memberSpan_;
};

}  // namespace iop::storage
