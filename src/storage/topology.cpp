#include "storage/topology.hpp"

#include <sstream>

namespace iop::storage {

Node& Topology::addNode(const std::string& name, LinkParams link) {
  nodes_.push_back(std::make_unique<Node>(
      engine_, static_cast<int>(nodes_.size()), name, link));
  return *nodes_.back();
}

IoServer& Topology::addServer(Node& node,
                              std::unique_ptr<BlockDevice> device,
                              ServerParams params) {
  servers_.push_back(
      std::make_unique<IoServer>(engine_, node, std::move(device), params));
  return *servers_.back();
}

FileSystem& Topology::mount(const std::string& mountPoint,
                            std::unique_ptr<FileSystem> fs) {
  auto [it, inserted] = mounts_.emplace(mountPoint, std::move(fs));
  if (!inserted) {
    throw std::invalid_argument("mount point already in use: " + mountPoint);
  }
  return *it->second;
}

FileSystem& Topology::fs(const std::string& mountPoint) {
  auto it = mounts_.find(mountPoint);
  if (it == mounts_.end()) {
    throw std::out_of_range("no filesystem mounted at " + mountPoint);
  }
  return *it->second;
}

Node& Topology::node(std::size_t index) {
  if (index >= nodes_.size()) throw std::out_of_range("node index");
  return *nodes_[index];
}

std::vector<Disk*> Topology::allDisks() {
  std::vector<Disk*> out;
  for (auto& s : servers_) s->device().collectDisks(out);
  return out;
}

std::vector<Node*> Topology::allNodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

void Topology::shutdown() {
  for (auto& s : servers_) s->shutdown();
}

void Topology::dropCaches() {
  for (auto& s : servers_) s->cache().dropClean();
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << "topology: " << nodes_.size() << " nodes, " << servers_.size()
      << " I/O servers\n";
  for (const auto& [mountPoint, fs] : mounts_) {
    out << "  " << mountPoint << " -> " << fs->describe() << '\n';
  }
  return out.str();
}

}  // namespace iop::storage
