#include "storage/blockdev.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sync.hpp"

namespace iop::storage {

namespace {

/// Aggregated per-member slice of a striped request.
struct MemberSlice {
  std::uint64_t firstOffset = 0;  ///< member-local offset of first chunk
  std::uint64_t bytes = 0;
  bool touched = false;
};

}  // namespace

// ---------------------------------------------------------------- SingleDisk

sim::Task<void> SingleDisk::access(std::uint64_t offset, std::uint64_t size,
                                   IoOp op, std::int64_t cause) {
  co_await disk_.access(offset, size, op, cause);
}

void SingleDisk::collectDisks(std::vector<Disk*>& out) {
  out.push_back(&disk_);
}

double SingleDisk::idealBandwidth(IoOp op) const noexcept {
  return op == IoOp::Read ? disk_.params().seqReadBw
                          : disk_.params().seqWriteBw;
}

std::string SingleDisk::describe() const {
  return "disk(" + disk_.params().name + ")";
}

// --------------------------------------------------------------------- Raid0

Raid0::Raid0(sim::Engine& engine, std::vector<DiskParams> members,
             std::uint64_t stripeUnit)
    : engine_(engine), stripeUnit_(stripeUnit) {
  if (members.size() < 2) {
    throw std::invalid_argument("Raid0 needs at least 2 members");
  }
  if (stripeUnit_ == 0) throw std::invalid_argument("stripe unit must be > 0");
  for (auto& p : members) {
    disks_.push_back(std::make_unique<Disk>(engine, std::move(p)));
  }
}

sim::Task<void> Raid0::access(std::uint64_t offset, std::uint64_t size,
                              IoOp op, std::int64_t cause) {
  const std::size_t n = disks_.size();
  std::vector<MemberSlice> slices(n);
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    const std::uint64_t stripe = cursor / stripeUnit_;
    const std::uint64_t within = cursor % stripeUnit_;
    const std::uint64_t chunk =
        std::min(end - cursor, stripeUnit_ - within);
    const std::size_t member = static_cast<std::size_t>(stripe % n);
    const std::uint64_t memberOffset =
        (stripe / n) * stripeUnit_ + within;
    auto& slice = slices[member];
    if (!slice.touched) {
      slice.firstOffset = memberOffset;
      slice.touched = true;
    }
    slice.bytes += chunk;
    cursor += chunk;
  }
  std::vector<sim::Task<void>> ops;
  for (std::size_t m = 0; m < n; ++m) {
    if (slices[m].touched) {
      ops.push_back(disks_[m]->access(slices[m].firstOffset,
                                      slices[m].bytes, op, cause));
    }
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

void Raid0::collectDisks(std::vector<Disk*>& out) {
  for (auto& d : disks_) out.push_back(d.get());
}

double Raid0::idealBandwidth(IoOp op) const noexcept {
  double sum = 0;
  for (const auto& d : disks_) {
    sum += op == IoOp::Read ? d->params().seqReadBw : d->params().seqWriteBw;
  }
  return sum;
}

std::string Raid0::describe() const {
  return "raid0(" + std::to_string(disks_.size()) +
         " disks, stripe=" + std::to_string(stripeUnit_) + ")";
}

// --------------------------------------------------------------------- Raid5

Raid5::Raid5(sim::Engine& engine, std::vector<DiskParams> members,
             std::uint64_t stripeUnit)
    : engine_(engine), stripeUnit_(stripeUnit) {
  if (members.size() < 3) {
    throw std::invalid_argument("Raid5 needs at least 3 members");
  }
  if (stripeUnit_ == 0) throw std::invalid_argument("stripe unit must be > 0");
  for (auto& p : members) {
    disks_.push_back(std::make_unique<Disk>(engine, std::move(p)));
  }
}

sim::Task<void> Raid5::access(std::uint64_t offset, std::uint64_t size,
                              IoOp op, std::int64_t cause) {
  const std::size_t n = disks_.size();
  const std::uint64_t rowWidth = stripeWidth();

  if (op == IoOp::Read) {
    // Parity rotates, so all members hold data; aggregate per member like
    // RAID0 but with the parity disk skipped in each row.
    std::vector<MemberSlice> slices(n);
    std::uint64_t cursor = offset;
    const std::uint64_t end = offset + size;
    while (cursor < end) {
      const std::uint64_t chunkIdx = cursor / stripeUnit_;
      const std::uint64_t within = cursor % stripeUnit_;
      const std::uint64_t chunk =
          std::min(end - cursor, stripeUnit_ - within);
      const std::uint64_t row = chunkIdx / (n - 1);
      const std::size_t parityDisk = static_cast<std::size_t>(row % n);
      std::size_t member =
          static_cast<std::size_t>(chunkIdx % (n - 1));
      if (member >= parityDisk) ++member;  // skip parity slot in this row
      const std::uint64_t memberOffset = row * stripeUnit_ + within;
      auto& slice = slices[member];
      if (!slice.touched) {
        slice.firstOffset = memberOffset;
        slice.touched = true;
      }
      slice.bytes += chunk;
      cursor += chunk;
    }
    std::vector<sim::Task<void>> ops;
    for (std::size_t m = 0; m < n; ++m) {
      if (slices[m].touched) {
        ops.push_back(disks_[m]->access(slices[m].firstOffset,
                                        slices[m].bytes, IoOp::Read,
                                        cause));
      }
    }
    co_await sim::whenAll(engine_, std::move(ops));
    co_return;
  }

  // Write: split into head partial row, full rows, tail partial row.
  const std::uint64_t end = offset + size;
  std::vector<sim::Task<void>> ops;

  std::uint64_t cursor = offset;
  // Head partial row.
  if (cursor % rowWidth != 0) {
    const std::uint64_t rowEnd =
        (cursor / rowWidth + 1) * rowWidth;
    const std::uint64_t partEnd = std::min(end, rowEnd);
    ops.push_back(writePartial(cursor, partEnd - cursor, cause));
    cursor = partEnd;
  }
  // Full rows.
  if (cursor < end) {
    const std::uint64_t fullRows = (end - cursor) / rowWidth;
    if (fullRows > 0) {
      const std::uint64_t firstRow = cursor / rowWidth;
      // Every member (data + parity) writes fullRows * stripeUnit bytes,
      // contiguous on the member.
      for (std::size_t m = 0; m < n; ++m) {
        ops.push_back(disks_[m]->access(firstRow * stripeUnit_,
                                        fullRows * stripeUnit_, IoOp::Write,
                                        cause));
      }
      cursor += fullRows * rowWidth;
    }
  }
  // Tail partial row.
  if (cursor < end) {
    ops.push_back(writePartial(cursor, end - cursor, cause));
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

sim::Task<void> Raid5::writePartial(std::uint64_t offset,
                                    std::uint64_t size, std::int64_t cause) {
  // Read-modify-write within a single row: each touched data chunk pays a
  // read + write on its member; the row's parity member pays a
  // stripe-unit read + write.
  const std::size_t n = disks_.size();
  const std::uint64_t row = offset / stripeWidth();
  const std::size_t parityDisk = static_cast<std::size_t>(row % n);

  auto rmw = [](Disk& disk, std::uint64_t off, std::uint64_t bytes,
                std::int64_t cause) -> sim::Task<void> {
    co_await disk.access(off, bytes, IoOp::Read, cause);
    co_await disk.access(off, bytes, IoOp::Write, cause);
  };

  std::vector<sim::Task<void>> ops;
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    const std::uint64_t chunkIdx = cursor / stripeUnit_;
    const std::uint64_t within = cursor % stripeUnit_;
    const std::uint64_t chunk = std::min(end - cursor, stripeUnit_ - within);
    std::size_t member = static_cast<std::size_t>(chunkIdx % (n - 1));
    if (member >= parityDisk) ++member;
    const std::uint64_t memberOffset = row * stripeUnit_ + within;
    ops.push_back(rmw(*disks_[member], memberOffset, chunk, cause));
    cursor += chunk;
  }
  ops.push_back(
      rmw(*disks_[parityDisk], row * stripeUnit_, stripeUnit_, cause));
  co_await sim::whenAll(engine_, std::move(ops));
}

void Raid5::collectDisks(std::vector<Disk*>& out) {
  for (auto& d : disks_) out.push_back(d.get());
}

double Raid5::idealBandwidth(IoOp op) const noexcept {
  double sum = 0;
  for (const auto& d : disks_) {
    sum += op == IoOp::Read ? d->params().seqReadBw : d->params().seqWriteBw;
  }
  if (op == IoOp::Write) {
    // Parity bytes don't carry payload.
    sum *= static_cast<double>(disks_.size() - 1) / disks_.size();
  }
  return sum;
}

std::string Raid5::describe() const {
  return "raid5(" + std::to_string(disks_.size()) +
         " disks, stripe=" + std::to_string(stripeUnit_) + ")";
}

// -------------------------------------------------------------------- Concat

Concat::Concat(sim::Engine& engine, std::vector<DiskParams> members,
               std::uint64_t memberSpan)
    : engine_(engine), memberSpan_(memberSpan) {
  if (members.empty()) throw std::invalid_argument("Concat needs members");
  if (memberSpan_ == 0) throw std::invalid_argument("member span must be > 0");
  for (auto& p : members) {
    disks_.push_back(std::make_unique<Disk>(engine, std::move(p)));
  }
}

sim::Task<void> Concat::access(std::uint64_t offset, std::uint64_t size,
                               IoOp op, std::int64_t cause) {
  std::vector<sim::Task<void>> ops;
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + size;
  while (cursor < end) {
    std::size_t member = static_cast<std::size_t>(cursor / memberSpan_);
    if (member >= disks_.size()) member %= disks_.size();  // wrap (sparse)
    const std::uint64_t memberOffset = cursor % memberSpan_;
    const std::uint64_t chunk =
        std::min(end - cursor, memberSpan_ - memberOffset);
    ops.push_back(disks_[member]->access(memberOffset, chunk, op, cause));
    cursor += chunk;
  }
  co_await sim::whenAll(engine_, std::move(ops));
}

void Concat::collectDisks(std::vector<Disk*>& out) {
  for (auto& d : disks_) out.push_back(d.get());
}

double Concat::idealBandwidth(IoOp op) const noexcept {
  // A single stream engages one member at a time.
  double best = 0;
  for (const auto& d : disks_) {
    best = std::max(best, op == IoOp::Read ? d->params().seqReadBw
                                           : d->params().seqWriteBw);
  }
  return best;
}

std::string Concat::describe() const {
  return "jbod(" + std::to_string(disks_.size()) + " disks)";
}

}  // namespace iop::storage
