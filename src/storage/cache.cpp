#include "storage/cache.hpp"

#include <algorithm>

#include "obs/hub.hpp"

namespace iop::storage {

PageCache::PageCache(sim::Engine& engine, BlockDevice& device,
                     CacheParams params)
    : engine_(engine),
      device_(device),
      params_(params),
      dirtyCv_(engine),
      spaceCv_(engine),
      idleCv_(engine) {
  if (params_.enabled && !params_.writeThrough) {
    engine_.spawn(flusherLoop());
  }
}

sim::Task<void> PageCache::flusherLoop() {
  for (;;) {
    while (dirty_.empty() && !shutdown_) {
      co_await dirtyCv_.wait();
    }
    if (dirty_.empty() && shutdown_) break;

    // Elevator sweep: continue from the last flushed offset so contiguous
    // regions drain as large sequential device writes.
    const auto pick = dirty_.firstIntervalAtOrAfter(flushCursor_);
    const std::uint64_t offset = pick->first;
    const std::uint64_t take =
        std::min(pick->second - pick->first, params_.flushChunk);
    dirty_.erase(offset, offset + take);
    flushCursor_ = offset + take;

    flushInFlight_ = take;
    bool faulted = false;
    try {
      co_await device_.access(offset, take, IoOp::Write);
    } catch (const IoFault& e) {
      // The device-level retry loop is already exhausted: the device is
      // gone for good.  Drop the dirty data (it is unrecoverable), mark
      // the cache failed, and wake everyone so blocked writers and
      // flushAll() waiters observe the error instead of hanging forever.
      faulted = true;
      failed_ = true;
      failedTarget_ = e.target();
      failedWhat_ = std::string(e.what()) + " (write-back flush lost " +
                    std::to_string(dirtyBytes()) + " dirty bytes)";
    }
    flushInFlight_ = 0;
    if (faulted) {
      dirty_.clear();
      obsSampleDirty();
      spaceCv_.notifyAll();
      idleCv_.notifyAll();
      break;
    }
    obsSampleDirty();
    spaceCv_.notifyAll();
    if (dirtyBytes() == 0) idleCv_.notifyAll();
  }
}

void PageCache::throwFailed() const {
  throw IoFault(failedTarget_, failedWhat_);
}

/// Throttled "dirty bytes" counter track: shows the write-back backlog that
/// makes device activity outlast the application's I/O phases (Fig. 8).
void PageCache::obsSampleDirty() {
  obs::Hub* o = engine_.obs();
  if (o == nullptr || o->trace == nullptr) return;
  if (engine_.now() < obsNextSample_ && dirtyBytes() != 0) return;
  if (obsTrack_ < 0) {
    obsTrack_ = o->trace->track(obs::TrackKind::Device,
                                "cache " + device_.describe());
  }
  o->trace->counterSample(obs::TrackKind::Device, obsTrack_, "dirty bytes",
                          engine_.now(), static_cast<double>(dirtyBytes()));
  obsNextSample_ = engine_.now() + 0.1;
}

/// Open a Cache activity covering the caller-visible portion of a request
/// (memcpy, dirty throttling, synchronous device waits).  Background flusher
/// work is deliberately outside: it has no single requester.
std::int64_t PageCache::obsBegin(std::uint64_t bytes, std::int64_t cause) {
  obs::Hub* o = engine_.obs();
  if (o == nullptr || o->edges == nullptr) return -1;
  if (obsLabel_.empty()) obsLabel_ = "cache " + device_.describe();
  return o->edges->begin(obs::ActKind::Cache, -1, obsLabel_, engine_.now(),
                         bytes, cause);
}

void PageCache::obsEnd(std::int64_t act) {
  if (act < 0) return;
  if (obs::Hub* o = engine_.obs(); o != nullptr && o->edges != nullptr) {
    o->edges->end(act, engine_.now());
  }
}

void PageCache::obsNoteRead(std::uint64_t hitBytes, std::uint64_t missBytes) {
  obs::Hub* o = engine_.obs();
  if (o == nullptr || o->metrics == nullptr) return;
  o->metrics->counter("cache.read_hit_bytes")
      .add(static_cast<double>(hitBytes));
  o->metrics->counter("cache.read_miss_bytes")
      .add(static_cast<double>(missBytes));
  const double hits = o->metrics->counter("cache.read_hit_bytes").value();
  const double misses = o->metrics->counter("cache.read_miss_bytes").value();
  if (hits + misses > 0) {
    o->metrics->gauge("cache.read_hit_ratio").set(hits / (hits + misses));
  }
}

void PageCache::evictIfNeeded() {
  while (resident_.totalBytes() > params_.sizeBytes && !fifo_.empty()) {
    auto [b, e] = fifo_.front();
    fifo_.pop_front();
    resident_.erase(b, e);
  }
}

sim::Task<void> PageCache::write(std::uint64_t offset, std::uint64_t size,
                                 std::int64_t cause) {
  const std::int64_t act = obsBegin(size, cause);
  const std::int64_t down = act >= 0 ? act : cause;
  if (failed_) {
    obsEnd(act);
    throwFailed();
  }
  if (!params_.enabled) {
    try {
      co_await device_.access(offset, size, IoOp::Write, down);
    } catch (...) {
      obsEnd(act);
      throw;
    }
    obsEnd(act);
    co_return;
  }
  co_await engine_.delay(static_cast<double>(size) / params_.memBandwidth);
  if (params_.writeThrough) {
    try {
      co_await device_.access(offset, size, IoOp::Write, down);
    } catch (...) {
      obsEnd(act);
      throw;
    }
    resident_.insert(offset, offset + size);
    fifo_.emplace_back(offset, offset + size);
    evictIfNeeded();
    obsEnd(act);
    co_return;
  }
  while (dirtyBytes() + size > dirtyLimit()) {
    co_await spaceCv_.wait();
    if (failed_) {
      obsEnd(act);
      throwFailed();
    }
  }
  dirty_.insert(offset, offset + size);
  resident_.insert(offset, offset + size);
  fifo_.emplace_back(offset, offset + size);
  evictIfNeeded();
  obsSampleDirty();
  dirtyCv_.notifyAll();
  obsEnd(act);
}

sim::Task<void> PageCache::read(std::uint64_t offset, std::uint64_t size,
                                std::int64_t cause) {
  const std::int64_t act = obsBegin(size, cause);
  const std::int64_t down = act >= 0 ? act : cause;
  if (failed_) {
    obsEnd(act);
    throwFailed();
  }
  if (!params_.enabled) {
    try {
      co_await device_.access(offset, size, IoOp::Read, down);
    } catch (...) {
      obsEnd(act);
      throw;
    }
    obsEnd(act);
    co_return;
  }
  const std::uint64_t end = offset + size;
  auto gaps = resident_.gaps(offset, end);
  std::uint64_t missBytes = 0;
  for (const auto& [b, e] : gaps) missBytes += e - b;
  readHitBytes_ += size - missBytes;
  readMissBytes_ += missBytes;
  obsNoteRead(size - missBytes, missBytes);

  if (!gaps.empty()) {
    // If the request is mostly uncached, fetch it as one spanning device
    // read (read coalescing); otherwise fetch each gap.
    try {
      if (missBytes * 4 >= size * 3) {
        const std::uint64_t b = gaps.front().first;
        const std::uint64_t e = gaps.back().second;
        co_await device_.access(b, e - b, IoOp::Read, down);
      } else {
        std::vector<sim::Task<void>> fetches;
        for (const auto& [b, e] : gaps) {
          fetches.push_back(device_.access(b, e - b, IoOp::Read, down));
        }
        co_await sim::whenAll(engine_, std::move(fetches));
      }
    } catch (...) {
      obsEnd(act);
      throw;
    }
    for (const auto& [b, e] : gaps) {
      resident_.insert(b, e);
      fifo_.emplace_back(b, e);
    }
    evictIfNeeded();
  }
  // Copy-out of the full request at memory speed.
  co_await engine_.delay(static_cast<double>(size) / params_.memBandwidth);
  obsEnd(act);
}

sim::Task<void> PageCache::flushAll() {
  if (!params_.enabled) co_return;
  if (failed_) throwFailed();
  dirtyCv_.notifyAll();
  while (dirtyBytes() > 0) {
    co_await idleCv_.wait();
    if (failed_) throwFailed();  // fsync reports the lost write-back (EIO)
  }
}

void PageCache::dropClean() {
  resident_.clear();
  fifo_.clear();
}

void PageCache::shutdown() {
  shutdown_ = true;
  dirtyCv_.notifyAll();
}

}  // namespace iop::storage
