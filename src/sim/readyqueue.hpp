// Ready-event queues for the discrete-event engine.
//
// CalendarQueue is a deterministic two-level calendar/ladder queue: a FIFO
// lane for events scheduled at the current time, a window of near-future
// buckets poured one at a time into a sorted run, and a far-future overflow
// heap.  It dispatches in exactly the same (when, seq) total order as a
// binary heap — HeapQueue below is that reference implementation, kept for
// the equivalence test in tests/sim_test.cpp — but the common operations
// are O(1) amortized instead of O(log n):
//
//  * push at the current time      -> append to the FIFO lane
//  * push into the active window   -> append to an unsorted bucket
//  * pop                           -> bump an index into the sorted run
//
// Only two situations sort: pouring a bucket into the run (each event is
// sorted once per window, and buckets filled in schedule order are usually
// already sorted) and the rare push that lands at-or-before the bucket
// cursor, which does a binary-search insert into the run.
//
// Determinism notes (why floating-point bucketing cannot reorder events):
//  * The bucket slot (when - windowStart) * invWidth, clamped to the last
//    bucket, is a monotone non-decreasing function of `when` for any fixed
//    invWidth > 0, so an event in a later bucket is strictly later than
//    every event in an earlier bucket — regardless of rounding.
//  * openWindow() extends the window end beyond the largest sampled
//    timestamp and keeps draining the overflow heap below that end, so
//    every event left in the overflow heap is >= every bucketed event.
//  * Ties inside a bucket (and everywhere else) are broken by the
//    engine-issued sequence number, never by container order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <coroutine>
#include <limits>
#include <vector>

namespace iop::sim {

using Time = double;

namespace detail {

struct QueuedEvent {
  Time when;
  std::uint64_t seq;
  std::coroutine_handle<> handle;
  /// True only for a detached frame's very first scheduling: if the engine
  /// dies before dispatch, the frame must be destroyed by the owner.
  bool ownsHandle = false;
};

inline bool laterThan(const QueuedEvent& a, const QueuedEvent& b) noexcept {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
}

inline bool earlierThan(const QueuedEvent& a,
                        const QueuedEvent& b) noexcept {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

/// Reference scheduler: plain binary heap with the same interface as
/// CalendarQueue.  Used by tests to prove order equivalence.
class HeapQueue {
 public:
  void push(const QueuedEvent& ev, Time /*now*/) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), laterThan);
  }

  const QueuedEvent* peek(Time /*now*/) {
    return heap_.empty() ? nullptr : &heap_.front();
  }

  QueuedEvent pop(Time /*now*/) {
    std::pop_heap(heap_.begin(), heap_.end(), laterThan);
    QueuedEvent ev = heap_.back();
    heap_.pop_back();
    return ev;
  }

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  template <typename F>
  void drainEach(F&& f) {
    for (QueuedEvent& ev : heap_) f(ev);
    heap_.clear();
  }

 private:
  std::vector<QueuedEvent> heap_;
};

class CalendarQueue {
 public:
  /// `now` is the engine clock; events with when <= now go to the FIFO
  /// lane (the engine clamps past times, so these are when == now).
  void push(const QueuedEvent& ev, Time now) {
    front_ = Front::Unknown;
    if (ev.when <= now) {
      ++count_;
      nowq_.push_back(ev);
      return;
    }
    if (count_ == 0) {
      // Sole event in the queue (every container is empty): straight into
      // the run — the common shape for ping-pong chains of one process.
      ++count_;
      near_.push_back(ev);
      return;
    }
    ++count_;
    // Everything in buckets or the overflow heap must stay >= the run's
    // tail (peek never compares the run against them), so a push that
    // would undercut the tail joins the intruder lane instead — a second
    // sorted run merged with the main one at peek.  A dedicated lane keeps
    // the undercut path O(1) amortized even when a bad window pours a
    // large run and a stream of earlier events then arrives in time order
    // (mass up-front spawns): they append to the intruder lane instead of
    // memmove-inserting into the middle of the big run.
    const QueuedEvent* tail = nearHead_ != near_.size() ? &near_.back()
                              : intrHead_ != intr_.size() ? &intr_.back()
                                                          : nullptr;
    if (tail != nullptr && ev.when < tail->when) {
      insertIntruder(ev);
      return;
    }
    if (windowActive_ && ev.when < windowEnd_) {
      const std::size_t idx = slotFor(ev.when);
      if (idx > cursor_ || cursor_ == kNoCursor) {
        buckets_[idx].push_back(ev);
      } else {
        insertNear(ev);
      }
      return;
    }
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), laterThan);
  }

  /// Earliest event in (when, seq) order, or nullptr when empty.  May pour
  /// the next bucket (amortized O(1) per event).
  const QueuedEvent* peek(Time now) {
    switch (front_) {
      case Front::Near:
        return &near_[nearHead_];
      case Front::Intr:
        return &intr_[intrHead_];
      case Front::Now:
        return &nowq_[nowHead_];
      case Front::Unknown:
        break;
    }
    for (;;) {
      const QueuedEvent* best = nullptr;
      Front lane = Front::Unknown;
      if (nearHead_ != near_.size()) {
        best = &near_[nearHead_];
        lane = Front::Near;
      }
      if (intrHead_ != intr_.size()) {
        const QueuedEvent& head = intr_[intrHead_];
        if (best == nullptr || earlierThan(head, *best)) {
          best = &head;
          lane = Front::Intr;
        }
      }
      // A sorted-run event at or before `now` was scheduled earlier
      // (smaller seq) than anything in the FIFO lane, which only holds
      // events pushed after the clock reached `now`.
      if (best != nullptr && (best->when <= now || nowHead_ == nowq_.size())) {
        front_ = lane;
        return best;
      }
      if (nowHead_ != nowq_.size()) {
        front_ = Front::Now;
        return &nowq_[nowHead_];
      }
      if (!refill()) return nullptr;
    }
  }

  /// Remove and return the event peek() points at.  Call with the same
  /// `now` as the preceding peek and no pushes in between.
  QueuedEvent pop(Time now) {
    if (front_ == Front::Unknown) peek(now);
    --count_;
    const Front lane = front_;
    front_ = Front::Unknown;
    if (lane == Front::Near) {
      const QueuedEvent ev = near_[nearHead_++];
      if (nearHead_ == near_.size()) {
        near_.clear();
        nearHead_ = 0;
      }
      return ev;
    }
    if (lane == Front::Intr) {
      const QueuedEvent ev = intr_[intrHead_++];
      if (intrHead_ == intr_.size()) {
        intr_.clear();
        intrHead_ = 0;
      }
      return ev;
    }
    const QueuedEvent ev = nowq_[nowHead_++];
    if (nowHead_ == nowq_.size()) {
      nowq_.clear();
      nowHead_ = 0;
    }
    return ev;
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Visit every queued event in unspecified order and leave the queue
  /// empty (engine teardown).
  template <typename F>
  void drainEach(F&& f) {
    for (std::size_t i = nowHead_; i < nowq_.size(); ++i) f(nowq_[i]);
    nowq_.clear();
    nowHead_ = 0;
    for (std::size_t i = nearHead_; i < near_.size(); ++i) f(near_[i]);
    near_.clear();
    nearHead_ = 0;
    for (std::size_t i = intrHead_; i < intr_.size(); ++i) f(intr_[i]);
    intr_.clear();
    intrHead_ = 0;
    for (auto& bucket : buckets_) {
      for (QueuedEvent& ev : bucket) f(ev);
      bucket.clear();
    }
    for (QueuedEvent& ev : overflow_) f(ev);
    overflow_.clear();
    count_ = 0;
    windowActive_ = false;
    front_ = Front::Unknown;
  }

 private:
  static constexpr std::size_t kNumBuckets = 256;
  static constexpr std::size_t kNoCursor =
      std::numeric_limits<std::size_t>::max();

  enum class Front : unsigned char { Unknown, Near, Intr, Now };

  std::size_t slotFor(Time when) const noexcept {
    const double offset = (when - windowStart_) * invWidth_;
    // Clamp in the double domain: a huge product must not hit the
    // undefined double->size_t conversion.
    if (!(offset >= 0)) return 0;
    if (offset >= static_cast<double>(kNumBuckets)) return kNumBuckets - 1;
    return static_cast<std::size_t>(offset);
  }

  /// Binary-search insert into the ascending run (rare: only for pushes
  /// landing at or before the bucket cursor).
  void insertNear(const QueuedEvent& ev) {
    const auto it = std::upper_bound(near_.begin() + nearHead_, near_.end(),
                                     ev, earlierThan);
    near_.insert(it, ev);
  }

  /// Insert into the ascending intruder lane.  Undercutting pushes from a
  /// dispatch loop arrive with non-decreasing `when` and strictly rising
  /// seq, so the common case is a plain append.
  void insertIntruder(const QueuedEvent& ev) {
    if (intrHead_ == intr_.size() || !earlierThan(ev, intr_.back())) {
      intr_.push_back(ev);
      return;
    }
    const auto it = std::upper_bound(intr_.begin() + intrHead_, intr_.end(),
                                     ev, earlierThan);
    intr_.insert(it, ev);
  }

  QueuedEvent popOverflow() {
    std::pop_heap(overflow_.begin(), overflow_.end(), laterThan);
    QueuedEvent ev = overflow_.back();
    overflow_.pop_back();
    return ev;
  }

  /// Called with the run and FIFO lane empty: advance the cursor to the
  /// next non-empty bucket and pour it, opening a new window from the
  /// overflow heap when the current one is exhausted.
  bool refill() {
    for (;;) {
      if (windowActive_) {
        while (cursor_ + 1 < kNumBuckets) {  // kNoCursor + 1 wraps to 0
          ++cursor_;
          if (!buckets_[cursor_].empty()) {
            near_.swap(buckets_[cursor_]);
            // Buckets fill in schedule order, which is already sorted
            // whenever timestamps within the bucket don't interleave —
            // the common case, worth the O(n) check.
            if (!std::is_sorted(near_.begin(), near_.end(), earlierThan)) {
              std::sort(near_.begin(), near_.end(), earlierThan);
            }
            return true;
          }
        }
        windowActive_ = false;
      }
      if (overflow_.empty()) return false;
      openWindow();
    }
  }

  void openWindow() {
    tmp_.clear();
    const std::size_t sample = std::min(overflow_.size(), kNumBuckets);
    for (std::size_t i = 0; i < sample; ++i) tmp_.push_back(popOverflow());
    // Heap pops arrive in ascending order.
    windowStart_ = tmp_.front().when;
    const Time range = tmp_.back().when - windowStart_;
    // Per-window gap resample: the drained sample IS the population the
    // window spreads across its buckets, so its own mean gap sizes the
    // buckets.  A global push-time estimate tracks whichever chain pushes
    // most often, and under mixed-density workloads (interleaved fast and
    // slow timescales) that mis-sizes every window for the other chains —
    // too-narrow buckets funnel the slow chain's events into the clamped
    // last bucket, too-wide buckets pour the fast chain unsorted.  Blend
    // across windows so one sparse sample doesn't whipsaw the width.
    // Bucket width never affects dispatch order (see the determinism
    // notes above), only how much work each pour has to sort.
    if (sample > 1 && range > 0) {
      const Time localGap = range / static_cast<double>(sample - 1);
      windowGap_ =
          windowGap_ > 0 ? windowGap_ * 0.5 + localGap * 0.5 : localGap;
    }
    Time w = windowGap_ > 0
                 ? windowGap_
                 : (range > 0 ? range / static_cast<double>(kNumBuckets)
                              : 1.0);
    if (!(w > 0) || !std::isfinite(w)) w = 1.0;
    invWidth_ = 1.0 / w;
    if (!std::isfinite(invWidth_)) {
      w = 1.0;
      invWidth_ = 1.0;
    }
    // The window must cover the whole sample (clamping handles slots past
    // the last bucket), and every event still in the overflow heap must be
    // >= windowEnd_ so the heap can never undercut a bucketed event.
    windowEnd_ = std::max(
        windowStart_ + w * static_cast<double>(kNumBuckets),
        std::nextafter(tmp_.back().when,
                       std::numeric_limits<double>::infinity()));
    while (!overflow_.empty() && overflow_.front().when < windowEnd_) {
      tmp_.push_back(popOverflow());
    }
    for (const QueuedEvent& ev : tmp_) {
      buckets_[slotFor(ev.when)].push_back(ev);
    }
    tmp_.clear();
    cursor_ = kNoCursor;
    windowActive_ = true;
  }

  /// FIFO lane for events scheduled at the current time (seq order ==
  /// insertion order, so a plain index walk preserves the total order).
  std::vector<QueuedEvent> nowq_;
  std::size_t nowHead_ = 0;
  /// Contents of bucket `cursor_`, ascending by (when, seq) from
  /// nearHead_; the earliest event is near_[nearHead_].
  std::vector<QueuedEvent> near_;
  std::size_t nearHead_ = 0;
  /// Intruder lane: pushes that undercut the run's tail, kept ascending
  /// and merged with the run at peek.  Every intruder is earlier than the
  /// run's tail, so buckets and overflow still never undercut either run.
  std::vector<QueuedEvent> intr_;
  std::size_t intrHead_ = 0;
  std::vector<QueuedEvent> buckets_[kNumBuckets];
  std::size_t cursor_ = kNoCursor;
  Time windowStart_ = 0;
  Time windowEnd_ = 0;
  double invWidth_ = 1.0;
  bool windowActive_ = false;
  Front front_ = Front::Unknown;
  /// Far-future min-heap (front = earliest), drained only by openWindow().
  std::vector<QueuedEvent> overflow_;
  std::vector<QueuedEvent> tmp_;
  /// Cross-window EMA of the per-window mean gap (openWindow resamples it
  /// from each drained overflow sample); 0 until the first multi-event
  /// window.
  Time windowGap_ = 0;
  std::size_t count_ = 0;
};

}  // namespace detail
}  // namespace iop::sim
