#include "sim/framepool.hpp"

#include <algorithm>
#include <new>

namespace iop::sim {

namespace {

void* allocateSlab(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{bytes});
}

void releaseSlab(void* slab, std::size_t bytes) noexcept {
  ::operator delete(slab, std::align_val_t{bytes});
}

}  // namespace

FrameArena& FrameArena::local() {
  thread_local FrameArena arena;
  return arena;
}

FrameArena::~FrameArena() {
  for (void* slab : slabs_) releaseSlab(slab, kSlabBytes);
}

void* FrameArena::allocate(std::size_t n) {
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ++stats_.fallbacks;
    return ::operator new(n);
  }
  const std::size_t cls = (n - 1) / kGranularity;
  if (void* head = freeLists_[cls]; head != nullptr) {
    freeLists_[cls] = *static_cast<void**>(head);
    ++slabOf(head)->live;
    ++stats_.reuses;
    --stats_.freeFrames;
    ++stats_.liveFrames;
    return head;
  }
  const std::size_t bytes = (cls + 1) * kGranularity;
  if (slabLeft_ < bytes) {
    void* slab = allocateSlab(kSlabBytes);
    new (slab) SlabHeader{};
    slabs_.push_back(slab);
    // The first granule belongs to the header, so frames never sit at
    // the slab boundary and slabOf() stays unambiguous.
    slabCur_ = static_cast<unsigned char*>(slab) + kGranularity;
    slabLeft_ = kSlabBytes - kGranularity;
    stats_.slabBytes += kSlabBytes;
  }
  void* p = slabCur_;
  slabCur_ += bytes;
  slabLeft_ -= bytes;
  ++slabOf(p)->live;
  ++stats_.slabCarves;
  ++stats_.liveFrames;
  return p;
}

void FrameArena::deallocate(void* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = (n - 1) / kGranularity;
  *static_cast<void**>(p) = freeLists_[cls];
  freeLists_[cls] = p;
  --slabOf(p)->live;
  ++stats_.freeFrames;
  --stats_.liveFrames;
}

std::size_t FrameArena::trim() noexcept {
  ++stats_.trims;
  bool anyDead = false;
  for (void* slab : slabs_) {
    if (static_cast<SlabHeader*>(slab)->live == 0) {
      anyDead = true;
      break;
    }
  }
  if (!anyDead) return 0;

  // Purge recycled frames belonging to dead slabs from every free list
  // *before* the slabs go away (the membership test reads the header).
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    void** link = &freeLists_[cls];
    while (*link != nullptr) {
      void* frame = *link;
      if (slabOf(frame)->live == 0) {
        *link = *static_cast<void**>(frame);
        --stats_.freeFrames;
      } else {
        link = static_cast<void**>(frame);
      }
    }
  }

  // Drop the bump pointer if it points into a dying slab.  slabCur_ is
  // strictly inside its slab whenever slabLeft_ > 0 (the header granule
  // precedes all frames), so masking it down is safe; with slabLeft_ == 0
  // the cursor may sit exactly on the next slab boundary, but then it is
  // unusable anyway and can be dropped unconditionally.
  if (slabLeft_ == 0 || slabOf(slabCur_)->live == 0) {
    slabCur_ = nullptr;
    slabLeft_ = 0;
  }

  std::size_t released = 0;
  auto dead = std::stable_partition(
      slabs_.begin(), slabs_.end(),
      [](void* slab) { return static_cast<SlabHeader*>(slab)->live != 0; });
  for (auto it = dead; it != slabs_.end(); ++it) {
    releaseSlab(*it, kSlabBytes);
    released += kSlabBytes;
    ++stats_.slabsReleased;
  }
  slabs_.erase(dead, slabs_.end());
  stats_.slabBytes -= released;
  return released;
}

}  // namespace iop::sim
