#include "sim/framepool.hpp"

#include <new>

namespace iop::sim {

FrameArena& FrameArena::local() {
  thread_local FrameArena arena;
  return arena;
}

FrameArena::~FrameArena() {
  for (void* slab : slabs_) ::operator delete(slab);
}

void* FrameArena::allocate(std::size_t n) {
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ++stats_.fallbacks;
    return ::operator new(n);
  }
  const std::size_t cls = (n - 1) / kGranularity;
  if (void* head = freeLists_[cls]; head != nullptr) {
    freeLists_[cls] = *static_cast<void**>(head);
    ++stats_.reuses;
    --stats_.freeFrames;
    return head;
  }
  const std::size_t bytes = (cls + 1) * kGranularity;
  if (slabLeft_ < bytes) {
    slabs_.push_back(::operator new(kSlabBytes));
    slabCur_ = static_cast<unsigned char*>(slabs_.back());
    slabLeft_ = kSlabBytes;
    stats_.slabBytes += kSlabBytes;
  }
  void* p = slabCur_;
  slabCur_ += bytes;
  slabLeft_ -= bytes;
  ++stats_.slabCarves;
  return p;
}

void FrameArena::deallocate(void* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = (n - 1) / kGranularity;
  *static_cast<void**>(p) = freeLists_[cls];
  freeLists_[cls] = p;
  ++stats_.freeFrames;
}

}  // namespace iop::sim
