// Thread-local free-list arena for coroutine frames.
//
// Every sim::Task<T> coroutine frame is allocated through the promise's
// operator new (see task.hpp), which lands here instead of the global
// heap.  Frames are carved from 64 KiB slabs in 64-byte size classes and
// recycled through per-class free lists, so the steady state of a
// simulation — spawning the same coroutine shapes over and over — does no
// heap allocation at all.
//
// Slabs are allocated 64 KiB-*aligned* and open with a SlabHeader holding
// the count of outstanding (live) frames carved from that slab, so any
// pooled frame pointer can be mapped back to its slab with a mask.  That
// makes the arena shrinkable: trim() releases every slab whose live count
// has fallen to zero (purging its frames from the free lists), returning
// memory to the OS between campaign cells instead of holding the
// high-water mark for the thread's lifetime.
//
// The arena is thread-local: a simulation runs entirely on one thread
// (sweep workers each run their own engines), so allocation and release
// always happen on the owning thread and no locks are needed.  Frames
// larger than kMaxPooled fall through to the global heap.  Remaining
// slabs are released when the thread exits; engines never outlive their
// thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iop::sim {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t slabCarves = 0;  ///< frames carved fresh from a slab
    std::uint64_t reuses = 0;      ///< frames served from a free list
    std::uint64_t fallbacks = 0;   ///< oversized frames via ::operator new
    std::uint64_t slabBytes = 0;   ///< bytes currently reserved in slabs
    std::uint64_t freeFrames = 0;  ///< frames currently on free lists
    std::uint64_t liveFrames = 0;  ///< pooled frames currently outstanding
    std::uint64_t trims = 0;           ///< trim() calls
    std::uint64_t slabsReleased = 0;   ///< slabs returned by trim()
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// The calling thread's arena.
  static FrameArena& local();

  void* allocate(std::size_t n);
  void deallocate(void* p, std::size_t n) noexcept;

  /// Release every slab with no outstanding frames, purging its recycled
  /// frames from the free lists first.  Returns the number of bytes
  /// handed back to the OS.  Safe at any point between allocations; a
  /// no-op when every slab still hosts a live frame (e.g. abandoned
  /// daemon coroutine frames keep their slab pinned, by design).
  std::size_t trim() noexcept;

  std::size_t slabCount() const noexcept { return slabs_.size(); }

  const Stats& stats() const noexcept { return stats_; }

  /// Largest frame size served from the pool; anything bigger uses the
  /// global heap (counted in stats().fallbacks).
  static constexpr std::size_t kMaxPooled = 2048;

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = kMaxPooled / kGranularity;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  /// Lives in the first granule of every slab; frames start right after,
  /// so frame addresses are never slab-aligned and masking a frame
  /// pointer down always finds its own slab's header.
  struct SlabHeader {
    std::uint64_t live = 0;  ///< outstanding frames carved from this slab
  };

  static SlabHeader* slabOf(void* frame) noexcept {
    return reinterpret_cast<SlabHeader*>(
        reinterpret_cast<std::uintptr_t>(frame) & ~(kSlabBytes - 1));
  }

  void* freeLists_[kClasses] = {};
  std::vector<void*> slabs_;   ///< kSlabBytes-aligned, header at offset 0
  unsigned char* slabCur_ = nullptr;
  std::size_t slabLeft_ = 0;
  Stats stats_{};
};

}  // namespace iop::sim
