// Thread-local free-list arena for coroutine frames.
//
// Every sim::Task<T> coroutine frame is allocated through the promise's
// operator new (see task.hpp), which lands here instead of the global
// heap.  Frames are carved from 64 KiB slabs in 64-byte size classes and
// recycled through per-class free lists, so the steady state of a
// simulation — spawning the same coroutine shapes over and over — does no
// heap allocation at all.
//
// The arena is thread-local: a simulation runs entirely on one thread
// (sweep workers each run their own engines), so allocation and release
// always happen on the owning thread and no locks are needed.  Frames
// larger than kMaxPooled fall through to the global heap.  Slabs are
// released when the thread exits; engines never outlive their thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iop::sim {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t slabCarves = 0;  ///< frames carved fresh from a slab
    std::uint64_t reuses = 0;      ///< frames served from a free list
    std::uint64_t fallbacks = 0;   ///< oversized frames via ::operator new
    std::uint64_t slabBytes = 0;   ///< total bytes reserved in slabs
    std::uint64_t freeFrames = 0;  ///< frames currently on free lists
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// The calling thread's arena.
  static FrameArena& local();

  void* allocate(std::size_t n);
  void deallocate(void* p, std::size_t n) noexcept;

  const Stats& stats() const noexcept { return stats_; }

  /// Largest frame size served from the pool; anything bigger uses the
  /// global heap (counted in stats().fallbacks).
  static constexpr std::size_t kMaxPooled = 2048;

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = kMaxPooled / kGranularity;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  void* freeLists_[kClasses] = {};
  std::vector<void*> slabs_;  ///< ::operator new blocks (max_align_t aligned)
  unsigned char* slabCur_ = nullptr;
  std::size_t slabLeft_ = 0;
  Stats stats_{};
};

}  // namespace iop::sim
