// Synchronization primitives for simulation processes.
//
// All primitives resume waiters *through the event queue* (never inline), so
// wake-up order is deterministic and a primitive can be triggered from any
// context without re-entrancy surprises.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace iop::sim {

/// Counts down from an initial value; waiters resume when it hits zero.
class Latch {
 public:
  Latch(Engine& engine, std::size_t count)
      : engine_(engine), count_(count) {}

  void countDown();
  std::size_t pending() const noexcept { return count_; }

  auto wait() {
    struct Awaiter {
      Latch& latch;
      bool await_ready() const noexcept { return latch.count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        latch.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  std::size_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Manual-reset event: wait() suspends until set() is called; once set,
/// waits complete immediately until reset().
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  void set();
  void reset() noexcept { set_ = false; }
  bool isSet() const noexcept { return set_; }

  auto wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// FCFS resource with integer capacity — the queueing-server building block
/// of the storage model (a disk arm, a NIC, a server CPU).  Tracks a
/// time-weighted busy integral for utilization reporting (iostat %util).
///
/// Token handoff on release goes directly to the head of the wait queue, so
/// arrival order is strictly respected even when acquire/release interleave
/// at the same simulated instant.
class Resource {
 public:
  Resource(Engine& engine, int capacity = 1)
      : engine_(engine), capacity_(capacity) {}

  auto acquire() {
    struct Awaiter {
      Resource& res;
      bool queued = false;
      bool await_ready() const noexcept {
        return res.inUse_ < res.capacity_ && res.queue_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        queued = true;
        res.queue_.push_back(h);
      }
      void await_resume() const {
        // For the queued path the token was transferred by release()
        // without decrementing inUse_, so only the fast path takes one.
        if (!queued) res.takeToken();
      }
    };
    return Awaiter{*this};
  }

  void release();

  /// acquire -> hold for `serviceTime` -> release.
  Task<void> use(Time serviceTime);

  int inUse() const noexcept { return inUse_; }
  int capacity() const noexcept { return capacity_; }
  std::size_t queueLength() const noexcept { return queue_.size(); }

  /// Integral over time of (inUse / capacity); divide by elapsed time for
  /// mean utilization.  Includes time accrued up to `asOf`.
  double busyIntegral(Time asOf) const;

 private:
  void takeToken();
  void accrue();

  Engine& engine_;
  int capacity_;
  int inUse_ = 0;
  std::deque<std::coroutine_handle<>> queue_;
  double busyIntegral_ = 0;
  Time lastChange_ = 0;
};

/// Condition variable: wait() always suspends; notifyAll() resumes every
/// waiter (through the event queue).  Callers re-check their predicate in a
/// loop, exactly like std::condition_variable.
class CondVar {
 public:
  explicit CondVar(Engine& engine) : engine_(engine) {}

  auto wait() {
    struct Awaiter {
      CondVar& cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notifyAll();

  std::size_t waiterCount() const noexcept { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel of T: push never blocks, pop suspends while empty.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine) {}

  void push(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.scheduleNow(h);
    }
  }

  /// Awaitable pop.  Resumption order among waiters is FIFO.
  auto pop() {
    struct Awaiter {
      Channel& chan;
      bool await_ready() const noexcept {
        return !chan.items_.empty() && chan.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        chan.waiters_.push_back(h);
      }
      T await_resume() {
        T value = std::move(chan.items_.front());
        chan.items_.pop_front();
        return value;
      }
    };
    return Awaiter{*this};
  }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

 private:
  Engine& engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Run a set of tasks concurrently and resume when all complete.  The first
/// child exception (in completion order) is rethrown after all children
/// finish.
Task<void> whenAll(Engine& engine, std::vector<Task<void>> tasks);

}  // namespace iop::sim
