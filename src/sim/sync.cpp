#include "sim/sync.hpp"

#include <stdexcept>

namespace iop::sim {

void Latch::countDown() {
  if (count_ == 0) {
    throw std::logic_error("Latch::countDown below zero");
  }
  if (--count_ == 0) {
    for (auto h : waiters_) engine_.scheduleNow(h);
    waiters_.clear();
  }
}

void Event::set() {
  set_ = true;
  for (auto h : waiters_) engine_.scheduleNow(h);
  waiters_.clear();
}

void Resource::release() {
  accrue();
  if (!queue_.empty()) {
    // Hand the token straight to the next waiter; inUse_ is unchanged.
    auto h = queue_.front();
    queue_.pop_front();
    engine_.scheduleNow(h);
  } else {
    if (inUse_ == 0) throw std::logic_error("Resource::release underflow");
    --inUse_;
  }
}

Task<void> Resource::use(Time serviceTime) {
  co_await acquire();
  co_await engine_.delay(serviceTime);
  release();
}

void Resource::takeToken() {
  accrue();
  ++inUse_;
}

void Resource::accrue() {
  const Time now = engine_.now();
  busyIntegral_ +=
      (now - lastChange_) * static_cast<double>(inUse_) / capacity_;
  lastChange_ = now;
}

double Resource::busyIntegral(Time asOf) const {
  return busyIntegral_ +
         (asOf - lastChange_) * static_cast<double>(inUse_) / capacity_;
}

void CondVar::notifyAll() {
  for (auto h : waiters_) engine_.scheduleNow(h);
  waiters_.clear();
}

namespace {

Task<void> runChild(Task<void> child, Latch& latch,
                    std::exception_ptr& firstError) {
  try {
    co_await std::move(child);
  } catch (...) {
    if (!firstError) firstError = std::current_exception();
  }
  latch.countDown();
}

}  // namespace

Task<void> whenAll(Engine& engine, std::vector<Task<void>> tasks) {
  Latch latch(engine, tasks.size());
  std::exception_ptr firstError{};
  for (auto& task : tasks) {
    engine.spawn(runChild(std::move(task), latch, firstError));
  }
  tasks.clear();
  co_await latch.wait();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace iop::sim
