// Deterministic discrete-event simulation engine.
//
// The engine owns the simulated clock and a calendar queue of ready
// coroutines (see readyqueue.hpp).  Events with equal timestamps run in
// scheduling order (monotonic sequence numbers), so a run is a pure
// function of its inputs and the RNG seed — a property the whole
// repository relies on for reproducing the paper's tables.  The engine
// folds every dispatched (when, seq) pair into a running FNV-1a digest;
// tests compare digests across runs and schedulers to prove the order
// never drifts.
#pragma once

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/readyqueue.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace iop::obs {
struct Hub;
class Gauge;
}  // namespace iop::obs

namespace iop::sim {

/// Simulated time, in seconds.
using Time = double;

/// Thrown by Engine::run when the event queue drains while detached
/// processes are still blocked (a lost wake-up / deadlock in model code).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  /// Destroys still-queued never-started detached frames.
  ~Engine();

  /// Current simulated time in seconds.
  Time now() const noexcept { return now_; }

  /// Deterministic RNG owned by this engine.
  util::Rng& rng() noexcept { return rng_; }

  /// Launch a detached process at the current time.  The coroutine frame
  /// frees itself on completion; uncaught exceptions surface from run().
  void spawn(Task<void> task);

  /// Launch a detached process at an absolute future time.  Past times
  /// clamp to now(); non-finite times throw std::invalid_argument.
  void spawnAt(Time when, Task<void> task);

  /// Schedule a raw coroutine resumption (used by awaitables).  Past times
  /// clamp to now(); NaN/infinite times throw std::invalid_argument
  /// instead of silently corrupting the queue order.
  void schedule(Time when, std::coroutine_handle<> h) {
    scheduleImpl(when, h, false);
  }
  void scheduleNow(std::coroutine_handle<> h) { schedule(now_, h); }

  /// Run until the event queue is empty.  Throws DeadlockError if detached
  /// processes remain blocked, and rethrows the first uncaught exception
  /// from any detached process.
  void run();

  /// Run until the queue is empty or simulated time would exceed `limit`.
  /// Events after `limit` stay queued; now() is clamped to `limit`.
  void runUntil(Time limit);

  /// Like run(), but without the deadlock check: blocked daemon processes
  /// (e.g. an idle cache flusher between benchmark passes) are tolerated.
  void drain();

  /// Awaitable: suspend the calling coroutine for `dt` simulated seconds.
  /// A non-positive dt still yields through the event queue (runs after
  /// already-scheduled same-time events).  Non-finite dt throws
  /// std::invalid_argument at the co_await point.
  auto delay(Time dt) {
    if (!std::isfinite(dt)) {
      throw std::invalid_argument("Engine::delay: non-finite duration");
    }
    struct Awaiter {
      Engine& engine;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule(engine.now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt > 0 ? dt : 0};
  }

  /// Awaitable: reschedule at the current time, after pending same-time
  /// events (cooperative yield).
  auto yield() { return delay(0); }

  /// Number of events dispatched so far (for tests and micro-benchmarks).
  std::uint64_t eventsDispatched() const noexcept { return dispatched_; }

  /// FNV-1a fold of every dispatched (when, seq) pair, in dispatch order.
  /// Two runs with the same inputs must report the same digest; the
  /// determinism tests pin it across scheduler implementations.
  std::uint64_t orderDigest() const noexcept { return orderDigest_; }

  /// Number of detached processes that have not finished yet.
  int liveProcesses() const noexcept { return liveDetached_; }

  /// Attach (or detach, with nullptr) an observability hub.  Everything
  /// holding an Engine reference — disks, caches, NICs, the MPI layer —
  /// reaches its sinks through here, so one call observes the whole
  /// simulation.  Recording is passive: it must not consume rng() or
  /// reorder the ready queue, so attaching cannot change a run's outcome.
  void setObs(obs::Hub* hub) noexcept {
    obs_ = hub;
    obsDispatchedGauge_ = nullptr;
    obsLiveGauge_ = nullptr;
    obsTrackId_ = -1;
  }
  obs::Hub* obs() const noexcept { return obs_; }

  /// Seconds of simulated time between engine-level counter samples
  /// (queue depth / dispatch rate) in the exported trace.
  void setObsSampleInterval(Time interval) noexcept {
    obsSampleInterval_ = interval > 0 ? interval : 0.1;
  }

 private:
  friend void detail::reportDetachedException(Engine&, std::exception_ptr);
  friend void detail::noteDetachedTaskFinished(Engine&);

  void scheduleImpl(Time when, std::coroutine_handle<> h, bool owns) {
    if (!std::isfinite(when)) {
      throw std::invalid_argument("Engine::schedule: non-finite time");
    }
    if (when < now_) when = now_;
    queue_.push(detail::QueuedEvent{when, seq_++, h, owns}, now_);
  }

  void dispatchUntil(Time limit, bool bounded);
  void throwIfFailed();
  /// Cold path: edge horizon + throttled samples; only entered when a hub
  /// is attached.
  void observeDispatch();
  void sampleObs();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t orderDigest_ = 1469598103934665603ULL;  // FNV-1a offset
  int liveDetached_ = 0;
  detail::CalendarQueue queue_;
  std::exception_ptr firstException_{};
  util::Rng rng_;

  obs::Hub* obs_ = nullptr;
  Time obsSampleInterval_ = 0.1;
  Time obsNextSample_ = 0;
  std::uint64_t obsLastDispatched_ = 0;
  /// Cached instrument handles (stable addresses per MetricsRegistry /
  /// TraceRecorder contract) so sampling skips the by-name lookups.
  obs::Gauge* obsDispatchedGauge_ = nullptr;
  obs::Gauge* obsLiveGauge_ = nullptr;
  int obsTrackId_ = -1;
};

}  // namespace iop::sim
