// Deterministic discrete-event simulation engine.
//
// The engine owns the simulated clock and a priority queue of ready
// coroutines.  Events with equal timestamps run in scheduling order
// (monotonic sequence numbers), so a run is a pure function of its inputs
// and the RNG seed — a property the whole repository relies on for
// reproducing the paper's tables.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "util/rng.hpp"

namespace iop::obs {
struct Hub;
}

namespace iop::sim {

/// Simulated time, in seconds.
using Time = double;

/// Thrown by Engine::run when the event queue drains while detached
/// processes are still blocked (a lost wake-up / deadlock in model code).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  /// Destroys still-queued never-started detached frames.
  ~Engine();

  /// Current simulated time in seconds.
  Time now() const noexcept { return now_; }

  /// Deterministic RNG owned by this engine.
  util::Rng& rng() noexcept { return rng_; }

  /// Launch a detached process at the current time.  The coroutine frame
  /// frees itself on completion; uncaught exceptions surface from run().
  void spawn(Task<void> task);

  /// Launch a detached process at an absolute future time.
  void spawnAt(Time when, Task<void> task);

  /// Schedule a raw coroutine resumption (used by awaitables).
  void schedule(Time when, std::coroutine_handle<> h) {
    scheduleImpl(when, h, false);
  }
  void scheduleNow(std::coroutine_handle<> h) { schedule(now_, h); }

  /// Run until the event queue is empty.  Throws DeadlockError if detached
  /// processes remain blocked, and rethrows the first uncaught exception
  /// from any detached process.
  void run();

  /// Run until the queue is empty or simulated time would exceed `limit`.
  /// Events after `limit` stay queued; now() is clamped to `limit`.
  void runUntil(Time limit);

  /// Like run(), but without the deadlock check: blocked daemon processes
  /// (e.g. an idle cache flusher between benchmark passes) are tolerated.
  void drain();

  /// Awaitable: suspend the calling coroutine for `dt` simulated seconds.
  /// A non-positive dt still yields through the event queue (runs after
  /// already-scheduled same-time events).
  auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule(engine.now_ + (dt > 0 ? dt : 0), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: reschedule at the current time, after pending same-time
  /// events (cooperative yield).
  auto yield() { return delay(0); }

  /// Number of events dispatched so far (for tests and micro-benchmarks).
  std::uint64_t eventsDispatched() const noexcept { return dispatched_; }

  /// Number of detached processes that have not finished yet.
  int liveProcesses() const noexcept { return liveDetached_; }

  /// Attach (or detach, with nullptr) an observability hub.  Everything
  /// holding an Engine reference — disks, caches, NICs, the MPI layer —
  /// reaches its sinks through here, so one call observes the whole
  /// simulation.  Recording is passive: it must not consume rng() or
  /// reorder the ready queue, so attaching cannot change a run's outcome.
  void setObs(obs::Hub* hub) noexcept { obs_ = hub; }
  obs::Hub* obs() const noexcept { return obs_; }

  /// Seconds of simulated time between engine-level counter samples
  /// (queue depth / dispatch rate) in the exported trace.
  void setObsSampleInterval(Time interval) noexcept {
    obsSampleInterval_ = interval > 0 ? interval : 0.1;
  }

 private:
  friend void detail::reportDetachedException(Engine&, std::exception_ptr);
  friend void detail::noteDetachedTaskFinished(Engine&);

  struct Event {
    Time when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    /// True only for a detached frame's very first scheduling: if the
    /// engine dies before dispatch, the frame must be destroyed here.
    bool ownsHandle = false;
    bool operator>(const Event& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void scheduleImpl(Time when, std::coroutine_handle<> h, bool owns);
  void dispatchUntil(Time limit, bool bounded);
  void throwIfFailed();
  void sampleObs();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  int liveDetached_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::exception_ptr firstException_{};
  util::Rng rng_;

  obs::Hub* obs_ = nullptr;
  Time obsSampleInterval_ = 0.1;
  Time obsNextSample_ = 0;
  std::uint64_t obsLastDispatched_ = 0;
};

}  // namespace iop::sim
