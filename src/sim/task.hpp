// Coroutine task type for the discrete-event simulation engine.
//
// A sim::Task<T> is a lazily-started coroutine.  Simulation "processes"
// (MPI ranks, cache flushers, device monitors) are Task<void> coroutines
// spawned detached on an Engine; ordinary async operations (a disk access, a
// network transfer) are Tasks awaited by their caller with symmetric
// transfer, so arbitrarily deep call chains cost no stack and no events.
//
// Ownership rules:
//  * A Task owns its coroutine frame and destroys it in ~Task.
//  * `co_await std::move(task)` starts the child and resumes the awaiter
//    when the child finishes; exceptions propagate to the awaiter.
//  * Engine::spawn / spawnAt take ownership; a detached frame destroys
//    itself at final-suspend and reports uncaught exceptions to the Engine.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/framepool.hpp"

namespace iop::sim {

class Engine;

namespace detail {
/// Report an exception escaping from a detached task to its engine.
void reportDetachedException(Engine& engine, std::exception_ptr exc);
/// Notify the engine that a detached task finished (for deadlock checks).
void noteDetachedTaskFinished(Engine& engine);
}  // namespace detail

struct PromiseBase {
  Engine* engine = nullptr;
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool detached = false;

  /// Coroutine frames come from the thread-local arena, not the heap: a
  /// simulation spawns the same coroutine shapes over and over, and the
  /// free lists recycle those frames with no allocator round trips.
  static void* operator new(std::size_t n) {
    return FrameArena::local().allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    FrameArena::local().deallocate(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
class [[nodiscard]] Task;

namespace detail {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    PromiseBase& p = h.promise();
    if (p.detached) {
      Engine* engine = p.engine;
      std::exception_ptr exc = p.exception;
      h.destroy();
      if (engine != nullptr) {
        noteDetachedTaskFinished(*engine);
        if (exc) reportDetachedException(*engine, exc);
      }
      return std::noop_coroutine();
    }
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T>
struct TaskPromise : PromiseBase {
  std::optional<T> value;  ///< optional: T need not be default-constructible

  Task<T> get_return_object() noexcept;
  detail::FinalAwaiter<TaskPromise<T>> final_suspend() noexcept { return {}; }
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  detail::FinalAwaiter<TaskPromise<void>> final_suspend() noexcept {
    return {};
  }
  void return_void() noexcept {}
};

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Release ownership of the frame (used by Engine::spawn for detached
  /// execution).  The caller becomes responsible for the frame.
  Handle release() noexcept { return std::exchange(handle_, {}); }

  /// Awaiter: starting the child with symmetric transfer and resuming the
  /// parent from the child's final-suspend.
  struct Awaiter {
    Handle handle;

    bool await_ready() const noexcept { return !handle || handle.done(); }

    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) noexcept {
      handle.promise().continuation = parent;
      return handle;
    }

    T await_resume() {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(*handle.promise().value);
      }
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }
  Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>{
      std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>{
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace iop::sim
