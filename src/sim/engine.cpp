#include "sim/engine.hpp"

#include "obs/hub.hpp"

namespace iop::sim {

namespace detail {

void reportDetachedException(Engine& engine, std::exception_ptr exc) {
  if (!engine.firstException_) engine.firstException_ = exc;
}

void noteDetachedTaskFinished(Engine& engine) { --engine.liveDetached_; }

}  // namespace detail

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.ownsHandle && ev.handle) {
      ev.handle.destroy();
      --liveDetached_;
    }
  }
}

void Engine::spawn(Task<void> task) { spawnAt(now_, std::move(task)); }

void Engine::spawnAt(Time when, Task<void> task) {
  auto handle = task.release();
  if (!handle) return;
  handle.promise().engine = this;
  handle.promise().detached = true;
  ++liveDetached_;
  scheduleImpl(when < now_ ? now_ : when, handle, true);
}

void Engine::scheduleImpl(Time when, std::coroutine_handle<> h, bool owns) {
  queue_.push(Event{when, seq_++, h, owns});
}

void Engine::dispatchUntil(Time limit, bool bounded) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (bounded && ev.when > limit) {
      now_ = limit;
      return;
    }
    queue_.pop();
    now_ = ev.when;
    ++dispatched_;
    if (obs_ != nullptr) {
      // Edge emission at dispatch: advance the recorder's time horizon so
      // activities abandoned at teardown can be clamped post-run.
      if (obs_->edges != nullptr) obs_->edges->noteDispatch(now_);
      if (now_ >= obsNextSample_) sampleObs();
    }
    ev.handle.resume();
    throwIfFailed();
  }
}

/// Throttled engine-level samples: ready-queue depth as a counter track,
/// dispatch totals into the registry.  Sampling reads state only; it never
/// schedules or consumes randomness.
void Engine::sampleObs() {
  if (obs_->metrics != nullptr) {
    obs_->metrics->gauge("sim.events_dispatched")
        .set(static_cast<double>(dispatched_));
    obs_->metrics->gauge("sim.live_processes")
        .set(static_cast<double>(liveDetached_));
  }
  if (obs_->trace != nullptr) {
    const int tid = obs_->trace->track(obs::TrackKind::Sim, "engine");
    obs_->trace->counterSample(obs::TrackKind::Sim, tid, "ready queue",
                               now_, static_cast<double>(queue_.size()));
    obs_->trace->counterSample(
        obs::TrackKind::Sim, tid, "dispatch rate", now_,
        static_cast<double>(dispatched_ - obsLastDispatched_));
  }
  obsLastDispatched_ = dispatched_;
  obsNextSample_ = now_ + obsSampleInterval_;
}

void Engine::throwIfFailed() {
  if (firstException_) {
    std::exception_ptr exc = firstException_;
    firstException_ = nullptr;
    std::rethrow_exception(exc);
  }
}

void Engine::run() {
  dispatchUntil(0, false);
  if (liveDetached_ > 0) {
    if (obs_ != nullptr && obs_->wantsLog(obs::LogLevel::Warn)) {
      obs_->log->warn("engine", "deadlock_detector_armed",
                      "\"blocked_processes\":" +
                          std::to_string(liveDetached_) +
                          ",\"sim_time\":" + std::to_string(now_));
    }
    throw DeadlockError("simulation deadlock: " +
                        std::to_string(liveDetached_) +
                        " process(es) blocked with an empty event queue");
  }
}

void Engine::runUntil(Time limit) { dispatchUntil(limit, true); }

void Engine::drain() { dispatchUntil(0, false); }

}  // namespace iop::sim
