#include "sim/engine.hpp"

#include <bit>

#include "obs/hub.hpp"

namespace iop::sim {

namespace detail {

void reportDetachedException(Engine& engine, std::exception_ptr exc) {
  if (!engine.firstException_) engine.firstException_ = exc;
}

void noteDetachedTaskFinished(Engine& engine) { --engine.liveDetached_; }

namespace {

/// One FNV-1a-style fold per 64-bit word: cheap enough for the dispatch
/// hot loop, yet any reordering of the (when, seq) stream changes it.
inline std::uint64_t foldWord(std::uint64_t h, std::uint64_t word) noexcept {
  return (h ^ word) * 1099511628211ULL;
}

}  // namespace
}  // namespace detail

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  queue_.drainEach([this](const detail::QueuedEvent& ev) {
    if (ev.ownsHandle && ev.handle) {
      ev.handle.destroy();
      --liveDetached_;
    }
  });
}

void Engine::spawn(Task<void> task) { spawnAt(now_, std::move(task)); }

void Engine::spawnAt(Time when, Task<void> task) {
  // Validate before detaching: on throw, ~Task still owns and frees the
  // frame.
  if (!std::isfinite(when)) {
    throw std::invalid_argument("Engine::spawnAt: non-finite time");
  }
  auto handle = task.release();
  if (!handle) return;
  handle.promise().engine = this;
  handle.promise().detached = true;
  ++liveDetached_;
  scheduleImpl(when, handle, true);
}

void Engine::dispatchUntil(Time limit, bool bounded) {
  for (;;) {
    const detail::QueuedEvent* top = queue_.peek(now_);
    if (top == nullptr) return;
    if (bounded && top->when > limit) {
      now_ = limit;
      return;
    }
    const detail::QueuedEvent ev = queue_.pop(now_);
    now_ = ev.when;
    ++dispatched_;
    orderDigest_ = detail::foldWord(
        detail::foldWord(orderDigest_, std::bit_cast<std::uint64_t>(ev.when)),
        ev.seq);
    if (obs_ != nullptr) [[unlikely]] observeDispatch();
    ev.handle.resume();
    if (firstException_) [[unlikely]] throwIfFailed();
  }
}

void Engine::observeDispatch() {
  // Edge emission at dispatch: advance the recorder's time horizon so
  // activities abandoned at teardown can be clamped post-run.
  if (obs_->edges != nullptr) obs_->edges->noteDispatch(now_);
  if (now_ >= obsNextSample_) sampleObs();
}

/// Throttled engine-level samples: ready-queue depth as a counter track,
/// dispatch totals into the registry.  Sampling reads state only; it never
/// schedules or consumes randomness.  Instrument handles and the track id
/// are resolved once per setObs() — registries guarantee stable addresses —
/// so the sample itself is just buffered appends.
void Engine::sampleObs() {
  if (obs_->metrics != nullptr) {
    if (obsDispatchedGauge_ == nullptr) {
      obsDispatchedGauge_ = &obs_->metrics->gauge("sim.events_dispatched");
      obsLiveGauge_ = &obs_->metrics->gauge("sim.live_processes");
    }
    obsDispatchedGauge_->set(static_cast<double>(dispatched_));
    obsLiveGauge_->set(static_cast<double>(liveDetached_));
  }
  if (obs_->trace != nullptr) {
    if (obsTrackId_ < 0) {
      obsTrackId_ = obs_->trace->track(obs::TrackKind::Sim, "engine");
    }
    obs_->trace->counterSample(obs::TrackKind::Sim, obsTrackId_,
                               "ready queue", now_,
                               static_cast<double>(queue_.size()));
    obs_->trace->counterSample(
        obs::TrackKind::Sim, obsTrackId_, "dispatch rate", now_,
        static_cast<double>(dispatched_ - obsLastDispatched_));
  }
  obsLastDispatched_ = dispatched_;
  obsNextSample_ = now_ + obsSampleInterval_;
}

void Engine::throwIfFailed() {
  if (firstException_) {
    std::exception_ptr exc = firstException_;
    firstException_ = nullptr;
    std::rethrow_exception(exc);
  }
}

void Engine::run() {
  dispatchUntil(0, false);
  if (liveDetached_ > 0) {
    if (obs_ != nullptr && obs_->wantsLog(obs::LogLevel::Warn)) {
      obs_->log->warn("engine", "deadlock_detector_armed",
                      "\"blocked_processes\":" +
                          std::to_string(liveDetached_) +
                          ",\"sim_time\":" + std::to_string(now_));
    }
    throw DeadlockError("simulation deadlock: " +
                        std::to_string(liveDetached_) +
                        " process(es) blocked with an empty event queue");
  }
}

void Engine::runUntil(Time limit) { dispatchUntil(limit, true); }

void Engine::drain() { dispatchUntil(0, false); }

}  // namespace iop::sim
