#include "sim/engine.hpp"

namespace iop::sim {

namespace detail {

void reportDetachedException(Engine& engine, std::exception_ptr exc) {
  if (!engine.firstException_) engine.firstException_ = exc;
}

void noteDetachedTaskFinished(Engine& engine) { --engine.liveDetached_; }

}  // namespace detail

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.ownsHandle && ev.handle) {
      ev.handle.destroy();
      --liveDetached_;
    }
  }
}

void Engine::spawn(Task<void> task) { spawnAt(now_, std::move(task)); }

void Engine::spawnAt(Time when, Task<void> task) {
  auto handle = task.release();
  if (!handle) return;
  handle.promise().engine = this;
  handle.promise().detached = true;
  ++liveDetached_;
  scheduleImpl(when < now_ ? now_ : when, handle, true);
}

void Engine::scheduleImpl(Time when, std::coroutine_handle<> h, bool owns) {
  queue_.push(Event{when, seq_++, h, owns});
}

void Engine::dispatchUntil(Time limit, bool bounded) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (bounded && ev.when > limit) {
      now_ = limit;
      return;
    }
    queue_.pop();
    now_ = ev.when;
    ++dispatched_;
    ev.handle.resume();
    throwIfFailed();
  }
}

void Engine::throwIfFailed() {
  if (firstException_) {
    std::exception_ptr exc = firstException_;
    firstException_ = nullptr;
    std::rethrow_exception(exc);
  }
}

void Engine::run() {
  dispatchUntil(0, false);
  if (liveDetached_ > 0) {
    throw DeadlockError("simulation deadlock: " +
                        std::to_string(liveDetached_) +
                        " process(es) blocked with an empty event queue");
  }
}

void Engine::runUntil(Time limit) { dispatchUntil(limit, true); }

void Engine::drain() { dispatchUntil(0, false); }

}  // namespace iop::sim
