// Physical byte extent of a file request after view mapping.
#pragma once

#include <cstdint>

namespace iop::mpi {

struct Extent {
  int fsFileId = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

}  // namespace iop::mpi
