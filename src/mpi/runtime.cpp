#include "mpi/runtime.hpp"

#include <stdexcept>

#include "mpi/file.hpp"
#include "sim/sync.hpp"

namespace iop::mpi {

namespace {

// NOTE: `main` is taken by const reference (it lives in the Runtime for the
// whole run) — GCC 12 miscompiles owning std::function coroutine parameters
// in some call forms, so callables are never passed by value to coroutines
// in this codebase.
sim::Task<void> rankWrapper(const Runtime::RankMain& main, Rank& rank,
                            sim::Latch& latch) {
  co_await main(rank);
  latch.countDown();
}

sim::Task<void> supervisor(Runtime& runtime, sim::Latch& latch,
                           double& appElapsed,
                           std::unique_ptr<sim::Latch> owned) {
  (void)owned;  // keeps the latch alive for the whole run
  co_await latch.wait();
  appElapsed = runtime.engine().now();
  runtime.notifyAppComplete();
  runtime.completed().set();
  if (runtime.shutdownOnCompletion()) runtime.topology().shutdown();
}

}  // namespace

Runtime::Runtime(storage::Topology& topology, RuntimeOptions options)
    : topology_(topology), options_(std::move(options)) {
  if (options_.np <= 0) throw std::invalid_argument("np must be positive");
  if (options_.computeNodes.empty()) {
    throw std::invalid_argument("computeNodes must not be empty");
  }
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(options_.np));
  for (int i = 0; i < options_.np; ++i) ids.push_back(i);
  const double latency =
      topology_.node(options_.computeNodes.front()).link().latency;
  world_ = std::make_unique<Comm>(engine(), ids, latency);
  completed_ = std::make_unique<sim::Event>(engine());
  for (int i = 0; i < options_.np; ++i) {
    auto nodeIdx = options_.computeNodes[static_cast<std::size_t>(i) %
                                         options_.computeNodes.size()];
    ranks_.push_back(
        std::make_unique<Rank>(*this, i, topology_.node(nodeIdx)));
  }
}

Runtime::~Runtime() = default;

void Runtime::launch(RankMain main) {
  mainFn_ = std::move(main);
  auto latch = std::make_unique<sim::Latch>(
      engine(), static_cast<std::size_t>(options_.np));
  sim::Latch& latchRef = *latch;
  for (auto& rank : ranks_) {
    engine().spawn(rankWrapper(mainFn_, *rank, latchRef));
  }
  engine().spawn(supervisor(*this, latchRef, appElapsed_, std::move(latch)));
}

double Runtime::runToCompletion(RankMain main) {
  launch(std::move(main));
  engine().run();
  // Emit per-file metadata now that access flags are final.
  if (options_.sink != nullptr) {
    for (auto& [key, state] : files_) {
      options_.sink->onFileMeta(state->meta());
    }
  }
  return appElapsed_;
}

/// A send waiting for its matching receive: `matched` fires when a recv
/// claims it; `done` fires when the payload transfer finished.
struct Runtime::PendingSend {
  PendingSend(sim::Engine& engine, std::uint64_t size)
      : bytes(size), matched(engine, 1), done(engine, 1) {}
  std::uint64_t bytes;
  sim::Latch matched;
  sim::Latch done;
};

Runtime::MessageChannel& Runtime::msgChannel(int src, int dst) {
  auto& slot = msgChannels_[{src, dst}];
  if (!slot) slot = std::make_unique<MessageChannel>(engine());
  return *slot;
}

sim::Task<void> Runtime::deliverMessage(Rank& sender, int destRank,
                                        std::uint64_t bytes) {
  if (destRank < 0 || destRank >= np()) {
    throw std::invalid_argument("send: destination rank out of range");
  }
  auto pending = std::make_shared<PendingSend>(engine(), bytes);
  msgChannel(sender.id(), destRank).push(pending);
  // Blocking-send rendezvous: wait for the matching receive, then move the
  // payload over the NICs.
  co_await pending->matched.wait();
  co_await storage::transfer(engine(), sender.node(),
                             rank(destRank).node(), bytes);
  pending->done.countDown();
}

sim::Task<void> Runtime::awaitMessage(Rank& receiver, int sourceRank,
                                      std::uint64_t bytes) {
  if (sourceRank < 0 || sourceRank >= np()) {
    throw std::invalid_argument("recv: source rank out of range");
  }
  auto pending =
      co_await msgChannel(sourceRank, receiver.id()).pop();
  if (pending->bytes != bytes) {
    throw std::runtime_error("recv: message size mismatch (" +
                             std::to_string(pending->bytes) + " sent, " +
                             std::to_string(bytes) + " expected)");
  }
  pending->matched.countDown();
  co_await pending->done.wait();
}

void Runtime::notifyAppComplete() {
  if (options_.onAppComplete) options_.onAppComplete();
}

bool Runtime::shutdownOnCompletion() const noexcept {
  return options_.shutdownTopologyOnCompletion;
}

Comm& Runtime::createComm(std::vector<int> rankIds) {
  const double latency =
      topology_.node(options_.computeNodes.front()).link().latency;
  extraComms_.emplace_back(engine(), std::move(rankIds), latency);
  return extraComms_.back();
}

std::shared_ptr<SharedFileState> Runtime::fileState(
    const std::string& mount, const std::string& path,
    AccessType accessType) {
  const std::string key = mount + ":" + path;
  auto it = files_.find(key);
  if (it != files_.end()) {
    if (it->second->accessType() != accessType) {
      throw std::logic_error("file reopened with different access type: " +
                             key);
    }
    return it->second;
  }
  auto state = std::make_shared<SharedFileState>(
      nextLogicalId_++, path, accessType, topology_.fs(mount), options_.np);
  files_.emplace(key, state);
  return state;
}

}  // namespace iop::mpi
