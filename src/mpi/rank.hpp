// A simulated MPI process.
//
// Ranks are coroutines scheduled by the discrete-event engine.  Each rank
// carries the paper's logical clock: `tick` increments on every MPI event
// (communication or I/O), independent of simulated wall time — exactly the
// ordering token PAS2P uses and the phase analysis depends on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/network.hpp"

namespace iop::mpi {

class Comm;
class File;
class Runtime;
class TraceSink;

enum class AccessType { Shared, Unique };

class Rank {
 public:
  Rank(Runtime& runtime, int id, storage::Node& node);
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const noexcept { return id_; }
  int np() const noexcept;
  sim::Engine& engine() noexcept;
  storage::Node& node() noexcept { return node_; }
  Runtime& runtime() noexcept { return runtime_; }
  Comm& world() noexcept;

  std::uint64_t tick() const noexcept { return tick_; }

  /// Busy-work / computation: advances simulated time, NOT the tick
  /// (the paper's MADbench2 "busy-work" is invisible to the MPI trace).
  sim::Task<void> compute(double seconds);

  /// Convenience collectives on the world communicator.
  sim::Task<void> barrier();
  sim::Task<void> bcast(std::uint64_t bytes);
  sim::Task<void> allreduce(std::uint64_t bytes);

  /// Point-to-point: blocking send/recv of `bytes` (matched by source, in
  /// order — MPI's non-overtaking guarantee for a single "tag" stream).
  /// The payload moves over the node NICs like any other transfer.
  sim::Task<void> send(int destRank, std::uint64_t bytes);
  sim::Task<void> recv(int sourceRank, std::uint64_t bytes);

  /// Open a file.  Shared: one file for all ranks (every rank must call).
  /// Unique: one file per rank ("-F" in IOR terms).
  /// Bumps the tick and charges the filesystem metadata cost.
  sim::Task<std::shared_ptr<File>> open(const std::string& mount,
                                        const std::string& path,
                                        AccessType accessType);

  /// --- internal hooks (used by Comm/File) ---
  std::uint64_t bumpTick() noexcept { return ++tick_; }
  /// Record a non-I/O MPI event.  `obsInstant` is false when the caller
  /// emits its own richer span for the event (collectives in Comm).
  void noteCommEvent(const std::string& op, bool obsInstant = true);
  TraceSink* traceSink() noexcept;

  /// Cached Chrome-trace track id for this rank (-1 until first use).
  int obsTrack();

 private:
  Runtime& runtime_;
  int id_;
  storage::Node& node_;
  std::uint64_t tick_ = 0;
  int obsTrack_ = -1;
};

}  // namespace iop::mpi
