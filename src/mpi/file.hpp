// Simulated MPI-IO file handle.
//
// Supports the call surface the paper's traced applications use:
//   * file views (MPI_File_set_view): displacement + etype + a strided
//     filetype (block/stride in etypes) — offsets passed to read/write
//     calls are in etype units relative to the view, like real MPI-IO;
//   * explicit-offset ops: read_at/write_at and their collective _all
//     variants (NAS BT-IO subtype FULL);
//   * individual-file-pointer ops: seek + read/write (MADbench2);
//   * shared or unique (per-process) access types.
//
// Collective ops implement two-phase I/O: ranks rendezvous, data is
// shuffled to cb_nodes aggregator nodes, aggregators merge the pieces into
// contiguous extents and issue large filesystem requests — the mechanism
// that makes BT-IO FULL efficient and that the phase replay with IOR "-c"
// mirrors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpi/extent.hpp"
#include "mpi/rank.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/filesystem.hpp"

namespace iop::mpi {

/// Shared state of one logical file (one per open path, shared by all rank
/// handles of that file): the collective-I/O communicator bookkeeping and
/// contribution buffers live here.
class SharedFileState;

/// Handle for a non-blocking operation (MPI_Request).  wait() suspends
/// until the operation completes; destroying an un-waited Request is an
/// error surfaced at engine teardown (the op keeps running detached).
class Request {
 public:
  Request(sim::Engine& engine, std::shared_ptr<sim::Latch> done)
      : engine_(&engine), done_(std::move(done)) {}

  /// MPI_Wait.
  sim::Task<void> wait() {
    auto done = done_;
    co_await done->wait();
  }

  bool test() const noexcept { return done_->pending() == 0; }

 private:
  sim::Engine* engine_;
  std::shared_ptr<sim::Latch> done_;
};

class File {
 public:
  File(Rank& rank, std::shared_ptr<SharedFileState> shared, int fsFileId);

  /// MPI_File_set_view: disp in bytes, etype in bytes, filetype as a
  /// (block, stride) pair in etypes.  block == stride means contiguous.
  /// Local call (no tick bump, matching its zero-communication cost here).
  void setView(std::uint64_t dispBytes, std::uint64_t etypeBytes,
               std::uint64_t filetypeBlock, std::uint64_t filetypeStride);

  /// MPI_File_seek (individual file pointer), offset in etypes.
  void seek(std::uint64_t offsetEtypes) { pointer_ = offsetEtypes; }
  std::uint64_t pointer() const noexcept { return pointer_; }

  // Explicit-offset operations; offset in etypes relative to the view.
  sim::Task<void> writeAt(std::uint64_t offsetEtypes, std::uint64_t bytes);
  sim::Task<void> readAt(std::uint64_t offsetEtypes, std::uint64_t bytes);
  sim::Task<void> writeAtAll(std::uint64_t offsetEtypes, std::uint64_t bytes);
  sim::Task<void> readAtAll(std::uint64_t offsetEtypes, std::uint64_t bytes);

  // Non-blocking explicit-offset operations (MPI_File_iwrite_at /
  // MPI_File_iread_at): the transfer proceeds in the background; overlap
  // it with computation and complete it with Request::wait().
  Request iwriteAt(std::uint64_t offsetEtypes, std::uint64_t bytes);
  Request ireadAt(std::uint64_t offsetEtypes, std::uint64_t bytes);

  // Individual-file-pointer operations (advance the pointer).
  sim::Task<void> write(std::uint64_t bytes);
  sim::Task<void> read(std::uint64_t bytes);
  sim::Task<void> writeAll(std::uint64_t bytes);
  sim::Task<void> readAll(std::uint64_t bytes);

  /// MPI_File_close.  Collective in MPI; here per-rank metadata cost.
  sim::Task<void> close();

  /// Map a view-relative etype range to physical byte extents (visible for
  /// tests; coalesces contiguous tiles).
  std::vector<Extent> mapToExtents(std::uint64_t offsetEtypes,
                                   std::uint64_t bytes) const;

  int fsFileId() const noexcept { return fsFileId_; }
  int logicalFileId() const noexcept;

 private:
  enum class OpKind { Read, Write };

  sim::Task<void> independentOp(OpKind kind, std::uint64_t offsetEtypes,
                                std::uint64_t bytes, const char* opName);
  Request nonBlockingOp(OpKind kind, std::uint64_t offsetEtypes,
                        std::uint64_t bytes, const char* opName);
  sim::Task<void> collectiveOp(OpKind kind, std::uint64_t offsetEtypes,
                               std::uint64_t bytes, const char* opName);
  void emitTrace(const char* opName, std::uint64_t offsetEtypes,
                 std::uint64_t bytes, std::uint64_t tick, double entry);
  void updateMeta(bool collective, bool explicitOffset);

  Rank& rank_;
  std::shared_ptr<SharedFileState> shared_;
  int fsFileId_;

  // Current view.
  std::uint64_t viewDisp_ = 0;
  std::uint64_t etype_ = 1;
  std::uint64_t ftBlock_ = 1;
  std::uint64_t ftStride_ = 1;

  std::uint64_t pointer_ = 0;  ///< individual file pointer, etypes
};

}  // namespace iop::mpi
