// Simulated MPI communicator: barriers and rendezvous for collectives.
//
// Each rank joins the k-th collective of a communicator in program order
// (MPI's non-overtaking rule for collectives), so a Rendezvous slot is
// keyed by a per-rank sequence number.  The last rank to arrive performs
// the modeled cost and releases everyone.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace iop::mpi {

class Rank;

/// Work executed by the last-arriving rank of a rendezvous (the modeled
/// cost of a barrier tree, or the two-phase aggregation of a collective
/// I/O call).  Implementations live in the awaiting coroutine's frame.
///
/// NOTE: this is deliberately a virtual interface rather than a
/// std::function parameter — GCC 12 miscompiles coroutine parameters whose
/// std::function is constructed from a prvalue lambda at the call site
/// (double-destruction of the conversion temporary's target).
class CollectiveBody {
 public:
  virtual ~CollectiveBody() = default;
  virtual sim::Task<void> run() = 0;
};

/// A group of ranks performing collectives together.
class Comm {
 public:
  Comm(sim::Engine& engine, std::vector<int> rankIds, double linkLatency);

  int size() const noexcept { return static_cast<int>(rankIds_.size()); }
  const std::vector<int>& rankIds() const noexcept { return rankIds_; }

  /// Synchronize all members.  Cost: a latency-scaled tree.
  sim::Task<void> barrier(Rank& rank);

  /// Broadcast `bytes` from the root; modeled as a binomial tree of
  /// latency + serialization terms (pure delay, does not occupy NICs).
  sim::Task<void> bcast(Rank& rank, std::uint64_t bytes);

  /// Allreduce of `bytes`; ~2x the bcast tree.
  sim::Task<void> allreduce(Rank& rank, std::uint64_t bytes);

  /// Generic rendezvous: every member calls this; the last arrival runs
  /// `body` (may be null) before everyone is released.  `body` must stay
  /// alive until the returned task completes (keep it in the caller's
  /// coroutine frame).  `cause` is the calling rank's obs activity for
  /// this collective (-1 = untracked); member arrivals are recorded as
  /// instants and linked to the last arriver's activity, expressing the
  /// cross-rank dependency the per-rank cause chain cannot.
  sim::Task<void> rendezvous(Rank& rank, CollectiveBody* body,
                             std::int64_t cause = -1);

 private:
  struct Slot {
    int arrived = 0;
    int released = 0;
    bool done = false;
    std::unique_ptr<sim::CondVar> cv;
    std::vector<std::int64_t> arrivals;  ///< obs arrival-instant ids
  };

  Slot& slot(std::uint64_t seq);
  void retire(std::uint64_t seq, Slot& s);
  double treeCost(std::uint64_t bytes) const noexcept;

  sim::Engine& engine_;
  std::vector<int> rankIds_;
  double linkLatency_;
  // Per-rank collective sequence numbers (indexed by position in comm).
  std::unordered_map<int, std::uint64_t> seqOfRank_;
  std::unordered_map<std::uint64_t, Slot> slots_;
};

}  // namespace iop::mpi
