#include "mpi/file.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "obs/hub.hpp"
#include "sim/sync.hpp"

namespace iop::mpi {

namespace {

/// Move contribution payloads between ranks and aggregators (phase one of
/// two-phase I/O).  Contribution i is owned by aggregator i % aggs.size().
sim::Task<void> shuffleTransfers(sim::Engine& eng,
                                 const std::vector<Contribution>& contribs,
                                 const std::vector<storage::Node*>& aggs,
                                 bool toAggregators, std::int64_t cause) {
  std::vector<sim::Task<void>> xfers;
  for (std::size_t i = 0; i < contribs.size(); ++i) {
    const auto& c = contribs[i];
    storage::Node* agg = aggs[i % aggs.size()];
    if (c.node == agg || c.bytes == 0) continue;
    if (toAggregators) {
      xfers.push_back(storage::transfer(eng, *c.node, *agg, c.bytes, cause));
    } else {
      xfers.push_back(storage::transfer(eng, *agg, *c.node, c.bytes, cause));
    }
  }
  co_await sim::whenAll(eng, std::move(xfers));
}

/// Issue a list of extents sequentially from one node (one aggregator's
/// share of phase two, or one rank's independent request list).
sim::Task<void> runExtentsFromNode(storage::FileSystem& fs,
                                   storage::Node& node,
                                   std::vector<Extent> extents,
                                   bool isWrite, std::int64_t cause) {
  for (const auto& e : extents) {
    if (isWrite) {
      co_await fs.write(node, e.fsFileId, e.offset, e.bytes, cause);
    } else {
      co_await fs.read(node, e.fsFileId, e.offset, e.bytes, cause);
    }
  }
}

/// The aggregation body executed by the last-arriving rank of a collective
/// I/O call: merge all contributions into contiguous extents, shuffle data
/// to the aggregator nodes, and issue large filesystem requests.
sim::Task<void> runTwoPhase(sim::Engine& eng, storage::FileSystem& fs,
                            const IoHints& hints,
                            std::vector<Contribution> contribs,
                            bool isWrite, std::int64_t cause) {
  if (!hints.collectiveBuffering) {
    // "SIMPLE" behaviour: everyone writes their own pieces, concurrently.
    std::vector<sim::Task<void>> ops;
    for (auto& c : contribs) {
      ops.push_back(
          runExtentsFromNode(fs, *c.node, c.extents, isWrite, cause));
    }
    co_await sim::whenAll(eng, std::move(ops));
    co_return;
  }

  // Merge every contribution's extents into maximal contiguous runs.
  std::vector<Extent> all;
  for (auto& c : contribs) {
    all.insert(all.end(), c.extents.begin(), c.extents.end());
  }
  std::sort(all.begin(), all.end(), [](const Extent& a, const Extent& b) {
    if (a.fsFileId != b.fsFileId) return a.fsFileId < b.fsFileId;
    return a.offset < b.offset;
  });
  std::vector<Extent> merged;
  for (const auto& e : all) {
    if (!merged.empty() && merged.back().fsFileId == e.fsFileId &&
        merged.back().offset + merged.back().bytes == e.offset) {
      merged.back().bytes += e.bytes;
    } else {
      merged.push_back(e);
    }
  }

  // Aggregator nodes: distinct compute nodes in rank order, capped by the
  // cb_nodes hint.
  std::vector<storage::Node*> aggs;
  for (const auto& c : contribs) {
    if (std::find(aggs.begin(), aggs.end(), c.node) == aggs.end()) {
      aggs.push_back(c.node);
    }
  }
  if (hints.cbNodes > 0 &&
      aggs.size() > static_cast<std::size_t>(hints.cbNodes)) {
    aggs.resize(static_cast<std::size_t>(hints.cbNodes));
  }

  // Phase two work split: cb-buffer-sized chunks round-robin over
  // aggregators; each aggregator issues its chunks in order.
  std::vector<std::vector<Extent>> perAgg(aggs.size());
  std::size_t next = 0;
  for (const auto& e : merged) {
    std::uint64_t cursor = 0;
    while (cursor < e.bytes) {
      const std::uint64_t chunk =
          std::min(e.bytes - cursor, hints.cbBufferSize);
      perAgg[next % aggs.size()].push_back(
          Extent{e.fsFileId, e.offset + cursor, chunk});
      ++next;
      cursor += chunk;
    }
  }

  // ROMIO pipelines the exchange and I/O of successive cb-buffer rounds,
  // so the shuffle overlaps the filesystem ops (an aggregator's NIC rx and
  // tx are separate channels); modeling them concurrently captures that.
  std::vector<sim::Task<void>> ops;
  ops.push_back(shuffleTransfers(eng, contribs, aggs, isWrite, cause));
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (perAgg[a].empty()) continue;
    ops.push_back(runExtentsFromNode(fs, *aggs[a], std::move(perAgg[a]),
                                     isWrite, cause));
  }
  co_await sim::whenAll(eng, std::move(ops));
}

}  // namespace

File::File(Rank& rank, std::shared_ptr<SharedFileState> shared, int fsFileId)
    : rank_(rank), shared_(std::move(shared)), fsFileId_(fsFileId) {}

int File::logicalFileId() const noexcept { return shared_->logicalId(); }

void File::setView(std::uint64_t dispBytes, std::uint64_t etypeBytes,
                   std::uint64_t filetypeBlock,
                   std::uint64_t filetypeStride) {
  if (etypeBytes == 0 || filetypeBlock == 0 ||
      filetypeStride < filetypeBlock) {
    throw std::invalid_argument("invalid file view");
  }
  viewDisp_ = dispBytes;
  etype_ = etypeBytes;
  ftBlock_ = filetypeBlock;
  ftStride_ = filetypeStride;
  pointer_ = 0;
  auto& meta = shared_->meta();
  meta.etypeBytes = etypeBytes;
  meta.viewDisp = dispBytes;
  meta.filetypeBlock = filetypeBlock;
  meta.filetypeStride = filetypeStride;
}

std::vector<Extent> File::mapToExtents(std::uint64_t offsetEtypes,
                                       std::uint64_t bytes) const {
  if (bytes % etype_ != 0) {
    throw std::invalid_argument(
        "request size must be a whole number of etypes");
  }
  std::vector<Extent> out;
  if (ftBlock_ == ftStride_) {
    out.push_back(
        Extent{fsFileId_, viewDisp_ + offsetEtypes * etype_, bytes});
    return out;
  }
  std::uint64_t e = offsetEtypes;
  std::uint64_t remaining = bytes / etype_;
  while (remaining > 0) {
    const std::uint64_t tile = e / ftBlock_;
    const std::uint64_t within = e % ftBlock_;
    const std::uint64_t take = std::min(remaining, ftBlock_ - within);
    const std::uint64_t physByte =
        viewDisp_ + (tile * ftStride_ + within) * etype_;
    if (!out.empty() &&
        out.back().offset + out.back().bytes == physByte) {
      out.back().bytes += take * etype_;
    } else {
      out.push_back(Extent{fsFileId_, physByte, take * etype_});
    }
    e += take;
    remaining -= take;
  }
  return out;
}

void File::emitTrace(const char* opName, std::uint64_t offsetEtypes,
                     std::uint64_t bytes, std::uint64_t tick, double entry) {
  if (TraceSink* sink = rank_.traceSink()) {
    IoCallRecord rec;
    rec.rank = rank_.id();
    rec.fileId = shared_->logicalId();
    rec.op = opName;
    rec.offsetUnits = offsetEtypes;
    rec.tick = tick;
    rec.requestBytes = bytes;
    rec.time = entry;
    rec.duration = rank_.engine().now() - entry;
    sink->onIoCall(rec);
  }
  // Same seam feeds the observability layer: one span per MPI-IO call on
  // the rank's track plus byte/latency metrics.
  if (obs::Hub* o = rank_.engine().obs(); o != nullptr) {
    const double now = rank_.engine().now();
    const bool isWrite = std::string_view(opName).find("write") !=
                         std::string_view::npos;
    if (o->trace != nullptr) {
      o->trace->span(obs::TrackKind::Rank, rank_.obsTrack(), opName,
                     "mpi.io", entry, now,
                     "\"file\":" + std::to_string(shared_->logicalId()) +
                         ",\"offset\":" + std::to_string(offsetEtypes) +
                         ",\"bytes\":" + std::to_string(bytes) +
                         ",\"tick\":" + std::to_string(tick));
    }
    if (o->metrics != nullptr) {
      o->metrics
          ->counter(isWrite ? "mpi.io.bytes_written" : "mpi.io.bytes_read")
          .add(static_cast<double>(bytes));
      o->metrics
          ->histogram("mpi.io.op_seconds", obs::latencyBucketsSeconds())
          .observe(now - entry);
    }
  }
}

void File::updateMeta(bool collective, bool explicitOffset) {
  auto& meta = shared_->meta();
  meta.sawCollective = meta.sawCollective || collective;
  if (explicitOffset) {
    meta.sawExplicitOffsets = true;
  } else {
    meta.sawIndividualPointers = true;
  }
}

sim::Task<void> File::independentOp(OpKind kind, std::uint64_t offsetEtypes,
                                    std::uint64_t bytes,
                                    const char* opName) {
  const std::uint64_t tick = rank_.bumpTick();
  const double entry = rank_.engine().now();
  // Root of the dependency chain for this call: everything the storage
  // stack does on its behalf carries this id as (transitive) cause.
  std::int64_t act = -1;
  if (obs::Hub* o = rank_.engine().obs();
      o != nullptr && o->edges != nullptr) {
    act = o->edges->begin(obs::ActKind::MpiIo, rank_.id(), opName, entry,
                          bytes);
  }
  auto extents = mapToExtents(offsetEtypes, bytes);
  auto& fs = shared_->fs();
  const IoHints& hints = rank_.runtime().hints();

  // ROMIO data sieving: a fragmented request touches the whole spanning
  // region in sieve-buffer passes — reads fetch the holes too; writes are
  // read-modify-write over the span.  Cheaper than hundreds of small
  // requests whenever the fragments are dense.
  const bool sieve = kind == OpKind::Write ? hints.dataSievingWrites
                                           : hints.dataSievingReads;
  if (sieve && extents.size() >= 2) {
    const std::uint64_t spanBegin = extents.front().offset;
    const std::uint64_t spanEnd =
        extents.back().offset + extents.back().bytes;
    std::uint64_t cursor = spanBegin;
    while (cursor < spanEnd) {
      const std::uint64_t chunk =
          std::min(spanEnd - cursor, hints.sieveBufferSize);
      co_await fs.read(rank_.node(), extents.front().fsFileId, cursor,
                       chunk, act);
      if (kind == OpKind::Write) {
        co_await fs.write(rank_.node(), extents.front().fsFileId, cursor,
                          chunk, act);
      }
      cursor += chunk;
    }
  } else {
    for (const auto& e : extents) {
      if (kind == OpKind::Write) {
        co_await fs.write(rank_.node(), e.fsFileId, e.offset, e.bytes, act);
      } else {
        co_await fs.read(rank_.node(), e.fsFileId, e.offset, e.bytes, act);
      }
    }
  }
  if (act >= 0) {
    if (obs::Hub* o = rank_.engine().obs();
        o != nullptr && o->edges != nullptr) {
      o->edges->end(act, rank_.engine().now());
    }
  }
  emitTrace(opName, offsetEtypes, bytes, tick, entry);
}

namespace {

/// Two-phase aggregation body living in the calling rank's frame; run by
/// whichever rank arrives last at the rendezvous.
class TwoPhaseBody final : public CollectiveBody {
 public:
  TwoPhaseBody(sim::Engine& engine, SharedFileState& state,
               const IoHints& hints, bool isWrite, std::int64_t cause)
      : engine_(engine),
        state_(state),
        hints_(hints),
        isWrite_(isWrite),
        cause_(cause) {}

  sim::Task<void> run() override {
    std::vector<Contribution> contribs = std::move(state_.pending());
    state_.pending().clear();
    // Only the last-arriving rank's body runs, so `cause_` is its MPI-IO
    // activity — the one the rendezvous arrival links point at.
    return runTwoPhase(engine_, state_.fs(), hints_, std::move(contribs),
                       isWrite_, cause_);
  }

 private:
  sim::Engine& engine_;
  SharedFileState& state_;
  const IoHints& hints_;
  bool isWrite_;
  std::int64_t cause_;
};

}  // namespace

sim::Task<void> File::collectiveOp(OpKind kind, std::uint64_t offsetEtypes,
                                   std::uint64_t bytes, const char* opName) {
  const std::uint64_t tick = rank_.bumpTick();
  const double entry = rank_.engine().now();
  std::int64_t act = -1;
  if (obs::Hub* o = rank_.engine().obs();
      o != nullptr && o->edges != nullptr) {
    act = o->edges->begin(obs::ActKind::MpiIo, rank_.id(), opName, entry,
                          bytes);
  }

  Contribution contribution;
  contribution.node = &rank_.node();
  contribution.extents = mapToExtents(offsetEtypes, bytes);
  contribution.bytes = bytes;

  Runtime& rt = rank_.runtime();
  const bool isWrite = kind == OpKind::Write;

  // Contribute synchronously: execution is non-preemptive between awaits,
  // and collectives on a file cannot overlap, so pending() accumulates
  // exactly this collective's np contributions.
  shared_->pending().push_back(std::move(contribution));
  TwoPhaseBody body(rank_.engine(), *shared_, rt.hints(), isWrite, act);
  co_await rt.world().rendezvous(rank_, &body, act);

  if (act >= 0) {
    if (obs::Hub* o = rank_.engine().obs();
        o != nullptr && o->edges != nullptr) {
      o->edges->end(act, rank_.engine().now());
    }
  }
  emitTrace(opName, offsetEtypes, bytes, tick, entry);
}

sim::Task<void> File::writeAt(std::uint64_t offsetEtypes,
                              std::uint64_t bytes) {
  updateMeta(false, true);
  return independentOp(OpKind::Write, offsetEtypes, bytes,
                       "MPI_File_write_at");
}

sim::Task<void> File::readAt(std::uint64_t offsetEtypes,
                             std::uint64_t bytes) {
  updateMeta(false, true);
  return independentOp(OpKind::Read, offsetEtypes, bytes,
                       "MPI_File_read_at");
}

sim::Task<void> File::writeAtAll(std::uint64_t offsetEtypes,
                                 std::uint64_t bytes) {
  updateMeta(true, true);
  return collectiveOp(OpKind::Write, offsetEtypes, bytes,
                      "MPI_File_write_at_all");
}

sim::Task<void> File::readAtAll(std::uint64_t offsetEtypes,
                                std::uint64_t bytes) {
  updateMeta(true, true);
  return collectiveOp(OpKind::Read, offsetEtypes, bytes,
                      "MPI_File_read_at_all");
}

namespace {

/// Background body of a non-blocking op: runs the independent operation
/// detached, then releases the Request's latch.
sim::Task<void> runNonBlocking(sim::Task<void> op,
                               std::shared_ptr<sim::Latch> done) {
  co_await std::move(op);
  done->countDown();
}

}  // namespace

Request File::nonBlockingOp(OpKind kind, std::uint64_t offsetEtypes,
                            std::uint64_t bytes, const char* opName) {
  auto done = std::make_shared<sim::Latch>(rank_.engine(), 1);
  rank_.engine().spawn(runNonBlocking(
      independentOp(kind, offsetEtypes, bytes, opName), done));
  return Request(rank_.engine(), std::move(done));
}

Request File::iwriteAt(std::uint64_t offsetEtypes, std::uint64_t bytes) {
  updateMeta(false, true);
  shared_->meta().sawNonBlocking = true;
  return nonBlockingOp(OpKind::Write, offsetEtypes, bytes,
                       "MPI_File_iwrite_at");
}

Request File::ireadAt(std::uint64_t offsetEtypes, std::uint64_t bytes) {
  updateMeta(false, true);
  shared_->meta().sawNonBlocking = true;
  return nonBlockingOp(OpKind::Read, offsetEtypes, bytes,
                       "MPI_File_iread_at");
}

sim::Task<void> File::write(std::uint64_t bytes) {
  updateMeta(false, false);
  const std::uint64_t at = pointer_;
  pointer_ += bytes / etype_;
  return independentOp(OpKind::Write, at, bytes, "MPI_File_write");
}

sim::Task<void> File::read(std::uint64_t bytes) {
  updateMeta(false, false);
  const std::uint64_t at = pointer_;
  pointer_ += bytes / etype_;
  return independentOp(OpKind::Read, at, bytes, "MPI_File_read");
}

sim::Task<void> File::writeAll(std::uint64_t bytes) {
  updateMeta(true, false);
  const std::uint64_t at = pointer_;
  pointer_ += bytes / etype_;
  return collectiveOp(OpKind::Write, at, bytes, "MPI_File_write_all");
}

sim::Task<void> File::readAll(std::uint64_t bytes) {
  updateMeta(true, false);
  const std::uint64_t at = pointer_;
  pointer_ += bytes / etype_;
  return collectiveOp(OpKind::Read, at, bytes, "MPI_File_read_all");
}

sim::Task<void> File::close() {
  rank_.noteCommEvent("MPI_File_close");
  co_await shared_->fs().metadataOp(rank_.node());
}

}  // namespace iop::mpi
