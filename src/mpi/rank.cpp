#include "mpi/rank.hpp"

#include "mpi/comm.hpp"
#include "mpi/file.hpp"
#include "mpi/runtime.hpp"
#include "obs/hub.hpp"

namespace iop::mpi {

Rank::Rank(Runtime& runtime, int id, storage::Node& node)
    : runtime_(runtime), id_(id), node_(node) {}

int Rank::np() const noexcept { return runtime_.np(); }

sim::Engine& Rank::engine() noexcept { return runtime_.engine(); }

Comm& Rank::world() noexcept { return runtime_.world(); }

sim::Task<void> Rank::compute(double seconds) {
  co_await engine().delay(seconds);
}

sim::Task<void> Rank::barrier() { return world().barrier(*this); }

sim::Task<void> Rank::bcast(std::uint64_t bytes) {
  return world().bcast(*this, bytes);
}

sim::Task<void> Rank::allreduce(std::uint64_t bytes) {
  return world().allreduce(*this, bytes);
}

sim::Task<void> Rank::send(int destRank, std::uint64_t bytes) {
  noteCommEvent("MPI_Send");
  return runtime_.deliverMessage(*this, destRank, bytes);
}

sim::Task<void> Rank::recv(int sourceRank, std::uint64_t bytes) {
  noteCommEvent("MPI_Recv");
  return runtime_.awaitMessage(*this, sourceRank, bytes);
}

void Rank::noteCommEvent(const std::string& op, bool obsInstant) {
  const std::uint64_t t = bumpTick();
  if (TraceSink* sink = traceSink()) {
    sink->onCommEvent(id_, t, op, engine().now());
  }
  if (obsInstant) {
    if (obs::Hub* o = engine().obs(); o != nullptr && o->trace != nullptr) {
      o->trace->instant(obs::TrackKind::Rank, obsTrack(), op, "mpi.comm",
                        engine().now(),
                        "\"tick\":" + std::to_string(t));
    }
  }
}

int Rank::obsTrack() {
  if (obsTrack_ < 0) {
    obs::Hub* o = engine().obs();
    if (o == nullptr || o->trace == nullptr) return 0;
    const std::string& prefix = runtime_.trackPrefix();
    obsTrack_ = prefix.empty()
                    ? o->trace->rankTrack(id_)
                    : o->trace->track(obs::TrackKind::Rank,
                                      prefix + "rank " + std::to_string(id_));
  }
  return obsTrack_;
}

TraceSink* Rank::traceSink() noexcept { return runtime_.sink(); }

sim::Task<std::shared_ptr<File>> Rank::open(const std::string& mount,
                                            const std::string& path,
                                            AccessType accessType) {
  noteCommEvent("MPI_File_open");
  auto state = runtime_.fileState(mount, path, accessType);
  // Unique access ("-F"): each rank gets its own extent namespace.
  const int fsFileId = accessType == AccessType::Shared
                           ? state->logicalId() * 100000
                           : state->logicalId() * 100000 + 1 + id_;
  co_await state->fs().metadataOp(node_);
  co_return std::make_shared<File>(*this, std::move(state), fsFileId);
}

}  // namespace iop::mpi
