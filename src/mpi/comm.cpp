#include "mpi/comm.hpp"

#include <cmath>
#include <stdexcept>

#include "mpi/rank.hpp"
#include "obs/hub.hpp"

namespace iop::mpi {

namespace {

/// Span + wait-time histogram for one completed collective on `rank`.
/// Runs after the rendezvous, so the duration includes the wait for the
/// slowest member — the "barrier/collective wait" cost centre.
void observeCollective(Rank& rank, const char* op, double entry) {
  obs::Hub* o = rank.engine().obs();
  if (o == nullptr) return;
  const double now = rank.engine().now();
  if (o->trace != nullptr) {
    o->trace->span(obs::TrackKind::Rank, rank.obsTrack(), op, "mpi.coll",
                   entry, now);
  }
  if (o->metrics != nullptr) {
    o->metrics
        ->histogram("mpi.collective_wait_seconds",
                    obs::latencyBucketsSeconds())
        .observe(now - entry);
    o->metrics->counter("mpi.collectives").add(1);
  }
}

/// Open a Collective activity on `rank` for the dependency-edge graph.
std::int64_t beginCollective(Rank& rank, const char* op,
                             std::uint64_t bytes) {
  obs::Hub* o = rank.engine().obs();
  if (o == nullptr || o->edges == nullptr) return -1;
  return o->edges->begin(obs::ActKind::Collective, rank.id(), op,
                         rank.engine().now(), bytes);
}

void endCollective(Rank& rank, std::int64_t act) {
  if (act < 0) return;
  if (obs::Hub* o = rank.engine().obs();
      o != nullptr && o->edges != nullptr) {
    o->edges->end(act, rank.engine().now());
  }
}

/// Pure-delay collective cost body (barrier/bcast/allreduce trees).
class DelayBody final : public CollectiveBody {
 public:
  DelayBody(sim::Engine& engine, double seconds)
      : engine_(engine), seconds_(seconds) {}

  sim::Task<void> run() override { return delayTask(engine_, seconds_); }

 private:
  static sim::Task<void> delayTask(sim::Engine& engine, double seconds) {
    co_await engine.delay(seconds);
  }

  sim::Engine& engine_;
  double seconds_;
};

}  // namespace

Comm::Comm(sim::Engine& engine, std::vector<int> rankIds, double linkLatency)
    : engine_(engine), rankIds_(std::move(rankIds)),
      linkLatency_(linkLatency) {
  if (rankIds_.empty()) throw std::invalid_argument("empty communicator");
  for (int id : rankIds_) seqOfRank_[id] = 0;
}

Comm::Slot& Comm::slot(std::uint64_t seq) {
  auto& s = slots_[seq];
  if (!s.cv) s.cv = std::make_unique<sim::CondVar>(engine_);
  return s;
}

void Comm::retire(std::uint64_t seq, Slot& s) {
  if (++s.released == size()) slots_.erase(seq);
}

double Comm::treeCost(std::uint64_t bytes) const noexcept {
  const double depth = std::ceil(std::log2(std::max(2, size())));
  // Latency term per tree level plus pipelined payload serialization at a
  // nominal in-network rate.
  return depth * (linkLatency_ + 5.0e-6) +
         static_cast<double>(bytes) / 1.0e9 * depth;
}

sim::Task<void> Comm::rendezvous(Rank& rank, CollectiveBody* body,
                                 std::int64_t cause) {
  auto it = seqOfRank_.find(rank.id());
  if (it == seqOfRank_.end()) {
    throw std::logic_error("rank not a member of this communicator");
  }
  const std::uint64_t seq = it->second++;
  Slot& s = slot(seq);
  obs::Hub* o = engine_.obs();
  obs::EdgeRecorder* er = o != nullptr ? o->edges : nullptr;
  if (++s.arrived == size()) {
    // The release (and the body's cost) depends on every member having
    // arrived: link each recorded arrival to this rank's activity.
    if (er != nullptr && cause >= 0) {
      for (std::int64_t a : s.arrivals) er->link(a, cause);
    }
    if (body != nullptr) co_await body->run();
    s.done = true;
    s.cv->notifyAll();
  } else {
    if (er != nullptr && cause >= 0) {
      s.arrivals.push_back(er->instant(obs::ActKind::Collective, rank.id(),
                                       "arrive", engine_.now(), cause));
    }
    while (!s.done) co_await s.cv->wait();
  }
  retire(seq, s);
}

sim::Task<void> Comm::barrier(Rank& rank) {
  rank.noteCommEvent("MPI_Barrier", false);
  const double entry = engine_.now();
  const std::int64_t act = beginCollective(rank, "MPI_Barrier", 0);
  DelayBody body(engine_, treeCost(0));
  co_await rendezvous(rank, &body, act);
  endCollective(rank, act);
  observeCollective(rank, "MPI_Barrier", entry);
}

sim::Task<void> Comm::bcast(Rank& rank, std::uint64_t bytes) {
  rank.noteCommEvent("MPI_Bcast", false);
  const double entry = engine_.now();
  const std::int64_t act = beginCollective(rank, "MPI_Bcast", bytes);
  DelayBody body(engine_, treeCost(bytes));
  co_await rendezvous(rank, &body, act);
  endCollective(rank, act);
  observeCollective(rank, "MPI_Bcast", entry);
}

sim::Task<void> Comm::allreduce(Rank& rank, std::uint64_t bytes) {
  rank.noteCommEvent("MPI_Allreduce", false);
  const double entry = engine_.now();
  const std::int64_t act = beginCollective(rank, "MPI_Allreduce", bytes);
  DelayBody body(engine_, 2 * treeCost(bytes));
  co_await rendezvous(rank, &body, act);
  endCollective(rank, act);
  observeCollective(rank, "MPI_Allreduce", entry);
}

}  // namespace iop::mpi
