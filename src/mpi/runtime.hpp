// Simulated MPI runtime: SPMD launch of np rank-coroutines over a storage
// topology, the world communicator, the shared-file registry, and the
// collective-buffering hints.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/extent.hpp"
#include "mpi/rank.hpp"
#include "mpi/tracehook.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/topology.hpp"

namespace iop::mpi {

class File;

/// ROMIO-style hints controlling two-phase collective I/O and data
/// sieving.
struct IoHints {
  bool collectiveBuffering = true;  ///< false = "SIMPLE" subtype behaviour
  int cbNodes = 0;                  ///< aggregator count; 0 = one per node
  std::uint64_t cbBufferSize = 16ULL << 20;
  /// Data sieving for fragmented independent requests: access the
  /// spanning region in one pass instead of one filesystem request per
  /// fragment.  ROMIO defaults: enabled for reads, disabled for writes
  /// (write sieving is a read-modify-write and loses against
  /// write-behind caching unless fragments are tiny and dense).
  bool dataSievingReads = true;
  bool dataSievingWrites = false;
  std::uint64_t sieveBufferSize = 4ULL << 20;
};

/// One contribution to a collective I/O operation.
struct Contribution {
  storage::Node* node = nullptr;
  std::vector<Extent> extents;
  std::uint64_t bytes = 0;
};

/// State shared by all rank handles of one logical file.
class SharedFileState {
 public:
  SharedFileState(int logicalId, std::string path, AccessType accessType,
                  storage::FileSystem& fs, int np)
      : logicalId_(logicalId), path_(std::move(path)),
        accessType_(accessType), fs_(&fs) {
    meta_.fileId = logicalId;
    meta_.path = path_;
    meta_.shared = accessType == AccessType::Shared;
    meta_.np = np;
  }

  int logicalId() const noexcept { return logicalId_; }
  AccessType accessType() const noexcept { return accessType_; }
  storage::FileSystem& fs() noexcept { return *fs_; }
  FileMetaRecord& meta() noexcept { return meta_; }

  /// Accumulator for the in-flight collective op (safe because collectives
  /// on a file cannot overlap).
  std::vector<Contribution>& pending() noexcept { return pending_; }

 private:
  int logicalId_;
  std::string path_;
  AccessType accessType_;
  storage::FileSystem* fs_;
  FileMetaRecord meta_;
  std::vector<Contribution> pending_;
};

struct RuntimeOptions {
  int np = 1;
  /// Topology node indices usable as compute nodes; ranks are placed
  /// round-robin.  Must not be empty.
  std::vector<std::size_t> computeNodes;
  IoHints hints;
  TraceSink* sink = nullptr;
  /// Invoked (synchronously, inside the simulation) when the last rank
  /// finishes — e.g. to stop a DeviceMonitor so the engine can drain.
  std::function<void()> onAppComplete;
  /// Shut the topology down (stop cache flushers) when the app finishes.
  /// Disable when several Runtimes share one topology; the caller then
  /// shuts down after the last one completes (see Runtime::completed()).
  bool shutdownTopologyOnCompletion = true;
  /// Prefix for the ranks' trace-track names ("" = the plain per-rank
  /// tracks).  Multi-tenant runs set "job#<id> " so each job's ranks get
  /// their own track group in the trace viewer.
  std::string trackPrefix;
};

class Runtime {
 public:
  Runtime(storage::Topology& topology, RuntimeOptions options);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  using RankMain = std::function<sim::Task<void>(Rank&)>;

  /// Spawn all ranks plus a supervisor that records the makespan and shuts
  /// the topology down when the last rank finishes.
  void launch(RankMain main);

  /// launch + engine.run(); returns the application makespan in seconds
  /// (cache drain excluded).
  double runToCompletion(RankMain main);

  int np() const noexcept { return options_.np; }
  const std::string& trackPrefix() const noexcept {
    return options_.trackPrefix;
  }
  sim::Engine& engine() noexcept { return topology_.engine(); }
  storage::Topology& topology() noexcept { return topology_; }
  Comm& world() noexcept { return *world_; }
  TraceSink* sink() noexcept { return options_.sink; }
  const IoHints& hints() const noexcept { return options_.hints; }
  Rank& rank(int id) { return *ranks_.at(static_cast<std::size_t>(id)); }

  /// Application makespan (valid after the run completes).
  double appElapsed() const noexcept { return appElapsed_; }

  /// Set when the last rank finishes (for coordinating multiple Runtimes
  /// on one topology).
  sim::Event& completed() noexcept { return *completed_; }

  /// Create a sub-communicator (e.g. a MADbench2 gang).
  Comm& createComm(std::vector<int> rankIds);

  /// Open (or attach to) a logical file; called via Rank::open.
  std::shared_ptr<SharedFileState> fileState(const std::string& mount,
                                             const std::string& path,
                                             AccessType accessType);

  /// internal: supervisor hooks.
  void notifyAppComplete();
  bool shutdownOnCompletion() const noexcept;

  /// internal: point-to-point plumbing (see Rank::send / Rank::recv).
  sim::Task<void> deliverMessage(Rank& sender, int destRank,
                                 std::uint64_t bytes);
  sim::Task<void> awaitMessage(Rank& receiver, int sourceRank,
                               std::uint64_t bytes);

 private:
  storage::Topology& topology_;
  RuntimeOptions options_;
  std::unique_ptr<Comm> world_;
  std::unique_ptr<sim::Event> completed_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::deque<Comm> extraComms_;
  std::map<std::string, std::shared_ptr<SharedFileState>> files_;
  struct PendingSend;
  using MessageChannel = sim::Channel<std::shared_ptr<PendingSend>>;
  std::map<std::pair<int, int>, std::unique_ptr<MessageChannel>>
      msgChannels_;
  MessageChannel& msgChannel(int src, int dst);
  int nextLogicalId_ = 1;
  double appElapsed_ = -1;
  RankMain mainFn_;  ///< kept alive for the duration of the run
};

}  // namespace iop::mpi
