// Interposition interface between the simulated MPI-IO layer and the
// tracing tool (the role PAS2P-IO plays in the paper).
//
// The MPI layer calls into a TraceSink for every I/O call, every file
// metadata event, and every communication event.  The trace module
// implements this interface; keeping it abstract here avoids a dependency
// cycle and mirrors how real interposition (PMPI) sits between the
// application and the library.
#pragma once

#include <cstdint>
#include <string>

namespace iop::mpi {

/// One MPI-IO call as the tracer sees it (the paper's Figure 2 row).
/// `offsetUnits` is the offset argument exactly as passed by the caller —
/// in etype units relative to the current file view, which is how MPI-IO
/// explicit offsets work and why the paper's Figure 2 shows etype-scaled
/// offsets.
struct IoCallRecord {
  int rank = 0;
  int fileId = 0;
  std::string op;
  std::uint64_t offsetUnits = 0;
  std::uint64_t tick = 0;
  std::uint64_t requestBytes = 0;
  double time = 0;      ///< entry time, seconds
  double duration = 0;  ///< exit - entry, seconds
};

/// Per-file metadata the paper's methodology extracts (Section III-A1):
/// access type (shared/unique), pointer kind, collectivity, view shape.
struct FileMetaRecord {
  int fileId = 0;
  std::string path;
  bool shared = true;           ///< one file for all processes
  std::uint64_t etypeBytes = 1;
  std::uint64_t viewDisp = 0;   ///< bytes
  std::uint64_t filetypeBlock = 1;   ///< etypes of data per tile
  std::uint64_t filetypeStride = 1;  ///< etypes per tile (== block: contiguous)
  bool sawCollective = false;
  bool sawExplicitOffsets = false;
  bool sawIndividualPointers = false;
  bool sawNonBlocking = false;
  int np = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onIoCall(const IoCallRecord& record) = 0;
  virtual void onFileMeta(const FileMetaRecord& record) = 0;
  /// Non-I/O MPI event (barrier, bcast, ...), for tick bookkeeping.
  virtual void onCommEvent(int rank, std::uint64_t tick,
                           const std::string& op, double time) = 0;
};

}  // namespace iop::mpi
