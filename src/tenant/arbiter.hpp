// Start-time fair queueing (SFQ) arbitration for one I/O server under
// multi-tenant load.
//
// Each request is tagged with a start tag S = max(V, F_prev(job)) and a
// finish tag F = S + bytes / weight(job); queued requests dispatch in
// (F, arrival-seq) order and the virtual time V advances to the start tag
// of each dispatched request.  Over a backlogged interval each job
// therefore receives device time proportional to its QoS weight —
// weighted fair queueing without per-job queues.
//
// Timing transparency: the arbiter only constrains requests while two or
// more *distinct* jobs have requests in flight on the server.  A lone
// job's traffic — including its own intra-job parallelism (striped slices,
// parallel ranks) — is granted immediately, so a 1-job tenant run is
// bit-identical to the same app simulated solo (pinned by
// tenant_test.cpp's SoloEquivalence).  The arbiter draws no random
// numbers: given the same request sequence it makes the same decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/server.hpp"
#include "tenant/conflict.hpp"

namespace iop::tenant {

class WfqArbiter final : public storage::ServerArbiter {
 public:
  /// `weights[j]` is job j's QoS share (> 0).  `slots` is the number of
  /// concurrent requests admitted while jobs are contending.  `conflict`
  /// (optional) receives interference accounting under `serverName`.
  WfqArbiter(sim::Engine& engine, std::string serverName,
             std::vector<double> weights, int slots,
             ConflictAnalyzer* conflict);

  sim::Task<void> admit(int job, std::uint64_t bytes, bool isWrite,
                        std::int64_t cause) override;
  void release(int job) override;

  std::uint64_t immediateGrants() const noexcept { return immediate_; }
  std::uint64_t queuedGrants() const noexcept { return queued_; }

 private:
  struct Waiter {
    Waiter(sim::Engine& engine, int job, double startTag, double finishTag,
           std::uint64_t seq, double enqueuedAt)
        : job(job), startTag(startTag), finishTag(finishTag), seq(seq),
          enqueuedAt(enqueuedAt), granted(engine) {}
    int job;
    double startTag;
    double finishTag;
    std::uint64_t seq;
    double enqueuedAt;
    sim::Event granted;
    std::int64_t obsAct = -1;
  };

  /// Distinct jobs with requests in flight (queued or in service).
  int distinctActive() const noexcept { return distinct_; }
  void noteActive(int job);    ///< request arrived
  void noteInactive(int job);  ///< request finished service
  void dispatchWaiters(int culprit);

  sim::Engine& engine_;
  std::string server_;
  std::vector<double> weights_;
  int slots_;
  ConflictAnalyzer* conflict_;

  std::deque<Waiter*> queue_;  ///< waiters live on their admit() frames
  std::vector<int> activeCount_;  ///< in-flight requests per job
  int distinct_ = 0;
  int inService_ = 0;
  double virtualTime_ = 0;
  std::vector<double> lastFinish_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t immediate_ = 0;
  std::uint64_t queued_ = 0;
  double overlapStart_ = 0;
};

}  // namespace iop::tenant
