#include "tenant/spec.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fault/plan.hpp"

namespace iop::tenant {

namespace {

// Hard sanity caps: a hostile spec must fail fast, not allocate for hours.
// kMaxJobs keeps JobView's remapped file ids inside int range.
constexpr int kMaxJobs = 200;
constexpr int kMaxNp = 4096;
constexpr int kMaxCount = 10000;
constexpr int kMaxRepeat = 10000;

std::vector<std::string> splitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

class LineParser {
 public:
  LineParser(const std::string& sourceName, int line)
      : sourceName_(sourceName), line_(line) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument(sourceName_ + ":" + std::to_string(line_) +
                                ": " + message);
  }

  double number(const std::string& text, const std::string& what) const {
    double value = 0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) {
      fail("bad " + what + " '" + text + "'");
    }
    return value;
  }

  int integer(const std::string& text, const std::string& what, int min,
              int max) const {
    const double v = number(text, what);
    if (v != static_cast<double>(static_cast<int>(v))) {
      fail(what + " must be an integer");
    }
    const int n = static_cast<int>(v);
    if (n < min || n > max) {
      fail(what + " must be in [" + std::to_string(min) + ", " +
           std::to_string(max) + "]");
    }
    return n;
  }

  /// "2s" / "500ms" / "3us" / bare seconds.
  double time(std::string text, const std::string& what) const {
    double scale = 1.0;
    if (text.size() > 2 && text.compare(text.size() - 2, 2, "ms") == 0) {
      scale = 1e-3;
      text.resize(text.size() - 2);
    } else if (text.size() > 2 &&
               text.compare(text.size() - 2, 2, "us") == 0) {
      scale = 1e-6;
      text.resize(text.size() - 2);
    } else if (text.size() > 1 && text.back() == 's') {
      text.pop_back();
    }
    const double value = number(text, what);
    if (value < 0) fail(what + " must be >= 0");
    return value * scale;
  }

  /// Split "key=value"; fails if `=` is missing.
  std::pair<std::string, std::string> keyValue(const std::string& text) const {
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
      fail("expected key=value, got '" + text + "'");
    }
    return {text.substr(0, eq), text.substr(eq + 1)};
  }

 private:
  const std::string& sourceName_;
  int line_;
};

/// "0s" | "periodic:start=0s,every=30s,count=3" | "poisson:rate=0.1,count=4".
ArrivalSpec parseArrival(const LineParser& p, const std::string& text) {
  ArrivalSpec arrival;
  const auto colon = text.find(':');
  const std::string head =
      colon == std::string::npos ? text : text.substr(0, colon);
  if (head == "periodic" || head == "poisson") {
    arrival.kind = head == "periodic" ? ArrivalSpec::Kind::Periodic
                                      : ArrivalSpec::Kind::Poisson;
    if (colon == std::string::npos || colon + 1 == text.size()) {
      p.fail("arrival=" + head + " needs options, e.g. " + head +
             (head == "periodic" ? ":start=0s,every=10s,count=3"
                                 : ":rate=0.1,count=3"));
    }
    std::istringstream opts(text.substr(colon + 1));
    std::string item;
    bool haveEvery = false;
    bool haveRate = false;
    while (std::getline(opts, item, ',')) {
      const auto [key, value] = p.keyValue(item);
      if (key == "start" && arrival.kind == ArrivalSpec::Kind::Periodic) {
        arrival.start = p.time(value, "start");
      } else if (key == "every" &&
                 arrival.kind == ArrivalSpec::Kind::Periodic) {
        arrival.every = p.time(value, "every");
        haveEvery = true;
      } else if (key == "rate" && arrival.kind == ArrivalSpec::Kind::Poisson) {
        arrival.rate = p.number(value, "rate");
        if (arrival.rate <= 0 || !std::isfinite(arrival.rate)) {
          p.fail("rate must be > 0 and finite");
        }
        haveRate = true;
      } else if (key == "count") {
        arrival.count = p.integer(value, "count", 1, kMaxCount);
      } else {
        p.fail("unknown arrival option '" + key + "' for " + head);
      }
    }
    if (arrival.kind == ArrivalSpec::Kind::Periodic && !haveEvery) {
      p.fail("periodic arrival needs every=<time>");
    }
    if (arrival.kind == ArrivalSpec::Kind::Poisson && !haveRate) {
      p.fail("poisson arrival needs rate=<arrivals/s>");
    }
    return arrival;
  }
  if (colon != std::string::npos) {
    p.fail("unknown arrival process '" + head +
           "' (expected a time, periodic:..., or poisson:...)");
  }
  arrival.kind = ArrivalSpec::Kind::Fixed;
  arrival.start = p.time(text, "arrival");
  arrival.count = 1;
  return arrival;
}

JobSpec parseJob(const LineParser& p, const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) {
    p.fail("expected: job <id> model=<path>|app=<name> [options]");
  }
  JobSpec job;
  job.id = tokens[1];
  if (job.id.find('#') != std::string::npos) {
    p.fail("job id must not contain '#' (reserved for track labels)");
  }
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = p.keyValue(tokens[i]);
    if (key == "model") {
      job.modelPath = value;
    } else if (key == "app") {
      job.app = value;
    } else if (key == "np") {
      job.np = p.integer(value, "np", 1, kMaxNp);
    } else if (key == "weight") {
      job.weight = p.number(value, "weight");
      if (job.weight <= 0 || !std::isfinite(job.weight)) {
        p.fail("weight must be > 0 and finite");
      }
    } else if (key == "arrival") {
      job.arrival = parseArrival(p, value);
    } else if (key == "repeat") {
      job.repeat = p.integer(value, "repeat", 1, kMaxRepeat);
    } else if (key == "burst-buffer") {
      if (value == "on") {
        job.burstBuffer = true;
      } else if (value == "off") {
        job.burstBuffer = false;
      } else {
        p.fail("burst-buffer must be on or off");
      }
    } else if (key.rfind("app-", 0) == 0 && key.size() > 4) {
      job.appParams[key.substr(4)] = value;
    } else {
      p.fail("unknown job option '" + key + "'");
    }
  }
  if (job.modelPath.empty() == job.app.empty()) {
    p.fail("job needs exactly one of model=<path> or app=<name>");
  }
  if (!job.modelPath.empty() && !job.appParams.empty()) {
    p.fail("app-* parameters only apply to app= jobs");
  }
  return job;
}

std::string renderArrival(const ArrivalSpec& a) {
  using fault::formatDouble;
  switch (a.kind) {
    case ArrivalSpec::Kind::Fixed:
      return formatDouble(a.start) + "s";
    case ArrivalSpec::Kind::Periodic:
      return "periodic:start=" + formatDouble(a.start) +
             "s,every=" + formatDouble(a.every) +
             "s,count=" + std::to_string(a.count);
    case ArrivalSpec::Kind::Poisson:
      return "poisson:rate=" + formatDouble(a.rate) +
             ",count=" + std::to_string(a.count);
  }
  return "";
}

}  // namespace

std::string TenantSpec::canonicalText() const {
  std::ostringstream out;
  out << "tenantspec v1\n";
  out << "arbiter slots=" << slots << "\n";
  for (const JobSpec& job : jobs) {
    out << "job " << job.id;
    if (!job.modelPath.empty()) {
      out << " model=" << job.modelPath;
    } else {
      out << " app=" << job.app;
      for (const auto& [key, value] : job.appParams) {
        out << " app-" << key << "=" << value;
      }
      out << " np=" << job.np;
    }
    out << " weight=" << fault::formatDouble(job.weight)
        << " arrival=" << renderArrival(job.arrival)
        << " repeat=" << job.repeat
        << " burst-buffer=" << (job.burstBuffer ? "on" : "off") << "\n";
  }
  return out.str();
}

TenantSpec parseTenantSpec(const std::string& text,
                           const std::string& sourceName) {
  TenantSpec spec;
  spec.source = sourceName;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  std::set<std::string> ids;
  while (std::getline(in, line)) {
    ++lineNo;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = splitTokens(line);
    if (tokens.empty()) continue;
    const LineParser p(sourceName, lineNo);
    const std::string& directive = tokens[0];
    if (directive == "arbiter") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = p.keyValue(tokens[i]);
        if (key == "slots") {
          spec.slots = p.integer(value, "slots", 1, 1024);
        } else {
          p.fail("unknown arbiter knob '" + key + "'");
        }
      }
    } else if (directive == "job") {
      JobSpec job = parseJob(p, tokens);
      job.line = lineNo;
      if (!ids.insert(job.id).second) {
        p.fail("duplicate job id '" + job.id + "'");
      }
      if (static_cast<int>(spec.jobs.size()) >= kMaxJobs) {
        p.fail("too many jobs (max " + std::to_string(kMaxJobs) + ")");
      }
      spec.jobs.push_back(std::move(job));
    } else {
      p.fail("unknown directive '" + directive +
             "' (expected arbiter or job)");
    }
  }
  return spec;
}

TenantSpec loadTenantSpec(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read tenant spec: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseTenantSpec(buffer.str(), path.string());
}

}  // namespace iop::tenant
