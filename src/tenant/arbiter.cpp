#include "tenant/arbiter.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/hub.hpp"

namespace iop::tenant {

WfqArbiter::WfqArbiter(sim::Engine& engine, std::string serverName,
                       std::vector<double> weights, int slots,
                       ConflictAnalyzer* conflict)
    : engine_(engine),
      server_(std::move(serverName)),
      weights_(std::move(weights)),
      slots_(slots),
      conflict_(conflict),
      activeCount_(weights_.size(), 0),
      lastFinish_(weights_.size(), 0.0) {
  if (weights_.empty()) {
    throw std::invalid_argument("arbiter needs at least one job weight");
  }
  for (double w : weights_) {
    if (!(w > 0)) throw std::invalid_argument("job weights must be > 0");
  }
  if (slots_ < 1) throw std::invalid_argument("arbiter slots must be >= 1");
}

void WfqArbiter::noteActive(int job) {
  if (++activeCount_[static_cast<std::size_t>(job)] == 1) {
    ++distinct_;
    if (distinct_ == 2) overlapStart_ = engine_.now();
  }
}

void WfqArbiter::noteInactive(int job) {
  if (--activeCount_[static_cast<std::size_t>(job)] == 0) {
    --distinct_;
    if (distinct_ == 1 && conflict_ != nullptr) {
      conflict_->noteOverlap(server_, engine_.now() - overlapStart_);
    }
  }
}

sim::Task<void> WfqArbiter::admit(int job, std::uint64_t bytes, bool isWrite,
                                  std::int64_t cause) {
  (void)isWrite;
  if (job < 0 || static_cast<std::size_t>(job) >= weights_.size()) {
    throw std::invalid_argument("tenant-job tag out of range");
  }
  const auto j = static_cast<std::size_t>(job);
  noteActive(job);
  const double start = std::max(virtualTime_, lastFinish_[j]);
  const double finish = start + static_cast<double>(bytes) / weights_[j];
  lastFinish_[j] = finish;
  // A lone tenant is never constrained (its own parallelism included);
  // under contention, cap concurrent service at `slots`.
  if (distinct_ <= 1 || inService_ < slots_) {
    ++inService_;
    virtualTime_ = std::max(virtualTime_, start);
    ++immediate_;
    co_return;
  }
  Waiter waiter(engine_, job, start, finish, nextSeq_++, engine_.now());
  obs::Hub* hub = engine_.obs();
  if (hub != nullptr && hub->edges != nullptr) {
    waiter.obsAct =
        hub->edges->begin(obs::ActKind::Other, /*rank=*/-1,
                          "tenant.wait " + server_, engine_.now(), bytes,
                          cause);
  }
  queue_.push_back(&waiter);
  co_await waiter.granted.wait();
  if (waiter.obsAct >= 0 && hub != nullptr && hub->edges != nullptr) {
    hub->edges->end(waiter.obsAct, engine_.now());
  }
  ++queued_;
}

void WfqArbiter::release(int job) {
  --inService_;
  noteInactive(job);
  dispatchWaiters(job);
}

void WfqArbiter::dispatchWaiters(int culprit) {
  // Dispatch in (finish tag, arrival seq) order while a slot is free —
  // or unconditionally once a single tenant remains (back to the
  // unconstrained regime).
  while (!queue_.empty() && (inService_ < slots_ || distinct_ <= 1)) {
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if ((*it)->finishTag < (*best)->finishTag ||
          ((*it)->finishTag == (*best)->finishTag &&
           (*it)->seq < (*best)->seq)) {
        best = it;
      }
    }
    Waiter* waiter = *best;
    queue_.erase(best);
    ++inService_;
    virtualTime_ = std::max(virtualTime_, waiter->startTag);
    if (conflict_ != nullptr) {
      conflict_->noteWait(server_, waiter->job, culprit,
                          engine_.now() - waiter->enqueuedAt);
    }
    waiter->granted.set();
  }
}

}  // namespace iop::tenant
