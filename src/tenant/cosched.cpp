#include "tenant/cosched.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "analysis/runner.hpp"
#include "analysis/synthesize.hpp"
#include "apps/registry.hpp"
#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "fault/injector.hpp"
#include "mpi/runtime.hpp"
#include "obs/hub.hpp"
#include "storage/topology.hpp"
#include "tenant/arbiter.hpp"
#include "tenant/jobfs.hpp"
#include "util/rng.hpp"

namespace iop::tenant {

namespace {

/// Sentinel modelPath marking the synthesized foreground job: its model
/// comes from TenantRunOptions::foregroundModel, never from a file.
constexpr const char* kForegroundModelPath = "<foreground>";

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<double> resolveArrivals(const ArrivalSpec& arrival,
                                    util::Rng& rng) {
  std::vector<double> out;
  switch (arrival.kind) {
    case ArrivalSpec::Kind::Fixed:
      out.push_back(arrival.start);
      break;
    case ArrivalSpec::Kind::Periodic:
      for (int k = 0; k < arrival.count; ++k) {
        out.push_back(arrival.start +
                      static_cast<double>(k) * arrival.every);
      }
      break;
    case ArrivalSpec::Kind::Poisson: {
      double t = 0;
      for (int k = 0; k < arrival.count; ++k) {
        t += rng.exponential(1.0 / arrival.rate);
        out.push_back(t);
      }
      break;
    }
  }
  return out;
}

/// Load or characterize a job's model; app characterizations are cached
/// per (app, params, np) within one runTenant call.
core::IOModel resolveModel(const JobSpec& job,
                           const analysis::ConfigBuilder& builder,
                           std::map<std::string, core::IOModel>& cache) {
  if (!job.modelPath.empty()) {
    return core::IOModel::load(job.modelPath);
  }
  std::string key = job.app + "|np=" + std::to_string(job.np);
  for (const auto& [k, v] : job.appParams) key += "|" + k + "=" + v;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  configs::ClusterConfig cluster = builder();
  auto main = apps::makeApp(job.app, cluster.mount, job.appParams);
  auto run =
      analysis::runAndTrace(cluster, job.app, std::move(main), job.np);
  return cache.emplace(key, std::move(run.model)).first->second;
}

std::vector<JobPhase> phasesFromClock(const core::IOModel& model,
                                      const analysis::PhaseClock& clock) {
  std::vector<JobPhase> out;
  const auto& phases = model.phases();
  for (std::size_t i = 0;
       i < phases.size() && i < clock.windows.size(); ++i) {
    if (!clock.windows[i].touched) continue;
    out.push_back(JobPhase{phases[i].id, phases[i].familyId,
                           phases[i].weightBytes,
                           clock.windows[i].duration()});
  }
  return out;
}

struct SoloOutcome {
  double timeIo = 0;
  std::vector<JobPhase> phases;
};

/// One instance alone on a fresh configuration — the exact single-app
/// degraded-replay path (analysis/degraded.cpp), plus the job's burst
/// buffer when it asked for one.
SoloOutcome runSolo(const core::IOModel& model, bool burstBuffer,
                    const analysis::ConfigBuilder& builder,
                    const fault::FaultPlan* plan, std::uint64_t seed) {
  configs::ClusterConfig config = builder();
  std::shared_ptr<fault::FaultInjector> injector;
  if (plan != nullptr && !plan->empty()) {
    injector = fault::installFaults(config, *plan, seed);
  }
  SoloOutcome out;
  analysis::PhaseClock clock;
  if (!burstBuffer) {
    mpi::Runtime runtime(*config.topology,
                         config.runtimeOptions(model.np()));
    out.timeIo = runtime.runToCompletion(
        analysis::makeSyntheticApp(model, config.mount, &clock));
    out.phases = phasesFromClock(model, clock);
    return out;
  }
  auto view = std::make_unique<JobView>(
      *config.engine, config.topology->fs(config.mount), 0);
  view->attachBurstBuffer(
      storage::BurstBufferParams{},
      config.topology->node(config.computeNodes.front()));
  storage::BurstBuffer* burst = view->burstBuffer();
  const std::string soloMount = config.mount + "#solo";
  config.topology->mount(soloMount, std::move(view));
  mpi::RuntimeOptions opts = config.runtimeOptions(model.np());
  // Tell the drainer to exit once it has drained the leftovers; without
  // this the engine sees a forever-parked drainer and reports deadlock.
  opts.onAppComplete = [burst] { burst->shutdown(); };
  mpi::Runtime runtime(*config.topology, std::move(opts));
  out.timeIo = runtime.runToCompletion(
      analysis::makeSyntheticApp(model, soloMount, &clock));
  out.phases = phasesFromClock(model, clock);
  return out;
}

/// Everything one contended run needs; member coroutines avoid owning
/// std::function coroutine parameters (GCC 12 miscompiles those).
struct ContendedRun {
  sim::Engine& engine;
  storage::Topology& topology;
  const TenantSpec& spec;
  const std::vector<core::IOModel>& models;
  std::vector<std::vector<double>> arrivals;  ///< per job
  std::vector<std::string> jobMounts;
  std::vector<mpi::RuntimeOptions> jobOptions;
  std::vector<JobView*> views;

  struct JobState {
    analysis::PhaseClock firstClock;
    std::vector<double> elapsed;  ///< per instance
    double firstStart = 0;
    double lastEnd = 0;
    std::unique_ptr<sim::Event> done;
  };
  std::vector<JobState> state;
  std::vector<std::unique_ptr<mpi::Runtime>> runtimes;

  sim::Task<void> jobDriver(std::size_t j) {
    JobState& js = state[j];
    bool first = true;
    for (double at : arrivals[j]) {
      if (at > engine.now()) co_await engine.delay(at - engine.now());
      for (int r = 0; r < spec.jobs[j].repeat; ++r) {
        const double start = engine.now();
        if (first) js.firstStart = start;
        std::int64_t act = -1;
        if (obs::Hub* hub = engine.obs();
            hub != nullptr && hub->edges != nullptr) {
          act = hub->edges->begin(obs::ActKind::Other, /*rank=*/-1,
                                  "tenant.job " + spec.jobs[j].id, start,
                                  models[j].totalWeightBytes());
        }
        auto runtime = std::make_unique<mpi::Runtime>(topology, jobOptions[j]);
        runtime->launch(analysis::makeSyntheticApp(
            models[j], jobMounts[j], first ? &js.firstClock : nullptr));
        first = false;
        co_await runtime->completed().wait();
        js.elapsed.push_back(engine.now() - start);
        js.lastEnd = engine.now();
        if (act >= 0) engine.obs()->edges->end(act, engine.now());
        runtimes.push_back(std::move(runtime));
      }
    }
    js.done->set();
  }

  sim::Task<void> closer() {
    for (JobState& js : state) co_await js.done->wait();
    for (JobView* view : views) {
      if (view->burstBuffer() != nullptr) view->burstBuffer()->shutdown();
    }
    topology.shutdown();
  }
};

double jainIndex(const std::vector<double>& shares) {
  if (shares.empty()) return 1.0;
  double sum = 0;
  double sumSq = 0;
  for (double x : shares) {
    sum += x;
    sumSq += x * x;
  }
  if (sumSq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(shares.size()) * sumSq);
}

/// A spec whose only job arrives once at t=0 without staging takes the
/// exact single-app replay path (the bit-identity contract).
bool triviallySolo(const TenantSpec& spec) {
  if (spec.jobs.size() != 1) return false;
  const JobSpec& job = spec.jobs.front();
  return job.arrival.kind == ArrivalSpec::Kind::Fixed &&
         job.arrival.start == 0.0 && job.repeat == 1 && !job.burstBuffer;
}

}  // namespace

TenantResult runTenant(const TenantSpec& inputSpec,
                       const analysis::ConfigBuilder& builder,
                       std::uint64_t seed, const TenantRunOptions& options) {
  if (inputSpec.empty()) {
    throw std::invalid_argument("tenant spec declares no jobs");
  }
  // The sweep's tenant axis: prepend the in-memory foreground model as a
  // plain weight-1 job arriving at t=0.  It enters the canonical text (and
  // therefore the arrival-stream seeding) like any declared job, so the
  // composed run stays byte-reproducible.
  TenantSpec spec = inputSpec;
  if (options.foregroundModel != nullptr) {
    for (const JobSpec& job : inputSpec.jobs) {
      if (job.id == options.foregroundId) {
        throw std::invalid_argument(
            "tenant spec already declares a job named '" +
            options.foregroundId + "' (reserved for the foreground job)");
      }
    }
    JobSpec fg;
    fg.id = options.foregroundId;
    fg.modelPath = kForegroundModelPath;
    fg.np = options.foregroundModel->np();
    spec.jobs.insert(spec.jobs.begin(), std::move(fg));
  }
  const std::size_t n = spec.jobs.size();

  TenantResult result;
  result.seed = seed;
  result.specCanonical = spec.canonicalText();

  // Per-job arrival streams: split in declaration order off a master
  // generator keyed by (seed, canonical spec text) — the fault-plan
  // determinism contract.
  util::Rng master(seed ^ fnv1a64(result.specCanonical));
  std::vector<std::vector<double>> arrivals;
  arrivals.reserve(n);
  for (const JobSpec& job : spec.jobs) {
    util::Rng jobRng = master.split();
    arrivals.push_back(resolveArrivals(job.arrival, jobRng));
  }

  // Resolve every job's model up front (characterizations cached).
  std::map<std::string, core::IOModel> cache;
  std::vector<core::IOModel> models;
  models.reserve(n);
  for (const JobSpec& job : spec.jobs) {
    if (job.modelPath == kForegroundModelPath &&
        options.foregroundModel != nullptr) {
      models.push_back(*options.foregroundModel);
    } else {
      models.push_back(resolveModel(job, builder, cache));
    }
  }

  // Solo baselines (deduplicated per model identity + staging mode).
  std::map<std::string, SoloOutcome> soloCache;
  std::vector<SoloOutcome> solo(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::string key =
        (spec.jobs[j].burstBuffer ? "bb|" : "raw|") +
        std::to_string(fnv1a64(models[j].renderText()));
    auto it = soloCache.find(key);
    if (it == soloCache.end()) {
      it = soloCache
               .emplace(key, runSolo(models[j], spec.jobs[j].burstBuffer,
                                     builder, options.faultPlan, seed))
               .first;
    }
    solo[j] = it->second;
  }

  ConflictAnalyzer conflict(static_cast<int>(n));
  std::vector<TenantJobResult> jobs(n);
  for (std::size_t j = 0; j < n; ++j) {
    TenantJobResult& out = jobs[j];
    out.id = spec.jobs[j].id;
    out.appName = models[j].appName();
    out.np = models[j].np();
    out.weight = spec.jobs[j].weight;
    out.burstBuffer = spec.jobs[j].burstBuffer;
    out.arrivals = arrivals[j];
    out.repeat = spec.jobs[j].repeat;
    out.soloTimeIo = solo[j].timeIo;
  }

  if (triviallySolo(spec)) {
    // The solo baseline IS the run: no arbiters, no extra nodes, no
    // JobView — bit-identical to the single-app estimate.
    TenantJobResult& out = jobs[0];
    out.instances = 1;
    out.firstStart = 0;
    out.lastEnd = solo[0].timeIo;
    out.contendedTimeIo = solo[0].timeIo;
    out.slowdown = 1.0;
    out.phases = solo[0].phases;
    result.configName = builder().name;
    result.makespan = solo[0].timeIo;
    result.jain = 1.0;
    result.jobs = std::move(jobs);
    result.interference = conflict.interference();
    result.serverConflicts = conflict.servers();
    return result;
  }

  // ---- The contended run: one shared engine + topology. ----
  configs::ClusterConfig config = builder();
  result.configName = config.name;
  std::shared_ptr<fault::FaultInjector> injector;
  if (options.faultPlan != nullptr && !options.faultPlan->empty()) {
    injector = fault::installFaults(config, *options.faultPlan, seed);
  }
  sim::Engine& engine = *config.engine;
  storage::Topology& topology = *config.topology;

  // Per-job compute partitions: job 0 keeps the original compute nodes,
  // every other job gets same-link clones — separate NICs, shared
  // storage servers (the contention point).
  std::vector<std::vector<std::size_t>> jobNodes(n);
  jobNodes[0] = config.computeNodes;
  for (std::size_t idx : config.computeNodes) {
    topology.node(idx).setTenantJob(0);
  }
  for (std::size_t j = 1; j < n; ++j) {
    for (std::size_t idx : config.computeNodes) {
      storage::Node& orig = topology.node(idx);
      storage::Node& clone = topology.addNode(
          orig.name() + "#" + spec.jobs[j].id, orig.link());
      clone.setTenantJob(static_cast<int>(j));
      jobNodes[j].push_back(static_cast<std::size_t>(clone.id()));
    }
  }

  // QoS arbitration on every I/O server.
  std::vector<double> weights;
  weights.reserve(n);
  for (const JobSpec& job : spec.jobs) weights.push_back(job.weight);
  std::vector<std::unique_ptr<WfqArbiter>> arbiters;
  for (const auto& server : topology.ioServers()) {
    arbiters.push_back(std::make_unique<WfqArbiter>(
        engine, server->node().name(), weights, spec.slots, &conflict));
    server->setArbiter(arbiters.back().get());
  }

  // Per-job filesystem views and runtime options.
  storage::FileSystem& shared = topology.fs(config.mount);
  ContendedRun run{engine, topology, spec, models, {}, {}, {}, {}, {}, {}};
  run.arrivals = arrivals;
  run.state.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto view = std::make_unique<JobView>(engine, shared,
                                          static_cast<int>(j));
    if (spec.jobs[j].burstBuffer) {
      view->attachBurstBuffer(storage::BurstBufferParams{},
                              topology.node(jobNodes[j].front()));
    }
    run.views.push_back(view.get());
    const std::string jobMount = config.mount + "#" + spec.jobs[j].id;
    topology.mount(jobMount, std::move(view));
    run.jobMounts.push_back(jobMount);

    mpi::RuntimeOptions opts = config.runtimeOptions(models[j].np());
    opts.computeNodes = jobNodes[j];
    opts.shutdownTopologyOnCompletion = false;
    if (options.perJobTracks) {
      opts.trackPrefix = "job#" + spec.jobs[j].id + " ";
    }
    run.jobOptions.push_back(std::move(opts));
    run.state[j].done = std::make_unique<sim::Event>(engine);
  }

  for (std::size_t j = 0; j < n; ++j) engine.spawn(run.jobDriver(j));
  engine.spawn(run.closer());
  engine.run();

  // ---- Fold the outcome. ----
  double makespan = 0;
  std::vector<double> shares;
  shares.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    TenantJobResult& out = jobs[j];
    const ContendedRun::JobState& js = run.state[j];
    out.instances = static_cast<int>(js.elapsed.size());
    out.firstStart = js.firstStart;
    out.lastEnd = js.lastEnd;
    double sum = 0;
    for (double e : js.elapsed) sum += e;
    out.contendedTimeIo =
        js.elapsed.empty() ? 0 : sum / static_cast<double>(js.elapsed.size());
    out.slowdown = out.soloTimeIo > 0 ? out.contendedTimeIo / out.soloTimeIo
                                      : 1.0;
    out.waitSeconds = conflict.waitSeconds(static_cast<int>(j));
    out.phases = phasesFromClock(models[j], js.firstClock);
    if (storage::BurstBuffer* burst = run.views[j]->burstBuffer()) {
      out.bbAbsorbedBytes = burst->absorbedBytes();
      out.bbSpilledBytes = burst->spilledBytes();
      out.bbDrainedBytes = burst->drainedBytes();
    }
    makespan = std::max(makespan, js.lastEnd);
    shares.push_back(out.contendedTimeIo > 0
                         ? out.soloTimeIo / out.contendedTimeIo
                         : 1.0);
  }
  result.makespan = makespan;
  result.jain = jainIndex(shares);
  result.jobs = std::move(jobs);
  result.interference = conflict.interference();
  result.serverConflicts = conflict.servers();
  return result;
}

}  // namespace iop::tenant
