#include "tenant/jobfs.hpp"

namespace iop::tenant {

JobView::JobView(sim::Engine& engine, storage::FileSystem& inner, int jobTag)
    : storage::FileSystem(engine), inner_(inner), jobTag_(jobTag) {}

void JobView::attachBurstBuffer(storage::BurstBufferParams params,
                                storage::Node& drainClient) {
  storage::Node* node = &drainClient;
  burst_ = std::make_unique<storage::BurstBuffer>(
      engine_, std::move(params),
      [this, node](int fileId, std::uint64_t offset, std::uint64_t size,
                   std::int64_t cause) {
        return inner_.write(*node, fileId, offset, size, cause);
      });
}

sim::Task<void> JobView::write(storage::Node& client, int fileId,
                               std::uint64_t offset, std::uint64_t size,
                               std::int64_t cause) {
  if (burst_ != nullptr) {
    return burst_->absorb(remap(fileId), offset, size, cause);
  }
  return inner_.write(client, remap(fileId), offset, size, cause);
}

sim::Task<void> JobView::read(storage::Node& client, int fileId,
                              std::uint64_t offset, std::uint64_t size,
                              std::int64_t cause) {
  return inner_.read(client, remap(fileId), offset, size, cause);
}

sim::Task<void> JobView::metadataOp(storage::Node& client,
                                    std::int64_t cause) {
  return inner_.metadataOp(client, cause);
}

std::string JobView::describe() const {
  std::string out =
      "job#" + std::to_string(jobTag_) + "(" + inner_.describe() + ")";
  if (burst_ != nullptr) out += "+burst-buffer";
  return out;
}

}  // namespace iop::tenant
