// Per-job view of a shared filesystem.
//
// Each tenant job mounts its own JobView over the one real filesystem:
// the view remaps file ids into a job-private range (so jobs never alias
// each other's lazily-allocated extent windows) and, when the job asked
// for it, stages writes through a node-local SSD burst buffer that drains
// to the shared backing tier in the background.  Reads and metadata ops
// pass straight through — the simulation models timing, not data, so
// reading not-yet-drained bytes from the backing tier is a conservative
// approximation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "storage/filesystem.hpp"
#include "storage/ssd.hpp"

namespace iop::tenant {

class JobView final : public storage::FileSystem {
 public:
  /// File ids are remapped as jobTag * kJobFileStride + fileId; the rank
  /// layer's ids stay well under the stride (logicalId * 100000 + np).
  static constexpr int kJobFileStride = 10'000'000;

  JobView(sim::Engine& engine, storage::FileSystem& inner, int jobTag);

  /// Stage this job's writes through a burst buffer; `drainClient` is the
  /// (job-tagged) node that carries the background drain traffic.
  void attachBurstBuffer(storage::BurstBufferParams params,
                         storage::Node& drainClient);
  storage::BurstBuffer* burstBuffer() noexcept { return burst_.get(); }

  sim::Task<void> write(storage::Node& client, int fileId,
                        std::uint64_t offset, std::uint64_t size,
                        std::int64_t cause = -1) override;
  sim::Task<void> read(storage::Node& client, int fileId,
                       std::uint64_t offset, std::uint64_t size,
                       std::int64_t cause = -1) override;
  sim::Task<void> metadataOp(storage::Node& client,
                             std::int64_t cause = -1) override;
  std::vector<storage::IoServer*> servers() override {
    return inner_.servers();
  }
  std::vector<storage::IoServer*> dataServers() override {
    return inner_.dataServers();
  }
  std::string describe() const override;

 private:
  int remap(int fileId) const noexcept {
    return jobTag_ * kJobFileStride + fileId;
  }

  storage::FileSystem& inner_;
  int jobTag_;
  std::unique_ptr<storage::BurstBuffer> burst_;
};

}  // namespace iop::tenant
