// Co-scheduling N app models against one shared storage configuration.
//
// runTenant() resolves each job of a TenantSpec to an I/O model (loading
// a saved model or characterizing the named app on a fresh instance of
// the target configuration), then replays every job's synthetic
// application on ONE shared simulation engine and topology: per-job
// compute-node partitions tagged with the job index, per-job JobView
// mounts (file-id isolation + optional burst buffer), and a WfqArbiter on
// every I/O server enforcing the QoS weights while a ConflictAnalyzer
// records who waited behind whom.  Per-job slowdown compares against a
// solo baseline replayed with identical machinery on a fresh instance of
// the same configuration.
//
// Determinism: all arrival randomness comes from per-job xoshiro streams
// split, in declaration order, off a master generator seeded with
// mix(run seed, hash(spec.canonicalText())) — the same contract fault
// plans follow.  Two runs with the same spec and seed are byte-identical;
// a 1-job spec (arrival 0, repeat 1, no burst buffer) takes the exact
// single-app replay path and reproduces its estimate bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/replay.hpp"
#include "core/iomodel.hpp"
#include "fault/plan.hpp"
#include "tenant/conflict.hpp"
#include "tenant/spec.hpp"

namespace iop::tenant {

struct TenantRunOptions {
  /// Compose with a fault plan: installed on the shared contended
  /// topology AND on every solo-baseline replica (same seed), so the
  /// slowdown column isolates contention from faults.
  const fault::FaultPlan* faultPlan = nullptr;
  /// Name the ranks' trace tracks "job#<id> rank N" (for --trace-out).
  bool perJobTracks = false;
  /// Co-schedule this in-memory model as an extra foreground job
  /// (id `foregroundId`, weight 1, arrival 0, repeat 1, no staging)
  /// prepended to the spec's jobs.  This is the sweep's tenant axis: the
  /// cell's model is estimated *under* the spec's background contention,
  /// and jobs.front() of the result is the foreground.  The spec must not
  /// already declare a job with that id.
  const core::IOModel* foregroundModel = nullptr;
  std::string foregroundId = "cell";
};

/// One phase row of a job's contended replay (first instance).
struct JobPhase {
  int id = 0;
  int familyId = 0;
  std::uint64_t weightBytes = 0;
  double seconds = 0;
};

struct TenantJobResult {
  std::string id;
  std::string appName;
  int np = 0;
  double weight = 1.0;
  bool burstBuffer = false;
  std::vector<double> arrivals;  ///< resolved arrival times, sim seconds
  int repeat = 1;
  int instances = 0;        ///< arrivals x repeat actually run
  double firstStart = 0;    ///< sim time the first instance launched
  double lastEnd = 0;       ///< sim time the last instance completed
  double soloTimeIo = 0;    ///< one instance alone on the configuration
  double contendedTimeIo = 0;  ///< mean per-instance elapsed, contended
  double slowdown = 1.0;       ///< contendedTimeIo / soloTimeIo
  double waitSeconds = 0;      ///< queued behind other tenants (arbiter)
  std::uint64_t bbAbsorbedBytes = 0;
  std::uint64_t bbSpilledBytes = 0;
  std::uint64_t bbDrainedBytes = 0;
  std::vector<JobPhase> phases;  ///< contended first-instance windows
};

struct TenantResult {
  std::uint64_t seed = 0;
  std::string configName;
  std::string specCanonical;
  double makespan = 0;  ///< last job completion (background drain excl.)
  double jain = 1.0;    ///< Jain fairness index over solo/contended shares
  std::vector<TenantJobResult> jobs;
  /// interference[victim][culprit]: seconds victim queued behind culprit.
  std::vector<std::vector<double>> interference;
  std::vector<ServerConflict> serverConflicts;
};

/// Simulate `spec` on the builder's configuration under `seed`.
/// Throws std::invalid_argument for an empty spec and propagates model /
/// characterization errors.
TenantResult runTenant(const TenantSpec& spec,
                       const analysis::ConfigBuilder& builder,
                       std::uint64_t seed,
                       const TenantRunOptions& options = {});

}  // namespace iop::tenant
