// Cross-job interference accounting for multi-tenant runs.
//
// Every WfqArbiter (one per I/O server) reports into one ConflictAnalyzer:
// how long each job's requests sat queued behind other tenants (the
// victim x culprit interference matrix), and the per-server overlap
// windows — wall-stretches where requests of two or more distinct jobs
// were simultaneously in flight on one server.  The analyzer is passive
// bookkeeping; rendering happens in report.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace iop::tenant {

struct ServerConflict {
  std::string server;           ///< I/O server node name
  double overlapSeconds = 0;    ///< time with >= 2 distinct jobs in flight
  std::uint64_t overlapWindows = 0;
  std::uint64_t queuedRequests = 0;  ///< requests that had to wait
  double queuedSeconds = 0;          ///< total time those requests waited
};

class ConflictAnalyzer {
 public:
  explicit ConflictAnalyzer(int jobCount);

  /// A request of `victim` waited `seconds` and was unblocked by a
  /// completion of `culprit` on `server`.
  void noteWait(const std::string& server, int victim, int culprit,
                double seconds);

  /// One closed overlap window on `server`.
  void noteOverlap(const std::string& server, double seconds);

  int jobCount() const noexcept { return jobCount_; }

  /// interference[victim][culprit]: seconds victim spent queued behind a
  /// slot culprit was holding.
  const std::vector<std::vector<double>>& interference() const noexcept {
    return interference_;
  }

  /// Total queued-behind-others time per victim job.
  double waitSeconds(int victim) const;

  /// Per-server accounting, in server-name order (deterministic).
  std::vector<ServerConflict> servers() const;

 private:
  ServerConflict& serverEntry(const std::string& server);

  int jobCount_;
  std::vector<std::vector<double>> interference_;
  std::map<std::string, ServerConflict> servers_;
};

}  // namespace iop::tenant
