#include "tenant/report.hpp"

#include <sstream>
#include <stdexcept>

#include "fault/plan.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::tenant {

namespace {

std::string sec(double s) { return util::formatSeconds(s, 4); }

std::string ratio(double r) { return util::formatSeconds(r, 3); }

}  // namespace

std::string renderTenantReport(const TenantResult& result) {
  std::ostringstream out;
  out << "tenant run: " << result.jobs.size() << " job"
      << (result.jobs.size() == 1 ? "" : "s") << " on " << result.configName
      << " (seed " << result.seed << ")\n";
  out << "makespan: " << sec(result.makespan) << " s\n";
  out << "Jain fairness index: " << ratio(result.jain) << "\n\n";

  util::Table jobs("per-job I/O time");
  jobs.setHeader({"job", "app", "np", "weight", "bb", "inst", "solo s",
                  "contended s", "slowdown", "wait s"},
                 {util::Align::Left, util::Align::Left, util::Align::Right,
                  util::Align::Right, util::Align::Left, util::Align::Right,
                  util::Align::Right, util::Align::Right, util::Align::Right,
                  util::Align::Right});
  for (const TenantJobResult& job : result.jobs) {
    jobs.addRow({job.id, job.appName, std::to_string(job.np),
                 fault::formatDouble(job.weight),
                 job.burstBuffer ? "on" : "off",
                 std::to_string(job.instances), sec(job.soloTimeIo),
                 sec(job.contendedTimeIo), ratio(job.slowdown),
                 sec(job.waitSeconds)});
  }
  out << jobs.render();

  // Victim x culprit wait matrix; only meaningful with >= 2 jobs.
  if (result.jobs.size() > 1 && !result.interference.empty()) {
    util::Table matrix("interference (s victim queued behind culprit)");
    std::vector<std::string> header{"victim \\ culprit"};
    std::vector<util::Align> align{util::Align::Left};
    for (const TenantJobResult& job : result.jobs) {
      header.push_back(job.id);
      align.push_back(util::Align::Right);
    }
    matrix.setHeader(std::move(header), std::move(align));
    for (std::size_t v = 0; v < result.jobs.size(); ++v) {
      std::vector<std::string> row{result.jobs[v].id};
      for (std::size_t c = 0; c < result.jobs.size(); ++c) {
        row.push_back(v == c ? "-" : sec(result.interference[v][c]));
      }
      matrix.addRow(std::move(row));
    }
    out << "\n" << matrix.render();
  }

  if (!result.serverConflicts.empty()) {
    util::Table servers("per-server contention");
    servers.setHeader({"server", "overlap s", "windows", "queued reqs",
                       "queued s"},
                      {util::Align::Left, util::Align::Right,
                       util::Align::Right, util::Align::Right,
                       util::Align::Right});
    for (const ServerConflict& s : result.serverConflicts) {
      servers.addRow({s.server, sec(s.overlapSeconds),
                      std::to_string(s.overlapWindows),
                      std::to_string(s.queuedRequests),
                      sec(s.queuedSeconds)});
    }
    out << "\n" << servers.render();
  }

  bool anyBurst = false;
  for (const TenantJobResult& job : result.jobs) {
    anyBurst = anyBurst || job.burstBuffer;
  }
  if (anyBurst) {
    util::Table burst("burst-buffer staging");
    burst.setHeader({"job", "absorbed", "spilled", "drained"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right, util::Align::Right});
    for (const TenantJobResult& job : result.jobs) {
      if (!job.burstBuffer) continue;
      burst.addRow({job.id, util::formatBytes(job.bbAbsorbedBytes),
                    util::formatBytes(job.bbSpilledBytes),
                    util::formatBytes(job.bbDrainedBytes)});
    }
    out << "\n" << burst.render();
  }
  return out.str();
}

obs::RunCapture makeJobCapture(const TenantResult& result,
                               std::size_t jobIndex) {
  if (jobIndex >= result.jobs.size()) {
    throw std::invalid_argument("makeJobCapture: job index out of range");
  }
  const TenantJobResult& job = result.jobs[jobIndex];
  obs::RunCapture cap;
  cap.app = job.appName;
  cap.np = job.np;
  cap.config = result.configName + "+tenant" +
               std::to_string(result.jobs.size());
  cap.makespan = job.contendedTimeIo;
  for (const JobPhase& phase : job.phases) {
    obs::CapturePhase cp;
    cp.id = phase.id;
    cp.familyId = phase.familyId;
    cp.weightBytes = phase.weightBytes;
    cp.ioSeconds = phase.seconds;
    cp.bandwidth = phase.seconds > 0
                       ? static_cast<double>(phase.weightBytes) / phase.seconds
                       : 0;
    cp.label = "job " + job.id + " phase " + std::to_string(phase.id);
    cap.phases.push_back(std::move(cp));
  }
  return cap;
}

}  // namespace iop::tenant
