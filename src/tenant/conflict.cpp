#include "tenant/conflict.hpp"

namespace iop::tenant {

ConflictAnalyzer::ConflictAnalyzer(int jobCount)
    : jobCount_(jobCount),
      interference_(static_cast<std::size_t>(jobCount),
                    std::vector<double>(static_cast<std::size_t>(jobCount),
                                        0.0)) {}

ServerConflict& ConflictAnalyzer::serverEntry(const std::string& server) {
  auto [it, inserted] = servers_.emplace(server, ServerConflict{});
  if (inserted) it->second.server = server;
  return it->second;
}

void ConflictAnalyzer::noteWait(const std::string& server, int victim,
                                int culprit, double seconds) {
  if (victim < 0 || victim >= jobCount_) return;
  if (culprit >= 0 && culprit < jobCount_ && culprit != victim) {
    interference_[static_cast<std::size_t>(victim)]
                 [static_cast<std::size_t>(culprit)] += seconds;
  }
  ServerConflict& entry = serverEntry(server);
  ++entry.queuedRequests;
  entry.queuedSeconds += seconds;
}

void ConflictAnalyzer::noteOverlap(const std::string& server,
                                   double seconds) {
  ServerConflict& entry = serverEntry(server);
  ++entry.overlapWindows;
  entry.overlapSeconds += seconds;
}

double ConflictAnalyzer::waitSeconds(int victim) const {
  if (victim < 0 || victim >= jobCount_) return 0;
  double sum = 0;
  for (double v : interference_[static_cast<std::size_t>(victim)]) sum += v;
  return sum;
}

std::vector<ServerConflict> ConflictAnalyzer::servers() const {
  std::vector<ServerConflict> out;
  out.reserve(servers_.size());
  for (const auto& [name, entry] : servers_) out.push_back(entry);
  return out;
}

}  // namespace iop::tenant
