// Rendering a TenantResult: the fairness/slowdown report and per-job
// captures for the archive.
#pragma once

#include <string>

#include "obs/capture.hpp"
#include "tenant/cosched.hpp"

namespace iop::tenant {

/// The full deterministic text report: run header with the Jain fairness
/// index, per-job table (solo vs contended Time_io, slowdown, arbiter
/// wait), the victim x culprit interference matrix, per-server overlap
/// accounting, and burst-buffer statistics when any job staged writes.
/// Identical results render to identical bytes (CI reruns diff this).
std::string renderTenantReport(const TenantResult& result);

/// Capture of one job's contended replay (phase rows = first-instance
/// windows) for `iop-tenant run --archive`: archived under a
/// "<label>#<jobid>" label so iop-trend tracks each job separately.
obs::RunCapture makeJobCapture(const TenantResult& result,
                               std::size_t jobIndex);

}  // namespace iop::tenant
