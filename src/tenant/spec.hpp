// Declarative tenant specs: a small text format describing N jobs that
// share one storage system (docs/TENANT.md).
//
//   # comments and blank lines are ignored
//   arbiter slots=1
//   job fg  app=example np=4 weight=2 arrival=0s
//   job bg1 app=example np=4 arrival=periodic:start=5s,every=30s,count=3
//   job bg2 model=mad.model arrival=poisson:rate=0.05,count=4 burst-buffer=on
//
// Each `job` line declares a tenant: either a saved I/O model
// (`model=<path>`) or an application characterized on the fly
// (`app=<name>` with optional `np=` and `app-<key>=<value>` knobs).
// `weight` is the job's QoS share at the storage arbiter, `arrival` its
// arrival process (fixed time, periodic train, or seeded Poisson), and
// `repeat` replays the model back-to-back per arrival.  Times accept
// `s`/`ms`/`us` suffixes (bare numbers are seconds).  Parsing is strict —
// malformed lines fail with `file:line:` diagnostics, never silently skip.
//
// Determinism contract: a spec's canonicalText() plus a run seed fully
// determine every Poisson arrival draw in a run; the arbiter itself is
// RNG-free (see docs/TENANT.md).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace iop::tenant {

struct ArrivalSpec {
  enum class Kind { Fixed, Periodic, Poisson };

  Kind kind = Kind::Fixed;
  double start = 0.0;  ///< Fixed: the arrival; Periodic: the first one
  double every = 0.0;  ///< Periodic: inter-arrival gap, sim seconds
  double rate = 0.0;   ///< Poisson: mean arrivals per sim second
  int count = 1;       ///< instances launched (Fixed is always 1)
};

struct JobSpec {
  std::string id;         ///< unique per spec; labels reports and tracks
  std::string modelPath;  ///< saved model file (exclusive with `app`)
  std::string app;        ///< registry app name (exclusive with `modelPath`)
  std::map<std::string, std::string> appParams;  ///< from app-<key>=<v>
  int np = 4;             ///< processes (app jobs; models carry their own)
  double weight = 1.0;    ///< QoS share at the storage arbiter (> 0)
  ArrivalSpec arrival;
  int repeat = 1;         ///< back-to-back replays per arrival
  bool burstBuffer = false;  ///< stage writes through the SSD burst buffer
  int line = 0;           ///< 1-based source line (diagnostics)
};

struct TenantSpec {
  std::string source;  ///< file path or label the spec was parsed from
  int slots = 1;       ///< concurrent requests the arbiter admits per server
  std::vector<JobSpec> jobs;

  bool empty() const noexcept { return jobs.empty(); }

  /// Normalized re-rendering: whitespace- and comment-insensitive, with
  /// shortest-round-trip numbers.  This is the spec's identity for cache
  /// keys and for seeding the co-scheduler's RNG streams.
  std::string canonicalText() const;
};

/// Parse a spec from text.  `sourceName` labels diagnostics ("jobs.tenant:3:
/// ...").  Throws std::invalid_argument on any malformed line.
TenantSpec parseTenantSpec(const std::string& text,
                           const std::string& sourceName);

/// Read + parse a spec file.  Throws std::runtime_error if unreadable.
TenantSpec loadTenantSpec(const std::filesystem::path& path);

}  // namespace iop::tenant
