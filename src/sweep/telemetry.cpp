#include "sweep/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace iop::sweep {

namespace {

std::string esc(const std::string& raw) {
  return obs::TraceRecorder::jsonEscape(raw);
}

std::string fmtSec(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string fmtNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

constexpr auto kRenderInterval = std::chrono::milliseconds(100);

}  // namespace

// --------------------------------------------------------- ProgressMeter

ProgressMeter::ProgressMeter(bool enabled, std::FILE* out)
    : enabled_(enabled), out_(out) {}

void ProgressMeter::begin(std::size_t cells, std::size_t cached,
                          std::size_t shared, std::size_t pending,
                          std::size_t workers) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    cells_ = cells;
    cached_ = cached;
    shared_ = shared;
    pending_ = pending;
    workers_ = std::max<std::size_t>(workers, 1);
  }
  maybeRender();
}

void ProgressMeter::claim() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++busy_;
  }
  maybeRender();
}

void ProgressMeter::cellDone(double seconds, bool failed) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++done_;
    if (failed) ++failed_;
    ewma_ = ewma_ == 0 ? seconds : 0.3 * seconds + 0.7 * ewma_;
  }
  maybeRender();
}

void ProgressMeter::release() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (busy_ > 0) --busy_;
}

std::size_t ProgressMeter::doneCells() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return done_;
}

double ProgressMeter::ewmaSeconds() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return ewma_;
}

double ProgressMeter::etaLocked() const {
  if (pending_ <= done_ || workers_ == 0) return 0;
  return ewma_ * static_cast<double>(pending_ - done_) /
         static_cast<double>(workers_);
}

double ProgressMeter::etaSeconds() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return etaLocked();
}

double ProgressMeter::hitRate() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return cells_ == 0 ? 0 : static_cast<double>(cached_) /
                               static_cast<double>(cells_);
}

std::string ProgressMeter::renderLocked() const {
  char buf[256];
  std::string line;
  std::snprintf(buf, sizeof buf, "[%zu/%zu] ", done_, pending_);
  line += buf;
  std::snprintf(buf, sizeof buf, "computed %zu", done_ - failed_);
  line += buf;
  if (failed_ > 0) {
    std::snprintf(buf, sizeof buf, " failed %zu", failed_);
    line += buf;
  }
  std::snprintf(buf, sizeof buf, " | cached %zu", cached_);
  line += buf;
  if (shared_ > 0) {
    std::snprintf(buf, sizeof buf, " (%zu shared)", shared_);
    line += buf;
  }
  const double eta = etaLocked();
  if (eta > 0) {
    std::snprintf(buf, sizeof buf, " | eta %.1fs", eta);
    line += buf;
  }
  std::snprintf(buf, sizeof buf, " | workers %zu/%zu busy", busy_,
                workers_);
  line += buf;
  return line;
}

std::string ProgressMeter::renderLine() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return renderLocked();
}

void ProgressMeter::maybeRender() {
  if (!enabled_ || out_ == nullptr) return;
  std::lock_guard<std::mutex> guard(mutex_);
  const auto now = std::chrono::steady_clock::now();
  if (lastRender_.time_since_epoch().count() != 0 &&
      now - lastRender_ < kRenderInterval) {
    return;
  }
  lastRender_ = now;
  std::string line = renderLocked();
  const std::size_t width = line.size();
  // Pad with spaces so a shrinking line fully overwrites its predecessor.
  if (width < lastWidth_) line.append(lastWidth_ - width, ' ');
  lastWidth_ = width;
  std::fprintf(out_, "\r%s", line.c_str());
  std::fflush(out_);
}

void ProgressMeter::finish() {
  if (!enabled_ || out_ == nullptr) return;
  std::lock_guard<std::mutex> guard(mutex_);
  std::string line = renderLocked();
  if (line.size() < lastWidth_) line.append(lastWidth_ - line.size(), ' ');
  std::fprintf(out_, "\r%s\n", line.c_str());
  std::fflush(out_);
  enabled_ = false;  // finish() renders once
}

// -------------------------------------------------------- SweepTelemetry

SweepTelemetry::SweepTelemetry(const TelemetryConfig& config)
    : progress_(config.progress),
      execTraceOut_(config.execTraceOut),
      epoch_(std::chrono::steady_clock::now()) {
  if (!config.journalPath.empty()) {
    journal_ = std::make_unique<obs::RunJournal>(config.journalPath);
  }
  if (!config.execTraceOut.empty()) {
    trace_ = std::make_unique<obs::ExecTrace>();
  }
  if (!config.telemetryOut.empty()) {
    snapshotter_ = std::make_unique<obs::TelemetrySnapshotter>(
        runtime_, config.telemetryOut,
        std::max(config.telemetryIntervalMs, 10));
  }
}

SweepTelemetry::~SweepTelemetry() { finish(); }

double SweepTelemetry::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SweepTelemetry::modelCacheHit(const std::string& model) {
  runtime_.counter("sweep.model_cache_hits").add();
  if (journal_) {
    journal_->event("model_cache_hit", "\"model\":\"" + esc(model) + "\"");
  }
}

void SweepTelemetry::modelCharacterized(const std::string& model,
                                        std::size_t phases,
                                        double seconds) {
  runtime_.counter("sweep.characterized").add();
  runtime_.histogram("sweep.resolve_seconds", obs::latencyBucketsSeconds())
      .observe(seconds);
  if (journal_) {
    journal_->event("model_characterized",
                    "\"model\":\"" + esc(model) +
                        "\",\"phases\":" + std::to_string(phases) +
                        ",\"seconds\":" + fmtSec(seconds));
  }
}

void SweepTelemetry::characterizeSpan(std::size_t worker,
                                      const std::string& model,
                                      double beginSec, double endSec) {
  if (!trace_) return;
  trace_->span(trace_->workerTrack(worker), "characterize " + model,
               "resolve", beginSec, endSec);
}

void SweepTelemetry::campaignStart(const std::string& name,
                                   const std::string& configHash,
                                   int jobs) {
  if (journal_) {
    journal_->event("campaign_start",
                    "\"campaign\":\"" + esc(name) + "\",\"config\":\"" +
                        esc(configHash) +
                        "\",\"jobs\":" + std::to_string(jobs));
  }
}

void SweepTelemetry::execStart(std::size_t cells, std::size_t cached,
                               std::size_t shared, std::size_t pending,
                               std::size_t workers) {
  runtime_.counter("sweep.cells").add(cells);
  runtime_.counter("sweep.pending").add(pending);
  progress_.begin(cells, cached, shared, pending, workers);
  if (journal_) {
    journal_->event("exec_start",
                    "\"cells\":" + std::to_string(cells) +
                        ",\"cached\":" + std::to_string(cached) +
                        ",\"shared\":" + std::to_string(shared) +
                        ",\"pending\":" + std::to_string(pending) +
                        ",\"workers\":" + std::to_string(workers));
  }
}

void SweepTelemetry::cacheHit(const std::string& cell,
                              const std::string& key, bool shared) {
  runtime_.counter("sweep.cache_hits").add();
  if (shared) runtime_.counter("sweep.shared_hits").add();
  if (journal_) {
    journal_->event(shared ? "shared_hit" : "cache_hit",
                    "\"cell\":\"" + esc(cell) + "\",\"key\":\"" + esc(key) +
                        "\"");
  }
}

void SweepTelemetry::cellQuarantined(const std::string& cell,
                                     const std::string& key,
                                     const std::string& error,
                                     bool shared) {
  runtime_.counter("sweep.quarantined").add();
  if (journal_) {
    journal_->event("cell_quarantined",
                    "\"cell\":\"" + esc(cell) + "\",\"key\":\"" + esc(key) +
                        "\",\"error\":\"" + esc(error) + "\",\"shared\":" +
                        (shared ? "true" : "false"));
  }
  if (trace_) {
    trace_->instant(trace_->controlTrack(), "quarantine " + cell, "store",
                    now(), "\"key\":\"" + esc(key) + "\"");
  }
}

void SweepTelemetry::workerSpawn(std::size_t worker) {
  runtime_.counter("sweep.worker_spawns").add();
  if (journal_) {
    journal_->event("worker_spawn",
                    "\"worker\":" + std::to_string(worker));
  }
}

void SweepTelemetry::workerIdle(std::size_t worker) {
  if (journal_) {
    journal_->event("worker_idle", "\"worker\":" + std::to_string(worker));
  }
}

void SweepTelemetry::cellClaim(std::size_t worker, const std::string& cell,
                               const std::string& key) {
  runtime_.gauge("sweep.workers_busy").add(1);
  progress_.claim();
  if (journal_) {
    journal_->event("cell_claim",
                    "\"worker\":" + std::to_string(worker) +
                        ",\"cell\":\"" + esc(cell) + "\",\"key\":\"" +
                        esc(key) + "\"");
  }
}

void SweepTelemetry::cellCommit(std::size_t worker, const std::string& cell,
                                const std::string& key, double claimSec,
                                double evalSec, double commitSec,
                                double timeIo, std::size_t iorRuns,
                                bool faulted) {
  runtime_.counter("sweep.computed").add();
  runtime_.histogram("sweep.replay_seconds", obs::latencyBucketsSeconds())
      .observe(evalSec - claimSec);
  runtime_.histogram("sweep.commit_seconds", obs::latencyBucketsSeconds())
      .observe(commitSec - evalSec);
  runtime_.gauge("sweep.workers_busy").add(-1);
  progress_.cellDone(commitSec - claimSec, /*failed=*/false);
  progress_.release();
  if (journal_) {
    journal_->event(
        "cell_commit",
        "\"worker\":" + std::to_string(worker) + ",\"cell\":\"" +
            esc(cell) + "\",\"key\":\"" + esc(key) +
            "\",\"seconds\":" + fmtSec(commitSec - claimSec) +
            ",\"commit_seconds\":" + fmtSec(commitSec - evalSec) +
            ",\"time_io\":" + fmtNum(timeIo) +
            ",\"ior_runs\":" + std::to_string(iorRuns) +
            ",\"faulted\":" + (faulted ? "true" : "false"));
    maybeNoteJournalDisabled();
  }
  if (trace_) {
    const int tid = trace_->workerTrack(worker);
    trace_->span(tid, "replay " + cell, "replay", claimSec, evalSec,
                 "\"key\":\"" + esc(key) + "\"");
    trace_->span(tid, "commit " + cell, "commit", evalSec, commitSec,
                 "\"key\":\"" + esc(key) + "\"");
    if (faulted) {
      trace_->instant(tid, "fault " + cell, "fault", claimSec,
                      "\"key\":\"" + esc(key) + "\"");
    }
  }
}

void SweepTelemetry::cellFailed(std::size_t worker, const std::string& cell,
                                const std::string& key, double claimSec,
                                double failSec, const std::string& error) {
  runtime_.counter("sweep.failures").add();
  runtime_.gauge("sweep.workers_busy").add(-1);
  progress_.cellDone(failSec - claimSec, /*failed=*/true);
  progress_.release();
  if (journal_) {
    journal_->event("cell_failed",
                    "\"worker\":" + std::to_string(worker) +
                        ",\"cell\":\"" + esc(cell) + "\",\"key\":\"" +
                        esc(key) + "\",\"seconds\":" +
                        fmtSec(failSec - claimSec) + ",\"error\":\"" +
                        esc(error) + "\"");
    maybeNoteJournalDisabled();
  }
  if (trace_) {
    const int tid = trace_->workerTrack(worker);
    trace_->span(tid, "replay " + cell, "replay", claimSec, failSec,
                 "\"key\":\"" + esc(key) + "\"");
    trace_->instant(tid, "failed " + cell, "fault", failSec,
                    "\"key\":\"" + esc(key) + "\"");
  }
}

void SweepTelemetry::cellSlow(std::size_t worker, const std::string& cell,
                              const std::string& key, double deadlineSec) {
  runtime_.counter("sweep.cells_slow").add();
  runtime_.gauge("sweep.slow_cells").add(1);
  if (journal_) {
    journal_->event("cell_slow",
                    "\"worker\":" + std::to_string(worker) +
                        ",\"cell\":\"" + esc(cell) + "\",\"key\":\"" +
                        esc(key) +
                        "\",\"deadline_s\":" + fmtSec(deadlineSec));
    maybeNoteJournalDisabled();
  }
  if (trace_) {
    trace_->instant(trace_->workerTrack(worker), "slow " + cell, "watchdog",
                    now(), "\"key\":\"" + esc(key) + "\"");
  }
}

void SweepTelemetry::cellSlowResolved() {
  runtime_.gauge("sweep.slow_cells").add(-1);
}

void SweepTelemetry::cellStuck(std::size_t worker, const std::string& cell,
                               const std::string& key, int attempt,
                               double deadlineSec, bool retrying) {
  runtime_.counter("sweep.cells_stuck").add();
  runtime_.gauge("sweep.workers_busy").add(-1);
  progress_.release();
  if (!retrying) {
    progress_.cellDone(deadlineSec, /*failed=*/true);
  }
  if (journal_) {
    journal_->event("cell_stuck",
                    "\"worker\":" + std::to_string(worker) +
                        ",\"cell\":\"" + esc(cell) + "\",\"key\":\"" +
                        esc(key) + "\",\"attempt\":" +
                        std::to_string(attempt) +
                        ",\"deadline_s\":" + fmtSec(deadlineSec) +
                        ",\"retry\":" + (retrying ? "true" : "false"));
    maybeNoteJournalDisabled();
  }
  if (trace_) {
    const int tid = trace_->workerTrack(worker);
    trace_->instant(tid, "stuck " + cell, "watchdog", now(),
                    "\"key\":\"" + esc(key) + "\"");
  }
}

void SweepTelemetry::arenaTrimmed(std::size_t worker,
                                  std::size_t releasedBytes,
                                  std::size_t slabBytes) {
  runtime_.counter("sim.arena_trim_bytes").add(releasedBytes);
  // Last writer wins across workers: the gauge tracks one thread-local
  // arena's footprint, which is representative — workers run the same
  // kind of cells — without needing per-worker metric names.
  runtime_.gauge("sim.arena_bytes").set(static_cast<double>(slabBytes));
  if (trace_ && releasedBytes > 0) {
    trace_->counterSample(trace_->workerTrack(worker), "arena bytes",
                          now(), static_cast<double>(slabBytes));
  }
}

void SweepTelemetry::shutdownNoticed() {
  if (shutdownSeen_.exchange(true, std::memory_order_relaxed)) return;
  runtime_.counter("sweep.shutdowns").add();
  if (journal_) journal_->event("shutdown_requested");
  if (trace_) {
    trace_->instant(trace_->controlTrack(), "shutdown requested",
                    "signal", now());
  }
}

void SweepTelemetry::cellsSkipped(std::size_t count) {
  runtime_.counter("sweep.skipped").add(count);
  if (journal_) {
    journal_->event("cells_skipped", "\"count\":" + std::to_string(count));
  }
}

void SweepTelemetry::runComplete(std::size_t cells, std::size_t cacheHits,
                                 std::size_t sharedHits,
                                 std::size_t computed, std::size_t failures,
                                 std::size_t skipped,
                                 std::size_t quarantined, bool interrupted,
                                 double wallSeconds) {
  if (journal_) {
    journal_->event(
        "run_complete",
        "\"cells\":" + std::to_string(cells) +
            ",\"cache_hits\":" + std::to_string(cacheHits) +
            ",\"shared_hits\":" + std::to_string(sharedHits) +
            ",\"computed\":" + std::to_string(computed) +
            ",\"failures\":" + std::to_string(failures) +
            ",\"skipped\":" + std::to_string(skipped) +
            ",\"quarantined\":" + std::to_string(quarantined) +
            ",\"interrupted\":" + (interrupted ? "true" : "false") +
            ",\"wall_seconds\":" + fmtSec(wallSeconds));
  }
}

void SweepTelemetry::maybeNoteJournalDisabled() {
  if (!journal_ || !journal_->disabled()) return;
  if (journalDisabledNoted_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  runtime_.counter("sweep.journal_disabled").add();
}

void SweepTelemetry::finish() {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  maybeNoteJournalDisabled();
  if (snapshotter_) snapshotter_->stop();
  progress_.finish();
  if (trace_ && !execTraceOut_.empty()) trace_->saveJson(execTraceOut_);
}

}  // namespace iop::sweep
