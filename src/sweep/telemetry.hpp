// Runtime telemetry for campaign execution: the glue between the sweep
// executor and the obs wall-clock instruments (obs/runtime.hpp).
//
// One SweepTelemetry object per `iop-sweep run` bundles the three pillars:
//
//   * a RunJournal flight recorder under <store>/journal/ — every
//     lifecycle event (campaign start, cache hits, cell claims/commits,
//     worker spawns, shutdown) as one flushed JSONL line, so a crashed or
//     SIGKILLed run leaves a reconstructable timeline (see postmortem.hpp);
//   * a RuntimeMetrics registry (+ optional TelemetrySnapshotter writing
//     Prometheus text exposition to --telemetry-out on a timer);
//   * an optional ExecTrace emitting the execution itself — one
//     Chrome/Perfetto track per worker, spans for characterize / replay /
//     commit — to --exec-trace-out.
//
// Everything here is observation-only: no instrument feeds back into any
// scheduling or result-affecting decision, so a store written with
// telemetry on is byte-identical to one written with it off (the tests
// and CI pin exactly that).  All hook methods are thread-safe; a null
// SweepTelemetry pointer in SweepOptions/ResolveOptions disables the
// whole subsystem at zero cost.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/runtime.hpp"

namespace iop::sweep {

struct TelemetryConfig {
  std::string journalPath;    ///< JSONL flight recorder ("" = off)
  std::string telemetryOut;   ///< Prometheus snapshot file ("" = off)
  int telemetryIntervalMs = 500;
  bool progress = false;      ///< live status line on stderr
  std::string execTraceOut;   ///< Chrome trace of the execution ("" = off)
};

/// Progress accounting for one run, with an optional single-line TTY
/// display.  `done` counts evaluated cells only (computed + failed);
/// cached and shared-store hits are tracked separately so a resume that
/// is 100% cache hits reports an honest 0-cells-evaluated, matching the
/// journal, instead of an inflated done count.  The ETA is an EWMA of
/// per-cell wall seconds scaled by the remaining pending cells per
/// worker.
class ProgressMeter {
 public:
  explicit ProgressMeter(bool enabled, std::FILE* out = stderr);

  void begin(std::size_t cells, std::size_t cached, std::size_t shared,
             std::size_t pending, std::size_t workers);
  void claim();
  void cellDone(double seconds, bool failed);
  void release();  ///< a claimed cell finished (busy worker count -1)
  void finish();   ///< final render + newline (enabled only)

  std::size_t doneCells() const;
  double ewmaSeconds() const;
  double etaSeconds() const;
  /// Fraction of the grid served from caches, in [0, 1].
  double hitRate() const;
  std::string renderLine() const;

 private:
  std::string renderLocked() const;
  double etaLocked() const;
  void maybeRender();

  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::FILE* out_ = nullptr;
  std::size_t cells_ = 0;
  std::size_t cached_ = 0;
  std::size_t shared_ = 0;
  std::size_t pending_ = 0;
  std::size_t workers_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t busy_ = 0;
  double ewma_ = 0;  ///< EWMA of per-cell seconds (alpha = 0.3)
  std::chrono::steady_clock::time_point lastRender_{};
  std::size_t lastWidth_ = 0;
};

/// The per-run telemetry bundle.  Hook methods fan each event out to the
/// journal, the metrics registry, the exec trace and the progress meter —
/// whichever of those the config enabled.
class SweepTelemetry {
 public:
  explicit SweepTelemetry(const TelemetryConfig& config);
  ~SweepTelemetry();

  SweepTelemetry(const SweepTelemetry&) = delete;
  SweepTelemetry& operator=(const SweepTelemetry&) = delete;

  obs::RuntimeMetrics& runtime() noexcept { return runtime_; }
  obs::RunJournal* journal() noexcept { return journal_.get(); }
  obs::ExecTrace* trace() noexcept { return trace_.get(); }
  ProgressMeter& progress() noexcept { return progress_; }

  /// Wall-clock seconds since construction (the exec-trace timebase).
  double now() const;

  // ---- campaign resolution (campaign.cpp) ----
  void modelCacheHit(const std::string& model);
  void modelCharacterized(const std::string& model, std::size_t phases,
                          double seconds);
  /// Trace-only: the characterize span on resolver-worker `worker`'s
  /// track.  Safe from any thread while resolution runs.
  void characterizeSpan(std::size_t worker, const std::string& model,
                        double beginSec, double endSec);

  // ---- run lifecycle (iop_sweep.cpp / executor.cpp) ----
  void campaignStart(const std::string& name, const std::string& configHash,
                     int jobs);
  void execStart(std::size_t cells, std::size_t cached, std::size_t shared,
                 std::size_t pending, std::size_t workers);
  void cacheHit(const std::string& cell, const std::string& key,
                bool shared);
  void cellQuarantined(const std::string& cell, const std::string& key,
                       const std::string& error, bool shared);
  void workerSpawn(std::size_t worker);
  void workerIdle(std::size_t worker);
  void cellClaim(std::size_t worker, const std::string& cell,
                 const std::string& key);
  void cellCommit(std::size_t worker, const std::string& cell,
                  const std::string& key, double claimSec, double evalSec,
                  double commitSec, double timeIo, std::size_t iorRuns,
                  bool faulted);
  void cellFailed(std::size_t worker, const std::string& cell,
                  const std::string& key, double claimSec, double failSec,
                  const std::string& error);
  /// Watchdog: a cell crossed its soft deadline (still running).  The
  /// `sweep.slow_cells` gauge goes +1 here and -1 when the cell resolves
  /// (commit, failure or hard-deadline abandonment).
  void cellSlow(std::size_t worker, const std::string& cell,
                const std::string& key, double deadlineSec);
  void cellSlowResolved();
  /// Watchdog: a cell crossed its hard deadline and was abandoned.
  /// `retrying` is true when attempt 1 was quarantined and the cell was
  /// queued for one retry on another worker; false means the retry also
  /// stuck and the cell is terminally failed.
  void cellStuck(std::size_t worker, const std::string& cell,
                 const std::string& key, int attempt, double deadlineSec,
                 bool retrying);
  void arenaTrimmed(std::size_t worker, std::size_t releasedBytes,
                    std::size_t slabBytes);
  void shutdownNoticed();  ///< idempotent: first caller journals it
  void cellsSkipped(std::size_t count);
  void runComplete(std::size_t cells, std::size_t cacheHits,
                   std::size_t sharedHits, std::size_t computed,
                   std::size_t failures, std::size_t skipped,
                   std::size_t quarantined, bool interrupted,
                   double wallSeconds);

  /// Flush everything: stop the snapshot thread (writing one final
  /// exposition), finish the progress line, save the exec trace.
  /// Idempotent; also runs on destruction.
  void finish();

 private:
  /// Bumps `sweep.journal_disabled` (once) after a journal write failure
  /// silenced the flight recorder, so the loss shows up in the metrics
  /// even though the journal itself can no longer record it.
  void maybeNoteJournalDisabled();

  obs::RuntimeMetrics runtime_;
  std::unique_ptr<obs::RunJournal> journal_;
  std::unique_ptr<obs::ExecTrace> trace_;
  std::unique_ptr<obs::TelemetrySnapshotter> snapshotter_;
  ProgressMeter progress_;
  std::string execTraceOut_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> shutdownSeen_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> journalDisabledNoted_{false};
};

}  // namespace iop::sweep
