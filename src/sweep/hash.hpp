// Stable content hashing for the sweep result cache.
//
// Cache keys must be identical across runs, platforms and thread counts,
// and must change whenever anything that could change a cell's result
// changes: the model text, the configuration identity, the fault factors,
// or the estimator implementation version.  FNV-1a 64 over a canonical
// byte sequence gives exactly that (this is a cache key, not a security
// boundary — collisions would only ever serve a stale result, and the
// keyed inputs are a handful of small first-party texts).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iop::sweep {

class ContentHash {
 public:
  /// Feed bytes; a zero byte is appended after every update so field
  /// boundaries can never alias ("ab"+"c" != "a"+"bc").
  void update(std::string_view bytes) noexcept;

  std::uint64_t value() const noexcept { return state_; }

  /// 16 lowercase hex digits of value().
  std::string hex() const;

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

/// One-shot convenience.
std::string hashHex(std::string_view bytes);

}  // namespace iop::sweep
