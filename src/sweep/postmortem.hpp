// Postmortem reconstruction of a campaign run from its flight-recorder
// journal (telemetry.hpp / obs::RunJournal).
//
// A journal is append-only and flushed per event, so after a crash or
// SIGKILL it ends at the last thing the process did.  analyzeJournal()
// folds the event stream into a Postmortem: what the run was, how far it
// got, whether it finished, and — the part that matters after a kill —
// exactly which cells were claimed but never committed (the in-flight
// set).  Those cells lost at most their own work: the store only ever
// holds whole cells (atomic renames), so `iop-sweep resume` recomputes
// precisely the in-flight + never-claimed remainder.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/runtime.hpp"

namespace iop::sweep {

/// A cell that was claimed but neither committed nor failed before the
/// journal ended.
struct InFlightCell {
  std::size_t worker = 0;
  std::string cell;  ///< human title
  std::string key;
  double claimedAt = 0;  ///< journal time of the claim
};

struct Postmortem {
  // Identity (journal_start / campaign_start).
  std::string schema;
  double startUnixMs = 0;
  long pid = 0;
  std::string campaign;
  std::string configHash;
  int jobs = 0;

  // Grid shape (exec_start).
  std::size_t cells = 0;
  std::size_t pending = 0;
  std::size_t workers = 0;

  // Progress tallies folded over the stream.
  std::size_t events = 0;
  std::size_t badLines = 0;
  std::size_t cacheHits = 0;
  std::size_t sharedHits = 0;
  std::size_t quarantined = 0;
  std::size_t claims = 0;
  std::size_t commits = 0;
  std::size_t failures = 0;
  std::size_t stuck = 0;  ///< watchdog hard-deadline abandonments
  std::size_t skippedCells = 0;

  bool shutdownRequested = false;
  bool complete = false;     ///< the journal contains run_complete
  bool interrupted = false;  ///< run_complete reported a cancelled run
  double lastEventT = 0;
  std::string lastEventName;

  std::vector<InFlightCell> inFlight;  ///< claim order
};

/// Fold a parsed journal into a Postmortem.  Tolerant by construction:
/// unknown events are counted and skipped, missing fields default to
/// zero, so journals from newer/older writers still analyze.
Postmortem analyzeJournal(const obs::JournalParse& parsed);

/// Human-readable report (multi-line, trailing newline).
std::string renderPostmortem(const Postmortem& pm,
                             const std::filesystem::path& journalPath);

/// The newest `run-*.jsonl` under `<storeRoot>/journal`, or an empty path
/// when none exist.  "Newest" by the unix-ms timestamp embedded in the
/// filename, so it works on filesystems with coarse mtimes.
std::filesystem::path newestJournal(const std::filesystem::path& storeRoot);

}  // namespace iop::sweep
