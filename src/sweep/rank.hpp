// Ranking and reporting: turn a campaign store into the paper's
// configuration-selection answer (Table XII, generalized).
//
// Cells are grouped per (model, fault scenario) — the axes a deployment
// question holds fixed — and ranked by estimated Time_io ascending (eq. 1);
// ties and context get the weight-normalized effective bandwidth
// (total weight / Time_io).  The top-ranked candidate of each group is the
// configuration the paper's methodology selects.
//
// Fault-plan and tenant-spec cells aggregate first: each configuration's
// seeded replicas collapse into one entry ranked by its *median*
// (degraded / contended) Time_io, so a single unlucky seed cannot flip
// the selection.  Replicas whose run died at phase level (retries
// exhausted, no failover) count against the entry and drop it to the
// bottom when no seed survived.
//
// Every table carries a "dev sat" column: the peak per-phase bandwidth
// over the configuration's aggregate ideal device bandwidth.  Candidates
// at >= 90% are flagged PINNED — they may win on Time_io while running a
// device at its limit, with no headroom left.
#pragma once

#include <string>
#include <vector>

#include "sweep/executor.hpp"

namespace iop::sweep {

struct RankedCell {
  const CellOutcome* cell = nullptr;  ///< representative (median) cell
  std::size_t rank = 0;   ///< 1-based within its group
  bool selected = false;  ///< rank 1 and not failed
  double timeIo = 0;      ///< median Time_io across the entry's seeds
  std::size_t seeds = 1;    ///< replicas aggregated into this entry
  std::size_t okSeeds = 1;  ///< replicas that completed
  bool anyComputed = false;  ///< at least one replica freshly evaluated
};

struct RankGroup {
  std::string title;  ///< "model [dd=.. dn=..] [fault=..] [tenant=..]"
  bool faulted = false;             ///< group carries seeded replicas
  std::vector<RankedCell> entries;  ///< Time_io ascending, failures last
};

/// Group and rank a sweep's cells.  Order of groups follows canonical
/// campaign order of their first cell.
std::vector<RankGroup> rankOutcome(const ResolvedCampaign& campaign,
                                   const SweepOutcome& outcome);

/// Render the ranked report (one table per group): rank, config, Time_io,
/// effective bandwidth, device saturation, IOR runs (or seeds ok),
/// cache/computed/failed status.
std::string renderReport(const ResolvedCampaign& campaign,
                         const SweepOutcome& outcome);

}  // namespace iop::sweep
