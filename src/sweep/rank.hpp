// Ranking and reporting: turn a campaign store into the paper's
// configuration-selection answer (Table XII, generalized).
//
// Cells are grouped per (model, fault scenario) — the axes a deployment
// question holds fixed — and ranked by estimated Time_io ascending (eq. 1);
// ties and context get the weight-normalized effective bandwidth
// (total weight / Time_io).  The top-ranked candidate of each group is the
// configuration the paper's methodology selects.
#pragma once

#include <string>
#include <vector>

#include "sweep/executor.hpp"

namespace iop::sweep {

struct RankedCell {
  const CellOutcome* cell = nullptr;
  std::size_t rank = 0;   ///< 1-based within its group
  bool selected = false;  ///< rank 1 and not failed
};

struct RankGroup {
  std::string title;  ///< "model [dd=.. dn=..]"
  std::vector<RankedCell> entries;  ///< Time_io ascending, failures last
};

/// Group and rank a sweep's cells.  Order of groups follows canonical
/// campaign order of their first cell.
std::vector<RankGroup> rankOutcome(const ResolvedCampaign& campaign,
                                   const SweepOutcome& outcome);

/// Render the ranked report (one table per group): rank, config, Time_io,
/// effective bandwidth, IOR runs, cache/computed/failed status.
std::string renderReport(const ResolvedCampaign& campaign,
                         const SweepOutcome& outcome);

}  // namespace iop::sweep
