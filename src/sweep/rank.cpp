#include "sweep/rank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>

#include "analysis/degraded.hpp"
#include "analysis/evaluate.hpp"
#include "storage/disk.hpp"
#include "storage/filesystem.hpp"
#include "storage/topology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::sweep {

namespace {

std::string groupTitle(const ResolvedCampaign& campaign,
                       const CellSpec& cell) {
  std::string title = campaign.models[cell.modelIndex].label;
  if (cell.degradeDisks != 1.0 || cell.degradeNet != 1.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, " [dd=%g dn=%g]", cell.degradeDisks,
                  cell.degradeNet);
    title += buf;
  }
  if (cell.faulted()) {
    title += " [fault=" + campaign.faults[cell.faultIndex].label + "]";
  }
  if (cell.tenanted()) {
    if (!campaign.faults[cell.faultIndex].none()) {
      title += " [fault=" + campaign.faults[cell.faultIndex].label + "]";
    }
    title += " [tenant=" + campaign.tenants[cell.tenantIndex].label + "]";
  }
  return title;
}

std::string statusName(CellOutcome::Status status) {
  switch (status) {
    case CellOutcome::Status::Cached:
      return "cached";
    case CellOutcome::Status::Computed:
      return "computed";
    case CellOutcome::Status::Failed:
      return "FAILED";
    case CellOutcome::Status::Skipped:
      return "SKIPPED";
  }
  return "?";
}

/// A replica completed its run: the executor committed it and the fault
/// plan didn't kill the workload at phase level.
bool replicaOk(const CellOutcome& cell) {
  return (cell.status == CellOutcome::Status::Cached ||
          cell.status == CellOutcome::Status::Computed) &&
         !cell.result.faultFailed();
}

/// Collapse one configuration's seeded replicas into a single ranked
/// entry: median Time_io over the surviving seeds, represented by the
/// replica closest to that median.
RankedCell aggregateSeeds(const std::vector<const CellOutcome*>& cells) {
  RankedCell entry;
  entry.seeds = cells.size();
  entry.okSeeds = 0;
  std::vector<double> times;
  for (const CellOutcome* cell : cells) {
    if (cell->status == CellOutcome::Status::Computed) {
      entry.anyComputed = true;
    }
    if (!replicaOk(*cell)) continue;
    ++entry.okSeeds;
    times.push_back(cell->result.timeIo);
  }
  entry.timeIo = analysis::medianOf(times);
  entry.cell = cells.front();
  if (entry.okSeeds > 0) {
    double bestDelta = -1;
    for (const CellOutcome* cell : cells) {
      if (!replicaOk(*cell)) continue;
      const double delta = std::abs(cell->result.timeIo - entry.timeIo);
      if (bestDelta < 0 || delta < bestDelta) {
        bestDelta = delta;
        entry.cell = cell;
      }
    }
  }
  return entry;
}

/// The report's device-saturation column: peak per-phase bandwidth over
/// the configuration's aggregate ideal device bandwidth (the same
/// "devices working in parallel" reference the paper's BW_PK reasoning
/// uses, per op type).  A candidate can win on Time_io while pinning its
/// devices at their limit — no headroom for growth or interference — so
/// entries at >= 90% are flagged PINNED.  Values above 100% mean the
/// page cache served part of the phase.
class SaturationColumn {
 public:
  explicit SaturationColumn(const ResolvedCampaign& campaign)
      : campaign_(campaign) {}

  std::string render(const CellOutcome& cell) {
    const auto& phases = cell.result.phases;
    if (phases.empty()) return "-";
    const auto [idealRead, idealWrite] =
        ideals(cell.spec.configIndex, cell.spec.degradeDisks,
               cell.spec.degradeNet);
    // Stored phase rows carry the model phase id; the model knows the op
    // type ("W", "R" or "W-R") that picks the reference bandwidth.
    const auto& modelPhases =
        campaign_.models[cell.spec.modelIndex].model.phases();
    std::map<int, const core::Phase*> byId;
    for (const auto& p : modelPhases) byId.emplace(p.id, &p);
    double peak = 0;
    bool any = false;
    for (const auto& row : phases) {
      if (row.bandwidthCH <= 0) continue;
      // Mixed or unknown phases use the smaller reference: conservative,
      // i.e. the flag fires earlier rather than later.
      double ideal = std::min(idealRead, idealWrite);
      auto it = byId.find(row.id);
      if (it != byId.end()) {
        const std::string op = it->second->opTypeLabel();
        if (op == "W") {
          ideal = idealWrite;
        } else if (op == "R") {
          ideal = idealRead;
        }
      }
      if (ideal <= 0) continue;
      peak = std::max(peak, row.bandwidthCH / ideal);
      any = true;
    }
    if (!any) return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f%%", peak * 100.0);
    std::string out = buf;
    if (peak >= kPinnedThreshold) out += " PINNED";
    return out;
  }

 private:
  static constexpr double kPinnedThreshold = 0.9;

  /// Ideal (read, write) aggregate device bandwidth per (config, dd, dn),
  /// memoized — one probe build per distinct configuration in the report.
  std::pair<double, double> ideals(std::size_t configIndex, double dd,
                                   double dn) {
    const auto key = std::make_tuple(configIndex, dd, dn);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    std::pair<double, double> value{0, 0};
    try {
      auto cfg = campaign_.configs[configIndex].build(dd, dn);
      auto& fs = cfg.topology->fs(cfg.mount);
      value = {fs.idealDeviceBandwidth(storage::IoOp::Read),
               fs.idealDeviceBandwidth(storage::IoOp::Write)};
    } catch (const std::exception&) {
      // Unbuildable reference: the affected entries render "-".
    }
    return cache_.emplace(key, value).first->second;
  }

  const ResolvedCampaign& campaign_;
  std::map<std::tuple<std::size_t, double, double>,
           std::pair<double, double>>
      cache_;
};

}  // namespace

std::vector<RankGroup> rankOutcome(const ResolvedCampaign& campaign,
                                   const SweepOutcome& outcome) {
  // Group cells by (model, fault scenario), preserving canonical order of
  // first appearance; within a group, bucket seeded replicas per
  // candidate configuration.
  struct Bucket {
    std::vector<const CellOutcome*> cells;
  };
  struct PendingGroup {
    std::string title;
    bool faulted = false;
    std::vector<std::size_t> order;  // configIndex, first-appearance order
    std::map<std::size_t, Bucket> byConfig;
  };
  std::vector<PendingGroup> pendingGroups;
  std::map<std::string, std::size_t> groupIndex;
  for (const auto& cell : outcome.cells) {
    const std::string title = groupTitle(campaign, cell.spec);
    auto [it, inserted] = groupIndex.emplace(title, pendingGroups.size());
    if (inserted) {
      // Tenanted groups aggregate seeded replicas exactly like faulted
      // ones: median Time_io over the tenant seeds.
      pendingGroups.push_back(
          {title, cell.spec.faulted() || cell.spec.tenanted(), {}, {}});
    }
    PendingGroup& pending = pendingGroups[it->second];
    auto [bucketIt, newBucket] =
        pending.byConfig.emplace(cell.spec.configIndex, Bucket{});
    if (newBucket) pending.order.push_back(cell.spec.configIndex);
    bucketIt->second.cells.push_back(&cell);
  }

  std::vector<RankGroup> groups;
  for (const auto& pending : pendingGroups) {
    RankGroup group;
    group.title = pending.title;
    group.faulted = pending.faulted;
    for (std::size_t configIndex : pending.order) {
      group.entries.push_back(
          aggregateSeeds(pending.byConfig.at(configIndex).cells));
    }

    std::stable_sort(group.entries.begin(), group.entries.end(),
                     [](const RankedCell& a, const RankedCell& b) {
                       const bool aOk = a.okSeeds > 0;
                       const bool bOk = b.okSeeds > 0;
                       if (aOk != bOk) return aOk;
                       if (!aOk) return false;  // failures keep input order
                       return a.timeIo < b.timeIo;
                     });
    // Selection is delegated to the paper's rule (analysis::
    // selectConfiguration) rather than re-implemented: the candidate with
    // the smallest estimated (median, under faults) total I/O time wins.
    std::vector<analysis::SelectionCandidate> candidates;
    for (const auto& entry : group.entries) {
      if (entry.okSeeds == 0) continue;
      analysis::SelectionCandidate c;
      c.name = entry.cell->result.configLabel;
      c.estimate.totalTimeSec = entry.timeIo;
      candidates.push_back(std::move(c));
    }
    const analysis::SelectionCandidate* best =
        analysis::selectConfiguration(candidates);
    std::size_t rank = 0;
    bool marked = false;
    for (auto& entry : group.entries) {
      if (entry.okSeeds == 0) continue;
      entry.rank = ++rank;
      if (!marked && best != nullptr &&
          entry.cell->result.configLabel == best->name) {
        entry.selected = true;
        marked = true;
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::string renderReport(const ResolvedCampaign& campaign,
                         const SweepOutcome& outcome) {
  std::string out;
  SaturationColumn saturation(campaign);
  for (const auto& group : rankOutcome(campaign, outcome)) {
    util::Table table("Sweep ranking: " + group.title);
    if (group.faulted) {
      // Degraded/tenanted groups rank by the median over seeded replicas
      // and show survival instead of IOR cost (neither runs IOR).
      table.setHeader({"rank", "configuration", "median Time_io (s)",
                       "eff. BW", "dev sat", "seeds ok", "status"},
                      {util::Align::Right, util::Align::Left,
                       util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right,
                       util::Align::Left});
    } else {
      table.setHeader({"rank", "configuration", "Time_io (s)", "eff. BW",
                       "dev sat", "IOR runs", "status"},
                      {util::Align::Right, util::Align::Left,
                       util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right,
                       util::Align::Left});
    }
    for (const auto& entry : group.entries) {
      const CellOutcome& cell = *entry.cell;
      const std::string configLabel =
          cell.result.configLabel.empty()
              ? campaign.configs[cell.spec.configIndex].label
              : cell.result.configLabel;
      const std::string seedsOk = std::to_string(entry.okSeeds) + "/" +
                                  std::to_string(entry.seeds);
      if (entry.okSeeds == 0) {
        // Nothing survived: a plain failure, or every fault replica died
        // at phase level (no failover left).
        std::string status = statusName(cell.status);
        if ((cell.status == CellOutcome::Status::Cached ||
             cell.status == CellOutcome::Status::Computed) &&
            cell.result.faultFailed()) {
          status = "FAILED: " + cell.result.faultError;
        }
        table.addRow({"-", configLabel, "-", "-", "-",
                      group.faulted ? seedsOk : "-", status});
        continue;
      }
      std::string name = configLabel;
      if (entry.selected) name += "  <== selected";
      const double bw =
          entry.timeIo > 0
              ? static_cast<double>(cell.result.weightBytes) / entry.timeIo
              : 0;
      std::string status = entry.anyComputed ? "computed" : "cached";
      if (entry.okSeeds < entry.seeds) status += " (partial)";
      table.addRow({std::to_string(entry.rank), name,
                    util::formatSeconds(entry.timeIo),
                    util::formatBandwidthMiBs(bw),
                    saturation.render(cell),
                    group.faulted ? seedsOk
                                  : std::to_string(cell.result.iorRuns),
                    status});
    }
    out += table.render();
    out += "\n";
  }
  return out;
}

}  // namespace iop::sweep
