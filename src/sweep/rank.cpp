#include "sweep/rank.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/evaluate.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::sweep {

namespace {

std::string groupTitle(const ResolvedCampaign& campaign,
                       const CellSpec& cell) {
  std::string title = campaign.models[cell.modelIndex].label;
  if (cell.degradeDisks != 1.0 || cell.degradeNet != 1.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, " [dd=%g dn=%g]", cell.degradeDisks,
                  cell.degradeNet);
    title += buf;
  }
  return title;
}

std::string statusName(CellOutcome::Status status) {
  switch (status) {
    case CellOutcome::Status::Cached:
      return "cached";
    case CellOutcome::Status::Computed:
      return "computed";
    case CellOutcome::Status::Failed:
      return "FAILED";
  }
  return "?";
}

}  // namespace

std::vector<RankGroup> rankOutcome(const ResolvedCampaign& campaign,
                                   const SweepOutcome& outcome) {
  // Group cells by (model, fault scenario), preserving canonical order of
  // first appearance.
  std::vector<RankGroup> groups;
  std::map<std::string, std::size_t> groupIndex;
  for (const auto& cell : outcome.cells) {
    const std::string title = groupTitle(campaign, cell.spec);
    auto [it, inserted] = groupIndex.emplace(title, groups.size());
    if (inserted) {
      groups.push_back(RankGroup{title, {}});
    }
    groups[it->second].entries.push_back(RankedCell{&cell, 0, false});
  }

  for (auto& group : groups) {
    std::stable_sort(group.entries.begin(), group.entries.end(),
                     [](const RankedCell& a, const RankedCell& b) {
                       const bool aOk =
                           a.cell->status != CellOutcome::Status::Failed;
                       const bool bOk =
                           b.cell->status != CellOutcome::Status::Failed;
                       if (aOk != bOk) return aOk;
                       if (!aOk) return false;  // failures keep input order
                       return a.cell->result.timeIo < b.cell->result.timeIo;
                     });
    // Selection is delegated to the paper's rule (analysis::
    // selectConfiguration) rather than re-implemented: the candidate with
    // the smallest estimated total I/O time wins.
    std::vector<analysis::SelectionCandidate> candidates;
    for (const auto& entry : group.entries) {
      if (entry.cell->status == CellOutcome::Status::Failed) continue;
      analysis::SelectionCandidate c;
      c.name = entry.cell->result.configLabel;
      c.estimate.totalTimeSec = entry.cell->result.timeIo;
      candidates.push_back(std::move(c));
    }
    const analysis::SelectionCandidate* best =
        analysis::selectConfiguration(candidates);
    std::size_t rank = 0;
    bool marked = false;
    for (auto& entry : group.entries) {
      if (entry.cell->status == CellOutcome::Status::Failed) continue;
      entry.rank = ++rank;
      if (!marked && best != nullptr &&
          entry.cell->result.configLabel == best->name) {
        entry.selected = true;
        marked = true;
      }
    }
  }
  return groups;
}

std::string renderReport(const ResolvedCampaign& campaign,
                         const SweepOutcome& outcome) {
  std::string out;
  for (const auto& group : rankOutcome(campaign, outcome)) {
    util::Table table("Sweep ranking: " + group.title);
    table.setHeader({"rank", "configuration", "Time_io (s)", "eff. BW",
                     "IOR runs", "status"},
                    {util::Align::Right, util::Align::Left,
                     util::Align::Right, util::Align::Right,
                     util::Align::Right, util::Align::Left});
    for (const auto& entry : group.entries) {
      const CellOutcome& cell = *entry.cell;
      if (cell.status == CellOutcome::Status::Failed) {
        table.addRow({"-", cell.result.configLabel.empty()
                               ? campaign.configs[cell.spec.configIndex].label
                               : cell.result.configLabel,
                      "-", "-", "-", statusName(cell.status)});
        continue;
      }
      std::string name = cell.result.configLabel;
      if (entry.selected) name += "  <== selected";
      table.addRow(
          {std::to_string(entry.rank), name,
           util::formatSeconds(cell.result.timeIo),
           util::formatBandwidthMiBs(cell.result.effectiveBandwidth()),
           std::to_string(cell.result.iorRuns), statusName(cell.status)});
    }
    out += table.render();
    out += "\n";
  }
  return out;
}

}  // namespace iop::sweep
