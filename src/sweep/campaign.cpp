#include "sweep/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/runner.hpp"
#include "configs/configfile.hpp"
#include "obs/recorder.hpp"
#include "sweep/hash.hpp"
#include "sweep/store.hpp"
#include "sweep/telemetry.hpp"
#include "util/text.hpp"

namespace iop::sweep {

namespace {

[[noreturn]] void fail(int lineNo, const std::string& message) {
  throw std::invalid_argument("campaign line " + std::to_string(lineNo) +
                              ": " + message);
}

std::string fmtFactor(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

std::string resolvePath(const std::filesystem::path& baseDir,
                        const std::string& path) {
  std::filesystem::path p(path);
  if (p.is_absolute()) return p.lexically_normal().string();
  return (baseDir / p).lexically_normal().string();
}

std::vector<double> parseFactors(int lineNo,
                                 const std::vector<std::string>& tokens) {
  std::vector<double> out;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    char* end = nullptr;
    const double v = std::strtod(tokens[i].c_str(), &end);
    if (end != tokens[i].c_str() + tokens[i].size()) {
      fail(lineNo, "bad factor '" + tokens[i] + "'");
    }
    if (v < 1.0) fail(lineNo, "degradation factors must be >= 1");
    out.push_back(v);
  }
  if (out.empty()) fail(lineNo, "factor list needs at least one value");
  return out;
}

ConfigSource parseConfigSource(int lineNo, const std::string& token,
                               const std::filesystem::path& baseDir) {
  ConfigSource src;
  if (token.rfind("file=", 0) == 0) {
    src.fromFile = true;
    src.path = resolvePath(baseDir, token.substr(5));
    src.label = stem(src.path);
  } else {
    try {
      configs::parseConfigName(token);  // validate with a line reference
    } catch (const std::exception& e) {
      fail(lineNo, e.what());
    }
    src.name = token;
    src.label = token;
  }
  return src;
}

/// Keep axis labels unique so reports and manifests are unambiguous.
void disambiguate(std::vector<std::string*> labels) {
  std::set<std::string> seen;
  for (std::string* label : labels) {
    std::string candidate = *label;
    int n = 2;
    while (!seen.insert(candidate).second) {
      candidate = *label + "#" + std::to_string(n++);
    }
    *label = candidate;
  }
}

std::string readFileText(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument(std::string("cannot open ") + what + " " +
                                path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ResolvedConfig resolveConfig(const ConfigSource& src) {
  ResolvedConfig out;
  out.label = src.label;
  out.fromFile = src.fromFile;
  if (src.fromFile) {
    out.clusterText = readFileText(src.path, "cluster config");
    out.identity = "cluster-file\n" + out.clusterText;
  } else {
    out.name = src.name;
    // Normalize through the enum so "f" and "finisterrae" share a key.
    out.identity = std::string("named-config\n") +
                   configs::configName(configs::parseConfigName(src.name));
  }
  // Probe build: validates the description and captures the mount point.
  auto probe = out.build(1.0, 1.0);
  out.mount = probe.mount;
  return out;
}

}  // namespace

configs::ClusterConfig ResolvedConfig::build(double degradeDisks,
                                             double degradeNet) const {
  configs::ClusterConfig cfg =
      fromFile ? configs::parseClusterConfig(clusterText)
               : configs::makeConfig(configs::parseConfigName(name));
  // != rather than > so out-of-range factors hit the setters' validation.
  if (degradeDisks != 1.0) {
    for (storage::Disk* d : cfg.topology->allDisks()) {
      d->setDegradation(degradeDisks);
    }
  }
  if (degradeNet != 1.0) {
    for (storage::Node* n : cfg.topology->allNodes()) {
      n->setDegradation(degradeNet);
    }
  }
  return cfg;
}

std::string CampaignSpec::canonicalText() const {
  std::ostringstream out;
  out << "iop-campaign v1\n";
  out << "campaign " << name << "\n";
  out << "estimator " << estimatorVersion() << "\n";
  for (const auto& m : models) {
    out << "model " << m.label;
    if (m.fromApp()) {
      out << " app=" << m.app << " np=" << m.np;
      for (const auto& [key, value] : m.params) {
        out << " " << key << "=" << value;
      }
    } else {
      out << " file=" << m.path;
    }
    out << "\n";
  }
  for (const auto& c : configs) {
    out << "config " << c.label;
    if (c.fromFile) {
      out << " file=" << c.path;
    } else {
      out << " name=" << c.name;
    }
    out << "\n";
  }
  out << "degrade-disks";
  for (double v : degradeDisks) out << " " << fmtFactor(v);
  out << "\n";
  out << "degrade-net";
  for (double v : degradeNet) out << " " << fmtFactor(v);
  out << "\n";
  // Fault lines only when the axis was actually declared: a campaign
  // without them must canonicalize byte-identically to pre-fault stores.
  if (hasFaultAxis()) {
    for (const auto& f : faults) {
      out << "faultplan " << f.label
          << (f.none() ? std::string(" none") : " file=" + f.path) << "\n";
    }
    out << "fault-seeds " << faultSeeds << "\n";
  }
  // Tenant lines follow the same compat rule as fault lines.
  if (hasTenantAxis()) {
    for (const auto& t : tenants) {
      out << "tenantspec " << t.label
          << (t.none() ? std::string(" none") : " file=" + t.path) << "\n";
    }
    out << "tenant-seeds " << tenantSeeds << "\n";
  }
  out << "characterize "
      << (characterize.fromFile ? "file=" + characterize.path
                                : characterize.name)
      << "\n";
  return out.str();
}

CampaignSpec parseCampaign(const std::string& text,
                           const std::filesystem::path& baseDir) {
  CampaignSpec spec;
  spec.characterize.name = "A";
  spec.characterize.label = "A";
  bool sawDegradeDisks = false;
  bool sawDegradeNet = false;
  bool sawFaultPlan = false;
  bool sawFaultSeeds = false;
  bool sawTenantSpec = false;
  bool sawTenantSeeds = false;

  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto tokens = util::splitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "name") {
      if (tokens.size() < 2) fail(lineNo, "name needs a value");
      spec.name = tokens[1];
    } else if (directive == "model") {
      if (tokens.size() < 2) fail(lineNo, "model <path>");
      ModelSource m;
      m.path = resolvePath(baseDir, tokens[1]);
      m.label = stem(m.path);
      spec.models.push_back(std::move(m));
    } else if (directive == "app") {
      if (tokens.size() < 2) fail(lineNo, "app <name> [key=value...]");
      ModelSource m;
      m.app = tokens[1];
      if (!apps::isKnownApp(m.app)) {
        fail(lineNo, "unknown application '" + m.app + "'");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          fail(lineNo, "app parameters must be key=value, got '" +
                           tokens[i] + "'");
        }
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "np") {
          m.np = std::stoi(value);
          if (m.np < 1) fail(lineNo, "np must be positive");
        } else {
          m.params[key] = value;
        }
      }
      m.label = m.app + "-np" + std::to_string(m.np);
      for (const auto& [key, value] : m.params) {
        m.label += "-" + key + value;
      }
      spec.models.push_back(std::move(m));
    } else if (directive == "config") {
      if (tokens.size() < 2) fail(lineNo, "config <A|B|C|finisterrae>");
      spec.configs.push_back(parseConfigSource(lineNo, tokens[1], baseDir));
    } else if (directive == "config-file") {
      if (tokens.size() < 2) fail(lineNo, "config-file <path>");
      spec.configs.push_back(
          parseConfigSource(lineNo, "file=" + tokens[1], baseDir));
    } else if (directive == "degrade-disks") {
      if (sawDegradeDisks) fail(lineNo, "duplicate degrade-disks");
      sawDegradeDisks = true;
      spec.degradeDisks = parseFactors(lineNo, tokens);
    } else if (directive == "degrade-net") {
      if (sawDegradeNet) fail(lineNo, "duplicate degrade-net");
      sawDegradeNet = true;
      spec.degradeNet = parseFactors(lineNo, tokens);
    } else if (directive == "faultplan") {
      if (tokens.size() < 2) fail(lineNo, "faultplan <none | file=path>");
      // The first faultplan line replaces the implicit healthy default;
      // declare `faultplan none` explicitly to keep the baseline cells.
      if (!sawFaultPlan) spec.faults.clear();
      sawFaultPlan = true;
      FaultSource f;
      if (tokens[1] == "none") {
        f.label = "none";
      } else if (tokens[1].rfind("file=", 0) == 0) {
        f.path = resolvePath(baseDir, tokens[1].substr(5));
        f.label = stem(f.path);
      } else {
        fail(lineNo, "faultplan wants 'none' or 'file=<path>', got '" +
                         tokens[1] + "'");
      }
      spec.faults.push_back(std::move(f));
    } else if (directive == "fault-seeds") {
      if (sawFaultSeeds) fail(lineNo, "duplicate fault-seeds");
      sawFaultSeeds = true;
      if (tokens.size() != 2) fail(lineNo, "fault-seeds <count>");
      try {
        spec.faultSeeds = std::stoi(tokens[1]);
      } catch (const std::exception&) {
        fail(lineNo, "bad fault-seeds '" + tokens[1] + "'");
      }
      if (spec.faultSeeds < 1) fail(lineNo, "fault-seeds must be >= 1");
    } else if (directive == "tenantspec") {
      if (tokens.size() < 2) fail(lineNo, "tenantspec <none | file=path>");
      // Like faultplan: the first tenantspec line replaces the implicit
      // uncontended default; declare `tenantspec none` to keep it.
      if (!sawTenantSpec) spec.tenants.clear();
      sawTenantSpec = true;
      TenantSource t;
      if (tokens[1] == "none") {
        t.label = "none";
      } else if (tokens[1].rfind("file=", 0) == 0) {
        t.path = resolvePath(baseDir, tokens[1].substr(5));
        t.label = stem(t.path);
      } else {
        fail(lineNo, "tenantspec wants 'none' or 'file=<path>', got '" +
                         tokens[1] + "'");
      }
      spec.tenants.push_back(std::move(t));
    } else if (directive == "tenant-seeds") {
      if (sawTenantSeeds) fail(lineNo, "duplicate tenant-seeds");
      sawTenantSeeds = true;
      if (tokens.size() != 2) fail(lineNo, "tenant-seeds <count>");
      try {
        spec.tenantSeeds = std::stoi(tokens[1]);
      } catch (const std::exception&) {
        fail(lineNo, "bad tenant-seeds '" + tokens[1] + "'");
      }
      if (spec.tenantSeeds < 1) fail(lineNo, "tenant-seeds must be >= 1");
    } else if (directive == "multiop") {
      spec.multiop = true;
    } else if (directive == "characterize") {
      if (tokens.size() < 2) {
        fail(lineNo, "characterize <config-name | file=path>");
      }
      spec.characterize = parseConfigSource(lineNo, tokens[1], baseDir);
    } else {
      fail(lineNo, "unknown directive '" + directive + "'");
    }
  }

  if (spec.models.empty()) {
    throw std::invalid_argument(
        "campaign: at least one 'model' or 'app' line is required");
  }
  if (spec.configs.empty()) {
    throw std::invalid_argument(
        "campaign: at least one 'config' or 'config-file' line is "
        "required");
  }
  std::vector<std::string*> modelLabels;
  for (auto& m : spec.models) modelLabels.push_back(&m.label);
  disambiguate(modelLabels);
  std::vector<std::string*> configLabels;
  for (auto& c : spec.configs) configLabels.push_back(&c.label);
  disambiguate(configLabels);
  if (spec.faults.empty()) {
    throw std::invalid_argument(
        "campaign: faultplan lines replaced the healthy default but "
        "declared no entries");
  }
  std::vector<std::string*> faultLabels;
  for (auto& f : spec.faults) faultLabels.push_back(&f.label);
  disambiguate(faultLabels);
  if (spec.tenants.empty()) {
    throw std::invalid_argument(
        "campaign: tenantspec lines replaced the uncontended default but "
        "declared no entries");
  }
  std::vector<std::string*> tenantLabels;
  for (auto& t : spec.tenants) tenantLabels.push_back(&t.label);
  disambiguate(tenantLabels);
  return spec;
}

CampaignSpec loadCampaign(const std::filesystem::path& path) {
  return parseCampaign(readFileText(path.string(), "campaign"),
                       path.parent_path());
}

std::string modelCacheKey(const ModelSource& src,
                          const std::string& characterizeIdentity) {
  ContentHash h;
  h.update("iop-characterize/1");
  h.update(src.app);
  h.update("np=" + std::to_string(src.np));
  for (const auto& [key, value] : src.params) {
    h.update(key + "=" + value);
  }
  h.update(characterizeIdentity);
  return h.hex();
}

ResolvedCampaign resolveCampaign(const CampaignSpec& spec,
                                 const ResolveOptions& options) {
  ResolvedCampaign out;
  out.spec = spec;

  const std::size_t n = spec.models.size();
  out.models.resize(n);

  bool anyApp = false;
  for (const auto& src : spec.models) anyApp = anyApp || src.fromApp();
  // The characterize config is shared by every app entry; resolving it is
  // a pure function of the spec, so once up front is enough.
  ResolvedConfig charCfg;
  if (anyApp) charCfg = resolveConfig(spec.characterize);

  struct Outcome {
    bool characterized = false;
    bool cacheHit = false;
    double seconds = 0;  ///< characterization wall time
  };
  std::vector<Outcome> outcomes(n);
  std::vector<std::exception_ptr> errors(n);
  SweepTelemetry* tele = options.telemetry;

  // Model entries are independent: file entries parse a model file, app
  // entries run a whole characterization simulation on a private cluster
  // instance.  Nothing here touches shared state, so they fan out freely.
  auto resolveOne = [&](std::size_t i, std::size_t worker) {
    const ModelSource& src = spec.models[i];
    ResolvedModel m;
    m.label = src.label;
    if (src.fromApp()) {
      const std::string key = modelCacheKey(src, charCfg.identity);
      bool hit = false;
      if (options.reuse) {
        for (const auto& dir : options.modelCacheDirs) {
          const auto path = dir / (key + ".model");
          if (std::filesystem::exists(path)) {
            m.model = core::IOModel::load(path);
            hit = true;
            break;
          }
        }
      }
      if (!hit) {
        // Characterization run (Section III-A): trace the app once on the
        // characterize configuration and extract its subsystem-independent
        // model.  This is the only application execution in a campaign.
        const double t0 = tele != nullptr ? tele->now() : 0;
        const auto charStart = std::chrono::steady_clock::now();
        auto cluster = charCfg.build(1.0, 1.0);
        auto run = analysis::runAndTrace(
            cluster, src.label,
            apps::makeApp(src.app, cluster.mount, src.params), src.np);
        m.model = std::move(run.model);
        outcomes[i].seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          charStart)
                .count();
        if (tele != nullptr) {
          tele->characterizeSpan(worker, src.label, t0, tele->now());
        }
      }
      m.contentText = m.model.renderText();
      if (!hit) {
        // Model serialization round-trips exactly, so a future cache hit
        // yields the same contentText — and therefore the same cell keys —
        // as this characterization.
        for (const auto& dir : options.modelCacheDirs) {
          std::filesystem::create_directories(dir);
          writeFileAtomically(dir / (key + ".model"), m.contentText);
        }
      }
      outcomes[i].characterized = !hit;
      outcomes[i].cacheHit = hit;
    } else {
      m.model = core::IOModel::load(src.path);
      m.contentText = m.model.renderText();
    }
    out.models[i] = std::move(m);
  };

  const std::size_t workers = std::min(
      n, static_cast<std::size_t>(std::max(1, options.jobs)));
  if (workers > 1) {
    std::atomic<std::size_t> cursor{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            resolveOne(i, w);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        resolveOne(i, 0);
      } catch (...) {
        errors[i] = std::current_exception();
        break;
      }
    }
  }
  // First declared failure wins, independent of worker interleaving.
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Log after the join, in declaration order: the log stream is
  // deterministic for any -j.
  for (std::size_t i = 0; i < n; ++i) {
    if (!spec.models[i].fromApp()) continue;
    if (outcomes[i].cacheHit) {
      ++out.modelCacheHits;
      if (options.log != nullptr) {
        options.log->info(
            "sweep", "model_cache_hit",
            "\"model\":\"" +
                obs::TraceRecorder::jsonEscape(spec.models[i].label) + "\"");
      }
      if (tele != nullptr) tele->modelCacheHit(spec.models[i].label);
    } else {
      ++out.characterized;
      if (options.log != nullptr) {
        options.log->info(
            "sweep", "characterized",
            "\"model\":\"" +
                obs::TraceRecorder::jsonEscape(spec.models[i].label) +
                "\",\"phases\":" +
                std::to_string(out.models[i].model.phases().size()));
      }
      if (tele != nullptr) {
        tele->modelCharacterized(spec.models[i].label,
                                 out.models[i].model.phases().size(),
                                 outcomes[i].seconds);
      }
    }
  }

  for (const auto& src : spec.configs) {
    out.configs.push_back(resolveConfig(src));
  }
  for (const auto& src : spec.faults) {
    ResolvedFault f;
    f.label = src.label;
    if (!src.none()) {
      // Parse now so a typo'd plan fails the whole campaign with a
      // file:line diagnostic instead of failing every faulted cell.
      f.plan = fault::loadFaultPlan(src.path);
      f.planText = f.plan.canonicalText();
    }
    out.faults.push_back(std::move(f));
  }
  for (const auto& src : spec.tenants) {
    ResolvedTenant t;
    t.label = src.label;
    if (!src.none()) {
      // Same early-failure contract as fault plans.
      t.spec = tenant::loadTenantSpec(src.path);
      t.specText = t.spec.canonicalText();
    }
    out.tenants.push_back(std::move(t));
  }
  return out;
}

ResolvedCampaign resolveCampaign(const CampaignSpec& spec,
                                 obs::Logger* log) {
  ResolveOptions options;
  options.log = log;
  return resolveCampaign(spec, options);
}

std::string cellKey(const char* estimatorVersion,
                    const std::string& modelText,
                    const std::string& configIdentity, double degradeDisks,
                    double degradeNet, const std::string& faultPlanText,
                    std::uint64_t faultSeed,
                    const std::string& tenantSpecText,
                    std::uint64_t tenantSeed) {
  ContentHash h;
  h.update("iop-sweep/1");
  h.update(estimatorVersion);
  h.update(modelText);
  h.update(configIdentity);
  h.update("dd=" + fmtFactor(degradeDisks));
  h.update("dn=" + fmtFactor(degradeNet));
  // Fault fields enter the hash only for faulted cells: unfaulted keys
  // must match every store written before the fault axis existed.
  if (!faultPlanText.empty()) {
    h.update("fault=" + faultPlanText);
    h.update("fault-seed=" + std::to_string(faultSeed));
  }
  // Same rule for tenant fields and pre-tenant stores.
  if (!tenantSpecText.empty()) {
    h.update("tenant=" + tenantSpecText);
    h.update("tenant-seed=" + std::to_string(tenantSeed));
  }
  return h.hex();
}

std::vector<CellSpec> ResolvedCampaign::planCells() const {
  std::vector<CellSpec> cells;
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      for (double dd : spec.degradeDisks) {
        for (double dn : spec.degradeNet) {
          for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
              if (tenants[ti].none()) {
                // The healthy entry is one cell with the legacy key; a
                // plan entry fans out into fault-seeds replicas.
                const std::uint64_t replicas =
                    faults[fi].none()
                        ? 1
                        : static_cast<std::uint64_t>(spec.faultSeeds);
                for (std::uint64_t s = 1; s <= replicas; ++s) {
                  CellSpec cell;
                  cell.modelIndex = mi;
                  cell.configIndex = ci;
                  cell.degradeDisks = dd;
                  cell.degradeNet = dn;
                  cell.faultIndex = fi;
                  cell.faultSeed = faults[fi].none() ? 0 : s;
                  cell.tenantIndex = ti;
                  cell.key = cellKey(
                      faults[fi].none() ? spec.estimatorVersion()
                                        : kFaultEstimatorVersion,
                      models[mi].contentText, configs[ci].identity, dd, dn,
                      faults[fi].planText, cell.faultSeed);
                  cells.push_back(std::move(cell));
                }
              } else {
                // Tenanted: the tenant seed drives the whole composed run
                // (arrivals + fault installation), so a composed fault
                // plan contributes its text to the key but no extra seed
                // fan-out.
                for (std::uint64_t s = 1;
                     s <= static_cast<std::uint64_t>(spec.tenantSeeds);
                     ++s) {
                  CellSpec cell;
                  cell.modelIndex = mi;
                  cell.configIndex = ci;
                  cell.degradeDisks = dd;
                  cell.degradeNet = dn;
                  cell.faultIndex = fi;
                  cell.tenantIndex = ti;
                  cell.tenantSeed = s;
                  cell.key = cellKey(
                      kTenantEstimatorVersion, models[mi].contentText,
                      configs[ci].identity, dd, dn, faults[fi].planText,
                      0, tenants[ti].specText, s);
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::string ResolvedCampaign::cellTitle(const CellSpec& cell) const {
  std::string title = models[cell.modelIndex].label + " @ " +
                      configs[cell.configIndex].label;
  if (cell.degradeDisks != 1.0) {
    title += " dd=" + fmtFactor(cell.degradeDisks);
  }
  if (cell.degradeNet != 1.0) title += " dn=" + fmtFactor(cell.degradeNet);
  if (cell.faulted()) {
    title += " fault=" + faults[cell.faultIndex].label + " seed=" +
             std::to_string(cell.faultSeed);
  }
  if (cell.tenanted()) {
    // A composed fault plan rides along without its own seed fan-out.
    if (!faults[cell.faultIndex].none()) {
      title += " fault=" + faults[cell.faultIndex].label;
    }
    title += " tenant=" + tenants[cell.tenantIndex].label + " tseed=" +
             std::to_string(cell.tenantSeed);
  }
  return title;
}

}  // namespace iop::sweep
