// iop-fsck: the unified crash-recovery check for every on-disk artifact
// this toolkit persists — campaign stores, shared stores and capture
// archives.
//
// Everything durable is written through util::vfs with full barriers
// (fsync temp, rename, fsync parent directory), so a crash at any point
// leaves one of a small, enumerable set of damage shapes:
//
//   torn            a half-written file renamed into place (or a torn
//                   append tail) — caught by the cell checksum, the model
//                   / capture parsers, or a missing trailing newline
//   checksum-mismatch  a cell whose seal does not match its bytes
//   orphan-temp     a `.tmp.<pid>.<n>` file whose writer is dead
//   bad-manifest-line  an archive manifest line that does not parse
//   missing-object / corrupt-object  a manifest entry whose payload is
//                   gone or fails its content hash (unrecoverable: the
//                   bytes cannot be regenerated)
//   orphan-object   an unreferenced archive object whose name does not
//                   match its content (a torn write with no entry)
//   torn-journal-tail  a flight-recorder journal ending mid-line
//
// Repairs are conservative: damaged files are moved to quarantine/ (or,
// for append tails, truncated back to the last whole record), never
// silently deleted — except dead writers' temp files, which carry no
// information.  Store cells, captures and models are pure functions of
// their keys, so quarantine + `iop-sweep resume` always converges back to
// the byte-identical store an uninterrupted run would have written.
// Archive objects are *not* recomputable; a missing or corrupt referenced
// object is therefore Unrecoverable (exit code 2) and repair drops the
// entry so the rest of the archive stays usable.
//
// `iop-sweep run/resume` and `iop-trend` run the quick (deep=false) check
// on startup; the `iop-fsck` tool defaults to the deep check.  A second
// fsck pass over a repaired tree is always clean.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace iop::sweep {

enum class FsckDamage {
  TornCell,           ///< cell file fails to parse (not a checksum seal)
  ChecksumMismatch,   ///< cell checksum seal does not match its bytes
  WrongKey,           ///< cell parses but holds a different key
  TornCapture,        ///< capture file fails to parse
  TornModel,          ///< cached characterization model fails to load
  TornCampaignFile,   ///< campaign.txt torn or unparsable
  OrphanTemp,         ///< .tmp.<pid>.<n> left by a dead writer
  TornManifestTail,   ///< archive manifest ends mid-line
  BadManifestLine,    ///< archive manifest line does not parse
  MissingObject,      ///< referenced archive object is gone
  CorruptObject,      ///< referenced archive object fails its hash
  OrphanObject,       ///< unreferenced object whose name != content hash
  TornJournalTail,    ///< journal from a dead writer ends mid-line
};

/// Stable kebab-case name (report and test vocabulary).
const char* fsckDamageName(FsckDamage damage);

enum class FsckSeverity {
  Repaired,       ///< repaired (or repairable, in a dry run)
  Unrecoverable,  ///< data loss: the bytes cannot be regenerated
};

struct FsckFinding {
  std::string path;  ///< relative to the checked root
  FsckDamage damage = FsckDamage::TornCell;
  FsckSeverity severity = FsckSeverity::Repaired;
  std::string detail;  ///< what was wrong
  std::string action;  ///< what repair did (or a dry run would do)
};

struct FsckOptions {
  /// false = dry run: classify and report, touch nothing.  Findings and
  /// the exit code are identical either way.
  bool repair = true;
  /// Also verify captures, cells and archive object payloads byte-by-
  /// byte.  The quick check (false) covers what would break a resume:
  /// campaign.txt, cached models, orphan temps and journal tails.
  bool deep = false;
  /// Canonical campaign text the store should be bound to ("" = skip the
  /// comparison).  A campaign.txt that is a strict prefix of it is a torn
  /// write and is quarantined; a *different* full text is left alone so
  /// CampaignStore::initialize keeps its wrong-campaign guard.
  std::string expectedCampaign;
};

struct FsckReport {
  std::vector<FsckFinding> findings;  ///< sorted by (path, damage)
  std::size_t scanned = 0;            ///< files examined

  bool clean() const noexcept { return findings.empty(); }
  bool unrecoverable() const noexcept;
  /// 0 clean / 1 damage found and repaired (or repairable) / 2 at least
  /// one unrecoverable finding.
  int exitCode() const noexcept;
  /// Deterministic multi-line report (no timestamps, sorted findings).
  std::string render(const std::string& title) const;
};

/// Check one campaign store (cells/, captures/, models/, campaign.txt,
/// journal/, stray temps).  A missing root is clean.
FsckReport fsckCampaignStore(const std::filesystem::path& root,
                             const FsckOptions& options = {});

/// Check one shared store (cells/, models/, stray temps).
FsckReport fsckSharedStore(const std::filesystem::path& root,
                           const FsckOptions& options = {});

/// Check one capture archive (MANIFEST.jsonl, objects/, stray temps).
FsckReport fsckArchive(const std::filesystem::path& root,
                       const FsckOptions& options = {});

}  // namespace iop::sweep
