#include "sweep/fsck.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <system_error>

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

#include "core/iomodel.hpp"
#include "obs/archive.hpp"
#include "obs/capture.hpp"
#include "sweep/campaign.hpp"
#include "sweep/store.hpp"
#include "util/vfs.hpp"

namespace iop::sweep {

namespace {

std::string readText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string relPath(const std::filesystem::path& root,
                    const std::filesystem::path& path) {
  std::error_code ec;
  const auto rel = std::filesystem::relative(path, root, ec);
  return ec ? path.string() : rel.generic_string();
}

/// The damage-classification context one fsck pass accumulates into.
struct Check {
  std::filesystem::path root;
  FsckOptions options;
  FsckReport report;

  void finding(const std::filesystem::path& path, FsckDamage damage,
               FsckSeverity severity, std::string detail,
               std::string action) {
    FsckFinding f;
    f.path = relPath(root, path);
    f.damage = damage;
    f.severity = severity;
    f.detail = std::move(detail);
    f.action = std::move(action);
    report.findings.push_back(std::move(f));
  }

  /// Move `path` into <root>/quarantine (keeping forensics), mirroring
  /// the store's own quarantine naming (a .2/.3 suffix on collision).
  std::string quarantine(const std::filesystem::path& path) {
    if (!options.repair) return "would quarantine";
    const auto dir = root / "quarantine";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::filesystem::path dst = dir / path.filename();
    for (int n = 2; std::filesystem::exists(dst); ++n) {
      dst = dir / (path.stem().string() + "." + std::to_string(n) +
                   path.extension().string());
    }
    std::filesystem::rename(path, dst, ec);
    if (ec) {
      std::filesystem::remove(path, ec);
      return "removed (quarantine rename failed)";
    }
    return "quarantined as " + relPath(root, dst);
  }

  std::string removeFile(const std::filesystem::path& path) {
    if (!options.repair) return "would remove";
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return ec ? "remove failed: " + ec.message() : "removed";
  }
};

/// True when `pid` belongs to a live process.  Errs on the side of alive
/// (never reap another writer's working files); on platforms without
/// kill(2) everything is considered alive.
bool pidAlive(long pid) {
#ifndef _WIN32
  if (pid <= 0) return true;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
#else
  (void)pid;
  return true;
#endif
}

/// Parse the `<pid>` out of a vfs temp name `<orig>.tmp.<pid>.<n>`;
/// returns false when `name` is not a vfs temp.
bool parseTempPid(const std::string& name, long& pid) {
  const auto at = name.rfind(".tmp.");
  if (at == std::string::npos) return false;
  const std::string tail = name.substr(at + 5);  // "<pid>.<n>"
  const auto dot = tail.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= tail.size()) {
    return false;
  }
  const std::string pidPart = tail.substr(0, dot);
  const std::string seqPart = tail.substr(dot + 1);
  auto allDigits = [](const std::string& s) {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(),
                       [](unsigned char c) { return std::isdigit(c); });
  };
  if (!allDigits(pidPart) || !allDigits(seqPart)) return false;
  pid = std::strtol(pidPart.c_str(), nullptr, 10);
  return true;
}

/// Sweep `.tmp.<pid>.<n>` files of dead writers anywhere under the root
/// (skipping quarantine/, whose contents are frozen forensics).
void sweepOrphanTemps(Check& check) {
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(check.root, ec);
  const std::filesystem::recursive_directory_iterator end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->is_directory()) {
      if (it->path().filename() == "quarantine") it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    long pid = 0;
    if (!parseTempPid(it->path().filename().string(), pid)) continue;
    ++check.report.scanned;
#ifndef _WIN32
    if (pid == static_cast<long>(::getpid())) continue;
#endif
    if (pidAlive(pid)) continue;
    const std::string action = check.removeFile(it->path());
    check.finding(it->path(), FsckDamage::OrphanTemp,
                  FsckSeverity::Repaired,
                  "temp file of dead writer pid " + std::to_string(pid),
                  action);
  }
}

/// Truncate an append-only text file back to its last whole line.  The
/// torn tail is by definition the crashed writer's final, incomplete
/// record; everything before it is intact.
void truncateTornTail(Check& check, const std::filesystem::path& path,
                      FsckDamage damage) {
  std::string text;
  try {
    text = readText(path);
  } catch (const std::exception&) {
    return;
  }
  ++check.report.scanned;
  if (text.empty() || text.back() == '\n') return;
  const auto lastNl = text.rfind('\n');
  const std::uintmax_t keep = lastNl == std::string::npos ? 0 : lastNl + 1;
  std::string action = "would truncate to " + std::to_string(keep) + " bytes";
  if (check.options.repair) {
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    action = ec ? "truncate failed: " + ec.message()
                : "truncated to " + std::to_string(keep) + " bytes";
  }
  check.finding(path, damage, FsckSeverity::Repaired,
                "ends mid-record (torn final line)", action);
}

/// Journals are live while their writer is: the pid is embedded in the
/// run-<unix-ms>-<pid>.jsonl filename, so only dead writers' tails are
/// touched.
void checkJournals(Check& check) {
  const auto dir = check.root / "journal";
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    if (!file.is_regular_file()) continue;
    const std::string name = file.path().filename().string();
    if (name.rfind("run-", 0) != 0 ||
        file.path().extension() != ".jsonl") {
      continue;
    }
    const std::string stem = file.path().stem().string();
    const auto dash = stem.rfind('-');
    if (dash == std::string::npos) continue;
    const long pid = std::strtol(stem.c_str() + dash + 1, nullptr, 10);
    if (pidAlive(pid)) continue;
    truncateTornTail(check, file.path(), FsckDamage::TornJournalTail);
  }
}

void checkCampaignFile(Check& check) {
  const auto path = check.root / "campaign.txt";
  if (!std::filesystem::exists(path)) return;
  ++check.report.scanned;
  std::string text;
  try {
    text = readText(path);
  } catch (const std::exception&) {
    return;
  }
  const std::string& expected = check.options.expectedCampaign;
  bool torn = false;
  std::string why;
  if (!expected.empty()) {
    if (text != expected && expected.rfind(text, 0) == 0) {
      // A strict prefix of the expected text is a torn write.  A
      // *different* full text is left alone: CampaignStore::initialize's
      // wrong-campaign guard must keep firing for it.
      torn = true;
      why = "strict prefix of the expected campaign text (torn write)";
    }
  }
  if (!torn && (expected.empty() || text != expected)) {
    // campaign.txt holds the canonical rendering (CampaignSpec::
    // canonicalText) that only string comparison ever consumes, so the
    // sanity check is structural: the header must be intact and the file
    // newline-terminated.  A torn half that happens to satisfy both is
    // caught by the strict-prefix rule when the campaign is known.
    if (text.rfind("iop-campaign v1\n", 0) != 0) {
      torn = true;
      why = "missing 'iop-campaign v1' header";
    } else if (text.back() != '\n') {
      torn = true;
      why = "not newline-terminated (torn tail)";
    }
  }
  if (!torn) return;
  const std::string action = check.quarantine(path);
  check.finding(path, FsckDamage::TornCampaignFile, FsckSeverity::Repaired,
                why, action + "; resume rebinds the store");
}

void checkModels(Check& check, const std::filesystem::path& dir) {
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    if (!file.is_regular_file() || file.path().extension() != ".model") {
      continue;
    }
    ++check.report.scanned;
    try {
      core::IOModel::load(file.path());
    } catch (const std::exception& e) {
      const std::string action = check.quarantine(file.path());
      check.finding(file.path(), FsckDamage::TornModel,
                    FsckSeverity::Repaired, e.what(),
                    action + "; resume re-characterizes");
    }
  }
}

void checkCells(Check& check) {
  const auto dir = check.root / "cells";
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    if (!file.is_regular_file() || file.path().extension() != ".cell") {
      continue;
    }
    ++check.report.scanned;
    const std::string key = file.path().stem().string();
    try {
      const CellResult cell = CellResult::parse(readText(file.path()));
      if (cell.key != key) {
        const std::string action = check.quarantine(file.path());
        check.finding(file.path(), FsckDamage::WrongKey,
                      FsckSeverity::Repaired,
                      "holds key " + cell.key + ", expected " + key,
                      action + "; resume recomputes");
      }
    } catch (const std::exception& e) {
      const std::string what = e.what();
      const FsckDamage damage =
          what.find("checksum mismatch") != std::string::npos
              ? FsckDamage::ChecksumMismatch
              : FsckDamage::TornCell;
      const std::string action = check.quarantine(file.path());
      check.finding(file.path(), damage, FsckSeverity::Repaired, what,
                    action + "; resume recomputes");
    }
  }
}

void checkCaptures(Check& check) {
  const auto dir = check.root / "captures";
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    if (!file.is_regular_file() || file.path().extension() != ".cap") {
      continue;
    }
    ++check.report.scanned;
    try {
      obs::RunCapture::parse(readText(file.path()));
    } catch (const std::exception& e) {
      const std::string action = check.quarantine(file.path());
      check.finding(file.path(), FsckDamage::TornCapture,
                    FsckSeverity::Repaired, e.what(),
                    action + "; resume regenerates from the cell");
    }
  }
}

void checkArchiveTree(Check& check) {
  const auto manifest = check.root / "MANIFEST.jsonl";
  // The torn tail first, so the line scan below sees whole lines only.
  if (std::filesystem::exists(manifest)) {
    truncateTornTail(check, manifest, FsckDamage::TornManifestTail);
  }

  std::string text;
  try {
    text = std::filesystem::exists(manifest) ? readText(manifest)
                                             : std::string();
  } catch (const std::exception&) {
    text.clear();
  }
  // In a dry run the torn tail is still present; ignore the final
  // partial line the same way repair would have.
  if (!text.empty() && text.back() != '\n') {
    const auto lastNl = text.rfind('\n');
    text.resize(lastNl == std::string::npos ? 0 : lastNl + 1);
  }

  std::vector<std::string> keptLines;
  std::vector<obs::ArchiveEntry> entries;
  bool rewrite = false;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    obs::ArchiveEntry entry;
    if (!obs::parseArchiveManifestLine(line, entry)) {
      check.finding(manifest, FsckDamage::BadManifestLine,
                    FsckSeverity::Repaired,
                    "line " + std::to_string(lineNo) + " does not parse",
                    check.options.repair ? "dropped" : "would drop");
      rewrite = true;
      continue;
    }
    keptLines.push_back(line + "\n");
    entries.push_back(std::move(entry));
  }

  // Referenced objects: presence always, content when deep.  A missing
  // or corrupt payload is real data loss — captures and bench snapshots
  // are not recomputable — so the entry is dropped and the damage is
  // Unrecoverable.
  std::vector<bool> keep(entries.size(), true);
  std::set<std::string> referenced;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto object = check.root / "objects" / entries[i].objectName();
    ++check.report.scanned;
    if (!std::filesystem::exists(object)) {
      check.finding(object, FsckDamage::MissingObject,
                    FsckSeverity::Unrecoverable,
                    "referenced by manifest seq " +
                        std::to_string(entries[i].seq) + " but absent",
                    check.options.repair ? "entry dropped"
                                         : "would drop entry");
      keep[i] = false;
      rewrite = true;
      continue;
    }
    if (check.options.deep) {
      std::string bytes;
      try {
        bytes = readText(object);
      } catch (const std::exception&) {
        bytes.clear();
      }
      if (obs::archivePayloadHash(bytes) != entries[i].hash) {
        const std::string action = check.quarantine(object);
        check.finding(object, FsckDamage::CorruptObject,
                      FsckSeverity::Unrecoverable,
                      "payload does not match manifest hash " +
                          entries[i].hash,
                      action + "; entry dropped");
        keep[i] = false;
        rewrite = true;
        continue;
      }
    }
    referenced.insert(entries[i].objectName());
  }

  if (rewrite && check.options.repair) {
    std::string rebuilt;
    for (std::size_t i = 0; i < keptLines.size(); ++i) {
      if (keep[i]) rebuilt += keptLines[i];
    }
    util::vfs::replaceFile(manifest, rebuilt,
                           util::vfs::Durability::Durable);
  }

  // Unreferenced objects: valid ones stay (a crashed writer's dropped
  // manifest append; re-adding reuses them), but an object whose name
  // does not match its content is a torn write nothing points at.
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(
           check.root / "objects", ec)) {
    if (!file.is_regular_file()) continue;
    const std::string name = file.path().filename().string();
    long tempPid = 0;
    if (parseTempPid(name, tempPid)) continue;  // the temp sweep's job
    if (referenced.count(name) > 0) continue;
    ++check.report.scanned;
    const auto dot = name.find('.');
    const std::string nameHash =
        dot == std::string::npos ? name : name.substr(0, dot);
    std::string bytes;
    try {
      bytes = readText(file.path());
    } catch (const std::exception&) {
      continue;
    }
    if (obs::archivePayloadHash(bytes) == nameHash) continue;
    const std::string action = check.quarantine(file.path());
    check.finding(file.path(), FsckDamage::OrphanObject,
                  FsckSeverity::Repaired,
                  "unreferenced and name does not match content hash",
                  action);
  }
}

void sortFindings(FsckReport& report) {
  std::sort(report.findings.begin(), report.findings.end(),
            [](const FsckFinding& a, const FsckFinding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.damage != b.damage) return a.damage < b.damage;
              return a.detail < b.detail;
            });
}

}  // namespace

const char* fsckDamageName(FsckDamage damage) {
  switch (damage) {
    case FsckDamage::TornCell: return "torn-cell";
    case FsckDamage::ChecksumMismatch: return "checksum-mismatch";
    case FsckDamage::WrongKey: return "wrong-key";
    case FsckDamage::TornCapture: return "torn-capture";
    case FsckDamage::TornModel: return "torn-model";
    case FsckDamage::TornCampaignFile: return "torn-campaign-file";
    case FsckDamage::OrphanTemp: return "orphan-temp";
    case FsckDamage::TornManifestTail: return "torn-manifest-tail";
    case FsckDamage::BadManifestLine: return "bad-manifest-line";
    case FsckDamage::MissingObject: return "missing-object";
    case FsckDamage::CorruptObject: return "corrupt-object";
    case FsckDamage::OrphanObject: return "orphan-object";
    case FsckDamage::TornJournalTail: return "torn-journal-tail";
  }
  return "unknown";
}

bool FsckReport::unrecoverable() const noexcept {
  return std::any_of(findings.begin(), findings.end(),
                     [](const FsckFinding& f) {
                       return f.severity == FsckSeverity::Unrecoverable;
                     });
}

int FsckReport::exitCode() const noexcept {
  if (unrecoverable()) return 2;
  return findings.empty() ? 0 : 1;
}

std::string FsckReport::render(const std::string& title) const {
  std::ostringstream out;
  out << "iop-fsck: " << title << "\n";
  for (const auto& f : findings) {
    out << "  "
        << (f.severity == FsckSeverity::Unrecoverable ? "UNRECOVERABLE"
                                                      : "repaired")
        << " " << fsckDamageName(f.damage) << " " << f.path << ": "
        << f.detail << " (" << f.action << ")\n";
  }
  std::size_t bad = 0;
  for (const auto& f : findings) {
    if (f.severity == FsckSeverity::Unrecoverable) ++bad;
  }
  if (findings.empty()) {
    out << "  clean (" << scanned << " files scanned)\n";
  } else {
    out << "iop-fsck: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << " (" << bad
        << " unrecoverable), " << scanned << " files scanned\n";
  }
  return out.str();
}

FsckReport fsckCampaignStore(const std::filesystem::path& root,
                             const FsckOptions& options) {
  Check check{root, options, {}};
  if (!std::filesystem::exists(root)) return check.report;
  checkCampaignFile(check);
  checkModels(check, root / "models");
  if (options.deep) {
    checkCells(check);
    checkCaptures(check);
  }
  checkJournals(check);
  sweepOrphanTemps(check);
  sortFindings(check.report);
  return check.report;
}

FsckReport fsckSharedStore(const std::filesystem::path& root,
                           const FsckOptions& options) {
  Check check{root, options, {}};
  if (!std::filesystem::exists(root)) return check.report;
  checkModels(check, root / "models");
  if (options.deep) checkCells(check);
  sweepOrphanTemps(check);
  sortFindings(check.report);
  return check.report;
}

FsckReport fsckArchive(const std::filesystem::path& root,
                       const FsckOptions& options) {
  Check check{root, options, {}};
  if (!std::filesystem::exists(root)) return check.report;
  checkArchiveTree(check);
  sweepOrphanTemps(check);
  sortFindings(check.report);
  return check.report;
}

}  // namespace iop::sweep
