// The campaign executor: a fixed-size worker pool evaluating grid cells.
//
// Threading model: each worker evaluates one cell at a time with a
// completely private stack — a fresh ClusterConfig (own sim::Engine, own
// topology) built from captured text, a private Replayer, a private
// Estimate.  Workers share only the atomic work cursor, the result slots
// (disjoint per cell), and the store directory (disjoint files, atomic
// renames).  The simulations themselves stay single-threaded and
// deterministic, so a cell's bytes are a pure function of its cache key —
// which is what makes the store byte-identical for any -j and lets a
// second run be 100% cache hits.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "sweep/campaign.hpp"
#include "sweep/store.hpp"

namespace iop::sweep {

struct CellOutcome;
class SweepTelemetry;

struct SweepOptions {
  int jobs = 1;              ///< worker threads (>= 1)
  bool force = false;        ///< recompute cached cells (and replace a
                             ///< mismatched store)
  bool writeCaptures = true; ///< also commit iop-diff'able captures
  /// Optional campaign-independent shared cache directory (SharedStore):
  /// probed after the campaign store on a miss — a hit is adopted into the
  /// campaign store — and every computed cell is deposited back.  Empty
  /// disables sharing.
  std::string sharedStore;
  /// Cooperative cancellation (SIGINT/SIGTERM in iop-sweep): when the
  /// pointee becomes true, workers stop taking new cells after finishing
  /// — and committing — the one in flight.  Untouched cells are reported
  /// as Skipped and the outcome is marked interrupted; a later resume
  /// picks up exactly the uncommitted remainder.
  const std::atomic<bool>* cancel = nullptr;
  /// Test/progress hook, invoked serially (under a lock) after each cell
  /// is committed or fails.  May flip `cancel` to exercise shutdown.
  std::function<void(const CellOutcome&)> onCellDone;
  /// Optional runtime telemetry bundle (flight recorder, live metrics,
  /// exec trace — see telemetry.hpp).  Observation-only: the store bytes
  /// are identical with and without it.
  SweepTelemetry* telemetry = nullptr;
  /// Hung-worker watchdog (0 = off, the default).  With a soft deadline,
  /// a cell still evaluating after that many wall seconds is journaled as
  /// `cell_slow` (and counts on the `sweep.slow_cells` gauge) but keeps
  /// running.  With a hard deadline, a cell that exceeds it is abandoned:
  /// the evaluation thread is left to finish (or hang) in the background
  /// — it only ever computes, it never touches the store — a
  /// `quarantine/<key>.stuck.<attempt>` marker is written, and the cell
  /// is retried once on whichever worker is free next.  A second timeout
  /// fails the cell with a "stuck" error.  Deadlines don't perturb
  /// results: a store written with the watchdog on is byte-identical to
  /// one written with it off (abandoned attempts commit nothing).
  /// Caveat: an abandoned evaluation may still be running when runSweep
  /// returns; it references only the ResolvedCampaign, so callers must
  /// keep the campaign alive for the process lifetime when enabling hard
  /// deadlines (iop-sweep does).
  double softDeadlineSeconds = 0;
  double hardDeadlineSeconds = 0;
};

struct CellOutcome {
  enum class Status { Cached, Computed, Failed, Skipped };

  CellSpec spec;
  Status status = Status::Failed;
  CellResult result;    ///< valid unless Failed/Skipped
  std::string error;    ///< Failed/Skipped only
  double seconds = 0;   ///< wall time spent computing (0 for cached)
};

struct SweepOutcome {
  std::vector<CellOutcome> cells;  ///< canonical campaign order
  std::size_t cacheHits = 0;
  std::size_t sharedHits = 0;  ///< subset of cacheHits served by the
                               ///< shared store
  std::size_t quarantined = 0;  ///< corrupt cached cells set aside and
                                ///< recomputed
  std::size_t computed = 0;
  std::size_t failures = 0;
  std::size_t skipped = 0;  ///< cells not started before cancellation
  std::size_t stuck = 0;    ///< watchdog hard-deadline abandonments
                            ///< (includes retried attempts)
  std::size_t iorRuns = 0;  ///< IOR executions across computed cells
  double wallSeconds = 0;
  bool interrupted = false;  ///< cancellation stopped the run early

  bool ok() const noexcept {
    return failures == 0 && skipped == 0 && !interrupted;
  }
};

/// Evaluate one cell synchronously (no store involved).  The building
/// block workers run; exposed for tests and the micro-benchmark.
CellResult evaluateCell(const ResolvedCampaign& campaign,
                        const CellSpec& cell);

/// Run (or resume) a campaign against a store: probe the cache serially,
/// evaluate the misses on `options.jobs` workers, commit results
/// atomically, and rewrite the manifest in canonical order.  Logs per-cell
/// progress to `log` and bumps `sweep.*` counters on `metrics` (either may
/// be null).
SweepOutcome runSweep(const ResolvedCampaign& campaign, CampaignStore& store,
                      const SweepOptions& options,
                      obs::Logger* log = nullptr,
                      obs::MetricsRegistry* metrics = nullptr);

}  // namespace iop::sweep
