#include "sweep/hash.hpp"

namespace iop::sweep {

void ContentHash::update(std::string_view bytes) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = state_;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kPrime;
  }
  h ^= 0;  // field separator
  h *= kPrime;
  state_ = h;
}

std::string ContentHash::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = state_;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string hashHex(std::string_view bytes) {
  ContentHash h;
  h.update(bytes);
  return h.hex();
}

}  // namespace iop::sweep
