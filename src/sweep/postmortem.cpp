#include "sweep/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace iop::sweep {

namespace {

double numField(const obs::JournalEvent& ev, const std::string& key) {
  const std::string* raw = ev.field(key);
  if (raw == nullptr) return 0;
  return std::strtod(raw->c_str(), nullptr);
}

std::string strField(const obs::JournalEvent& ev, const std::string& key) {
  const std::string* raw = ev.field(key);
  return raw == nullptr ? std::string() : *raw;
}

std::string fmtT(double t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3fs", t);
  return buf;
}

}  // namespace

Postmortem analyzeJournal(const obs::JournalParse& parsed) {
  Postmortem pm;
  pm.events = parsed.events.size();
  pm.badLines = parsed.badLines;

  // key -> index into pm.inFlight while the claim is open.
  std::map<std::string, std::size_t> open;

  for (const auto& ev : parsed.events) {
    pm.lastEventT = ev.t;
    pm.lastEventName = ev.name;
    if (ev.name == "journal_start") {
      pm.schema = strField(ev, "schema");
      pm.startUnixMs = numField(ev, "unix_ms");
      pm.pid = static_cast<long>(numField(ev, "pid"));
    } else if (ev.name == "campaign_start") {
      pm.campaign = strField(ev, "campaign");
      pm.configHash = strField(ev, "config");
      pm.jobs = static_cast<int>(numField(ev, "jobs"));
    } else if (ev.name == "exec_start") {
      pm.cells = static_cast<std::size_t>(numField(ev, "cells"));
      pm.pending = static_cast<std::size_t>(numField(ev, "pending"));
      pm.workers = static_cast<std::size_t>(numField(ev, "workers"));
    } else if (ev.name == "cache_hit") {
      ++pm.cacheHits;
    } else if (ev.name == "shared_hit") {
      ++pm.cacheHits;
      ++pm.sharedHits;
    } else if (ev.name == "cell_quarantined") {
      ++pm.quarantined;
    } else if (ev.name == "cell_claim") {
      ++pm.claims;
      InFlightCell cell;
      cell.worker = static_cast<std::size_t>(numField(ev, "worker"));
      cell.cell = strField(ev, "cell");
      cell.key = strField(ev, "key");
      cell.claimedAt = ev.t;
      open[cell.key] = pm.inFlight.size();
      pm.inFlight.push_back(std::move(cell));
    } else if (ev.name == "cell_commit" || ev.name == "cell_failed" ||
               ev.name == "cell_stuck") {
      if (ev.name == "cell_commit") {
        ++pm.commits;
      } else if (ev.name == "cell_failed") {
        ++pm.failures;
      } else {
        // Watchdog abandonment: the claim is closed either way; a
        // retrying cell re-enters via a fresh cell_claim.
        ++pm.stuck;
      }
      auto it = open.find(strField(ev, "key"));
      if (it != open.end()) {
        // Compact: erase by swapping the tail in, fixing its open index.
        const std::size_t at = it->second;
        open.erase(it);
        const std::size_t last = pm.inFlight.size() - 1;
        if (at != last) {
          pm.inFlight[at] = std::move(pm.inFlight[last]);
          open[pm.inFlight[at].key] = at;
        }
        pm.inFlight.pop_back();
      }
    } else if (ev.name == "cells_skipped") {
      pm.skippedCells += static_cast<std::size_t>(numField(ev, "count"));
    } else if (ev.name == "shutdown_requested") {
      pm.shutdownRequested = true;
    } else if (ev.name == "run_complete") {
      pm.complete = true;
      pm.interrupted = strField(ev, "interrupted") == "true";
    }
  }
  std::sort(pm.inFlight.begin(), pm.inFlight.end(),
            [](const InFlightCell& a, const InFlightCell& b) {
              return a.claimedAt < b.claimedAt;
            });
  return pm;
}

std::string renderPostmortem(const Postmortem& pm,
                             const std::filesystem::path& journalPath) {
  std::ostringstream out;
  out << "postmortem: " << journalPath.string() << "\n";
  out << "journal:    " << (pm.schema.empty() ? "?" : pm.schema) << ", "
      << pm.events << " events";
  if (pm.badLines > 0) {
    out << ", " << pm.badLines << " torn/bad line"
        << (pm.badLines == 1 ? "" : "s");
  }
  if (pm.pid != 0) out << ", pid " << pm.pid;
  out << "\n";
  if (!pm.campaign.empty()) {
    out << "campaign:   " << pm.campaign;
    if (!pm.configHash.empty()) out << " (config " << pm.configHash << ")";
    if (pm.cells > 0) {
      out << ", " << pm.cells << " cells (" << pm.pending
          << " pending), -j" << pm.jobs;
    }
    out << "\n";
  }
  out << "progress:   " << pm.commits << " committed, " << pm.failures
      << " failed, " << pm.cacheHits << " cache hits";
  if (pm.sharedHits > 0) out << " (" << pm.sharedHits << " shared)";
  if (pm.stuck > 0) out << ", " << pm.stuck << " stuck";
  if (pm.quarantined > 0) out << ", " << pm.quarantined << " quarantined";
  if (pm.skippedCells > 0) out << ", " << pm.skippedCells << " skipped";
  out << "\n";
  if (pm.shutdownRequested) {
    out << "shutdown:   cooperative shutdown was requested\n";
  }
  if (pm.complete) {
    out << "outcome:    run complete"
        << (pm.interrupted ? " (interrupted; resume to finish)" : "")
        << " — journal ends at t=" << fmtT(pm.lastEventT) << "\n";
  } else {
    out << "outcome:    run INCOMPLETE — journal ends at t="
        << fmtT(pm.lastEventT) << " after '" << pm.lastEventName << "'\n";
  }
  if (!pm.inFlight.empty()) {
    out << "in-flight cells at last record (" << pm.inFlight.size()
        << "):\n";
    for (const auto& cell : pm.inFlight) {
      out << "  worker " << cell.worker << ": " << cell.cell << " (key "
          << cell.key << ") claimed t=" << fmtT(cell.claimedAt) << "\n";
    }
    out << "these cells lost only their own work; `iop-sweep resume` "
           "recomputes them\n";
  } else if (!pm.complete) {
    out << "no cells were in flight at the last record\n";
  }
  return out.str();
}

std::filesystem::path newestJournal(
    const std::filesystem::path& storeRoot) {
  const auto dir = storeRoot / "journal";
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return {};
  std::string bestName;
  std::filesystem::path best;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("run-", 0) != 0) continue;
    if (entry.path().extension() != ".jsonl") continue;
    // Filenames embed a decimal unix-ms timestamp; longer numbers are
    // larger, so (length, lexicographic) compares them numerically.
    const auto better = [&] {
      if (bestName.empty()) return true;
      if (name.size() != bestName.size()) {
        return name.size() > bestName.size();
      }
      return name > bestName;
    };
    if (better()) {
      bestName = name;
      best = entry.path();
    }
  }
  return best;
}

}  // namespace iop::sweep
