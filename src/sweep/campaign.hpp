// Campaign specifications: the what-if grid a sweep evaluates.
//
// A campaign file is the same directive-per-line text format as the
// cluster description files ('#' comments, whitespace tokens):
//
//   name btio-selection
//   model models/btio-D.model          # model-file axis entry
//   app btio np=4 class=C              # characterize-and-model axis entry
//   characterize A                     # config app entries are traced on
//   config C                           # candidate axis entry (repeatable)
//   config finisterrae
//   config-file clusters/ssd-nas.conf
//   degrade-disks 1 4                  # fault grid (default: 1)
//   degrade-net 1 2
//   faultplan none                     # fault axis entry (repeatable)
//   faultplan file=plans/flaky.plan    # seeded fault-injection plan
//   fault-seeds 3                      # replicas per faulted plan entry
//   tenantspec none                    # tenant axis entry (repeatable)
//   tenantspec file=jobs.tenant        # background contention scenario
//   tenant-seeds 2                     # replicas per tenanted entry
//   multiop                            # exact-cycle multi-op replay
//
// Cells = models x configs x degrade-disks x degrade-net x faultplans
// (x seeds for faulted plan entries) x tenantspecs (x seeds for tenanted
// entries), in exactly that (declaration) order — the campaign's
// canonical cell order, which the executor commits results in regardless
// of worker count.  A campaign with no faultplan/tenantspec directive
// produces the exact same grid, keys and store bytes as before those axes
// existed.
//
// A tenanted cell co-schedules the cell's model as the foreground job of
// the tenant spec (weight 1, arrival 0) and reports the foreground's
// *contended* Time_io — "how does this model fare on this configuration
// under that background load".  The tenant seed drives the whole composed
// run (arrival streams and any fault plan), so tenanted cells do not
// additionally fan out over fault-seeds.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "fault/plan.hpp"
#include "obs/log.hpp"
#include "tenant/spec.hpp"

namespace iop::sweep {

class SweepTelemetry;

/// Estimator identity folded into every cache key: bump when the replay /
/// estimation pipeline changes in a result-affecting way.
inline constexpr const char* kEstimatorVersion = "iop-estimate/2";
inline constexpr const char* kMultiOpEstimatorVersion =
    "iop-estimate-multiop/1";
/// Faulted cells replay the whole model synthetically (degraded.hpp)
/// instead of per-phase IOR mapping, so they carry their own version.
inline constexpr const char* kFaultEstimatorVersion = "iop-estimate-fault/1";
/// Tenanted cells co-schedule the model against a tenant spec's
/// background jobs (tenant/cosched.hpp) and estimate the contended
/// foreground Time_io, so they carry their own version too.
inline constexpr const char* kTenantEstimatorVersion =
    "iop-estimate-tenant/1";

/// One model axis entry: either a saved model file or an application to
/// characterize on the campaign's characterize config.
struct ModelSource {
  std::string label;
  std::string path;  ///< model file (empty for app entries)
  std::string app;   ///< application name (empty for file entries)
  int np = 4;        ///< app entries: process count
  apps::AppParams params;

  bool fromApp() const noexcept { return !app.empty(); }
};

/// One candidate configuration: a paper config by name or a cluster file.
struct ConfigSource {
  std::string label;
  bool fromFile = false;
  std::string name = "A";  ///< paper configuration (when !fromFile)
  std::string path;        ///< cluster description file (when fromFile)
};

/// One fault axis entry: "none" (the healthy baseline) or a fault plan
/// file evaluated across `faultSeeds` seeded replicas.
struct FaultSource {
  std::string label = "none";
  std::string path;  ///< fault plan file (empty for the none entry)

  bool none() const noexcept { return path.empty(); }
};

/// One tenant axis entry: "none" (the uncontended baseline) or a tenant
/// spec file whose jobs run as background load for the cell's model.
struct TenantSource {
  std::string label = "none";
  std::string path;  ///< tenant spec file (empty for the none entry)

  bool none() const noexcept { return path.empty(); }
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<ModelSource> models;
  std::vector<ConfigSource> configs;
  std::vector<double> degradeDisks{1.0};
  std::vector<double> degradeNet{1.0};
  std::vector<FaultSource> faults{FaultSource{}};
  int faultSeeds = 1;  ///< replicas per faulted plan entry
  std::vector<TenantSource> tenants{TenantSource{}};
  int tenantSeeds = 1;  ///< replicas per tenanted spec entry
  bool multiop = false;
  ConfigSource characterize;  ///< default: paper configuration A

  /// True when the campaign has a fault axis beyond the default healthy
  /// baseline — the only case where fault fields enter canonical texts.
  bool hasFaultAxis() const noexcept {
    return faults.size() != 1 || !faults.front().none() || faultSeeds != 1;
  }

  /// True when the campaign has a tenant axis beyond the default
  /// uncontended baseline — the only case where tenant fields enter
  /// canonical texts.
  bool hasTenantAxis() const noexcept {
    return tenants.size() != 1 || !tenants.front().none() ||
           tenantSeeds != 1;
  }

  const char* estimatorVersion() const noexcept {
    return multiop ? kMultiOpEstimatorVersion : kEstimatorVersion;
  }

  /// Deterministic re-rendering of the parsed spec (comments and
  /// whitespace dropped): the store's campaign identity.
  std::string canonicalText() const;
};

/// Parse a campaign.  Relative paths resolve against `baseDir`.  Throws
/// std::invalid_argument with a line reference on malformed input.
CampaignSpec parseCampaign(const std::string& text,
                           const std::filesystem::path& baseDir);
CampaignSpec loadCampaign(const std::filesystem::path& path);

// ------------------------------------------------------------- Resolution

struct ResolvedModel {
  std::string label;
  core::IOModel model;
  std::string contentText;  ///< canonical model serialization (hash input)
};

struct ResolvedConfig {
  std::string label;
  std::string identity;     ///< hash input: config name or file content
  bool fromFile = false;
  std::string name;         ///< paper config name (when !fromFile)
  std::string clusterText;  ///< cluster file content (when fromFile)
  std::string mount;        ///< default mount of the configuration

  /// Build a fresh, cold instance with the cell's fault factors applied.
  /// Thread-safe: parses from the captured text, touches no shared state.
  configs::ClusterConfig build(double degradeDisks,
                               double degradeNet) const;
};

/// One fault axis entry with its plan parsed and canonicalized.
struct ResolvedFault {
  std::string label = "none";
  fault::FaultPlan plan;  ///< empty for the none entry
  std::string planText;   ///< plan.canonicalText() — hash input ("" = none)

  bool none() const noexcept { return planText.empty(); }
};

/// One tenant axis entry with its spec parsed and canonicalized.
struct ResolvedTenant {
  std::string label = "none";
  tenant::TenantSpec spec;  ///< empty for the none entry
  std::string specText;     ///< spec.canonicalText() — hash input ("" = none)

  bool none() const noexcept { return specText.empty(); }
};

/// One cell of the campaign grid, with its content-addressed cache key.
struct CellSpec {
  std::size_t modelIndex = 0;
  std::size_t configIndex = 0;
  double degradeDisks = 1.0;
  double degradeNet = 1.0;
  std::size_t faultIndex = 0;   ///< into ResolvedCampaign::faults
  std::uint64_t faultSeed = 0;  ///< 0 = unfaulted (the none entry)
  std::size_t tenantIndex = 0;   ///< into ResolvedCampaign::tenants
  std::uint64_t tenantSeed = 0;  ///< 0 = untenanted (the none entry)
  std::string key;  ///< 16-hex ContentHash of (estimator, model, config,
                    ///< faults, tenants)

  bool faulted() const noexcept { return faultSeed != 0; }
  bool tenanted() const noexcept { return tenantSeed != 0; }
};

struct ResolvedCampaign {
  CampaignSpec spec;
  std::vector<ResolvedModel> models;
  std::vector<ResolvedConfig> configs;
  std::vector<ResolvedFault> faults;
  std::vector<ResolvedTenant> tenants;
  std::size_t characterized = 0;   ///< app entries actually traced
  std::size_t modelCacheHits = 0;  ///< app entries served from a model cache

  /// The campaign grid in canonical order, cache keys computed.
  std::vector<CellSpec> planCells() const;

  std::string cellTitle(const CellSpec& cell) const;
};

/// Knobs for resolveCampaign.  Characterization runs (one per `app`
/// entry) are independent simulations, so they fan out over `jobs` worker
/// threads; `modelCacheDirs` are probed for a content-addressed model
/// (keyed by app + parameters + characterize config) before tracing, and
/// every computed model is written back to all of them.
struct ResolveOptions {
  int jobs = 1;
  std::vector<std::filesystem::path> modelCacheDirs;
  bool reuse = true;  ///< false: ignore cached models (still writes back)
  obs::Logger* log = nullptr;
  /// Optional runtime telemetry (telemetry.hpp): characterization spans
  /// land on the exec trace as they run; journal events and metrics are
  /// emitted post-join in declaration order.  Observation-only.
  SweepTelemetry* telemetry = nullptr;
};

/// Load model files, characterize app entries (on the characterize
/// config, across `options.jobs` workers), and load cluster files.  Logs
/// one line per characterization, deterministically in declaration order.
ResolvedCampaign resolveCampaign(const CampaignSpec& spec,
                                 const ResolveOptions& options);

/// Serial convenience overload (jobs = 1, no model cache).
ResolvedCampaign resolveCampaign(const CampaignSpec& spec,
                                 obs::Logger* log = nullptr);

/// Content-addressed model cache key for an `app` campaign entry: app
/// name + np + parameters + the characterize config's identity.
std::string modelCacheKey(const ModelSource& src,
                          const std::string& characterizeIdentity);

/// The cache key of one cell (exposed for tests): estimator version +
/// model text + config identity + fault factors.  The fault plan's
/// canonical text and replica seed enter the hash only when a plan is
/// present, so unfaulted keys are byte-identical to pre-fault stores;
/// likewise the tenant spec's canonical text and seed enter only for
/// tenanted cells.
std::string cellKey(const char* estimatorVersion,
                    const std::string& modelText,
                    const std::string& configIdentity, double degradeDisks,
                    double degradeNet,
                    const std::string& faultPlanText = std::string(),
                    std::uint64_t faultSeed = 0,
                    const std::string& tenantSpecText = std::string(),
                    std::uint64_t tenantSeed = 0);

}  // namespace iop::sweep
