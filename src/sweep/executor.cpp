#include "sweep/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "analysis/degraded.hpp"
#include "analysis/multiop.hpp"
#include "analysis/replay.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "sim/framepool.hpp"
#include "sweep/telemetry.hpp"
#include "tenant/cosched.hpp"
#include "util/vfs.hpp"

namespace iop::sweep {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Serialized view of the (not thread-safe) Logger for worker threads.
class SharedLog {
 public:
  explicit SharedLog(obs::Logger* log) : log_(log) {}

  void info(const std::string& event, const std::string& fields) {
    if (log_ == nullptr) return;
    std::lock_guard<std::mutex> guard(mutex_);
    log_->info("sweep", event, fields);
  }
  void warn(const std::string& event, const std::string& fields) {
    if (log_ == nullptr) return;
    std::lock_guard<std::mutex> guard(mutex_);
    log_->warn("sweep", event, fields);
  }

 private:
  obs::Logger* log_;
  std::mutex mutex_;
};

std::string cellFields(const ResolvedCampaign& campaign,
                       const CellSpec& cell) {
  return "\"cell\":\"" +
         obs::TraceRecorder::jsonEscape(campaign.cellTitle(cell)) +
         "\",\"key\":\"" + cell.key + "\"";
}

/// Result slot shared between a worker and the detached evaluation thread
/// the watchdog supervises.  The thread owns `result`/`error` until it
/// flips `done`; after a hard-deadline abandonment nobody reads them, so
/// the thread can finish (or hang) without touching anything the run
/// still cares about.
struct EvalTask {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  CellResult result;
  std::string error;
};

}  // namespace

CellResult evaluateCell(const ResolvedCampaign& campaign,
                        const CellSpec& cell) {
  IOP_PROFILE_SCOPE("sweep.cell");
  const ResolvedModel& model = campaign.models[cell.modelIndex];
  const ResolvedConfig& config = campaign.configs[cell.configIndex];

  // Every measurement runs on a fresh, cold, private instance of the
  // candidate configuration with the cell's fault factors applied.
  analysis::ConfigBuilder builder = [&config, &cell]() {
    return config.build(cell.degradeDisks, cell.degradeNet);
  };

  CellResult result;
  result.key = cell.key;
  result.modelLabel = model.label;
  result.configLabel = config.label;
  result.degradeDisks = cell.degradeDisks;
  result.degradeNet = cell.degradeNet;
  result.np = model.model.np();
  result.weightBytes = model.model.totalWeightBytes();

  if (cell.tenanted()) {
    // Tenanted cell: co-schedule the model as the foreground job of the
    // tenant spec (tenant/cosched.hpp) and estimate its *contended*
    // Time_io.  A fault plan on the cell composes into the same run; the
    // tenant seed drives both the arrival streams and the injector.
    const ResolvedTenant& tenantSrc = campaign.tenants[cell.tenantIndex];
    const ResolvedFault& faultSrc = campaign.faults[cell.faultIndex];
    tenant::TenantRunOptions topt;
    if (!faultSrc.none()) topt.faultPlan = &faultSrc.plan;
    topt.foregroundModel = &model.model;
    const tenant::TenantResult tr =
        tenant::runTenant(tenantSrc.spec, builder, cell.tenantSeed, topt);
    const tenant::TenantJobResult& fg = tr.jobs.front();
    result.estimator = kTenantEstimatorVersion;
    result.tenantLabel = tenantSrc.label;
    result.tenantSeed = cell.tenantSeed;
    result.tenantJain = tr.jain;
    result.tenantSoloTimeIo = fg.soloTimeIo;
    result.tenantSlowdown = fg.slowdown;
    if (!faultSrc.none()) result.faultLabel = faultSrc.label;
    result.timeIo = fg.contendedTimeIo;
    for (const auto& p : fg.phases) {
      const double bw =
          p.seconds > 0
              ? static_cast<double>(p.weightBytes) / p.seconds
              : 0;
      result.phases.push_back(
          {p.id, p.familyId, p.weightBytes, bw, p.seconds});
    }
    for (const auto& job : tr.jobs) {
      result.tenantJobs.push_back({job.id, job.weight, job.soloTimeIo,
                                   job.contendedTimeIo, job.slowdown,
                                   job.waitSeconds});
    }
    return result;
  }

  if (cell.faulted()) {
    // Degraded-mode cell: one seeded replica of the whole-model synthetic
    // replay under the fault plan.  Deterministic, so a replica whose run
    // dies at phase level is still a committable (cacheable) result.
    const ResolvedFault& faultSrc = campaign.faults[cell.faultIndex];
    const auto degraded = analysis::estimateDegraded(
        model.model, builder, faultSrc.plan, {cell.faultSeed});
    const analysis::FaultReplica& replica = degraded.replicas.front();
    result.estimator = kFaultEstimatorVersion;
    result.faultLabel = faultSrc.label;
    result.faultSeed = cell.faultSeed;
    result.faultRetries = replica.retries;
    result.faultFailovers = replica.failovers;
    result.faultStallSeconds = replica.stallSeconds;
    if (replica.ok) {
      result.timeIo = replica.timeIo;
    } else {
      result.faultError = replica.error;
    }
    for (const auto& p : degraded.phases) {
      const double bw = p.medianTimeSec > 0
                            ? static_cast<double>(p.weightBytes) /
                                  p.medianTimeSec
                            : 0;
      result.phases.push_back(
          {p.phaseId, p.familyId, p.weightBytes, bw, p.medianTimeSec});
    }
    return result;
  }

  analysis::Replayer replayer(builder, config.mount);
  analysis::Estimate estimate =
      campaign.spec.multiop
          ? analysis::estimateIoTimeMultiOp(model.model, replayer, builder,
                                            config.mount)
          : analysis::estimateIoTime(model.model, replayer);
  result.estimator = campaign.spec.estimatorVersion();
  result.timeIo = estimate.totalTimeSec;
  result.iorRuns = replayer.benchmarkRuns();
  for (const auto& p : estimate.phases) {
    result.phases.push_back({p.phaseId, p.familyId, p.weightBytes,
                             p.bandwidthCH, p.timeCH});
  }
  return result;
}

SweepOutcome runSweep(const ResolvedCampaign& campaign, CampaignStore& store,
                      const SweepOptions& options, obs::Logger* log,
                      obs::MetricsRegistry* metrics) {
  IOP_PROFILE_SCOPE("sweep.run");
  if (options.jobs < 1) {
    throw std::invalid_argument("sweep: jobs must be >= 1");
  }
  const auto startedAt = std::chrono::steady_clock::now();
  SharedLog sharedLog(log);
  SweepTelemetry* tele = options.telemetry;

  // Wall-clock pause between claim and evaluation, so tests/CI can kill
  // the process deterministically mid-cell.  Affects timing only — never
  // results — and is off (0) outside the test harness.
  int testDelayMs = 0;
  if (const char* env = std::getenv("IOP_SWEEP_TEST_CELL_DELAY_MS")) {
    testDelayMs = std::atoi(env);
  }
  // Same, but applied to a cell's *first* attempt only, so watchdog tests
  // can make attempt 1 overrun the hard deadline and the retry succeed.
  int testDelayOnceMs = 0;
  if (const char* env =
          std::getenv("IOP_SWEEP_TEST_CELL_DELAY_ONCE_MS")) {
    testDelayOnceMs = std::atoi(env);
  }

  store.initialize(campaign.spec.canonicalText(), options.force);
  if (tele != nullptr) {
    store.setRuntimeMetrics(&tele->runtime(), "store");
  }

  std::optional<SharedStore> shared;
  if (!options.sharedStore.empty()) {
    shared.emplace(std::filesystem::path(options.sharedStore));
    if (tele != nullptr) {
      shared->setRuntimeMetrics(&tele->runtime(), "shared_store");
    }
  }

  SweepOutcome outcome;
  const std::vector<CellSpec> plan = campaign.planCells();
  outcome.cells.resize(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    outcome.cells[i].spec = plan[i];
  }

  // Serial cache probe, plus key-dedup: identical cells (same key) are
  // evaluated once and share the result.
  std::vector<std::size_t> pending;       // owner index per unique key
  std::map<std::string, std::size_t> owners;
  std::map<std::string, std::vector<std::size_t>> followers;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    IOP_PROFILE_SCOPE("sweep.probe");
    const CellSpec& cell = plan[i];
    if (!options.force && store.hasCell(cell.key)) {
      // tryLoadCell treats a torn/corrupt file as a miss: the bad bytes
      // move to quarantine/ and the cell drops through to recomputation.
      std::string whyBad;
      if (auto loaded = store.tryLoadCell(cell.key, &whyBad)) {
        outcome.cells[i].status = CellOutcome::Status::Cached;
        outcome.cells[i].result = std::move(*loaded);
        // A torn capture iop-fsck quarantined leaves the cell intact but
        // capture-less; captures are a pure function of the result, so
        // regenerate in place and the store converges back to the bytes
        // an uninterrupted run would have written.
        if (options.writeCaptures &&
            !std::filesystem::exists(store.capturePath(cell.key))) {
          store.saveCapture(cell.key,
                            makeCellCapture(outcome.cells[i].result));
        }
        ++outcome.cacheHits;
        sharedLog.info("cache_hit", cellFields(campaign, cell));
        if (tele != nullptr) {
          tele->cacheHit(campaign.cellTitle(cell), cell.key,
                         /*shared=*/false);
        }
        continue;
      }
      ++outcome.quarantined;
      sharedLog.warn("cell_quarantined",
                     cellFields(campaign, cell) + ",\"error\":\"" +
                         obs::TraceRecorder::jsonEscape(whyBad) + "\"");
      if (tele != nullptr) {
        tele->cellQuarantined(campaign.cellTitle(cell), cell.key, whyBad,
                              /*shared=*/false);
      }
    }
    if (!options.force && shared && shared->hasCell(cell.key)) {
      // Adopt the shared result into the campaign store: cell bytes are a
      // pure function of the key, so render() reproduces them exactly, and
      // the regenerated capture matches what a local evaluation would have
      // committed.
      std::string whyBad;
      if (auto loaded = shared->tryLoadCell(cell.key, &whyBad)) {
        CellOutcome& out = outcome.cells[i];
        out.status = CellOutcome::Status::Cached;
        out.result = std::move(*loaded);
        store.saveCell(out.result);
        if (options.writeCaptures) {
          store.saveCapture(cell.key, makeCellCapture(out.result));
        }
        ++outcome.cacheHits;
        ++outcome.sharedHits;
        sharedLog.info("shared_hit", cellFields(campaign, cell));
        if (tele != nullptr) {
          tele->cacheHit(campaign.cellTitle(cell), cell.key,
                         /*shared=*/true);
        }
        continue;
      }
      ++outcome.quarantined;
      sharedLog.warn("shared_cell_quarantined",
                     cellFields(campaign, cell) + ",\"error\":\"" +
                         obs::TraceRecorder::jsonEscape(whyBad) + "\"");
      if (tele != nullptr) {
        tele->cellQuarantined(campaign.cellTitle(cell), cell.key, whyBad,
                              /*shared=*/true);
      }
    }
    auto [it, inserted] = owners.emplace(cell.key, i);
    if (inserted) {
      pending.push_back(i);
    } else {
      followers[cell.key].push_back(i);
    }
  }

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(options.jobs), pending.size());
  if (tele != nullptr) {
    tele->execStart(plan.size(), outcome.cacheHits, outcome.sharedHits,
                    pending.size(), workers);
  }

  // Fixed-size pool over the pending list.  Each worker owns its cell's
  // outcome slot exclusively; the only other shared mutable state is the
  // retry queue the watchdog feeds.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> inFlight{0};
  std::atomic<std::size_t> stuckCount{0};
  std::mutex doneMutex;  // serializes options.onCellDone
  std::mutex retryMutex;
  std::deque<std::size_t> retryQueue;  // watchdog second attempts
  const bool watchdog = options.hardDeadlineSeconds > 0 ||
                        options.softDeadlineSeconds > 0;
  auto cancelled = [&options]() {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };
  auto workerMain = [&](std::size_t worker) {
    if (tele != nullptr) tele->workerSpawn(worker);
    for (;;) {
      // Check between cells, never mid-cell: a cancelled run keeps every
      // result already committed and leaves no partial files behind.
      if (cancelled()) {
        if (tele != nullptr) tele->shutdownNoticed();
        break;
      }
      // Retries first: a cell another worker abandoned is older work
      // than anything still behind the cursor.
      std::size_t index = 0;
      int attempt = 1;
      bool claimed = false;
      {
        std::lock_guard<std::mutex> guard(retryMutex);
        if (!retryQueue.empty()) {
          index = retryQueue.front();
          retryQueue.pop_front();
          attempt = 2;
          claimed = true;
        }
      }
      if (!claimed &&
          cursor.load(std::memory_order_relaxed) < pending.size()) {
        const std::size_t slot = cursor.fetch_add(1);
        if (slot < pending.size()) {
          index = pending[slot];
          claimed = true;
        }
      }
      if (!claimed) {
        // Drained — but a cell still in flight elsewhere may yet be
        // abandoned into the retry queue, so only leave once nothing is
        // in flight anywhere.
        if (inFlight.load(std::memory_order_acquire) > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        break;
      }
      inFlight.fetch_add(1, std::memory_order_acq_rel);
      CellOutcome& out = outcome.cells[index];
      const double tClaim = tele != nullptr ? tele->now() : 0;
      if (tele != nullptr) {
        tele->cellClaim(worker, campaign.cellTitle(out.spec),
                        out.spec.key);
      }
      if (testDelayMs > 0 && !watchdog) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(testDelayMs));
      }
      const auto cellStart = std::chrono::steady_clock::now();
      bool abandoned = false;
      bool evalOk = false;
      CellResult evalResult;
      std::string evalError;
      if (!watchdog) {
        try {
          evalResult = evaluateCell(campaign, out.spec);
          evalOk = true;
        } catch (const std::exception& e) {
          evalError = e.what();
        }
      } else {
        // Supervised evaluation: the cell computes on a detached thread
        // (a hung evaluation must never hang the pool) that reads only
        // `campaign` plus its private spec copy and writes only into
        // `task`.  The worker waits out the deadlines here.
        auto task = std::make_shared<EvalTask>();
        const int delayMs =
            testDelayMs + (attempt == 1 ? testDelayOnceMs : 0);
        std::thread([task, &campaign, spec = out.spec, delayMs]() {
          try {
            if (delayMs > 0) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(delayMs));
            }
            CellResult r = evaluateCell(campaign, spec);
            {
              std::lock_guard<std::mutex> guard(task->mutex);
              task->result = std::move(r);
              task->done = true;
            }
            task->cv.notify_all();
          } catch (const std::exception& e) {
            {
              std::lock_guard<std::mutex> guard(task->mutex);
              task->error = e.what();
              task->failed = true;
              task->done = true;
            }
            task->cv.notify_all();
          }
        }).detach();

        std::unique_lock<std::mutex> lock(task->mutex);
        bool slow = false;
        if (options.softDeadlineSeconds > 0) {
          const bool doneSoft = task->cv.wait_for(
              lock,
              std::chrono::duration<double>(options.softDeadlineSeconds),
              [&] { return task->done; });
          if (!doneSoft) {
            slow = true;
            lock.unlock();
            sharedLog.warn(
                "cell_slow",
                cellFields(campaign, out.spec) + ",\"deadline_s\":" +
                    std::to_string(options.softDeadlineSeconds));
            if (tele != nullptr) {
              tele->cellSlow(worker, campaign.cellTitle(out.spec),
                             out.spec.key, options.softDeadlineSeconds);
            }
            lock.lock();
          }
        }
        bool finished;
        if (options.hardDeadlineSeconds > 0) {
          finished = task->cv.wait_until(
              lock,
              cellStart +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          options.hardDeadlineSeconds)),
              [&] { return task->done; });
        } else {
          task->cv.wait(lock, [&] { return task->done; });
          finished = true;
        }
        if (slow && tele != nullptr) tele->cellSlowResolved();
        if (finished) {
          evalOk = !task->failed;
          if (evalOk) {
            evalResult = std::move(task->result);
          } else {
            evalError = task->error;
          }
        } else {
          abandoned = true;
        }
      }
      if (abandoned) {
        stuckCount.fetch_add(1, std::memory_order_relaxed);
        const bool retrying = attempt < 2;
        out.status = CellOutcome::Status::Failed;
        out.error = "stuck: evaluation exceeded the hard deadline (" +
                    std::to_string(options.hardDeadlineSeconds) +
                    "s) on attempt " + std::to_string(attempt);
        out.seconds = secondsSince(cellStart);
        // Leave a marker so an operator (and iop-fsck) can tell the cell
        // was abandoned, not merely slow.  Scratch durability: markers
        // are advisory and must not perturb crash-point numbering.
        try {
          const std::filesystem::path marker =
              store.root() / "quarantine" /
              (out.spec.key + ".stuck." + std::to_string(attempt));
          std::filesystem::create_directories(marker.parent_path());
          util::vfs::replaceFile(
              marker,
              "stuck: " + campaign.cellTitle(out.spec) + " attempt " +
                  std::to_string(attempt) + " exceeded hard deadline " +
                  std::to_string(options.hardDeadlineSeconds) + "s\n",
              util::vfs::Durability::Scratch);
        } catch (const std::exception&) {
          // Best-effort: a marker failure must not fail the run.
        }
        sharedLog.warn("cell_stuck",
                       cellFields(campaign, out.spec) +
                           ",\"attempt\":" + std::to_string(attempt) +
                           ",\"retry\":" +
                           (retrying ? "true" : "false"));
        if (tele != nullptr) {
          tele->cellStuck(worker, campaign.cellTitle(out.spec),
                          out.spec.key, attempt,
                          options.hardDeadlineSeconds, retrying);
        }
        if (retrying) {
          // Queue before the in-flight decrement below, so idle workers
          // never observe "nothing in flight, nothing queued" while the
          // retry is in between.
          std::lock_guard<std::mutex> guard(retryMutex);
          retryQueue.push_back(index);
        }
      } else {
        if (evalOk) {
          try {
            out.result = std::move(evalResult);
            const double tEval = tele != nullptr ? tele->now() : 0;
            store.saveCell(out.result);
            if (options.writeCaptures) {
              store.saveCapture(out.spec.key,
                                makeCellCapture(out.result));
            }
            // Deposit into the shared pool as well; racing processes
            // write identical bytes through unique temp names, so this
            // is safe.
            if (shared) shared->saveCell(out.result);
            out.status = CellOutcome::Status::Computed;
            out.seconds = secondsSince(cellStart);
            sharedLog.info(
                "cell_done",
                cellFields(campaign, out.spec) + ",\"time_io\":" +
                    std::to_string(out.result.timeIo) +
                    ",\"ior_runs\":" +
                    std::to_string(out.result.iorRuns));
            if (tele != nullptr) {
              tele->cellCommit(worker, campaign.cellTitle(out.spec),
                               out.spec.key, tClaim, tEval, tele->now(),
                               out.result.timeIo, out.result.iorRuns,
                               out.spec.faulted());
            }
          } catch (const std::exception& e) {
            evalOk = false;
            evalError = e.what();
          }
        }
        if (!evalOk) {
          out.status = CellOutcome::Status::Failed;
          out.error = evalError;
          out.seconds = secondsSince(cellStart);
          sharedLog.warn(
              "cell_failed",
              cellFields(campaign, out.spec) + ",\"error\":\"" +
                  obs::TraceRecorder::jsonEscape(evalError) + "\"");
          if (tele != nullptr) {
            tele->cellFailed(worker, campaign.cellTitle(out.spec),
                             out.spec.key, tClaim, tele->now(),
                             evalError);
          }
        }
      }
      const bool terminal = !(abandoned && attempt < 2);
      if (terminal && options.onCellDone) {
        std::lock_guard<std::mutex> guard(doneMutex);
        options.onCellDone(out);
      }
      // Between cells the worker's engines are gone, so every coroutine
      // slab with no abandoned daemon frames is dead — hand those back to
      // the OS instead of holding the run's high-water mark.
      auto& arena = sim::FrameArena::local();
      const std::size_t released = arena.trim();
      if (tele != nullptr) {
        tele->arenaTrimmed(worker, released, arena.stats().slabBytes);
      }
      inFlight.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (tele != nullptr) tele->workerIdle(worker);
  };

  if (workers <= 1) {
    workerMain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      pool.emplace_back(workerMain, i);
    }
    for (auto& t : pool) t.join();
  }

  // Every fetched slot was carried to completion (the cancel check sits
  // before the fetch), so after the join the untaken tail is exactly
  // [cursor, end) — those cells were never started and stay resumable.
  const std::size_t taken =
      std::min(cursor.load(std::memory_order_relaxed), pending.size());
  for (std::size_t slot = taken; slot < pending.size(); ++slot) {
    CellOutcome& out = outcome.cells[pending[slot]];
    out.status = CellOutcome::Status::Skipped;
    out.error = "interrupted before evaluation; resume to compute";
  }
  if (tele != nullptr && taken < pending.size()) {
    tele->cellsSkipped(pending.size() - taken);
  }
  if (cancelled()) outcome.interrupted = true;
  outcome.stuck = stuckCount.load(std::memory_order_relaxed);

  // Propagate deduped results to the duplicate cells.
  for (const auto& [key, dupes] : followers) {
    const CellOutcome& owner = outcome.cells[owners.at(key)];
    for (std::size_t index : dupes) {
      outcome.cells[index].status = owner.status;
      outcome.cells[index].result = owner.result;
      outcome.cells[index].error = owner.error;
    }
  }

  for (const auto& cell : outcome.cells) {
    switch (cell.status) {
      case CellOutcome::Status::Cached:
        break;  // counted at probe time
      case CellOutcome::Status::Computed:
        ++outcome.computed;
        break;
      case CellOutcome::Status::Failed:
        ++outcome.failures;
        break;
      case CellOutcome::Status::Skipped:
        ++outcome.skipped;
        break;
    }
  }
  // IOR cost from owners only: a deduped follower shares its owner's
  // evaluation, so counting it again would overstate the run.
  for (std::size_t index : pending) {
    if (outcome.cells[index].status == CellOutcome::Status::Computed) {
      outcome.iorRuns += outcome.cells[index].result.iorRuns;
    }
  }

  // The manifest is rewritten serially, in canonical order, after the
  // pool joins — the last step of a successful run.
  store.writeManifest(campaign, plan);
  outcome.wallSeconds = secondsSince(startedAt);

  if (metrics != nullptr) {
    metrics->counter("sweep.cells").add(static_cast<double>(plan.size()));
    metrics->counter("sweep.cache_hits")
        .add(static_cast<double>(outcome.cacheHits));
    metrics->counter("sweep.shared_hits")
        .add(static_cast<double>(outcome.sharedHits));
    metrics->counter("sweep.computed")
        .add(static_cast<double>(outcome.computed));
    metrics->counter("sweep.failures")
        .add(static_cast<double>(outcome.failures));
    metrics->counter("sweep.skipped")
        .add(static_cast<double>(outcome.skipped));
    metrics->counter("sweep.quarantined")
        .add(static_cast<double>(outcome.quarantined));
    metrics->counter("sweep.stuck")
        .add(static_cast<double>(outcome.stuck));
    metrics->counter("sweep.ior_runs")
        .add(static_cast<double>(outcome.iorRuns));
  }
  sharedLog.info(
      "run_complete",
      "\"cells\":" + std::to_string(plan.size()) +
          ",\"cache_hits\":" + std::to_string(outcome.cacheHits) +
          ",\"shared_hits\":" + std::to_string(outcome.sharedHits) +
          ",\"computed\":" + std::to_string(outcome.computed) +
          ",\"failures\":" + std::to_string(outcome.failures) +
          ",\"skipped\":" + std::to_string(outcome.skipped) +
          ",\"quarantined\":" + std::to_string(outcome.quarantined) +
          ",\"interrupted\":" +
          (outcome.interrupted ? "true" : "false") +
          ",\"jobs\":" + std::to_string(options.jobs));
  if (tele != nullptr) {
    tele->runComplete(plan.size(), outcome.cacheHits, outcome.sharedHits,
                      outcome.computed, outcome.failures, outcome.skipped,
                      outcome.quarantined, outcome.interrupted,
                      outcome.wallSeconds);
  }
  return outcome;
}

}  // namespace iop::sweep
