// On-disk campaign store: the content-addressed result cache that makes
// sweeps resumable and re-runs free.
//
// Layout under the store directory:
//   campaign.txt        canonical campaign text (identity of the store)
//   cells/<key>.cell    one committed cell result ("iop-cell v1" text)
//   captures/<key>.cap  the cell's diffable run capture (iop-capture v1)
//   MANIFEST.txt        the grid in canonical cell order, written serially
//                       after every run — byte-identical for any -j
//   quarantine/         cell files that failed their checksum or parse on
//                       load, moved aside (not deleted) and recomputed
//
// Cell files are written atomically (temp + rename) with fully
// deterministic contents, so a store produced by N workers is
// byte-identical to one produced serially, and a killed run leaves only
// whole, reusable cells behind.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/capture.hpp"
#include "sweep/campaign.hpp"
#include "util/fsatomic.hpp"

namespace iop::obs {
class RuntimeMetrics;
}

namespace iop::sweep {

/// One committed campaign cell: the estimate for (model, config, faults).
struct CellResult {
  struct PhaseRow {
    int id = 0;
    int familyId = 0;
    std::uint64_t weightBytes = 0;
    double bandwidthCH = 0;  ///< bytes/s
    double timeCH = 0;       ///< seconds
  };

  std::string key;
  std::string modelLabel;
  std::string configLabel;
  double degradeDisks = 1.0;
  double degradeNet = 1.0;
  std::string estimator;
  int np = 0;
  std::uint64_t weightBytes = 0;  ///< total model weight
  double timeIo = 0;              ///< eq. (1): estimated total I/O time
  std::size_t iorRuns = 0;        ///< IOR executions the estimate cost
  std::vector<PhaseRow> phases;
  // Degraded-mode cells only (faultSeed > 0); absent from healthy cells
  // so their files stay byte-identical to pre-fault stores.
  std::string faultLabel;
  std::uint64_t faultSeed = 0;
  std::uint64_t faultRetries = 0;
  std::uint64_t faultFailovers = 0;
  double faultStallSeconds = 0;
  std::string faultError;  ///< run died at phase level (retries exhausted)
  // Tenanted cells only (tenantSeed > 0): the model ran as the foreground
  // job of a tenant spec, and timeIo is its *contended* Time_io.  Absent
  // from untenanted cells so their files stay byte-identical to stores
  // written before the tenant axis existed.
  struct TenantJobRow {
    std::string id;
    double weight = 1.0;
    double soloTimeIo = 0;
    double contendedTimeIo = 0;
    double slowdown = 1.0;
    double waitSeconds = 0;
  };
  std::string tenantLabel;
  std::uint64_t tenantSeed = 0;
  double tenantJain = 1.0;        ///< fairness across all co-scheduled jobs
  double tenantSoloTimeIo = 0;    ///< the foreground's uncontended baseline
  double tenantSlowdown = 1.0;    ///< timeIo / tenantSoloTimeIo
  std::vector<TenantJobRow> tenantJobs;  ///< foreground first

  bool faulted() const noexcept { return faultSeed != 0; }
  bool faultFailed() const noexcept { return !faultError.empty(); }
  bool tenanted() const noexcept { return tenantSeed != 0; }

  /// Deterministic text serialization ("iop-cell v1") ending in a
  /// "checksum <16hex>" line (FNV over everything before it) so torn or
  /// bit-flipped store files are detected on load.
  std::string render() const;
  /// Throws on malformed text; files without a checksum line (written
  /// before checksums existed) are accepted unverified.
  static CellResult parse(const std::string& text);

  /// Weight-normalized bandwidth of the whole run: weight / Time_io.
  double effectiveBandwidth() const noexcept {
    return timeIo > 0 ? static_cast<double>(weightBytes) / timeIo : 0;
  }
};

/// Project a cell onto the obs capture schema so every campaign cell is
/// diffable with iop-diff (app = model label, config = config label,
/// makespan = estimated Time_io).
obs::RunCapture makeCellCapture(const CellResult& cell);

/// Atomic temp-and-rename file replacement (implementation lives in
/// util/fsatomic.hpp so the obs capture archive shares it).
using util::writeFileAtomically;

/// Campaign-independent shared result cache: a flat content-addressed
/// pool of cells (and characterization models) that overlapping campaigns
/// can reuse.  Unlike CampaignStore it is bound to no campaign.txt — a
/// cell's key already captures everything that determines its result, so
/// any campaign may deposit into or draw from the pool.
///
/// Layout under the shared root:
///   cells/<key>.cell    committed cell results, same format as the
///                       campaign store (key-checked on load)
///   models/<key>.model  characterization models keyed by modelCacheKey()
class SharedStore {
 public:
  explicit SharedStore(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }
  std::filesystem::path cellPath(const std::string& key) const;
  /// Model cache directory (for ResolveOptions::modelCacheDirs).
  std::filesystem::path modelDir() const;

  bool hasCell(const std::string& key) const;
  CellResult loadCell(const std::string& key) const;
  /// loadCell that treats corruption as a miss: a cell that fails to
  /// parse, checksum or key-check is moved to quarantine/ (for forensics)
  /// and std::nullopt is returned so the caller recomputes it.
  std::optional<CellResult> tryLoadCell(const std::string& key,
                                        std::string* whyBad = nullptr) const;
  /// Atomic, race-safe commit (directories created on first write).
  void saveCell(const CellResult& cell) const;

  /// Count store operations (commits, bytes, loads, quarantines) on
  /// `metrics` under `<prefix>.`.  Observation-only; null disables.
  void setRuntimeMetrics(obs::RuntimeMetrics* metrics, std::string prefix);

 private:
  std::filesystem::path root_;
  obs::RuntimeMetrics* runtime_ = nullptr;
  std::string metricsPrefix_;
};

class CampaignStore {
 public:
  enum class InitResult {
    Created,   ///< fresh store directory
    Matched,   ///< existing store, same campaign: cells are reusable
    Replaced,  ///< existing store, different campaign: wiped (force)
  };

  explicit CampaignStore(std::filesystem::path root);

  /// Bind the store to a campaign.  An existing store whose campaign.txt
  /// differs from `canonicalText` throws unless `replaceOnMismatch`, in
  /// which case all cached cells are dropped.
  InitResult initialize(const std::string& canonicalText,
                        bool replaceOnMismatch = false);

  const std::filesystem::path& root() const noexcept { return root_; }
  std::filesystem::path cellPath(const std::string& key) const;
  std::filesystem::path capturePath(const std::string& key) const;
  std::filesystem::path manifestPath() const;

  bool hasCell(const std::string& key) const;
  CellResult loadCell(const std::string& key) const;
  /// Corruption-tolerant load: quarantines bad cells (see
  /// SharedStore::tryLoadCell) and returns std::nullopt.
  std::optional<CellResult> tryLoadCell(const std::string& key,
                                        std::string* whyBad = nullptr) const;

  /// Atomic (temp + rename) commit; contents depend only on `cell`.
  void saveCell(const CellResult& cell) const;
  void saveCapture(const std::string& key,
                   const obs::RunCapture& capture) const;

  /// Serially rewrite MANIFEST.txt for the given cells, in the canonical
  /// order `cells` is already in.
  void writeManifest(const ResolvedCampaign& campaign,
                     const std::vector<CellSpec>& cells) const;

  /// Drop cell/capture files whose key is not in `liveKeys`; returns the
  /// number of files removed.
  std::size_t gc(const std::set<std::string>& liveKeys) const;

  /// Count store operations (commits, bytes, loads, quarantines) on
  /// `metrics` under `<prefix>.`.  Observation-only; null disables.
  void setRuntimeMetrics(obs::RuntimeMetrics* metrics, std::string prefix);

 private:
  std::filesystem::path root_;
  obs::RuntimeMetrics* runtime_ = nullptr;
  std::string metricsPrefix_;
};

}  // namespace iop::sweep
