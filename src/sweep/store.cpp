#include "sweep/store.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/runtime.hpp"
#include "sweep/hash.hpp"
#include "util/text.hpp"

namespace iop::sweep {

namespace {

/// Shortest round-trip-exact rendering: cell files must be byte-identical
/// for identical results, and parse back to the same double.
std::string fmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[40];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

[[noreturn]] void badCell(const std::string& message) {
  throw std::invalid_argument("cell file: " + message);
}

double toDouble(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    badCell("bad number '" + token + "'");
  }
  return v;
}

std::uint64_t toU64(const std::string& token) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    badCell("bad integer '" + token + "'");
  }
  return v;
}

/// The rest of the line after the directive: labels may contain spaces.
std::string restOfLine(const std::string& line) {
  const auto space = line.find(' ');
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

std::string readFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Load a cell file, treating any defect — unreadable, unparsable, failed
/// checksum, wrong key — as a cache miss: the bad file is moved into
/// `quarantineDir` (kept for forensics, never silently deleted) and
/// std::nullopt tells the caller to recompute.  A cell result is a pure
/// function of its key, so recomputation always repairs the store.
std::optional<CellResult> tryLoadCellFile(
    const std::filesystem::path& path,
    const std::filesystem::path& quarantineDir, const std::string& key,
    std::string* whyBad) {
  try {
    auto cell = CellResult::parse(readFileText(path));
    if (cell.key != key) {
      badCell("holds key " + cell.key + ", expected " + key);
    }
    return cell;
  } catch (const std::exception& e) {
    if (whyBad != nullptr) *whyBad = e.what();
  }
  std::error_code ec;
  std::filesystem::create_directories(quarantineDir, ec);
  std::filesystem::path dst = quarantineDir / path.filename();
  for (int n = 2; std::filesystem::exists(dst); ++n) {
    dst = quarantineDir /
          (path.stem().string() + "." + std::to_string(n) +
           path.extension().string());
  }
  std::filesystem::rename(path, dst, ec);
  if (ec) {
    // Rename can fail (e.g. cross-device); removing still unblocks the
    // recompute, losing only the forensic copy.
    std::filesystem::remove(path, ec);
  }
  return std::nullopt;
}

}  // namespace

std::string CellResult::render() const {
  std::ostringstream out;
  out << "iop-cell v1\n";
  out << "key " << key << "\n";
  out << "degrade-disks " << fmtDouble(degradeDisks) << "\n";
  out << "degrade-net " << fmtDouble(degradeNet) << "\n";
  if (faulted()) {
    // Only degraded cells carry fault lines: healthy cells must render
    // byte-identically to stores written before the fault axis existed.
    out << "fault " << faultLabel << "\n";
    out << "fault-seed " << faultSeed << "\n";
    out << "fault-retries " << faultRetries << "\n";
    out << "fault-failovers " << faultFailovers << "\n";
    out << "fault-stall " << fmtDouble(faultStallSeconds) << "\n";
    if (faultFailed()) out << "fault-error " << faultError << "\n";
  }
  if (tenanted()) {
    // Same compat rule as fault lines: only tenanted cells carry these.
    out << "tenant " << tenantLabel << "\n";
    out << "tenant-seed " << tenantSeed << "\n";
    out << "tenant-jain " << fmtDouble(tenantJain) << "\n";
    out << "tenant-solo " << fmtDouble(tenantSoloTimeIo) << "\n";
    out << "tenant-slowdown " << fmtDouble(tenantSlowdown) << "\n";
    // A fault plan composed into the tenant run has no seed fan-out of
    // its own, so the label travels on its own line.
    if (!faultLabel.empty()) out << "tenant-fault " << faultLabel << "\n";
    out << "tenant-jobs " << tenantJobs.size() << "\n";
    for (const auto& j : tenantJobs) {
      out << "tenant-job " << j.id << " " << fmtDouble(j.weight) << " "
          << fmtDouble(j.soloTimeIo) << " " << fmtDouble(j.contendedTimeIo)
          << " " << fmtDouble(j.slowdown) << " " << fmtDouble(j.waitSeconds)
          << "\n";
    }
  }
  out << "estimator " << estimator << "\n";
  out << "np " << np << "\n";
  out << "weight " << weightBytes << "\n";
  out << "time-io " << fmtDouble(timeIo) << "\n";
  out << "ior-runs " << iorRuns << "\n";
  out << "phases " << phases.size() << "\n";
  for (const auto& p : phases) {
    out << "phase " << p.id << " " << p.familyId << " " << p.weightBytes
        << " " << fmtDouble(p.bandwidthCH) << " " << fmtDouble(p.timeCH)
        << "\n";
  }
  out << "model " << modelLabel << "\n";
  out << "config " << configLabel << "\n";
  // Integrity seal over everything above: a torn write, truncation or
  // bit flip flips the checksum and the loader quarantines the file.
  const std::string sealed = out.str();
  out << "checksum " << hashHex(sealed) << "\n";
  out << "end\n";
  return out.str();
}

CellResult CellResult::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "iop-cell v1") {
    badCell("missing 'iop-cell v1' header");
  }
  CellResult cell;
  bool sawEnd = false;
  std::size_t expectedPhases = 0;
  std::size_t expectedTenantJobs = 0;
  // Byte offset of the current line within `text`, maintained manually:
  // the checksum line seals every byte before it.
  std::size_t lineStart = text.find('\n') + 1;  // past the header
  while (std::getline(in, line)) {
    const std::size_t thisLineStart = lineStart;
    lineStart += line.size() + 1;
    if (line == "end") {
      sawEnd = true;
      break;
    }
    auto tokens = util::splitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "key" && tokens.size() == 2) {
      cell.key = tokens[1];
    } else if (directive == "degrade-disks" && tokens.size() == 2) {
      cell.degradeDisks = toDouble(tokens[1]);
    } else if (directive == "degrade-net" && tokens.size() == 2) {
      cell.degradeNet = toDouble(tokens[1]);
    } else if (directive == "checksum" && tokens.size() == 2) {
      const std::string actual = hashHex(
          std::string_view(text).substr(0, thisLineStart));
      if (actual != tokens[1]) {
        badCell("checksum mismatch (stored " + tokens[1] + ", computed " +
                actual + "): file is torn or corrupt");
      }
    } else if (directive == "fault") {
      cell.faultLabel = restOfLine(line);
    } else if (directive == "fault-seed" && tokens.size() == 2) {
      cell.faultSeed = toU64(tokens[1]);
    } else if (directive == "fault-retries" && tokens.size() == 2) {
      cell.faultRetries = toU64(tokens[1]);
    } else if (directive == "fault-failovers" && tokens.size() == 2) {
      cell.faultFailovers = toU64(tokens[1]);
    } else if (directive == "fault-stall" && tokens.size() == 2) {
      cell.faultStallSeconds = toDouble(tokens[1]);
    } else if (directive == "fault-error") {
      cell.faultError = restOfLine(line);
    } else if (directive == "tenant") {
      cell.tenantLabel = restOfLine(line);
    } else if (directive == "tenant-seed" && tokens.size() == 2) {
      cell.tenantSeed = toU64(tokens[1]);
    } else if (directive == "tenant-jain" && tokens.size() == 2) {
      cell.tenantJain = toDouble(tokens[1]);
    } else if (directive == "tenant-solo" && tokens.size() == 2) {
      cell.tenantSoloTimeIo = toDouble(tokens[1]);
    } else if (directive == "tenant-slowdown" && tokens.size() == 2) {
      cell.tenantSlowdown = toDouble(tokens[1]);
    } else if (directive == "tenant-fault") {
      cell.faultLabel = restOfLine(line);
    } else if (directive == "tenant-jobs" && tokens.size() == 2) {
      expectedTenantJobs = toU64(tokens[1]);
    } else if (directive == "tenant-job" && tokens.size() == 7) {
      TenantJobRow row;
      row.id = tokens[1];
      row.weight = toDouble(tokens[2]);
      row.soloTimeIo = toDouble(tokens[3]);
      row.contendedTimeIo = toDouble(tokens[4]);
      row.slowdown = toDouble(tokens[5]);
      row.waitSeconds = toDouble(tokens[6]);
      cell.tenantJobs.push_back(std::move(row));
    } else if (directive == "estimator" && tokens.size() == 2) {
      cell.estimator = tokens[1];
    } else if (directive == "np" && tokens.size() == 2) {
      cell.np = static_cast<int>(toU64(tokens[1]));
    } else if (directive == "weight" && tokens.size() == 2) {
      cell.weightBytes = toU64(tokens[1]);
    } else if (directive == "time-io" && tokens.size() == 2) {
      cell.timeIo = toDouble(tokens[1]);
    } else if (directive == "ior-runs" && tokens.size() == 2) {
      cell.iorRuns = toU64(tokens[1]);
    } else if (directive == "phases" && tokens.size() == 2) {
      expectedPhases = toU64(tokens[1]);
    } else if (directive == "phase" && tokens.size() == 6) {
      PhaseRow row;
      row.id = static_cast<int>(toU64(tokens[1]));
      row.familyId = static_cast<int>(toU64(tokens[2]));
      row.weightBytes = toU64(tokens[3]);
      row.bandwidthCH = toDouble(tokens[4]);
      row.timeCH = toDouble(tokens[5]);
      cell.phases.push_back(row);
    } else if (directive == "model") {
      cell.modelLabel = restOfLine(line);
    } else if (directive == "config") {
      cell.configLabel = restOfLine(line);
    } else {
      badCell("unknown line '" + line + "'");
    }
  }
  if (!sawEnd) badCell("missing 'end'");
  if (cell.key.empty()) badCell("missing key");
  if (cell.phases.size() != expectedPhases) {
    badCell("phase count mismatch");
  }
  if (cell.tenantJobs.size() != expectedTenantJobs) {
    badCell("tenant job count mismatch");
  }
  return cell;
}

obs::RunCapture makeCellCapture(const CellResult& cell) {
  obs::RunCapture capture;
  capture.app = cell.modelLabel;
  capture.np = cell.np;
  capture.config = cell.configLabel;
  capture.makespan = cell.timeIo;
  for (const auto& p : cell.phases) {
    obs::CapturePhase phase;
    phase.id = p.id;
    phase.familyId = p.familyId;
    phase.weightBytes = p.weightBytes;
    phase.ioSeconds = p.timeCH;
    phase.bandwidth = p.bandwidthCH;
    phase.label = "family " + std::to_string(p.familyId);
    capture.phases.push_back(std::move(phase));
  }
  return capture;
}

CampaignStore::CampaignStore(std::filesystem::path root)
    : root_(std::move(root)) {}

std::filesystem::path CampaignStore::cellPath(const std::string& key) const {
  return root_ / "cells" / (key + ".cell");
}

std::filesystem::path CampaignStore::capturePath(
    const std::string& key) const {
  return root_ / "captures" / (key + ".cap");
}

std::filesystem::path CampaignStore::manifestPath() const {
  return root_ / "MANIFEST.txt";
}

CampaignStore::InitResult CampaignStore::initialize(
    const std::string& canonicalText, bool replaceOnMismatch) {
  const auto campaignFile = root_ / "campaign.txt";
  InitResult result = InitResult::Created;
  if (std::filesystem::exists(campaignFile)) {
    if (readFileText(campaignFile) == canonicalText) {
      result = InitResult::Matched;
    } else if (replaceOnMismatch) {
      std::filesystem::remove_all(root_ / "cells");
      std::filesystem::remove_all(root_ / "captures");
      std::filesystem::remove(manifestPath());
      result = InitResult::Replaced;
    } else {
      throw std::runtime_error(
          "store " + root_.string() +
          " holds a different campaign; use --force to replace it or "
          "choose another --store directory");
    }
  }
  std::filesystem::create_directories(root_ / "cells");
  std::filesystem::create_directories(root_ / "captures");
  if (result != InitResult::Matched) {
    writeFileAtomically(campaignFile, canonicalText);
  }
  return result;
}

bool CampaignStore::hasCell(const std::string& key) const {
  return std::filesystem::exists(cellPath(key));
}

CellResult CampaignStore::loadCell(const std::string& key) const {
  auto cell = CellResult::parse(readFileText(cellPath(key)));
  if (cell.key != key) {
    throw std::runtime_error("cell " + key + " holds key " + cell.key);
  }
  return cell;
}

std::optional<CellResult> CampaignStore::tryLoadCell(
    const std::string& key, std::string* whyBad) const {
  auto loaded =
      tryLoadCellFile(cellPath(key), root_ / "quarantine", key, whyBad);
  if (runtime_ != nullptr) {
    runtime_
        ->counter(metricsPrefix_ +
                  (loaded ? ".cell_loads" : ".quarantines"))
        .add();
  }
  return loaded;
}

void CampaignStore::saveCell(const CellResult& cell) const {
  const std::string text = cell.render();
  writeFileAtomically(cellPath(cell.key), text);
  if (runtime_ != nullptr) {
    runtime_->counter(metricsPrefix_ + ".cell_commits").add();
    runtime_->counter(metricsPrefix_ + ".cell_bytes").add(text.size());
  }
}

void CampaignStore::saveCapture(const std::string& key,
                                const obs::RunCapture& capture) const {
  std::ostringstream out;
  capture.write(out);
  writeFileAtomically(capturePath(key), out.str());
  if (runtime_ != nullptr) {
    runtime_->counter(metricsPrefix_ + ".capture_commits").add();
  }
}

void CampaignStore::setRuntimeMetrics(obs::RuntimeMetrics* metrics,
                                      std::string prefix) {
  runtime_ = metrics;
  metricsPrefix_ = std::move(prefix);
}

void CampaignStore::writeManifest(const ResolvedCampaign& campaign,
                                  const std::vector<CellSpec>& cells) const {
  std::ostringstream out;
  out << "iop-sweep-manifest v1\n";
  out << "campaign " << campaign.spec.name << "\n";
  out << "estimator " << campaign.spec.estimatorVersion() << "\n";
  out << "cells " << cells.size() << "\n";
  for (const auto& cell : cells) {
    out << "cell " << cell.key << " dd=" << fmtDouble(cell.degradeDisks)
        << " dn=" << fmtDouble(cell.degradeNet) << " "
        << campaign.cellTitle(cell) << "\n";
  }
  out << "end\n";
  writeFileAtomically(manifestPath(), out.str());
}

std::size_t CampaignStore::gc(const std::set<std::string>& liveKeys) const {
  std::size_t removed = 0;
  for (const char* sub : {"cells", "captures"}) {
    const auto dir = root_ / sub;
    if (!std::filesystem::exists(dir)) continue;
    std::vector<std::filesystem::path> dead;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string key = entry.path().stem().string();
      if (liveKeys.count(key) == 0) dead.push_back(entry.path());
    }
    for (const auto& path : dead) {
      std::filesystem::remove(path);
      ++removed;
    }
  }
  return removed;
}

SharedStore::SharedStore(std::filesystem::path root)
    : root_(std::move(root)) {}

std::filesystem::path SharedStore::cellPath(const std::string& key) const {
  return root_ / "cells" / (key + ".cell");
}

std::filesystem::path SharedStore::modelDir() const {
  return root_ / "models";
}

bool SharedStore::hasCell(const std::string& key) const {
  return std::filesystem::exists(cellPath(key));
}

CellResult SharedStore::loadCell(const std::string& key) const {
  auto cell = CellResult::parse(readFileText(cellPath(key)));
  if (cell.key != key) {
    throw std::runtime_error("shared cell " + key + " holds key " +
                             cell.key);
  }
  return cell;
}

std::optional<CellResult> SharedStore::tryLoadCell(
    const std::string& key, std::string* whyBad) const {
  auto loaded =
      tryLoadCellFile(cellPath(key), root_ / "quarantine", key, whyBad);
  if (runtime_ != nullptr) {
    runtime_
        ->counter(metricsPrefix_ +
                  (loaded ? ".cell_loads" : ".quarantines"))
        .add();
  }
  return loaded;
}

void SharedStore::saveCell(const CellResult& cell) const {
  std::filesystem::create_directories(root_ / "cells");
  const std::string text = cell.render();
  writeFileAtomically(cellPath(cell.key), text);
  if (runtime_ != nullptr) {
    runtime_->counter(metricsPrefix_ + ".cell_commits").add();
    runtime_->counter(metricsPrefix_ + ".cell_bytes").add(text.size());
  }
}

void SharedStore::setRuntimeMetrics(obs::RuntimeMetrics* metrics,
                                    std::string prefix) {
  runtime_ = metrics;
  metricsPrefix_ = std::move(prefix);
}

}  // namespace iop::sweep
