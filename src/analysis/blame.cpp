#include "analysis/blame.hpp"

#include <cmath>
#include <cstdio>

namespace iop::analysis {

std::vector<obs::PhaseWindow> phaseWindows(const core::IOModel& model) {
  std::vector<obs::PhaseWindow> out;
  out.reserve(model.phases().size());
  for (const core::Phase& p : model.phases()) {
    obs::PhaseWindow w;
    w.id = p.id;
    w.label = p.opTypeLabel() + " f" + std::to_string(p.idF);
    w.begin = p.startTime;
    w.end = p.endTime;
    w.weightBytes = p.weightBytes;
    out.push_back(std::move(w));
  }
  return out;
}

std::string renderBlameReport(const obs::EdgeRecorder& edges,
                              double makespan, const core::IOModel& model) {
  const obs::CriticalPathResult path =
      obs::computeCriticalPath(edges, makespan);
  const obs::BlameTable table = attributePhases(path, phaseWindows(model));

  std::string out = renderCriticalPath(path);
  out += "\n";
  out += renderBlameTable(table);

  // Eq. 1-2 cross-check against the *measured* phase windows: the model's
  // Time_io(MD) (union of member op windows) next to the attributed
  // critical time inside each window.
  double measured = 0;
  for (const core::Phase& p : model.phases()) measured += p.measuredIoTime();
  char line[160];
  std::snprintf(line, sizeof line,
                "\nmodel Time_io(MD) %.6f s over %zu phases; "
                "critical attribution covers %.6f s (%.1f%%)\n",
                measured, model.phases().size(),
                table.attributedIoSeconds(),
                measured > 0
                    ? 100.0 * table.attributedIoSeconds() / measured
                    : 0.0);
  out += line;
  return out;
}

}  // namespace iop::analysis
