// Bridge between the extracted I/O model and the critical-path engine
// (obs/critpath.hpp): turn the model's phases into attribution windows and
// render the combined blame report the iop-stats/iop-estimate --blame flag
// prints.
//
// The report closes the loop on the paper's eq. 1-2: the simulator's own
// dependency edges yield an attributed per-phase bandwidth BW_attr, which
// plays the role of BW_CH — sum(weight / BW_attr) must reproduce the
// attributed I/O time exactly, and the difference against the measured
// phase windows is reported as the residual the phase model does not
// explain.
#pragma once

#include <string>
#include <vector>

#include "core/iomodel.hpp"
#include "obs/critpath.hpp"
#include "obs/edges.hpp"

namespace iop::analysis {

/// Attribution windows for the model's phases: one window per phase,
/// [startTime, endTime), labelled "W"/"R"/"W-R" + file id.  Phases whose
/// repetitions interleave produce overlapping windows; the attribution
/// resolves those smallest-window-first (see obs/critpath.hpp).
std::vector<obs::PhaseWindow> phaseWindows(const core::IOModel& model);

/// Critical path + per-phase blame + the eq. 1-2 consistency check, as one
/// printable report.  `makespan` is the application elapsed time.
std::string renderBlameReport(const obs::EdgeRecorder& edges,
                              double makespan, const core::IOModel& model);

}  // namespace iop::analysis
