#include "analysis/degraded.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/injector.hpp"
#include "mpi/runtime.hpp"
#include "obs/profiler.hpp"

namespace iop::analysis {

double medianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

namespace {

FaultReplica runReplica(const core::IOModel& model,
                        const ConfigBuilder& builder,
                        const fault::FaultPlan& plan, std::uint64_t seed) {
  IOP_PROFILE_SCOPE("degraded.replica");
  FaultReplica replica;
  replica.seed = seed;
  const std::size_t phaseCount = model.phases().size();
  replica.phaseTimeSec.assign(phaseCount, 0.0);
  replica.phaseStallSec.assign(phaseCount, 0.0);

  configs::ClusterConfig config = builder();
  const auto injector = fault::installFaults(config, plan, seed);
  PhaseClock clock;
  mpi::Runtime runtime(*config.topology,
                       config.runtimeOptions(model.np()));
  try {
    replica.timeIo = runtime.runToCompletion(
        makeSyntheticApp(model, config.mount, &clock));
    replica.ok = true;
  } catch (const std::exception& e) {
    replica.error = e.what();
  }

  for (std::size_t i = 0; i < phaseCount && i < clock.windows.size(); ++i) {
    replica.phaseTimeSec[i] = clock.windows[i].duration();
  }
  if (injector != nullptr) {
    const auto& acct = injector->accounting();
    replica.retries = acct.retries;
    replica.exhausted = acct.exhausted;
    replica.failovers = acct.failovers;
    replica.stallSeconds = acct.stallSeconds;
    replica.eventLog = injector->renderEventLog();
    for (const fault::FaultEvent& event : injector->events()) {
      if (event.seconds <= 0.0) continue;
      const std::size_t phase = clock.phaseAt(event.time);
      if (phase < phaseCount) replica.phaseStallSec[phase] += event.seconds;
    }
  }
  return replica;
}

}  // namespace

DegradedEstimate estimateDegraded(const core::IOModel& model,
                                  const ConfigBuilder& builder,
                                  const fault::FaultPlan& plan,
                                  const std::vector<std::uint64_t>& seeds) {
  IOP_PROFILE_SCOPE("degraded.estimate");
  if (seeds.empty()) {
    throw std::invalid_argument("estimateDegraded: need at least one seed");
  }
  DegradedEstimate out;
  std::vector<double> times;
  for (const std::uint64_t seed : seeds) {
    out.replicas.push_back(runReplica(model, builder, plan, seed));
    const FaultReplica& replica = out.replicas.back();
    if (replica.ok) {
      ++out.okReplicas;
      times.push_back(replica.timeIo);
    }
  }
  if (!times.empty()) {
    out.minTimeIo = *std::min_element(times.begin(), times.end());
    out.maxTimeIo = *std::max_element(times.begin(), times.end());
    out.medianTimeIo = medianOf(times);
  }

  const auto& phases = model.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    DegradedPhase row;
    row.phaseId = phases[i].id;
    row.familyId = phases[i].familyId;
    row.weightBytes = phases[i].weightBytes;
    std::vector<double> phaseTimes;
    std::vector<double> phaseStalls;
    for (const FaultReplica& replica : out.replicas) {
      if (!replica.ok) continue;
      phaseTimes.push_back(replica.phaseTimeSec[i]);
      phaseStalls.push_back(replica.phaseStallSec[i]);
      row.maxStallSec = std::max(row.maxStallSec, replica.phaseStallSec[i]);
    }
    row.medianTimeSec = medianOf(std::move(phaseTimes));
    row.medianStallSec = medianOf(std::move(phaseStalls));
    out.phases.push_back(row);
  }
  return out;
}

}  // namespace iop::analysis
