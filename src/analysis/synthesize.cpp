#include "analysis/synthesize.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "mpi/file.hpp"
#include "trace/tracer.hpp"

namespace iop::analysis {

namespace {

const trace::FileMeta* metaFor(const core::IOModel& model, int fileId) {
  for (const auto& f : model.files()) {
    if (f.fileId == fileId) return &f;
  }
  return nullptr;
}

void validateModel(const core::IOModel& model) {
  for (const auto& phase : model.phases()) {
    const auto* meta = metaFor(model, phase.idF);
    const std::uint64_t etype = meta != nullptr ? meta->etypeBytes : 1;
    for (const auto& op : phase.ops) {
      if (phase.anyCollective() &&
          phase.np() != model.np()) {
        throw std::invalid_argument(
            "cannot synthesize: collective phase " +
            std::to_string(phase.id) + " covers a subset of the ranks");
      }
      if (op.initOffsetBytes.size() != phase.ranks.size()) {
        throw std::invalid_argument(
            "cannot synthesize: phase " + std::to_string(phase.id) +
            " is missing per-rank offsets");
      }
      if (op.rsBytes % etype != 0) {
        throw std::invalid_argument(
            "cannot synthesize: request size of phase " +
            std::to_string(phase.id) + " is not a whole etype count");
      }
      for (auto offset : op.initOffsetBytes) {
        if (offset % etype != 0 ||
            op.dispBytes % static_cast<std::int64_t>(etype) != 0) {
          throw std::invalid_argument(
              "cannot synthesize: offsets of phase " +
              std::to_string(phase.id) + " are not etype-aligned");
        }
      }
    }
  }
}

sim::Task<void> issue(mpi::File& file, const core::PhaseOp& op,
                      std::uint64_t offsetEtypes) {
  const bool collective = trace::isCollectiveOp(op.op);
  const bool pointerOp = op.op.find("_at") == std::string::npos;
  if (pointerOp) {
    file.seek(offsetEtypes);
    if (op.isWrite()) {
      if (collective) {
        co_await file.writeAll(op.rsBytes);
      } else {
        co_await file.write(op.rsBytes);
      }
    } else {
      if (collective) {
        co_await file.readAll(op.rsBytes);
      } else {
        co_await file.read(op.rsBytes);
      }
    }
  } else if (op.isWrite()) {
    if (collective) {
      co_await file.writeAtAll(offsetEtypes, op.rsBytes);
    } else {
      co_await file.writeAt(offsetEtypes, op.rsBytes);
    }
  } else {
    if (collective) {
      co_await file.readAtAll(offsetEtypes, op.rsBytes);
    } else {
      co_await file.readAt(offsetEtypes, op.rsBytes);
    }
  }
}

sim::Task<void> syntheticMain(mpi::Rank& rank, const core::IOModel& model,
                              const std::string& mount, PhaseClock* clock) {
  // Open the model's files with their recorded views.
  std::map<int, std::shared_ptr<mpi::File>> files;
  for (const auto& meta : model.files()) {
    auto file = co_await rank.open(
        mount, meta.path,
        meta.shared ? mpi::AccessType::Shared : mpi::AccessType::Unique);
    file->setView(meta.viewDisp, meta.etypeBytes, meta.filetypeBlock,
                  meta.filetypeStride);
    files.emplace(meta.fileId, std::move(file));
  }

  std::uint64_t prevLastTick = 0;
  bool first = true;
  std::size_t phaseIndex = 0;
  for (const auto& phase : model.phases()) {
    const std::size_t thisPhase = phaseIndex++;
    // Recreate the inter-phase tick gap with communication events so the
    // synthetic trace splits into the same phases.
    if (!first && phase.firstTick > prevLastTick + 1) {
      co_await rank.allreduce(64);
    }
    first = false;
    prevLastTick = phase.lastTick;

    const auto it = std::find(phase.ranks.begin(), phase.ranks.end(),
                              rank.id());
    if (it == phase.ranks.end()) continue;  // subset phase, non-collective
    const auto rankIdx =
        static_cast<std::size_t>(it - phase.ranks.begin());
    const auto* meta = metaFor(model, phase.idF);
    const std::uint64_t etype = meta != nullptr ? meta->etypeBytes : 1;
    mpi::File& file = *files.at(phase.idF);
    if (clock != nullptr) clock->noteStart(thisPhase, rank.engine().now());
    for (std::uint64_t m = 0; m < phase.rep; ++m) {
      for (const auto& op : phase.ops) {
        const std::uint64_t offsetBytes = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(op.initOffsetBytes[rankIdx]) +
            op.dispBytes * static_cast<std::int64_t>(m));
        co_await issue(file, op, offsetBytes / etype);
      }
    }
    if (clock != nullptr) clock->noteEnd(thisPhase, rank.engine().now());
  }
  for (auto& [id, file] : files) co_await file->close();
}

}  // namespace

void PhaseClock::noteStart(std::size_t phase, double now) {
  if (windows.size() <= phase) windows.resize(phase + 1);
  Window& w = windows[phase];
  w.start = std::min(w.start, now);
  w.touched = true;
}

void PhaseClock::noteEnd(std::size_t phase, double now) {
  if (windows.size() <= phase) windows.resize(phase + 1);
  Window& w = windows[phase];
  w.end = std::max(w.end, now);
  w.touched = true;
}

std::size_t PhaseClock::phaseAt(double t) const noexcept {
  std::size_t found = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Window& w = windows[i];
    if (w.touched && t >= w.start && t <= w.end) found = i;
  }
  return found;
}

mpi::Runtime::RankMain makeSyntheticApp(const core::IOModel& model,
                                        const std::string& mount,
                                        PhaseClock* clock) {
  validateModel(model);
  auto shared = std::make_shared<core::IOModel>(model);
  return [shared, mount, clock](mpi::Rank& rank) {
    return syntheticMain(rank, *shared, mount, clock);
  };
}

}  // namespace iop::analysis
