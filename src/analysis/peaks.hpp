// Peak device bandwidth BW_PK (Section III-B, eqs. 3-4): IOzone runs on
// every I/O node of a configuration; the configuration peak is the
// per-node maximum (eq. 3), summed over the I/O nodes of a parallel
// filesystem (eq. 4).
#pragma once

#include <string>
#include <vector>

#include "configs/configs.hpp"
#include "iozone/iozone.hpp"

namespace iop::analysis {

struct ServerPeak {
  std::string nodeName;
  double writePeak = 0;  ///< bytes/s
  double readPeak = 0;
};

struct PeakResult {
  std::vector<ServerPeak> perServer;
  /// Eq. (3)/(4): per-node max, summed over the mount's data servers.
  double writePeak = 0;
  double readPeak = 0;
};

/// Measure BW_PK for the cluster's evaluated mount.  Consumes simulated
/// time on the cluster's engine (run it on a dedicated instance).
PeakResult measurePeaks(configs::ClusterConfig& cluster,
                        const iozone::IozoneParams& params = {});

}  // namespace iop::analysis
