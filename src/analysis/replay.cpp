#include "analysis/replay.hpp"

#include <sstream>

#include "obs/profiler.hpp"

namespace iop::analysis {

std::string ReplayPlanEntry::cacheKey() const {
  std::ostringstream key;
  key << params.blockSize << '|' << params.transferSize << '|'
      << params.segments << '|' << params.np << '|'
      << params.uniqueFilePerProc << '|' << params.collective << '|'
      << static_cast<int>(params.accessMode) << '|' << hasWrite << '|'
      << hasRead;
  return key.str();
}

ReplayPlanEntry planReplay(const core::IOModel& model,
                           const core::Phase& phase,
                           const std::string& mount) {
  ReplayPlanEntry entry;
  entry.phaseId = phase.id;

  const auto meta = model.metadataFor(phase.idF);

  ior::IorParams& p = entry.params;
  p.mount = mount;
  p.segments = 1;                                        // s = 1
  p.np = phase.np();                                     // NP = np(ph)
  // b = weight per process = rep * sum of the cycle's request sizes;
  // t = rs.  For multi-op cycles rs is per op (equal in our workloads).
  std::uint64_t rsMax = 0;
  for (const auto& op : phase.ops) {
    rsMax = std::max(rsMax, op.rsBytes);
    if (op.isWrite()) {
      entry.hasWrite = true;
    } else {
      entry.hasRead = true;
    }
  }
  p.transferSize = rsMax;                                // t = rs
  p.blockSize = phase.rep * rsMax;                       // b = rep * rs
  p.uniqueFilePerProc = meta.accessType == "Unique";     // -F
  p.collective = phase.anyCollective();                  // -c
  if (meta.accessMode == "Random") {
    p.accessMode = ior::AccessMode::Random;
  } else {
    p.accessMode = ior::AccessMode::Sequential;
    entry.accessModeFallback = meta.accessMode == "Strided";
  }
  p.doWrite = entry.hasWrite || entry.hasRead;  // reads need data in place
  p.doRead = entry.hasRead;
  return entry;
}

PhaseBandwidth Replayer::measure(const core::IOModel& model,
                                 const core::Phase& phase) {
  IOP_PROFILE_SCOPE("replay.measure");
  auto entry = planReplay(model, phase, mount_);
  const std::string key = entry.cacheKey();
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  auto cluster = builder_();
  ++runs_;
  auto result = ior::runIor(cluster, entry.params);

  PhaseBandwidth bw;
  if (entry.hasWrite) bw.writeBandwidth = result.writeBandwidth;
  if (entry.hasRead) bw.readBandwidth = result.readBandwidth;
  if (entry.hasWrite && entry.hasRead) {
    bw.characterized = (bw.writeBandwidth + bw.readBandwidth) / 2.0;
  } else if (entry.hasWrite) {
    bw.characterized = bw.writeBandwidth;
  } else {
    bw.characterized = bw.readBandwidth;
  }
  cache_.emplace(key, bw);
  return bw;
}

Estimate estimateIoTime(const core::IOModel& model, Replayer& replayer) {
  Estimate estimate;
  for (const auto& phase : model.phases()) {
    PhaseEstimate pe;
    pe.phaseId = phase.id;
    pe.familyId = phase.familyId;
    pe.weightBytes = phase.weightBytes;
    pe.bandwidthCH = replayer.measure(model, phase).characterized;
    pe.timeCH = pe.bandwidthCH > 0
                    ? static_cast<double>(pe.weightBytes) / pe.bandwidthCH
                    : 0;
    estimate.totalTimeSec += pe.timeCH;
    estimate.phases.push_back(pe);
  }
  return estimate;
}

std::vector<Estimate::FamilyRow> Estimate::familyRows() const {
  std::vector<FamilyRow> rows;
  int currentFamily = -1;
  for (const auto& pe : phases) {
    if (rows.empty() || pe.familyId != currentFamily) {
      currentFamily = pe.familyId;
      rows.push_back(FamilyRow{pe.phaseId, pe.phaseId, 0, 0});
    }
    rows.back().lastPhase = pe.phaseId;
    rows.back().weightBytes += pe.weightBytes;
    rows.back().timeCH += pe.timeCH;
  }
  return rows;
}

}  // namespace iop::analysis
