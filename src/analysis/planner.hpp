// I/O-aware launch planning.
//
// The paper's closing observation: the phase view "can be useful for the
// matching of processes that do I/O operations near to I/O nodes or for
// the planning the parallel applications taking into account when the
// I/O phases are done".  This module implements the planning half: given
// several applications' I/O models (phase wall windows from their traced
// runs), choose launch offsets that minimize the overlap of their I/O
// activity on a shared storage system — without running anything.
#pragma once

#include <vector>

#include "core/iomodel.hpp"

namespace iop::analysis {

/// Total seconds during which both models are doing I/O when started at
/// the given offsets (overlap of their phase wall windows).
double ioOverlapSeconds(const core::IOModel& a, double offsetA,
                        const core::IOModel& b, double offsetB);

struct PlannerOptions {
  /// Candidate offsets are multiples of this granularity.
  double stepSeconds = 1.0;
  /// Offsets are searched in [0, maxStaggerSeconds].
  double maxStaggerSeconds = 600.0;
};

struct PlanEntry {
  std::size_t appIndex = 0;
  double startOffset = 0;
};

/// Greedy staggering: apps are placed in order; each new app gets the
/// smallest offset that minimizes its I/O overlap with everything placed
/// before it (ties resolved toward the earliest start, so apps are never
/// delayed without benefit).
std::vector<PlanEntry> planStaggeredLaunch(
    const std::vector<const core::IOModel*>& apps,
    const PlannerOptions& options = {});

}  // namespace iop::analysis
