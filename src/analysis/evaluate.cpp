#include "analysis/evaluate.hpp"

#include <cmath>
#include <stdexcept>

namespace iop::analysis {

double relativeErrorPct(double characterized, double measured) {
  if (measured <= 0) return 0;
  return 100.0 * std::abs(characterized - measured) / measured;
}

std::vector<UsageRow> systemUsage(const core::IOModel& measuredModel,
                                  double peakWrite, double peakRead) {
  std::vector<UsageRow> rows;
  for (const auto& phase : measuredModel.phases()) {
    UsageRow row;
    row.phaseId = phase.id;
    row.opsLabel =
        std::to_string(phase.opCount()) + " " + phase.opTypeLabel();
    row.weightBytes = phase.weightBytes;
    const std::string type = phase.opTypeLabel();
    if (type == "W") {
      row.peakBandwidth = peakWrite;
    } else if (type == "R") {
      row.peakBandwidth = peakRead;
    } else {
      row.peakBandwidth = (peakWrite + peakRead) / 2.0;
    }
    row.measuredBandwidth = phase.measuredBandwidth();
    if (row.peakBandwidth > 0) {
      row.usagePct = 100.0 * row.measuredBandwidth / row.peakBandwidth;
    }
    rows.push_back(row);
  }
  return rows;
}

std::string ComparisonRow::label() const {
  if (firstPhase == lastPhase) return "Phase " + std::to_string(firstPhase);
  return "Phase " + std::to_string(firstPhase) + "-" +
         std::to_string(lastPhase);
}

std::vector<ComparisonRow> compareEstimate(const Estimate& estimate,
                                           const core::IOModel& measured) {
  // Group the measured phases per family, in order.
  struct Group {
    int familyId = -1;
    int firstPhase = 0;
    int lastPhase = 0;
    std::uint64_t weightBytes = 0;
    double timeMD = 0;
  };
  std::vector<Group> measuredGroups;
  for (const auto& phase : measured.phases()) {
    if (measuredGroups.empty() ||
        measuredGroups.back().familyId != phase.familyId) {
      measuredGroups.push_back(
          Group{phase.familyId, phase.id, phase.id, 0, 0});
    }
    auto& g = measuredGroups.back();
    g.lastPhase = phase.id;
    g.weightBytes += phase.weightBytes;
    g.timeMD += phase.measuredIoTime();
  }

  const auto estimateRows = estimate.familyRows();
  if (estimateRows.size() != measuredGroups.size()) {
    throw std::runtime_error(
        "estimate and measured models disagree on phase structure (" +
        std::to_string(estimateRows.size()) + " vs " +
        std::to_string(measuredGroups.size()) + " groups)");
  }
  for (std::size_t i = 0; i < estimateRows.size(); ++i) {
    if (estimateRows[i].weightBytes != measuredGroups[i].weightBytes) {
      throw std::runtime_error(
          "estimate and measured models disagree on group weights");
    }
  }

  std::vector<ComparisonRow> rows;
  for (std::size_t i = 0; i < estimateRows.size(); ++i) {
    const auto& e = estimateRows[i];
    const auto& m = measuredGroups[i];
    ComparisonRow row;
    row.firstPhase = e.firstPhase;
    row.lastPhase = e.lastPhase;
    row.timeCH = e.timeCH;
    row.timeMD = m.timeMD;
    const double bwCH =
        e.timeCH > 0 ? static_cast<double>(e.weightBytes) / e.timeCH : 0;
    const double bwMD =
        m.timeMD > 0 ? static_cast<double>(m.weightBytes) / m.timeMD : 0;
    row.errorPct = relativeErrorPct(bwCH, bwMD);
    rows.push_back(row);
  }
  return rows;
}

const SelectionCandidate* selectConfiguration(
    const std::vector<SelectionCandidate>& candidates) {
  const SelectionCandidate* best = nullptr;
  for (const auto& c : candidates) {
    if (best == nullptr || c.estimate.totalTimeSec <
                               best->estimate.totalTimeSec) {
      best = &c;
    }
  }
  return best;
}

}  // namespace iop::analysis
