// Report generation: one self-contained markdown document summarizing an
// application's I/O behaviour and its prospects on candidate storage
// configurations — the artifact a performance engineer would hand to the
// application's owners.
//
// Contents: the extracted model (metadata + phase table + offset
// formulas), per-phase measured bandwidths and SystemUsage on the source
// configuration (eq. 5), the estimated I/O time on every target (eqs.
// 1-2), and the configuration-selection verdict.
#pragma once

#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "configs/configs.hpp"

namespace iop::analysis {

struct ReportOptions {
  /// Candidate configurations to estimate on.
  std::vector<configs::ConfigId> targets = {
      configs::ConfigId::A, configs::ConfigId::B, configs::ConfigId::C,
      configs::ConfigId::Finisterrae};
  /// Include IOzone device peaks and SystemUsage of the source run.
  bool includeUsage = true;
};

/// Generate the report for a traced run.  `sourceId` is the configuration
/// the run was traced on (used for usage peaks).
std::string generateReport(const AppRun& run, configs::ConfigId sourceId,
                           const ReportOptions& options = {});

}  // namespace iop::analysis
