// Model-driven benchmark synthesis: turn an I/O abstract model back into a
// runnable workload.
//
// This is the paper's replay idea taken to its logical end ("we are
// designing benchmark to replicate the I/O...").  The synthetic
// application executes the model's phases in order — every repetition of
// every operation at the offsets given by f(initOffset) and the
// displacement, with communication events inserted between phases to
// recreate the tick gaps — so that tracing the synthetic app and
// extracting ITS model yields the original back (the round-trip fidelity
// property tested in tests/extensions_test.cpp).
//
// Compared to the per-phase IOR mapping this preserves inter-phase
// ordering and cache state, at the cost of executing the whole model.
#pragma once

#include <string>

#include "core/iomodel.hpp"
#include "mpi/runtime.hpp"

namespace iop::analysis {

/// Build a rank-main that executes `model` against `mount`.
///
/// Requirements (violations throw std::invalid_argument up front):
///  * phases with collective operations must cover all np ranks;
///  * per-rank offsets and request sizes must be whole etypes of their
///    file's view.
mpi::Runtime::RankMain makeSyntheticApp(const core::IOModel& model,
                                        const std::string& mount);

}  // namespace iop::analysis
