// Model-driven benchmark synthesis: turn an I/O abstract model back into a
// runnable workload.
//
// This is the paper's replay idea taken to its logical end ("we are
// designing benchmark to replicate the I/O...").  The synthetic
// application executes the model's phases in order — every repetition of
// every operation at the offsets given by f(initOffset) and the
// displacement, with communication events inserted between phases to
// recreate the tick gaps — so that tracing the synthetic app and
// extracting ITS model yields the original back (the round-trip fidelity
// property tested in tests/extensions_test.cpp).
//
// Compared to the per-phase IOR mapping this preserves inter-phase
// ordering and cache state, at the cost of executing the whole model.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/iomodel.hpp"
#include "mpi/runtime.hpp"

namespace iop::analysis {

/// Observed per-phase execution windows of one synthetic replay: for each
/// phase (in model order) the earliest start and latest end over the
/// participating ranks.  Used by degraded-mode estimation to attribute
/// fault stall time to phases.
struct PhaseClock {
  struct Window {
    double start = std::numeric_limits<double>::infinity();
    double end = 0.0;
    bool touched = false;

    double duration() const noexcept {
      return touched ? end - start : 0.0;
    }
  };
  std::vector<Window> windows;  ///< indexed by phase position in the model

  void noteStart(std::size_t phase, double now);
  void noteEnd(std::size_t phase, double now);

  /// Index of the phase whose window contains `t` (latest match wins for
  /// overlapping windows); npos when no window covers it.
  std::size_t phaseAt(double t) const noexcept;
};

/// Build a rank-main that executes `model` against `mount`.  When `clock`
/// is non-null it records per-phase execution windows (it must outlive the
/// run; pass null for the legacy zero-overhead path).
///
/// Requirements (violations throw std::invalid_argument up front):
///  * phases with collective operations must cover all np ranks;
///  * per-rank offsets and request sizes must be whole etypes of their
///    file's view.
mpi::Runtime::RankMain makeSyntheticApp(const core::IOModel& model,
                                        const std::string& mount,
                                        PhaseClock* clock = nullptr);

}  // namespace iop::analysis
