// Phase replay with IOR (Section III-B).
//
// Each phase of the I/O model is mapped to one IOR invocation:
//    s  = 1
//    b  = rep * rs        (per-process block: the phase's per-rank bytes)
//    t  = rs
//    NP = np(phase)
//    -F when the access type is unique (one file per process)
//    -c when the phase's operations are collective
// The access mode falls back to sequential for strided patterns, exactly
// the limitation the paper hits with BT-IO ("IOR is not working in this
// mode, we have selected the sequential access mode").
//
// Replaying on a fresh instance of a target configuration yields BW_CH per
// operation; for multi-op phases BW_CH is the average over the phase's
// operations (the paper's rule, and the source of its reported ~50% error
// on MADbench2's phase 3).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "ior/ior.hpp"

namespace iop::analysis {

/// Factory producing a *fresh* (cold) instance of the target configuration
/// for each measurement.
using ConfigBuilder = std::function<configs::ClusterConfig()>;

struct ReplayPlanEntry {
  int phaseId = 0;
  ior::IorParams params;
  bool hasWrite = false;
  bool hasRead = false;
  bool accessModeFallback = false;  ///< strided collapsed to sequential

  /// Memoization key: phases with identical IOR parameters share one
  /// benchmark execution.
  std::string cacheKey() const;
};

/// Build the IOR parameters for one phase (Section III-B mapping).
ReplayPlanEntry planReplay(const core::IOModel& model,
                           const core::Phase& phase,
                           const std::string& mount);

struct PhaseBandwidth {
  double writeBandwidth = 0;  ///< bytes/s, 0 when the phase has no writes
  double readBandwidth = 0;
  /// BW_CH: the op bandwidth, or the average for multi-op phases.
  double characterized = 0;
};

/// Bandwidth cache so identical phases (e.g. BT-IO's 50 write phases)
/// replay once.
class Replayer {
 public:
  Replayer(ConfigBuilder builder, std::string mount)
      : builder_(std::move(builder)), mount_(std::move(mount)) {}

  /// Measure (or fetch cached) BW_CH for a phase.
  PhaseBandwidth measure(const core::IOModel& model,
                         const core::Phase& phase);

  std::size_t benchmarkRuns() const noexcept { return runs_; }

 private:
  ConfigBuilder builder_;
  std::string mount_;
  std::map<std::string, PhaseBandwidth> cache_;
  std::size_t runs_ = 0;
};

// ------------------------------------------------------------- Estimation

/// Eq. (2): Time_io(phase) = weight / BW_CH.
struct PhaseEstimate {
  int phaseId = 0;
  int familyId = 0;
  std::uint64_t weightBytes = 0;
  double bandwidthCH = 0;
  double timeCH = 0;
};

struct Estimate {
  std::vector<PhaseEstimate> phases;
  double totalTimeSec = 0;  ///< eq. (1): sum over phases

  /// Grouped rows in the paper's "Phase 1-50" / "Phase 51" style: one row
  /// per phase family.
  struct FamilyRow {
    int firstPhase = 0;
    int lastPhase = 0;
    std::uint64_t weightBytes = 0;
    double timeCH = 0;
  };
  std::vector<FamilyRow> familyRows() const;
};

/// Estimate the application's I/O time on a target configuration using
/// only the model + IOR (the application itself is never run there).
Estimate estimateIoTime(const core::IOModel& model, Replayer& replayer);

}  // namespace iop::analysis
