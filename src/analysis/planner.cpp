#include "analysis/planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace iop::analysis {

namespace {

/// [start, end) I/O windows of a model shifted by `offset`.
std::vector<std::pair<double, double>> ioWindows(const core::IOModel& model,
                                                 double offset) {
  std::vector<std::pair<double, double>> windows;
  for (const auto& phase : model.phases()) {
    windows.emplace_back(phase.startTime + offset,
                         phase.endTime + offset);
  }
  std::sort(windows.begin(), windows.end());
  return windows;
}

double overlap(const std::vector<std::pair<double, double>>& a,
               const std::vector<std::pair<double, double>>& b) {
  double total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

double ioOverlapSeconds(const core::IOModel& a, double offsetA,
                        const core::IOModel& b, double offsetB) {
  return overlap(ioWindows(a, offsetA), ioWindows(b, offsetB));
}

std::vector<PlanEntry> planStaggeredLaunch(
    const std::vector<const core::IOModel*>& apps,
    const PlannerOptions& options) {
  if (options.stepSeconds <= 0 || options.maxStaggerSeconds < 0) {
    throw std::invalid_argument("invalid planner options");
  }
  std::vector<PlanEntry> plan;
  std::vector<std::vector<std::pair<double, double>>> placed;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    double bestOffset = 0;
    double bestOverlap = -1;
    for (double offset = 0; offset <= options.maxStaggerSeconds;
         offset += options.stepSeconds) {
      auto windows = ioWindows(*apps[i], offset);
      double sum = 0;
      for (const auto& other : placed) sum += overlap(windows, other);
      if (bestOverlap < 0 || sum < bestOverlap - 1e-12) {
        bestOverlap = sum;
        bestOffset = offset;
      }
      if (sum == 0) break;  // cannot do better; earliest zero-overlap wins
    }
    plan.push_back(PlanEntry{i, bestOffset});
    placed.push_back(ioWindows(*apps[i], bestOffset));
  }
  return plan;
}

}  // namespace iop::analysis
