// Convenience runner: execute an application on a cluster configuration
// with tracing enabled and return the trace, the extracted I/O model, and
// the measured makespan.  Used both for characterization (build the model
// once) and for validation (measure the real phase times on a target).
#pragma once

#include <string>

#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "mpi/runtime.hpp"
#include "trace/tracer.hpp"

namespace iop::analysis {

struct AppRun {
  trace::TraceData trace;
  core::IOModel model;
  double makespanSeconds = 0;
};

/// Run `main` with `np` ranks on `cluster` (consumes the cluster's cold
/// state) and extract the I/O model from the trace.
AppRun runAndTrace(configs::ClusterConfig& cluster,
                   const std::string& appName, mpi::Runtime::RankMain main,
                   int np,
                   const core::PhaseDetectionOptions& options = {});

}  // namespace iop::analysis
