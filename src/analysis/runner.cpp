#include "analysis/runner.hpp"

#include "obs/profiler.hpp"

namespace iop::analysis {

AppRun runAndTrace(configs::ClusterConfig& cluster,
                   const std::string& appName, mpi::Runtime::RankMain main,
                   int np, const core::PhaseDetectionOptions& options) {
  trace::Tracer tracer(appName, np);
  auto opts = cluster.runtimeOptions(np, &tracer);
  mpi::Runtime runtime(*cluster.topology, opts);
  AppRun run;
  {
    IOP_PROFILE_SCOPE("app.run");
    run.makespanSeconds = runtime.runToCompletion(std::move(main));
  }
  run.trace = tracer.takeData();
  run.model = core::extractModel(run.trace, options);
  return run;
}

}  // namespace iop::analysis
