// Degraded-mode estimation: Time_io under a fault plan.
//
// The per-phase IOR mapping (replay.hpp) cannot see time-dependent faults
// — each phase replays in its own fresh cluster starting at t=0, so a
// "disk down from 2s" window would hit every phase or none.  Degraded
// estimation therefore replays the *whole model* with the synthetic
// application (synthesize.hpp), which preserves inter-phase ordering and
// absolute simulation time, across N seeded fault replicas.  The result
// is min/median/max Time_io, per-replica retry/failover accounting, and
// per-phase blame: how much retry/timeout stall landed inside each
// phase's execution window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/replay.hpp"
#include "analysis/synthesize.hpp"
#include "core/iomodel.hpp"
#include "fault/plan.hpp"

namespace iop::analysis {

/// One seeded fault replica of the synthetic replay.
struct FaultReplica {
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;       ///< IoFault message when the run failed
  double timeIo = 0.0;     ///< synthetic-app makespan (valid when ok)
  std::uint64_t retries = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t failovers = 0;
  double stallSeconds = 0.0;  ///< total retry/backoff/timeout stall
  std::string eventLog;       ///< injector's deterministic fault history
  std::vector<double> phaseTimeSec;   ///< per-phase window duration
  std::vector<double> phaseStallSec;  ///< stall attributed to each phase
};

/// Per-phase aggregation over the surviving replicas.
struct DegradedPhase {
  int phaseId = 0;
  int familyId = 0;
  std::uint64_t weightBytes = 0;
  double medianTimeSec = 0.0;
  double medianStallSec = 0.0;
  double maxStallSec = 0.0;
};

struct DegradedEstimate {
  std::vector<FaultReplica> replicas;
  std::size_t okReplicas = 0;
  double minTimeIo = 0.0;
  double medianTimeIo = 0.0;
  double maxTimeIo = 0.0;
  std::vector<DegradedPhase> phases;

  bool allFailed() const noexcept { return okReplicas == 0; }
};

/// Median of `values` (empty -> 0; even count -> mean of the middle two).
double medianOf(std::vector<double> values);

/// Replay `model` on fresh instances of the builder's configuration under
/// `plan`, once per seed.  A replica whose run throws (retries exhausted,
/// no failover possible) is recorded as failed rather than aborting the
/// estimate; min/median/max cover the surviving replicas only.
DegradedEstimate estimateDegraded(const core::IOModel& model,
                                  const ConfigBuilder& builder,
                                  const fault::FaultPlan& plan,
                                  const std::vector<std::uint64_t>& seeds);

}  // namespace iop::analysis
