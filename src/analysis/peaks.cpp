#include "analysis/peaks.hpp"

namespace iop::analysis {

PeakResult measurePeaks(configs::ClusterConfig& cluster,
                        const iozone::IozoneParams& params) {
  PeakResult result;
  auto& fs = cluster.topology->fs(cluster.mount);
  for (storage::IoServer* server : fs.dataServers()) {
    auto sweep = iozone::runIozone(*cluster.engine, *server, params);
    ServerPeak peak;
    peak.nodeName = server->node().name();
    peak.writePeak = sweep.peakWriteBandwidth;
    peak.readPeak = sweep.peakReadBandwidth;
    result.writePeak += peak.writePeak;   // eq. (4); single server = eq. (3)
    result.readPeak += peak.readPeak;
    result.perServer.push_back(std::move(peak));
  }
  return result;
}

}  // namespace iop::analysis
