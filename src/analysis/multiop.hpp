// Multi-operation phase replayer — the paper's Section V proposal.
//
// "We are designing benchmark to replicate the I/O when there are 2 or
// more operations in a phase to fit the characterization better and
// reduce estimation error."
//
// Where the IOR mapping replays a W-R phase as two separate single-op
// passes (and averages their bandwidths), this replayer drives the
// phase's exact operation cycle: every repetition issues the phase's ops
// in order, at each rank's own offsets, with the phase's displacement —
// so interleaving effects (read/write switching, seek patterns) are
// reproduced on the target configuration.
#pragma once

#include "analysis/replay.hpp"
#include "core/iomodel.hpp"

namespace iop::analysis {

struct MultiOpResult {
  double seconds = 0;        ///< wall time of the replayed phase
  double bandwidth = 0;      ///< BW_CH = weight / seconds
};

/// Replay one phase's op cycle on a fresh instance of the target
/// configuration.  Reads are preceded by an untimed data-population pass
/// plus a cache drop, like IOR's write-then-read discipline.
MultiOpResult replayMultiOpPhase(const core::IOModel& model,
                                 const core::Phase& phase,
                                 const ConfigBuilder& builder,
                                 const std::string& mount);

/// estimateIoTime variant that uses the multi-op replayer for phases with
/// two or more operations and the standard IOR mapping otherwise.
Estimate estimateIoTimeMultiOp(const core::IOModel& model,
                               Replayer& iorReplayer,
                               const ConfigBuilder& builder,
                               const std::string& mount);

}  // namespace iop::analysis
