// Evaluation stage (Section III-C): system usage (eq. 5), characterized
// vs measured comparison and relative error (eqs. 6-7), and configuration
// selection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/replay.hpp"
#include "core/iomodel.hpp"

namespace iop::analysis {

/// Eqs. (6)-(7): 100 * |BW_CH - BW_MD| / BW_MD.
double relativeErrorPct(double characterized, double measured);

/// One row of the paper's Table IX/X: per-phase system usage on a
/// configuration, from the *measured* model on that configuration and the
/// IOzone device peaks.
struct UsageRow {
  int phaseId = 0;
  std::string opsLabel;         ///< "128 W", "192 W-R", ...
  std::uint64_t weightBytes = 0;
  double peakBandwidth = 0;     ///< BW_PK for the phase's op type (bytes/s)
  double measuredBandwidth = 0; ///< BW_MD (bytes/s)
  double usagePct = 0;          ///< eq. (5)
};

/// Compute per-phase usage rows.  `peakWrite`/`peakRead` are the
/// configuration's BW_PK per operation type (eqs. 3-4); W-R phases use the
/// average of both peaks.
std::vector<UsageRow> systemUsage(const core::IOModel& measuredModel,
                                  double peakWrite, double peakRead);

/// One row of Tables XIII/XIV: estimated vs measured time per phase group.
struct ComparisonRow {
  int firstPhase = 0;
  int lastPhase = 0;
  double timeCH = 0;
  double timeMD = 0;
  double errorPct = 0;  ///< eqs. (6)-(7) applied to the group bandwidths

  std::string label() const;
};

/// Compare an estimate against the measured model from an actual traced
/// run on the target configuration.  Rows are grouped per phase family
/// ("Phase 1-50" / "Phase 51").  Measured time of a group is the sum of
/// its phases' wall windows.
std::vector<ComparisonRow> compareEstimate(const Estimate& estimate,
                                           const core::IOModel& measured);

/// Configuration-selection outcome (Table XII): pick the candidate with
/// the smallest estimated total I/O time.
struct SelectionCandidate {
  std::string name;
  Estimate estimate;
};

const SelectionCandidate* selectConfiguration(
    const std::vector<SelectionCandidate>& candidates);

}  // namespace iop::analysis
