#include "analysis/trace_replay.hpp"

#include <map>
#include <memory>
#include <stdexcept>

#include "mpi/file.hpp"
#include "mpi/runtime.hpp"

namespace iop::analysis {

namespace {

/// Issue one traced operation through the matching File call.
sim::Task<void> issueOp(mpi::File& file, const trace::Record& rec) {
  if (rec.op == "MPI_File_write_at") {
    co_await file.writeAt(rec.offsetUnits, rec.requestBytes);
  } else if (rec.op == "MPI_File_read_at") {
    co_await file.readAt(rec.offsetUnits, rec.requestBytes);
  } else if (rec.op == "MPI_File_write_at_all") {
    co_await file.writeAtAll(rec.offsetUnits, rec.requestBytes);
  } else if (rec.op == "MPI_File_read_at_all") {
    co_await file.readAtAll(rec.offsetUnits, rec.requestBytes);
  } else if (rec.op == "MPI_File_write") {
    file.seek(rec.offsetUnits);
    co_await file.write(rec.requestBytes);
  } else if (rec.op == "MPI_File_read") {
    file.seek(rec.offsetUnits);
    co_await file.read(rec.requestBytes);
  } else if (rec.op == "MPI_File_write_all") {
    file.seek(rec.offsetUnits);
    co_await file.writeAll(rec.requestBytes);
  } else if (rec.op == "MPI_File_read_all") {
    file.seek(rec.offsetUnits);
    co_await file.readAll(rec.requestBytes);
  } else {
    throw std::runtime_error("trace replay: unknown operation " + rec.op);
  }
}

sim::Task<void> replayRank(mpi::Rank& rank, const trace::TraceData& source,
                           const std::string& mount,
                           bool preserveThinkTime) {
  const auto& records =
      source.perRank[static_cast<std::size_t>(rank.id())];

  // Open every file of the source trace and restore its view.
  std::map<int, std::shared_ptr<mpi::File>> files;
  for (const auto& meta : source.files) {
    auto file = co_await rank.open(
        mount, meta.path,
        meta.shared ? mpi::AccessType::Shared : mpi::AccessType::Unique);
    file->setView(meta.viewDisp, meta.etypeBytes, meta.filetypeBlock,
                  meta.filetypeStride);
    files.emplace(meta.fileId, std::move(file));
  }

  double prevEnd = 0;
  for (const auto& rec : records) {
    if (preserveThinkTime && rec.time > prevEnd) {
      co_await rank.compute(rec.time - prevEnd);
    }
    prevEnd = rec.time + rec.duration;
    auto it = files.find(rec.fileId);
    if (it == files.end()) {
      throw std::runtime_error("trace replay: record for unknown file " +
                               std::to_string(rec.fileId));
    }
    co_await issueOp(*it->second, rec);
  }
  for (auto& [id, file] : files) co_await file->close();
}

}  // namespace

TraceReplayResult replayTrace(const trace::TraceData& source,
                              const ConfigBuilder& builder,
                              const std::string& mount,
                              const TraceReplayOptions& options) {
  auto cluster = builder();
  trace::Tracer tracer(source.appName + "-replay", source.np);
  auto opts = cluster.runtimeOptions(source.np, &tracer);
  mpi::Runtime runtime(*cluster.topology, opts);
  const trace::TraceData& src = source;
  const std::string mountCopy = mount;
  const bool think = options.preserveThinkTime;
  TraceReplayResult result;
  result.makespanSeconds = runtime.runToCompletion(
      [&src, mountCopy, think](mpi::Rank& rank) -> sim::Task<void> {
        return replayRank(rank, src, mountCopy, think);
      });

  // Carry the original ticks over so phase detection reconstructs the
  // source's phase structure with the target's measured timings.  The
  // replayed I/O records are in the source's per-rank order by
  // construction (open/close events are not I/O records).
  auto replayed = tracer.takeData();
  for (int r = 0; r < source.np; ++r) {
    auto& out = replayed.perRank[static_cast<std::size_t>(r)];
    const auto& in = source.perRank[static_cast<std::size_t>(r)];
    if (out.size() != in.size()) {
      throw std::logic_error("trace replay: record count mismatch");
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (out[k].op != in[k].op ||
          out[k].requestBytes != in[k].requestBytes) {
        throw std::logic_error("trace replay: record sequence diverged");
      }
      out[k].tick = in[k].tick;
      out[k].fileId = in[k].fileId;  // replay run renumbers logical files
    }
  }
  replayed.files = source.files;
  result.measuredModel = core::extractModel(replayed);
  return result;
}

}  // namespace iop::analysis
