#include "analysis/multiop.hpp"

#include <stdexcept>

#include "mpi/file.hpp"
#include "mpi/runtime.hpp"

namespace iop::analysis {

namespace {

/// Shared measurement window, written by rank 0 at the barriers.
struct Window {
  double start = 0;
  double end = 0;
};

sim::Task<void> replayRank(mpi::Rank& rank, const core::Phase& phase,
                           const std::string& mount, bool unique,
                           storage::Topology& topology, Window& window) {
  auto file = co_await rank.open(
      mount, "multiop-replay.dat",
      unique ? mpi::AccessType::Unique : mpi::AccessType::Shared);
  const auto r = static_cast<std::size_t>(rank.id());

  // Population pass: write the regions the cycle's reads will touch, so
  // the timed pass reads real (cold, after the drop below) data.
  for (const auto& op : phase.ops) {
    if (!op.isWrite()) {
      co_await file->writeAt(op.initOffsetBytes[r], op.rsBytes * phase.rep);
    }
  }
  co_await rank.barrier();
  if (rank.id() == 0) {
    topology.dropCaches();
    window.start = rank.engine().now();
  }
  co_await rank.barrier();

  for (std::uint64_t m = 0; m < phase.rep; ++m) {
    for (const auto& op : phase.ops) {
      const std::uint64_t offset =
          op.initOffsetBytes[r] +
          static_cast<std::uint64_t>(op.dispBytes) * m;
      if (op.isWrite()) {
        co_await file->writeAt(offset, op.rsBytes);
      } else {
        co_await file->readAt(offset, op.rsBytes);
      }
    }
  }
  co_await rank.barrier();
  if (rank.id() == 0) window.end = rank.engine().now();
  co_await file->close();
}

}  // namespace

MultiOpResult replayMultiOpPhase(const core::IOModel& model,
                                 const core::Phase& phase,
                                 const ConfigBuilder& builder,
                                 const std::string& mount) {
  for (const auto& op : phase.ops) {
    if (op.initOffsetBytes.size() != phase.ranks.size()) {
      throw std::invalid_argument(
          "phase op is missing per-rank initial offsets");
    }
  }
  const bool unique = model.metadataFor(phase.idF).accessType == "Unique";

  auto cluster = builder();
  auto opts = cluster.runtimeOptions(phase.np());
  mpi::Runtime runtime(*cluster.topology, opts);
  Window window;
  const core::Phase& ph = phase;
  storage::Topology& topo = *cluster.topology;
  Window* w = &window;
  std::string mountCopy = mount;
  runtime.runToCompletion(
      [&ph, mountCopy, unique, &topo, w](mpi::Rank& rank) -> sim::Task<void> {
        return replayRank(rank, ph, mountCopy, unique, topo, *w);
      });

  MultiOpResult result;
  result.seconds = window.end - window.start;
  if (result.seconds > 0) {
    result.bandwidth =
        static_cast<double>(phase.weightBytes) / result.seconds;
  }
  return result;
}

Estimate estimateIoTimeMultiOp(const core::IOModel& model,
                               Replayer& iorReplayer,
                               const ConfigBuilder& builder,
                               const std::string& mount) {
  Estimate estimate;
  // Multi-op phases with identical structure share one replay, like the
  // IOR path's memoization; key on the family id.
  std::map<int, double> familyBandwidth;
  for (const auto& phase : model.phases()) {
    PhaseEstimate pe;
    pe.phaseId = phase.id;
    pe.familyId = phase.familyId;
    pe.weightBytes = phase.weightBytes;
    if (phase.ops.size() >= 2) {
      auto it = familyBandwidth.find(phase.familyId);
      if (it == familyBandwidth.end()) {
        it = familyBandwidth
                 .emplace(phase.familyId,
                          replayMultiOpPhase(model, phase, builder, mount)
                              .bandwidth)
                 .first;
      }
      pe.bandwidthCH = it->second;
    } else {
      pe.bandwidthCH = iorReplayer.measure(model, phase).characterized;
    }
    pe.timeCH = pe.bandwidthCH > 0
                    ? static_cast<double>(pe.weightBytes) / pe.bandwidthCH
                    : 0;
    estimate.totalTimeSec += pe.timeCH;
    estimate.phases.push_back(pe);
  }
  return estimate;
}

}  // namespace iop::analysis
