#include "analysis/report.hpp"

#include <cstdio>
#include <sstream>

#include "analysis/evaluate.hpp"
#include "analysis/peaks.hpp"
#include "analysis/replay.hpp"
#include "util/units.hpp"

namespace iop::analysis {

namespace {

std::string mdRow(std::initializer_list<std::string> cells) {
  std::string row = "|";
  for (const auto& c : cells) row += " " + c + " |";
  row += "\n";
  return row;
}

std::string fmt(const char* pattern, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, pattern, value);
  return buf;
}

}  // namespace

std::string generateReport(const AppRun& run, configs::ConfigId sourceId,
                           const ReportOptions& options) {
  std::ostringstream out;
  const auto& model = run.model;

  out << "# I/O report: " << model.appName() << " (" << model.np()
      << " processes)\n\n";
  out << "Traced on **" << configs::configName(sourceId) << "**; makespan "
      << fmt("%.2f", run.makespanSeconds) << " s, "
      << util::formatBytesApprox(model.totalWeightBytes())
      << " moved across " << model.phases().size() << " I/O phases and "
      << model.files().size() << " file(s).\n\n";

  out << "## Files and access characteristics\n\n";
  for (const auto& f : model.files()) {
    auto meta = model.metadataFor(f.fileId);
    out << "* `" << f.path << "` — " << meta.accessMode << ", "
        << meta.accessType << ", "
        << (meta.collectiveIo ? "collective" : "non-collective")
        << (meta.individualPointers ? ", individual file pointers" : "")
        << (meta.explicitOffsets ? ", explicit offsets" : "");
    if (meta.etypeBytes != 1) out << ", etype " << meta.etypeBytes << " B";
    out << "\n";
  }

  out << "\n## Phase model\n\n";
  out << mdRow({"phase", "file", "ops", "rep", "weight", "f(initOffset)"});
  out << mdRow({"---", "---", "---", "---", "---", "---"});
  // Collapse families into single rows to keep long models readable.
  const auto& phases = model.phases();
  for (std::size_t i = 0; i < phases.size();) {
    std::size_t j = i;
    while (j + 1 < phases.size() &&
           phases[j + 1].familyId == phases[i].familyId) {
      ++j;
    }
    const auto& p = phases[i];
    std::uint64_t familyWeight = 0;
    for (std::size_t k = i; k <= j; ++k) {
      familyWeight += phases[k].weightBytes;
    }
    const std::string label =
        i == j ? std::to_string(p.id)
               : std::to_string(p.id) + "-" + std::to_string(phases[j].id);
    out << mdRow({label, std::to_string(p.idF),
                  std::to_string(p.opCount() / p.rep) + " " +
                      p.opTypeLabel() + " x" + std::to_string(p.rep),
                  std::to_string(p.rep),
                  util::formatBytesApprox(familyWeight),
                  p.ops[0].offsetFn.render(p.ops[0].rsBytes, p.np())});
    i = j + 1;
  }

  if (options.includeUsage) {
    out << "\n## System usage on " << configs::configName(sourceId)
        << " (eq. 5)\n\n";
    auto peakCfg = configs::makeConfig(sourceId);
    auto peaks = measurePeaks(peakCfg);
    out << "Device peaks (eqs. 3-4): write "
        << fmt("%.0f", util::toMiBs(peaks.writePeak)) << " MB/s, read "
        << fmt("%.0f", util::toMiBs(peaks.readPeak)) << " MB/s.\n\n";
    out << mdRow({"phase", "ops", "BW_MD (MB/s)", "usage"});
    out << mdRow({"---", "---", "---", "---"});
    for (const auto& row :
         systemUsage(model, peaks.writePeak, peaks.readPeak)) {
      out << mdRow({std::to_string(row.phaseId), row.opsLabel,
                    fmt("%.0f", util::toMiBs(row.measuredBandwidth)),
                    fmt("%.0f%%", row.usagePct)});
    }
  }

  out << "\n## Estimated I/O time on candidate configurations "
         "(eqs. 1-2)\n\n";
  out << mdRow({"configuration", "Time_io(CH)", "IOR runs"});
  out << mdRow({"---", "---", "---"});
  std::vector<SelectionCandidate> candidates;
  for (auto target : options.targets) {
    auto probe = configs::makeConfig(target);
    Replayer replayer([target] { return configs::makeConfig(target); },
                      probe.mount);
    SelectionCandidate candidate;
    candidate.name = probe.name;
    candidate.estimate = estimateIoTime(model, replayer);
    out << mdRow({candidate.name,
                  fmt("%.2f s", candidate.estimate.totalTimeSec),
                  std::to_string(replayer.benchmarkRuns())});
    candidates.push_back(std::move(candidate));
  }
  if (const auto* best = selectConfiguration(candidates)) {
    out << "\n**Recommendation:** run on " << best->name << " ("
        << fmt("%.2f", best->estimate.totalTimeSec)
        << " s estimated I/O time).\n";
  }
  return out.str();
}

}  // namespace iop::analysis
