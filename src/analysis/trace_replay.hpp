// Trace-driven replay: execute a recorded trace, operation by operation,
// on a *different* target configuration, preserving each rank's original
// think time between operations.
//
// This is the fidelity rung between the paper's abstract-model replay
// (IOR per phase — cheap, approximate) and actually porting the
// application: it needs only the trace, reproduces the exact request
// sequence including collective structure and file views, and yields a
// measured model with the original phase structure but the target's
// timings.  Comparing all three quantifies exactly what the phase
// abstraction loses (see bench/tabx_model_vs_trace).
#pragma once

#include <string>

#include "analysis/replay.hpp"
#include "core/iomodel.hpp"
#include "trace/tracer.hpp"

namespace iop::analysis {

struct TraceReplayOptions {
  /// Reproduce each rank's original gaps between operations as busy-work.
  /// false = issue operations back to back (pure I/O pressure).
  bool preserveThinkTime = true;
};

struct TraceReplayResult {
  double makespanSeconds = 0;
  /// Model with the ORIGINAL phase structure (ticks are carried over from
  /// the source trace) but the target configuration's measured timings —
  /// directly comparable against an Estimate via compareEstimate().
  core::IOModel measuredModel;
};

/// Replay `source` on a fresh instance of the target configuration.
TraceReplayResult replayTrace(const trace::TraceData& source,
                              const ConfigBuilder& builder,
                              const std::string& mount,
                              const TraceReplayOptions& options = {});

}  // namespace iop::analysis
