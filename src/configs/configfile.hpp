// Cluster description files: build a ClusterConfig from a small text
// format, so the iop-* tools can evaluate configurations that are not the
// paper's four (the "design and selection of different configurations"
// use case of the paper's conclusion).
//
// Format (one directive per line, '#' comments):
//
//   name my-cluster
//   compute 8 gbe                 # count, link: gbe | ib
//   ionode nas gbe
//   ionode oss0 ib
//   server nas raid5 5 sata stripe=256K cache=2G
//   server oss0 ssd cache=4G
//   mount /data nfs nas rpc=256K
//   mount /scratch striped oss0,oss1 mds=nas stripe=1M count=2
//   default-mount /data
//   hints cb_nodes=1 cb_buffer=16M
//
// Devices: disk <class> | ssd | raid0 <n> <class> | raid5 <n> <class> |
//          jbod <n> <class>, with disk classes sata | sas | ide | sfs20.
// Server options: cache=SIZE, dirty=FRACTION, writethrough, cpu=MICROS.
#pragma once

#include <filesystem>
#include <string>

#include "configs/configs.hpp"

namespace iop::configs {

/// Parse and instantiate a cluster description.  Throws
/// std::invalid_argument with a line reference on any malformed input.
ClusterConfig loadClusterConfig(const std::filesystem::path& path,
                                std::uint64_t seed = 1);

/// Same, from an in-memory string (used by tests).
ClusterConfig parseClusterConfig(const std::string& text,
                                 std::uint64_t seed = 1);

}  // namespace iop::configs
