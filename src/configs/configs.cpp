#include "configs/configs.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "storage/blockdev.hpp"
#include "storage/filesystem.hpp"
#include "util/units.hpp"

namespace iop::configs {

using util::GiB;
using util::KiB;
using util::MiB;

const char* configName(ConfigId id) {
  switch (id) {
    case ConfigId::A: return "Configuration A";
    case ConfigId::B: return "Configuration B";
    case ConfigId::C: return "Configuration C";
    case ConfigId::Finisterrae: return "Finisterrae";
  }
  return "?";
}

ConfigId parseConfigName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "a") return ConfigId::A;
  if (lower == "b") return ConfigId::B;
  if (lower == "c") return ConfigId::C;
  if (lower == "finisterrae" || lower == "f") return ConfigId::Finisterrae;
  throw std::invalid_argument("unknown configuration '" + name +
                              "' (use A, B, C or finisterrae)");
}

mpi::RuntimeOptions ClusterConfig::runtimeOptions(
    int np, mpi::TraceSink* sink) const {
  mpi::RuntimeOptions opt;
  opt.np = np;
  opt.computeNodes = computeNodes;
  opt.hints = hints;
  opt.sink = sink;
  return opt;
}

namespace {

storage::DiskParams sataDisk(const std::string& name) {
  storage::DiskParams p;
  p.name = name;
  p.seqReadBw = 105.0e6;
  p.seqWriteBw = 100.0e6;
  p.positionTime = 8.5e-3;
  p.perRequestOverhead = 0.15e-3;
  return p;
}

storage::DiskParams oldIdeDisk(const std::string& name) {
  // Config B's NASD nodes: Pentium 4 era 80 GB disks.
  storage::DiskParams p;
  p.name = name;
  p.seqReadBw = 66.0e6;
  p.seqWriteBw = 60.0e6;
  p.positionTime = 10.0e-3;
  p.perRequestOverhead = 0.2e-3;
  return p;
}

storage::DiskParams sasDisk(const std::string& name) {
  storage::DiskParams p;
  p.name = name;
  p.seqReadBw = 135.0e6;
  p.seqWriteBw = 125.0e6;
  p.positionTime = 6.0e-3;
  p.perRequestOverhead = 0.1e-3;
  return p;
}

storage::DiskParams sfs20Disk(const std::string& name) {
  // HP SFS20 enclosure members behind the Finisterrae OSSes.  $HOMESFS
  // shares these cabins with other filesystems and users, so the
  // effective per-member rate is well below a dedicated disk.
  storage::DiskParams p;
  p.name = name;
  p.seqReadBw = 80.0e6;
  p.seqWriteBw = 112.0e6;
  p.positionTime = 7.0e-3;
  p.perRequestOverhead = 0.1e-3;
  return p;
}

std::vector<storage::DiskParams> nDisks(int n, const std::string& prefix,
                                        storage::DiskParams (*mk)(
                                            const std::string&)) {
  std::vector<storage::DiskParams> v;
  for (int i = 0; i < n; ++i) v.push_back(mk(prefix + std::to_string(i)));
  return v;
}

ClusterConfig makeAohyperBase(std::uint64_t seed, const std::string& name) {
  ClusterConfig cfg;
  cfg.name = name;
  cfg.engine = std::make_unique<sim::Engine>(seed);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  for (int i = 0; i < 8; ++i) {
    cfg.topology->addNode("aoh" + std::to_string(i),
                          storage::gigabitEthernet());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  return cfg;
}

ClusterConfig makeConfigA(std::uint64_t seed) {
  auto cfg = makeAohyperBase(seed, configName(ConfigId::A));
  auto& nas = cfg.topology->addNode("nas", storage::gigabitEthernet());
  storage::ServerParams sp;
  sp.cache.sizeBytes = 1536 * MiB;  // 2 GB node, most of it page cache
  auto dev = std::make_unique<storage::Raid5>(
      *cfg.engine, nDisks(5, "nas-sata", sataDisk), 256 * KiB);
  auto& server = cfg.topology->addServer(nas, std::move(dev), sp);
  storage::NfsParams nfs;
  nfs.rpcSize = 256 * KiB;  // NFSv3 wsize/rsize on the Aohyper era stack
  cfg.topology->mount("/raid/raid5", std::make_unique<storage::NfsFS>(
                                         *cfg.engine, server, nfs));
  cfg.mount = "/raid/raid5";
  cfg.hints.cbNodes = 1;  // ROMIO on NFS: single aggregator
  return cfg;
}

ClusterConfig makeConfigB(std::uint64_t seed) {
  auto cfg = makeAohyperBase(seed, configName(ConfigId::B));
  std::vector<storage::IoServer*> ions;
  for (int i = 0; i < 3; ++i) {
    auto& node = cfg.topology->addNode("nasd" + std::to_string(i),
                                       storage::gigabitEthernet());
    storage::ServerParams sp;
    sp.cache.sizeBytes = 640 * MiB;  // 1 GB Pentium 4 I/O nodes
    // PVFS2's trove storage syncs every write to disk (TroveSyncData),
    // so interleaved chunks from many clients each pay their seek — the
    // reason the paper's JBOD disks run 100% busy at ~30% of BW_PK.
    sp.cache.writeThrough = true;
    sp.cpuPerRequest = 80.0e-6;      // slow single-core servers
    auto dev = std::make_unique<storage::SingleDisk>(
        *cfg.engine, oldIdeDisk("nasd-disk" + std::to_string(i)));
    ions.push_back(&cfg.topology->addServer(node, std::move(dev), sp));
  }
  storage::StripedParams pvfs;
  pvfs.stripeUnit = 64 * KiB;  // PVFS2 default
  pvfs.rpcSize = 256 * KiB;
  cfg.topology->mount("/mnt/pvfs2",
                      std::make_unique<storage::StripedFS>(
                          *cfg.engine, ions, ions.front(), pvfs));
  cfg.mount = "/mnt/pvfs2";
  cfg.hints.cbNodes = 3;
  return cfg;
}

ClusterConfig makeConfigC(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.name = configName(ConfigId::C);
  cfg.engine = std::make_unique<sim::Engine>(seed);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  for (int i = 0; i < 32; ++i) {
    cfg.topology->addNode("x3550-" + std::to_string(i),
                          storage::gigabitEthernet());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  auto& nas = cfg.topology->addNode("home-server",
                                    storage::gigabitEthernet());
  storage::ServerParams sp;
  sp.cache.sizeBytes = 6 * GiB;  // 12 GB class server
  auto dev = std::make_unique<storage::Raid5>(
      *cfg.engine, nDisks(5, "home-sas", sasDisk), 256 * KiB);
  auto& server = cfg.topology->addServer(nas, std::move(dev), sp);
  storage::NfsParams nfs;
  nfs.rpcSize = 256 * KiB;
  cfg.topology->mount("/home", std::make_unique<storage::NfsFS>(
                                   *cfg.engine, server, nfs));
  cfg.mount = "/home";
  cfg.hints.cbNodes = 1;
  return cfg;
}

ClusterConfig makeFinisterrae(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.name = configName(ConfigId::Finisterrae);
  cfg.engine = std::make_unique<sim::Engine>(seed);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  // Model 32 of the 142 rx7640 nodes as launchable compute nodes (each has
  // 16 cores; ranks pack onto nodes round-robin like the scheduler would).
  for (int i = 0; i < 32; ++i) {
    cfg.topology->addNode("rx7640-" + std::to_string(i),
                          storage::infiniband20G());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  std::vector<storage::IoServer*> osses;
  for (int i = 0; i < 18; ++i) {
    auto& node = cfg.topology->addNode("oss" + std::to_string(i),
                                       storage::infiniband20G());
    storage::ServerParams sp;
    sp.cache.sizeBytes = 4 * GiB;
    // Lustre throttles writers with small per-OSC dirty caps (32 MB per
    // client/OST by default), so writes reach the devices almost
    // synchronously — unlike an NFS server's deep write-back.
    sp.cache.dirtyLimitFraction = 0.01;
    auto dev = std::make_unique<storage::Raid5>(
        *cfg.engine, nDisks(6, "sfs20-" + std::to_string(i) + "-",
                            sfs20Disk),
        256 * KiB);
    osses.push_back(&cfg.topology->addServer(node, std::move(dev), sp));
  }
  auto& mdsNode = cfg.topology->addNode("mds", storage::infiniband20G());
  storage::ServerParams mdsParams;
  auto mdsDev = std::make_unique<storage::SingleDisk>(
      *cfg.engine, sasDisk("mds-disk"));
  auto& mds = cfg.topology->addServer(mdsNode, std::move(mdsDev), mdsParams);
  storage::StripedParams lustre;
  lustre.stripeUnit = 1 * MiB;  // Lustre default
  lustre.rpcSize = 1 * MiB;
  lustre.clientPerRpcOverhead = 40.0e-6;
  // $HOMESFS uses the filesystem default stripe count, not all 18 OSSes.
  lustre.stripeCount = 1;
  cfg.topology->mount("homesfs", std::make_unique<storage::StripedFS>(
                                     *cfg.engine, osses, &mds, lustre));
  cfg.mount = "homesfs";
  cfg.hints.cbNodes = 8;
  return cfg;
}

}  // namespace

ClusterConfig makeConfig(ConfigId id, std::uint64_t seed) {
  switch (id) {
    case ConfigId::A: return makeConfigA(seed);
    case ConfigId::B: return makeConfigB(seed);
    case ConfigId::C: return makeConfigC(seed);
    case ConfigId::Finisterrae: return makeFinisterrae(seed);
  }
  throw std::invalid_argument("unknown config id");
}

std::string describeConfig(ConfigId id) {
  std::ostringstream out;
  out << configName(id) << "\n";
  switch (id) {
    case ConfigId::A:
      out << "  I/O library: mpich2 (simulated MPI-IO)\n"
             "  Network: 1 Gb Ethernet (shared compute/storage)\n"
             "  Global filesystem: NFS v3\n"
             "  I/O nodes: 8 DAS + 1 NAS\n"
             "  Local level: RAID5, 5 disks, stripe 256KB (ext4)\n"
             "  Mount: /raid/raid5\n";
      break;
    case ConfigId::B:
      out << "  I/O library: mpich2 (simulated MPI-IO)\n"
             "  Network: 1 Gb Ethernet (shared compute/storage)\n"
             "  Global filesystem: PVFS2 2.8.2\n"
             "  I/O nodes: 8 DAS + 3 NASD\n"
             "  Local level: JBOD, 1x80GB disk per node (ext3)\n"
             "  Mount: /mnt/pvfs2\n";
      break;
    case ConfigId::C:
      out << "  I/O library: OpenMPI (simulated MPI-IO)\n"
             "  Network: 1 Gb Ethernet\n"
             "  Global filesystem: NFS v3\n"
             "  I/O nodes: 8 DAS + 1 NAS (32 IBM x3550 clients)\n"
             "  Local level: RAID5, 5 SAS disks (ext4)\n"
             "  Mount: /home\n";
      break;
    case ConfigId::Finisterrae:
      out << "  I/O library: mpich2 + HDF5 (simulated MPI-IO)\n"
             "  Network: Infiniband 20 Gbps\n"
             "  Global filesystem: Lustre (HP SFS)\n"
             "  I/O nodes: 18 OSS, 2 MDS (72 SFS20 cabins)\n"
             "  Local level: RAID5 (866 x 250GB disks)\n"
             "  Mount: $HOMESFS\n";
      break;
  }
  return out.str();
}

}  // namespace iop::configs
