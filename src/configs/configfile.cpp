#include "configs/configfile.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "storage/blockdev.hpp"
#include "storage/filesystem.hpp"
#include "storage/ssd.hpp"
#include "util/text.hpp"
#include "util/units.hpp"

namespace iop::configs {

namespace {

[[noreturn]] void fail(int lineNo, const std::string& message) {
  throw std::invalid_argument("cluster config line " +
                              std::to_string(lineNo) + ": " + message);
}

storage::LinkParams parseLink(int lineNo, const std::string& name) {
  if (name == "gbe") return storage::gigabitEthernet();
  if (name == "ib") return storage::infiniband20G();
  fail(lineNo, "unknown link type '" + name + "' (use gbe or ib)");
}

storage::DiskParams diskClass(int lineNo, const std::string& name) {
  storage::DiskParams p;
  p.name = name;
  if (name == "sata") {
    p.seqReadBw = 105.0e6;
    p.seqWriteBw = 100.0e6;
    p.positionTime = 8.5e-3;
  } else if (name == "sas") {
    p.seqReadBw = 135.0e6;
    p.seqWriteBw = 125.0e6;
    p.positionTime = 6.0e-3;
  } else if (name == "ide") {
    p.seqReadBw = 66.0e6;
    p.seqWriteBw = 60.0e6;
    p.positionTime = 10.0e-3;
  } else if (name == "sfs20") {
    p.seqReadBw = 80.0e6;
    p.seqWriteBw = 112.0e6;
    p.positionTime = 7.0e-3;
  } else {
    fail(lineNo, "unknown disk class '" + name + "'");
  }
  return p;
}

/// Split remaining tokens into positional args and key=value options.
struct TokenView {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  TokenView(const std::vector<std::string>& tokens, std::size_t from) {
    for (std::size_t i = from; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        positional.push_back(tokens[i]);
      } else {
        options[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
      }
    }
  }

  bool flag(const std::string& name) const {
    for (const auto& p : positional) {
      if (p == name) return true;
    }
    return false;
  }
};

std::unique_ptr<storage::BlockDevice> parseDevice(
    int lineNo, sim::Engine& engine, const TokenView& view) {
  if (view.positional.empty()) fail(lineNo, "server needs a device");
  const std::string& kind = view.positional[0];
  auto stripe = view.options.count("stripe") != 0
                    ? util::parseBytes(view.options.at("stripe"))
                    : 256ULL << 10;
  auto members = [&](std::size_t countIdx,
                     std::size_t classIdx) -> std::vector<storage::DiskParams> {
    if (view.positional.size() <= classIdx) {
      fail(lineNo, kind + " needs a count and a disk class");
    }
    const int n = std::stoi(view.positional[countIdx]);
    if (n < 1) fail(lineNo, "disk count must be positive");
    std::vector<storage::DiskParams> v;
    for (int i = 0; i < n; ++i) {
      auto p = diskClass(lineNo, view.positional[classIdx]);
      p.name += "-" + std::to_string(i);
      v.push_back(std::move(p));
    }
    return v;
  };

  if (kind == "disk") {
    if (view.positional.size() < 2) fail(lineNo, "disk needs a class");
    return std::make_unique<storage::SingleDisk>(
        engine, diskClass(lineNo, view.positional[1]));
  }
  if (kind == "ssd") {
    storage::SsdParams p;
    if (view.options.count("read") != 0) {
      p.readBandwidth = util::fromMiBs(std::stod(view.options.at("read")));
    }
    if (view.options.count("write") != 0) {
      p.writeBandwidth =
          util::fromMiBs(std::stod(view.options.at("write")));
    }
    if (view.options.count("channels") != 0) {
      p.channels = std::stoi(view.options.at("channels"));
    }
    return std::make_unique<storage::Ssd>(engine, p);
  }
  if (kind == "raid0") {
    return std::make_unique<storage::Raid0>(engine, members(1, 2), stripe);
  }
  if (kind == "raid5") {
    return std::make_unique<storage::Raid5>(engine, members(1, 2), stripe);
  }
  if (kind == "jbod") {
    return std::make_unique<storage::Concat>(engine, members(1, 2),
                                             1ULL << 40);
  }
  fail(lineNo, "unknown device '" + kind + "'");
}

}  // namespace

ClusterConfig parseClusterConfig(const std::string& text,
                                 std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.name = "custom-cluster";
  cfg.engine = std::make_unique<sim::Engine>(seed);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);

  std::map<std::string, storage::Node*> namedNodes;
  std::map<std::string, storage::IoServer*> serversByNode;

  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto tokens = util::splitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "name") {
      if (tokens.size() < 2) fail(lineNo, "name needs a value");
      cfg.name = tokens[1];
    } else if (directive == "compute") {
      if (tokens.size() < 3) fail(lineNo, "compute <count> <link>");
      const int count = std::stoi(tokens[1]);
      if (count < 1) fail(lineNo, "compute count must be positive");
      auto link = parseLink(lineNo, tokens[2]);
      for (int i = 0; i < count; ++i) {
        cfg.computeNodes.push_back(cfg.topology->nodeCount());
        cfg.topology->addNode("c" + std::to_string(i), link);
      }
    } else if (directive == "ionode") {
      if (tokens.size() < 3) fail(lineNo, "ionode <name> <link>");
      if (namedNodes.count(tokens[1]) != 0) {
        fail(lineNo, "duplicate node '" + tokens[1] + "'");
      }
      namedNodes[tokens[1]] =
          &cfg.topology->addNode(tokens[1], parseLink(lineNo, tokens[2]));
    } else if (directive == "server") {
      if (tokens.size() < 3) fail(lineNo, "server <node> <device...>");
      auto nodeIt = namedNodes.find(tokens[1]);
      if (nodeIt == namedNodes.end()) {
        fail(lineNo, "unknown node '" + tokens[1] + "'");
      }
      if (serversByNode.count(tokens[1]) != 0) {
        fail(lineNo, "node '" + tokens[1] + "' already has a server");
      }
      TokenView view(tokens, 2);
      storage::ServerParams sp;
      if (view.options.count("cache") != 0) {
        sp.cache.sizeBytes = util::parseBytes(view.options.at("cache"));
      }
      if (view.options.count("dirty") != 0) {
        sp.cache.dirtyLimitFraction = std::stod(view.options.at("dirty"));
      }
      if (view.options.count("cpu") != 0) {
        sp.cpuPerRequest = std::stod(view.options.at("cpu")) * 1e-6;
      }
      if (view.flag("writethrough")) sp.cache.writeThrough = true;
      serversByNode[tokens[1]] = &cfg.topology->addServer(
          *nodeIt->second, parseDevice(lineNo, *cfg.engine, view), sp);
    } else if (directive == "mount") {
      if (tokens.size() < 4) {
        fail(lineNo, "mount <point> <nfs|striped> <nodes...>");
      }
      const std::string& point = tokens[1];
      const std::string& fsType = tokens[2];
      TokenView view(tokens, 3);
      if (fsType == "nfs") {
        auto it = serversByNode.find(view.positional.at(0));
        if (it == serversByNode.end()) {
          fail(lineNo, "mount references node without a server");
        }
        storage::NfsParams params;
        if (view.options.count("rpc") != 0) {
          params.rpcSize = util::parseBytes(view.options.at("rpc"));
        }
        cfg.topology->mount(point, std::make_unique<storage::NfsFS>(
                                       *cfg.engine, *it->second, params));
      } else if (fsType == "striped") {
        std::vector<storage::IoServer*> dataServers;
        for (const auto& nodeName :
             util::split(view.positional.at(0), ',')) {
          auto it = serversByNode.find(nodeName);
          if (it == serversByNode.end()) {
            fail(lineNo, "striped mount references unknown server '" +
                             nodeName + "'");
          }
          dataServers.push_back(it->second);
        }
        storage::IoServer* mds = nullptr;
        if (view.options.count("mds") != 0) {
          auto it = serversByNode.find(view.options.at("mds"));
          if (it == serversByNode.end()) {
            fail(lineNo, "mds references unknown server");
          }
          mds = it->second;
        }
        storage::StripedParams params;
        if (view.options.count("stripe") != 0) {
          params.stripeUnit = util::parseBytes(view.options.at("stripe"));
        }
        if (view.options.count("rpc") != 0) {
          params.rpcSize = util::parseBytes(view.options.at("rpc"));
        }
        if (view.options.count("count") != 0) {
          params.stripeCount = std::stoi(view.options.at("count"));
        }
        cfg.topology->mount(
            point, std::make_unique<storage::StripedFS>(
                       *cfg.engine, std::move(dataServers), mds, params));
      } else {
        fail(lineNo, "unknown filesystem type '" + fsType + "'");
      }
      if (cfg.mount.empty()) cfg.mount = point;
    } else if (directive == "default-mount") {
      if (tokens.size() < 2) fail(lineNo, "default-mount <point>");
      cfg.mount = tokens[1];
    } else if (directive == "hints") {
      TokenView view(tokens, 1);
      if (view.options.count("cb_nodes") != 0) {
        cfg.hints.cbNodes = std::stoi(view.options.at("cb_nodes"));
      }
      if (view.options.count("cb_buffer") != 0) {
        cfg.hints.cbBufferSize =
            util::parseBytes(view.options.at("cb_buffer"));
      }
      if (view.flag("no-collective-buffering")) {
        cfg.hints.collectiveBuffering = false;
      }
    } else {
      fail(lineNo, "unknown directive '" + directive + "'");
    }
  }

  if (cfg.computeNodes.empty()) {
    throw std::invalid_argument(
        "cluster config: at least one 'compute' line is required");
  }
  if (cfg.mount.empty()) {
    throw std::invalid_argument(
        "cluster config: at least one 'mount' line is required");
  }
  // Validate the default mount exists (throws otherwise).
  cfg.topology->fs(cfg.mount);
  return cfg;
}

ClusterConfig loadClusterConfig(const std::filesystem::path& path,
                                std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open cluster config " +
                                path.string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parseClusterConfig(buffer.str(), seed);
}

}  // namespace iop::configs
