// The paper's four I/O configurations (Tables VI and VII), expressed as
// storage-simulator topologies.
//
//   A           Aohyper: NFSv3 on 1 NAS node, RAID5 (5 disks, 256 KB
//               stripe), 1 GbE, 8 compute nodes
//   B           Aohyper: PVFS2 over 3 NASD I/O nodes (JBOD, 1 disk each),
//               1 GbE, 8 compute nodes
//   C           32 IBM x3550 nodes, NFSv3 on 1 server, RAID5 (5 SAS
//               disks), 1 GbE
//   Finisterrae CESGA: Lustre (HP SFS), 18 OSS + 2 MDS, RAID5 SFS20
//               cabins, 20 Gb/s Infiniband, 143 compute nodes
//
// Absolute device/link speeds are calibrated to the hardware classes the
// paper names (SATA/SAS disks, GbE, IB); see DESIGN.md for the calibration
// rationale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "sim/engine.hpp"
#include "storage/topology.hpp"

namespace iop::fault {
class FaultInjector;
}

namespace iop::configs {

enum class ConfigId { A, B, C, Finisterrae };

const char* configName(ConfigId id);

/// Inverse of configName, case-insensitive ("a", "finisterrae", "f", ...).
/// Throws std::invalid_argument on unknown names.
ConfigId parseConfigName(const std::string& name);

/// One instantiated configuration: owns the engine and topology.
/// Move-only; create a fresh instance per measurement run so cache and
/// device state start cold.
struct ClusterConfig {
  std::string name;
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<storage::Topology> topology;
  std::vector<std::size_t> computeNodes;  ///< node indices usable for ranks
  std::string mount;                      ///< the evaluated mount point
  mpi::IoHints hints;                     ///< configuration-default hints

  /// Fault injector attached by fault::installFaults (null = healthy run).
  /// Held here so the ports the topology points at outlive the workload;
  /// declared after topology so it is destroyed first.
  std::shared_ptr<fault::FaultInjector> faults;

  /// Convenience: runtime options for `np` ranks on this cluster.
  mpi::RuntimeOptions runtimeOptions(int np,
                                     mpi::TraceSink* sink = nullptr) const;
};

/// Build a configuration.  `seed` feeds the engine RNG (deterministic).
ClusterConfig makeConfig(ConfigId id, std::uint64_t seed = 1);

/// Table VI / VII style description of a configuration.
std::string describeConfig(ConfigId id);

}  // namespace iop::configs
