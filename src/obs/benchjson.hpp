// iop-bench/1 JSON parsing, shared by every consumer of BENCH_*.json
// documents (iop-diff --bench, the capture archive, the trend engine).
//
// The schema is the one bench::writeBenchJson and the micro-benchmarks
// write: one top-level object with a "schema" string equal to
// "iop-bench/1" and a "results" array of flat objects holding
// string/number fields (docs/OBSERVABILITY.md, "Bench JSON").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iop::obs {

struct BenchEntry {
  std::string name;
  std::int64_t iterations = 0;
  double nsPerOp = 0;          ///< 0 = not measured
  double bytesPerSecond = 0;   ///< 0 = not measured
};

/// Parse an iop-bench/1 document.  Throws std::invalid_argument on a
/// schema mismatch or malformed JSON.
std::vector<BenchEntry> parseBenchJson(const std::string& text);

}  // namespace iop::obs
