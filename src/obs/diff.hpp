// Run-to-run regression diffing over two captures.
//
// Phases are aligned by id (the model's phase sequence is stable for a
// given application), then compared on measured I/O time, bandwidth, and
// — when both captures carry metrics — the *shape* of every shared
// queue-depth/latency histogram, measured as the normalized L1 distance
// between bucket distributions.  Each comparison beyond its threshold
// becomes a finding; `regressions()` counts only the ones that got
// *worse*, which is what drives iop-diff's non-zero CI exit code.
#pragma once

#include <string>
#include <vector>

#include "obs/capture.hpp"

namespace iop::obs {

/// How phases of the two captures are matched before comparison.
///   ById:         same phase id (the default; exact for unchanged models).
///   BySimilarity: renumbering-tolerant — phases are grouped by label and
///                 sequence-aligned within each group by weight similarity,
///                 so a model extraction that renumbers phases still diffs
///                 clean.
enum class AlignMode { ById, BySimilarity };

/// "id" | "similarity" (throws std::invalid_argument).
AlignMode parseAlignMode(const std::string& name);

struct DiffOptions {
  /// Relative change in percent beyond which a per-phase time/bandwidth
  /// delta or the makespan delta counts as a finding.
  double thresholdPct = 5.0;
  /// Normalized L1 distance (0..2) beyond which a histogram's bucket
  /// distribution counts as changed shape.
  double histThreshold = 0.25;
  /// Ignore phase time deltas below this many seconds (fp noise floor).
  double minSeconds = 1e-9;
  AlignMode align = AlignMode::ById;
};

struct DiffFinding {
  enum class Kind { Makespan, PhaseTime, PhaseBandwidth, PhaseMissing,
                    HistogramShape };
  Kind kind = Kind::PhaseTime;
  bool regression = false;  ///< true when B is worse than A
  int phaseId = -1;         ///< phase findings only
  std::string subject;      ///< phase label or histogram metric name
  double before = 0;
  double after = 0;
  double deltaPct = 0;      ///< signed relative change, percent
  std::string describe() const;
};

struct DiffResult {
  DiffOptions options;
  std::vector<DiffFinding> findings;

  std::size_t regressions() const noexcept;
  std::string render(const RunCapture& a, const RunCapture& b) const;
};

DiffResult diffCaptures(const RunCapture& a, const RunCapture& b,
                        const DiffOptions& options = {});

/// Phase matching between two captures (exposed for tests).  Each pair has
/// at least one side set; a nullptr side means the phase is unmatched.
/// Pairs appear in a-order, with b-only phases appended in b-order.
std::vector<std::pair<const CapturePhase*, const CapturePhase*>>
alignPhases(const RunCapture& a, const RunCapture& b, AlignMode mode);

/// Parse the `le_*` bucket rows of every histogram in a metrics CSV
/// (exposed for tests).  Returns metric -> ordered bucket counts.
std::vector<std::pair<std::string, std::vector<double>>>
parseHistogramBuckets(const std::string& metricsCsv);

}  // namespace iop::obs
