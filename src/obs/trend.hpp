// Trend engine: per-metric time series across a capture archive, with
// robust baselines and change-point flagging — the longitudinal
// counterpart of iop-diff's two-run comparison.
//
// For every (app, config, np) capture series the archive holds, the
// engine extracts
//   * makespan,
//   * per-phase Time_io and bandwidth,
//   * the eq. 1-2 residual (makespan minus the sum of per-phase measured
//     I/O times — the compute/startup/unattributed remainder, so a
//     regression that hides outside the I/O phases still surfaces),
// and for every bench snapshot series, per-result ns/op and bytes/s.
//
// The change-point rule (docs/OBSERVABILITY.md): the newest point is
// compared against the median of all prior points; the deviation is
// measured in robust sigma units, scale = max(1.4826 * MAD,
// relFloorPct% of |median|).  A deterministic history (MAD = 0 — the
// common case for simulated metrics) falls back to the relative floor,
// so a 20% makespan jump over five byte-identical runs is ~20 sigma.
// A series flags only after `minHistory` prior points exist; a flagged
// move in the bad direction (time up, bandwidth down) is a regression,
// which drives iop-trend check's non-zero CI exit code.
//
// Everything here is deterministic: series and points are emitted in a
// canonical order, so two runs over the same archive render identical
// reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iop::obs {

class Archive;

struct TrendOptions {
  /// |deviation| in robust sigma units beyond which the newest point is
  /// a change-point.
  double madThreshold = 4.0;
  /// Scale floor as a percentage of |baseline median|: protects against
  /// MAD = 0 (deterministic histories) and keeps microscopic relative
  /// moves from flagging.
  double relFloorPct = 1.0;
  /// Prior points required before a series may flag at all.
  std::size_t minHistory = 3;
  /// Substring filter on series metric names (empty = all).
  std::string metricFilter;
};

struct TrendPoint {
  std::uint64_t seq = 0;   ///< archive sequence number
  std::string label;       ///< commit / tag the point was archived under
  double value = 0;
};

struct TrendSeries {
  std::string kind;     ///< "capture" | "bench"
  std::string app;      ///< bench: snapshot name
  std::string config;   ///< bench: "bench"
  int np = 0;
  std::string metric;   ///< "makespan", "phase 3 [W f0] time", "X ns/op"...
  bool lowerIsBetter = true;
  std::vector<TrendPoint> points;  ///< seq ascending

  // Computed against all points but the newest:
  double baselineMedian = 0;
  double baselineMad = 0;
  double deviation = 0;    ///< newest point, robust sigma units, signed
  bool flagged = false;    ///< |deviation| > madThreshold (and history ok)
  bool regression = false; ///< flagged in the bad direction

  double latest() const noexcept {
    return points.empty() ? 0 : points.back().value;
  }
  std::string title() const;  ///< "app/config/np4 metric"
};

struct TrendReport {
  TrendOptions options;
  std::vector<TrendSeries> series;  ///< canonical order, deterministic

  std::size_t regressions() const noexcept;
  std::size_t flaggedSeries() const noexcept;

  /// Text report: one line per series with a block-character sparkline,
  /// baseline stats and the change-point verdict.
  std::string renderText() const;
  /// Single-file HTML report with inline SVG sparklines (no external
  /// assets), for sharing a trend snapshot.
  std::string renderHtml() const;
  /// Regressions only, one line each — what `iop-trend check` prints.
  std::string renderCheck() const;
};

/// Extract and analyze every series of the archive.  Series order and
/// content are a pure function of the archive's manifest + objects.
TrendReport analyzeTrends(const Archive& archive,
                          const TrendOptions& options = {});

/// Robust statistics (exposed for tests).
double medianOf(std::vector<double> values);
double madOf(const std::vector<double>& values, double median);

/// Block-character sparkline of `values` (exposed for tests).
std::string sparkline(const std::vector<double>& values);

}  // namespace iop::obs
