// Capture archive: the append-only, content-addressed directory that
// turns one-off run captures and bench snapshots into a longitudinal
// record — the substrate the trend engine (obs/trend.hpp) and the
// iop-trend tool query.
//
// Layout under the archive root:
//   MANIFEST.jsonl        append-only index, one JSON object per entry
//                         ({"schema":"iop-archive/1","seq":..,"kind":..,
//                           "app":..,"config":..,"np":..,"label":..,
//                           "hash":..,"bytes":..})
//   objects/<hash>.capv2        capture payloads (format v2, sniffable)
//   objects/<hash>.bench.json   iop-bench/1 snapshots, verbatim
//
// Object files are content-addressed by FNV-1a64 of their bytes and
// written atomically (util::writeFileAtomically), so concurrent writers
// — several CI jobs archiving into one cached directory — never tear an
// object and identical payloads dedup into one file.  The manifest is
// append-only (one short line per entry, O_APPEND semantics); list()
// parses it tolerantly, skipping torn lines the way the run journal
// does, so a crashed writer costs at most its own entry.
//
// An entry's identity is (app, config, np, label, seq): label is the
// commit / run tag supplied at add time, seq is a monotonically
// increasing archive-wide sequence number that orders each series.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/benchjson.hpp"
#include "obs/capture.hpp"

namespace iop::obs {

struct ArchiveEntry {
  std::uint64_t seq = 0;     ///< archive-wide, orders every series
  std::string kind;          ///< "capture" | "bench"
  std::string app;           ///< bench entries: the snapshot name
  std::string config;
  int np = 0;                ///< 0 for bench entries
  std::string label;         ///< commit / tag supplied at add time
  std::string hash;          ///< 16 hex digits of the payload bytes
  std::uint64_t bytes = 0;   ///< payload size

  /// "app/config/np" — the series the entry belongs to.
  std::string seriesKey() const;
  std::string objectName() const;  ///< file name under objects/
};

/// 16-hex-digit FNV-1a64 of an object payload — the hash the archive
/// content-addresses by.  Exposed so iop-fsck can verify objects against
/// their manifest entries and filenames.
std::string archivePayloadHash(const std::string& bytes);

/// The manifest-line codec, exposed for iop-fsck: render one entry as
/// its JSONL line (newline-terminated) / parse one line (false on torn,
/// nested or schema-mismatched input, the lines list() skips).
std::string renderArchiveManifestLine(const ArchiveEntry& entry);
bool parseArchiveManifestLine(const std::string& line, ArchiveEntry& out);

class Archive {
 public:
  /// Opens (and lazily creates) the archive rooted at `root`.
  explicit Archive(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }
  std::filesystem::path manifestPath() const;
  std::filesystem::path objectPath(const ArchiveEntry& entry) const;

  /// All manifest entries in seq order.  Torn or malformed lines are
  /// skipped (counted in *badLines when given), like the run journal.
  std::vector<ArchiveEntry> list(std::size_t* badLines = nullptr) const;

  /// Archive a capture under `label`; returns the appended entry.
  /// The payload is always stored in format v2.
  ArchiveEntry addCapture(const RunCapture& capture,
                          const std::string& label);

  /// Archive an iop-bench/1 document verbatim under (name, label).
  /// Throws std::invalid_argument when `benchJson` fails schema
  /// validation — a malformed snapshot never enters the archive.
  ArchiveEntry addBench(const std::string& benchJson,
                        const std::string& name, const std::string& label);

  /// Load an entry's capture (kind "capture"; throws otherwise or when
  /// the object is missing/corrupt — v2 checksums catch bit flips).
  RunCapture loadCapture(const ArchiveEntry& entry) const;

  /// Load and parse an entry's bench snapshot (kind "bench").
  std::vector<BenchEntry> loadBench(const ArchiveEntry& entry) const;

  /// Raw object bytes for an entry.
  std::string loadObject(const ArchiveEntry& entry) const;

  struct GcResult {
    std::size_t prunedEntries = 0;  ///< manifest entries dropped
    std::size_t removedFiles = 0;   ///< object files deleted
  };

  /// Garbage-collect: keep only the newest `keepLastPerSeries` entries of
  /// every (app, config, np) series (0 = keep all entries), rewrite the
  /// manifest atomically, then drop object files no surviving entry
  /// references.  Returns what was pruned.
  GcResult gc(std::size_t keepLastPerSeries = 0);

 private:
  ArchiveEntry append(std::string kind, std::string app, std::string config,
                      int np, std::string label, const std::string& payload,
                      const std::string& extension);

  std::filesystem::path root_;
};

}  // namespace iop::obs
