#include "obs/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/vfs.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace iop::obs {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Prometheus metric name: `sweep.cell_seconds` -> `iop_sweep_cell_seconds`.
std::string promName(const std::string& name) {
  std::string out = "iop_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ instruments

void RuntimeGauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

RuntimeHistogram::RuntimeHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("runtime histogram needs at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("runtime histogram bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void RuntimeHistogram::observe(double value) noexcept {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> RuntimeHistogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// --------------------------------------------------------------- registry

void RuntimeMetrics::checkFree(const std::string& name, char wanted) const {
  const bool taken = (counters_.count(name) && wanted != 'c') ||
                     (gauges_.count(name) && wanted != 'g') ||
                     (histograms_.count(name) && wanted != 'h');
  if (taken) {
    throw std::logic_error("runtime metric '" + name +
                           "' already registered with another kind");
  }
}

RuntimeCounter& RuntimeMetrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  checkFree(name, 'c');
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<RuntimeCounter>();
  return *slot;
}

RuntimeGauge& RuntimeMetrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  checkFree(name, 'g');
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<RuntimeGauge>();
  return *slot;
}

RuntimeHistogram& RuntimeMetrics::histogram(const std::string& name,
                                            std::vector<double> bounds) {
  std::lock_guard<std::mutex> guard(mutex_);
  checkFree(name, 'h');
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<RuntimeHistogram>(std::move(bounds));
  return *slot;
}

const RuntimeCounter* RuntimeMetrics::findCounter(
    const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const RuntimeGauge* RuntimeMetrics::findGauge(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const RuntimeHistogram* RuntimeMetrics::findHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string RuntimeMetrics::renderProm() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string prom = promName(name) + "_total";
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = promName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = promName(name);
    out << "# TYPE " << prom << " histogram\n";
    const auto counts = h->bucketCounts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += counts[i];
      out << prom << "_bucket{le=\"" << num(h->bounds()[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += counts.back();
    out << prom << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << prom << "_sum " << num(h->sum()) << "\n";
    out << prom << "_count " << h->count() << "\n";
  }
  return out.str();
}

void RuntimeMetrics::writeProm(const std::filesystem::path& path) const {
  // Scratch durability: snapshots are observational, re-written on a
  // timer from a background thread, and must not perturb the
  // deterministic barrier-op numbering the crash injector counts.
  util::vfs::replaceFile(path, renderProm(),
                         util::vfs::Durability::Scratch);
}

// ------------------------------------------------------------ snapshotter

TelemetrySnapshotter::TelemetrySnapshotter(const RuntimeMetrics& metrics,
                                           std::filesystem::path path,
                                           int intervalMs)
    : metrics_(metrics),
      path_(std::move(path)),
      intervalMs_(std::max(1, intervalMs)) {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  writeOnce();  // the file exists from t=0, not only after one interval
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(intervalMs_),
                   [this] { return stopping_; });
      if (stopping_) return;
      lock.unlock();
      writeOnce();
      lock.lock();
    }
  });
}

TelemetrySnapshotter::~TelemetrySnapshotter() {
  try {
    stop();
  } catch (...) {
    // Destructor must not throw; the final snapshot is best-effort here.
  }
}

void TelemetrySnapshotter::stop() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  writeOnce();  // final state always lands on disk
}

void TelemetrySnapshotter::writeOnce() {
  metrics_.writeProm(path_);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- journal

RunJournal::RunJournal(std::filesystem::path path)
    : path_(std::move(path)), epoch_(std::chrono::steady_clock::now()) {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  stream_ = std::make_unique<util::vfs::AppendStream>(
      path_, util::vfs::Durability::Durable, /*truncate=*/true);
  const auto unixMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  event("journal_start",
        "\"schema\":\"" + std::string(kSchema) +
            "\",\"unix_ms\":" + std::to_string(unixMs) +
            ",\"pid\":" + std::to_string(static_cast<long>(getpid())));
}

RunJournal::~RunJournal() {
  std::lock_guard<std::mutex> guard(mutex_);
  stream_.reset();
}

double RunJournal::elapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void RunJournal::event(const std::string& name,
                       const std::string& fieldsJson) {
  char ts[40];
  std::snprintf(ts, sizeof ts, "%.6f", elapsedSeconds());
  std::string line = "{\"t\":";
  line += ts;
  line += ",\"event\":\"";
  line += TraceRecorder::jsonEscape(name);
  line += "\"";
  if (!fieldsJson.empty()) {
    line += ",";
    line += fieldsJson;
  }
  line += "}\n";
  std::lock_guard<std::mutex> guard(mutex_);
  if (!stream_ || disabled_.load(std::memory_order_relaxed)) return;
  // One durable append per event: the whole point of a flight recorder
  // is that a SIGKILL loses at most the line being written.
  if (stream_->append(line)) {
    events_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // A journal that cannot write (ENOSPC, typically) must never take the
  // campaign down: warn once, stop journaling, let the run finish.  The
  // campaign's results are content-addressed store files — losing the
  // flight recorder loses observability, not data.
  disabled_.store(true, std::memory_order_relaxed);
  std::fprintf(stderr,
               "iop: journal %s disabled after write failure: %s "
               "(disk full?); the run continues without it\n",
               path_.string().c_str(), stream_->lastError().c_str());
  stream_->close();
}

// --------------------------------------------------------- journal parser

namespace {

/// Decode a JSON string literal starting at text[i] == '"'.  Returns
/// false on malformed input; on success `i` is one past the closing
/// quote.
bool parseJsonString(const std::string& text, std::size_t& i,
                     std::string& out) {
  if (i >= text.size() || text[i] != '"') return false;
  ++i;
  out.clear();
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c != '\\') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 >= text.size()) return false;
    const char esc = text[i + 1];
    i += 2;
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 > text.size()) return false;
        unsigned cp = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = text[i + static_cast<std::size_t>(k)];
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        i += 4;
        // Encode as UTF-8; lone surrogates become U+FFFD (the journal
        // writer never emits them, but the parser must not crash).
        if (cp >= 0xd800 && cp <= 0xdfff) cp = 0xfffd;
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xc0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
          out += static_cast<char>(0xe0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
          out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

void skipSpace(const std::string& text, std::size_t& i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\r')) {
    ++i;
  }
}

/// Parse one flat JSON object line into a JournalEvent.  The journal only
/// ever writes flat objects (no nesting), so nested values are rejected.
bool parseJournalLine(const std::string& line, JournalEvent& out) {
  out = JournalEvent{};
  std::size_t i = 0;
  skipSpace(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skipSpace(line, i);
  if (i < line.size() && line[i] == '}') return false;  // an empty event
  for (;;) {
    skipSpace(line, i);
    std::string key;
    if (!parseJsonString(line, i, key)) return false;
    skipSpace(line, i);
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skipSpace(line, i);
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parseJsonString(line, i, value)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        if (line[i] == '{' || line[i] == '[') return false;
        ++i;
      }
      value = line.substr(start, i - start);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) return false;
    }
    out.fields[key] = value;
    skipSpace(line, i);
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      break;
    }
    return false;
  }
  skipSpace(line, i);
  if (i != line.size()) return false;
  const std::string* name = out.field("event");
  const std::string* t = out.field("t");
  if (name == nullptr || t == nullptr) return false;
  out.name = *name;
  char* end = nullptr;
  out.t = std::strtod(t->c_str(), &end);
  return end == t->c_str() + t->size();
}

}  // namespace

JournalParse parseJournal(const std::string& text) {
  JournalParse out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    const bool torn = end == std::string::npos;
    if (torn) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    JournalEvent ev;
    // A file that doesn't end in '\n' was cut mid-write: its final line
    // is torn by definition, whether or not it happens to parse.
    if (!torn && parseJournalLine(line, ev)) {
      out.events.push_back(std::move(ev));
    } else {
      ++out.badLines;
    }
  }
  return out;
}

JournalParse loadJournal(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("obs: cannot open journal " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseJournal(buffer.str());
}

// -------------------------------------------------------------- exec trace

ExecTrace::ExecTrace() : epoch_(std::chrono::steady_clock::now()) {}

double ExecTrace::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

int ExecTrace::workerTrack(std::size_t worker) {
  std::lock_guard<std::mutex> guard(mutex_);
  return recorder_.track(TrackKind::Worker,
                         "worker " + std::to_string(worker));
}

int ExecTrace::controlTrack() {
  std::lock_guard<std::mutex> guard(mutex_);
  return recorder_.track(TrackKind::Worker, "executor");
}

void ExecTrace::span(int tid, const std::string& name,
                     const std::string& cat, double beginSec, double endSec,
                     std::string argsJson) {
  std::lock_guard<std::mutex> guard(mutex_);
  recorder_.span(TrackKind::Worker, tid, name, cat, beginSec, endSec,
                 std::move(argsJson));
}

void ExecTrace::instant(int tid, const std::string& name,
                        const std::string& cat, double atSec,
                        std::string argsJson) {
  std::lock_guard<std::mutex> guard(mutex_);
  recorder_.instant(TrackKind::Worker, tid, name, cat, atSec,
                    std::move(argsJson));
}

void ExecTrace::counterSample(int tid, const std::string& name, double atSec,
                              double value) {
  std::lock_guard<std::mutex> guard(mutex_);
  recorder_.counterSample(TrackKind::Worker, tid, name, atSec, value);
}

std::size_t ExecTrace::eventCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return recorder_.eventCount();
}

void ExecTrace::saveJson(const std::string& path) const {
  std::lock_guard<std::mutex> guard(mutex_);
  recorder_.saveJson(path);
}

}  // namespace iop::obs
