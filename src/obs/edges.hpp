// Dependency-edge recording between simulated events.
//
// The trace layer (recorder.hpp) answers "what happened when"; this layer
// answers "what waited on what".  Instrumented seams record *activities*
// — an MPI-IO operation, a collective, a network transfer, a page-cache
// service, a disk request — each carrying the id of the activity that
// caused it (the storage and MPI layers thread an explicit `cause`
// parameter down the call chain, because ambient context does not survive
// coroutine suspension).  Cross-rank dependencies that the cause chain
// cannot express — a rendezvous releasing all members once the last one
// arrived — are recorded as explicit links.
//
// Activity ids are assigned in recording order, so for a deterministic
// simulation the recorded graph is itself deterministic.  Like the other
// obs sinks, the recorder is passive: it never touches the engine RNG and
// never schedules anything, so attaching it cannot perturb a run (the A/B
// test in tests/obs_test.cpp pins this).
//
// The graph is consumed post-run by the critical-path engine
// (critpath.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iop::obs {

/// No causal parent: a root activity (rank program order applies) or a
/// background process (page-cache flusher writes).
inline constexpr std::int64_t kNoCause = -1;

enum class ActKind : int {
  MpiIo = 0,   ///< one MPI-IO call on one rank
  Collective,  ///< barrier / bcast / allreduce / rendezvous arrival
  Network,     ///< one NIC-to-NIC transfer
  Cache,       ///< one page-cache service (server side)
  Disk,        ///< one disk request, queueing included
  Other,
};

const char* actKindName(ActKind kind);

struct Activity {
  std::int64_t id = -1;
  ActKind kind = ActKind::Other;
  int rank = -1;  ///< owning MPI rank; -1 for device/server-side work
  double begin = 0;
  double end = -1;  ///< < begin while still open
  std::uint64_t bytes = 0;
  std::int64_t cause = kNoCause;  ///< parent activity id
  std::string label;              ///< op name or device description

  bool closed() const noexcept { return end >= begin; }
};

/// Explicit cross-chain dependency: `succ` could not proceed before `pred`
/// reached the linked point (rendezvous member arrival -> releasing op).
struct CausalLink {
  std::int64_t pred = -1;
  std::int64_t succ = -1;
};

class EdgeRecorder {
 public:
  /// Open an activity; returns its id (pass as `cause` to downstream work).
  std::int64_t begin(ActKind kind, int rank, std::string label, double at,
                     std::uint64_t bytes = 0, std::int64_t cause = kNoCause);

  /// Close an activity.  Ignores invalid ids (callers may hold kNoCause).
  void end(std::int64_t id, double at);

  /// Zero-duration activity (e.g. a rendezvous arrival marker).
  std::int64_t instant(ActKind kind, int rank, std::string label, double at,
                       std::int64_t cause = kNoCause);

  /// Record an explicit dependency between two recorded activities.
  void link(std::int64_t pred, std::int64_t succ);

  /// Engine dispatch hook: advances the recorder's time horizon so
  /// still-open activities can be clamped post-run.
  void noteDispatch(double at) noexcept {
    if (at > horizon_) horizon_ = at;
    ++dispatches_;
  }

  const std::vector<Activity>& activities() const noexcept {
    return activities_;
  }
  const std::vector<CausalLink>& links() const noexcept { return links_; }
  double horizon() const noexcept { return horizon_; }
  std::uint64_t dispatches() const noexcept { return dispatches_; }
  std::size_t size() const noexcept { return activities_.size(); }

 private:
  std::vector<Activity> activities_;
  std::vector<CausalLink> links_;
  double horizon_ = 0;
  std::uint64_t dispatches_ = 0;
};

}  // namespace iop::obs
