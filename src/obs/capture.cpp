#include "obs/capture.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iop::obs {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("capture: " + what);
}

std::string expectLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) bad(std::string("truncated before ") + what);
  return line;
}

/// "key rest" -> rest, checking the key.
std::string keyed(const std::string& line, const std::string& key) {
  if (line.size() < key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    bad("expected '" + key + " ...', got '" + line + "'");
  }
  return line.substr(key.size() + 1);
}

}  // namespace

void RunCapture::write(std::ostream& out) const {
  out << "iop-capture v1\n";
  out << "app " << app << "\n";
  out << "np " << np << "\n";
  out << "config " << config << "\n";
  out << "makespan " << num(makespan) << "\n";
  out << "phases " << phases.size() << "\n";
  for (const auto& p : phases) {
    out << "phase " << p.id << " " << p.familyId << " " << p.weightBytes
        << " " << num(p.ioSeconds) << " " << num(p.bandwidth) << " "
        << p.label << "\n";
  }
  std::size_t lines = 0;
  for (char c : metricsCsv) {
    if (c == '\n') ++lines;
  }
  if (!metricsCsv.empty() && metricsCsv.back() != '\n') ++lines;
  out << "metrics " << lines << "\n";
  out << metricsCsv;
  if (!metricsCsv.empty() && metricsCsv.back() != '\n') out << "\n";
  out << "end\n";
}

CaptureFormat parseCaptureFormat(const std::string& name) {
  if (name == "v1") return CaptureFormat::V1;
  if (name == "v2") return CaptureFormat::V2;
  throw std::invalid_argument("unknown capture format '" + name +
                              "' (expected v1 or v2)");
}

std::string RunCapture::serialize(CaptureFormat format) const {
  if (format == CaptureFormat::V2) return detail::encodeCaptureV2(*this);
  std::ostringstream out;
  write(out);
  return out.str();
}

void RunCapture::save(const std::string& path, CaptureFormat format) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) bad("cannot open output " + path);
  file << serialize(format);
  if (!file) bad("failed writing " + path);
}

RunCapture RunCapture::parse(const std::string& bytes) {
  // Both formats begin with a sniffable "iop-capture vN\n" line.
  if (bytes.rfind("iop-capture v2\n", 0) == 0) {
    return detail::decodeCaptureV2(bytes);
  }
  std::istringstream in(bytes);
  return read(in);
}

RunCapture RunCapture::read(std::istream& in) {
  RunCapture cap;
  if (expectLine(in, "header") != "iop-capture v1") {
    bad("not an iop-capture v1 file");
  }
  cap.app = keyed(expectLine(in, "app"), "app");
  cap.np = std::stoi(keyed(expectLine(in, "np"), "np"));
  cap.config = keyed(expectLine(in, "config"), "config");
  cap.makespan = std::stod(keyed(expectLine(in, "makespan"), "makespan"));
  const int nPhases =
      std::stoi(keyed(expectLine(in, "phases"), "phases"));
  for (int i = 0; i < nPhases; ++i) {
    std::istringstream row(keyed(expectLine(in, "phase"), "phase"));
    CapturePhase p;
    if (!(row >> p.id >> p.familyId >> p.weightBytes >> p.ioSeconds >>
          p.bandwidth)) {
      bad("malformed phase row");
    }
    std::getline(row, p.label);
    if (!p.label.empty() && p.label.front() == ' ') p.label.erase(0, 1);
    cap.phases.push_back(std::move(p));
  }
  const int nMetrics =
      std::stoi(keyed(expectLine(in, "metrics"), "metrics"));
  std::string csv;
  for (int i = 0; i < nMetrics; ++i) {
    csv += expectLine(in, "metrics line");
    csv += "\n";
  }
  cap.metricsCsv = std::move(csv);
  if (expectLine(in, "end") != "end") bad("missing end marker");
  return cap;
}

RunCapture RunCapture::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) bad("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

}  // namespace iop::obs
