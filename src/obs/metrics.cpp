#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iop::obs {

namespace {

/// %g gives compact, locale-independent, round-trippable-enough values for
/// CSV; 12 significant digits keep byte counts exact into the terabytes.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::size_t Histogram::bucketIndex(double value) const noexcept {
  // First bound >= value: v == bound lands *in* that bucket ("le" bound).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double value) noexcept {
  ++counts_[bucketIndex(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "cannot merge histograms with different bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void MetricsRegistry::checkFree(const std::string& name,
                                const char* wanted) const {
  const bool taken = (counters_.count(name) && wanted != std::string("c")) ||
                     (gauges_.count(name) && wanted != std::string("g")) ||
                     (histograms_.count(name) && wanted != std::string("h"));
  if (taken) {
    throw std::logic_error("metric '" + name +
                           "' already registered with another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  checkFree(name, "c");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  checkFree(name, "g");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  checkFree(name, "h");
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::findGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).merge(c);
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).merge(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bounds()).merge(h);
  }
}

std::string MetricsRegistry::renderCsv() const {
  std::ostringstream out;
  out << "metric,kind,field,value\n";
  for (const auto& [name, c] : counters_) {
    out << name << ",counter,value," << num(c.value()) << "\n";
    out << name << ",counter,events," << c.events() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ",gauge,value," << num(g.value()) << "\n";
    if (g.max() >= g.min()) {  // touched at least once
      out << name << ",gauge,min," << num(g.min()) << "\n";
      out << name << ",gauge,max," << num(g.max()) << "\n";
    }
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ",histogram,count," << h.count() << "\n";
    out << name << ",histogram,sum," << num(h.sum()) << "\n";
    if (h.count() > 0) {
      out << name << ",histogram,min," << num(h.min()) << "\n";
      out << name << ",histogram,max," << num(h.max()) << "\n";
    }
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      out << name << ",histogram,le_" << num(h.bounds()[i]) << ","
          << h.bucketCounts()[i] << "\n";
    }
    out << name << ",histogram,le_inf,"
        << h.bucketCounts().back() << "\n";
  }
  return out.str();
}

void MetricsRegistry::saveCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("obs: cannot open metrics output " + path);
  }
  file << renderCsv();
}

std::string MetricsRegistry::renderSummary() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "  " << name << " = " << num(c.value()) << " (" << c.events()
        << " events)\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "  " << name << " = " << num(g.value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "  " << name << ": n=" << h.count();
    if (h.count() > 0) {
      out << " mean=" << num(h.mean()) << " min=" << num(h.min())
          << " max=" << num(h.max());
    }
    out << "\n";
  }
  return out.str();
}

std::vector<double> latencyBucketsSeconds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

std::vector<double> depthBuckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
}

}  // namespace iop::obs
