#include "obs/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/archive.hpp"
#include "obs/recorder.hpp"

namespace iop::obs {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Scale used to turn a raw delta into robust sigma units: consistent
/// MAD estimator with a relative floor so deterministic histories
/// (MAD = 0) still measure change sensibly.
double robustScale(double mad, double median, const TrendOptions& options) {
  const double consistent = 1.4826 * mad;
  const double floor = options.relFloorPct / 100.0 * std::fabs(median);
  return std::max({consistent, floor, 1e-12});
}

void judgeSeries(TrendSeries& s, const TrendOptions& options) {
  if (s.points.size() < 2) return;
  std::vector<double> history;
  history.reserve(s.points.size() - 1);
  for (std::size_t i = 0; i + 1 < s.points.size(); ++i) {
    history.push_back(s.points[i].value);
  }
  s.baselineMedian = medianOf(history);
  s.baselineMad = madOf(history, s.baselineMedian);
  const double scale = robustScale(s.baselineMad, s.baselineMedian, options);
  s.deviation = (s.points.back().value - s.baselineMedian) / scale;
  if (history.size() < options.minHistory) return;
  s.flagged = std::fabs(s.deviation) > options.madThreshold;
  const bool worse = s.lowerIsBetter ? s.deviation > 0 : s.deviation < 0;
  s.regression = s.flagged && worse;
}

struct SeriesBuilder {
  // Keyed so iteration yields the canonical report order: captures
  // grouped by (app, config, np) with makespan first, then the residual,
  // then phases by id; bench snapshots after, by (name, result, field).
  std::map<std::tuple<std::string, std::string, int, int, int, std::string>,
           TrendSeries>
      series;

  TrendSeries& at(const std::string& kind, const std::string& app,
                  const std::string& config, int np, int rank, int phaseId,
                  const std::string& metric, bool lowerIsBetter) {
    auto& s = series[{app, config, np, rank, phaseId, metric}];
    if (s.metric.empty()) {
      s.kind = kind;
      s.app = app;
      s.config = config;
      s.np = np;
      s.metric = metric;
      s.lowerIsBetter = lowerIsBetter;
    }
    return s;
  }

  void addPoint(TrendSeries& s, const ArchiveEntry& entry, double value) {
    s.points.push_back(TrendPoint{entry.seq, entry.label, value});
  }
};

std::string pct(double deltaPct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", deltaPct);
  return buf;
}

double relDeltaPct(double baseline, double latest) {
  if (baseline == 0) return latest == 0 ? 0 : 100.0;
  return 100.0 * (latest - baseline) / baseline;
}

std::string htmlEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

double medianOf(std::vector<double> values) {
  if (values.empty()) return 0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double madOf(const std::vector<double>& values, double median) {
  if (values.empty()) return 0;
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - median));
  return medianOf(std::move(deviations));
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const auto [minIt, maxIt] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *minIt, hi = *maxIt;
  std::string out;
  for (const double v : values) {
    int level = 3;  // flat series render mid-height
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

std::string TrendSeries::title() const {
  if (kind == "bench") return app + " " + metric;
  return app + "/" + config + "/np" + std::to_string(np) + " " + metric;
}

std::size_t TrendReport::regressions() const noexcept {
  std::size_t n = 0;
  for (const auto& s : series) {
    if (s.regression) ++n;
  }
  return n;
}

std::size_t TrendReport::flaggedSeries() const noexcept {
  std::size_t n = 0;
  for (const auto& s : series) {
    if (s.flagged) ++n;
  }
  return n;
}

TrendReport analyzeTrends(const Archive& archive,
                          const TrendOptions& options) {
  TrendReport report;
  report.options = options;
  SeriesBuilder builder;

  for (const auto& entry : archive.list()) {
    if (entry.kind == "capture") {
      const RunCapture cap = archive.loadCapture(entry);
      auto& makespan = builder.at("capture", entry.app, entry.config,
                                  entry.np, 0, 0, "makespan", true);
      builder.addPoint(makespan, entry, cap.makespan);
      double ioSum = 0;
      for (const auto& p : cap.phases) ioSum += p.ioSeconds;
      auto& residual = builder.at("capture", entry.app, entry.config,
                                  entry.np, 1, 0, "eq12 residual", true);
      builder.addPoint(residual, entry, cap.makespan - ioSum);
      for (const auto& p : cap.phases) {
        const std::string suffix =
            std::to_string(p.id) + " [" + p.label + "]";
        auto& time = builder.at("capture", entry.app, entry.config,
                                entry.np, 2, p.id, "phase " + suffix +
                                " time", true);
        builder.addPoint(time, entry, p.ioSeconds);
        auto& bw = builder.at("capture", entry.app, entry.config, entry.np,
                              3, p.id, "phase " + suffix + " bandwidth",
                              false);
        builder.addPoint(bw, entry, p.bandwidth);
      }
    } else {
      for (const auto& result : archive.loadBench(entry)) {
        if (result.nsPerOp > 0) {
          auto& ns = builder.at("bench", entry.app, entry.config, entry.np,
                                4, 0, result.name + " ns/op", true);
          builder.addPoint(ns, entry, result.nsPerOp);
        }
        if (result.bytesPerSecond > 0) {
          auto& bps = builder.at("bench", entry.app, entry.config,
                                 entry.np, 5, 0, result.name + " bytes/s",
                                 false);
          builder.addPoint(bps, entry, result.bytesPerSecond);
        }
      }
    }
  }

  for (auto& [key, s] : builder.series) {
    if (!options.metricFilter.empty() &&
        s.title().find(options.metricFilter) == std::string::npos) {
      continue;
    }
    judgeSeries(s, options);
    report.series.push_back(std::move(s));
  }
  return report;
}

std::string TrendReport::renderText() const {
  std::ostringstream out;
  out << "trend report: " << series.size() << " series, threshold "
      << num(options.madThreshold) << " sigma (rel floor "
      << num(options.relFloorPct) << "%, min history "
      << options.minHistory << ")\n";
  for (const auto& s : series) {
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const auto& p : s.points) values.push_back(p.value);
    out << "  " << s.title() << ": " << sparkline(values) << " n="
        << s.points.size() << " last=" << num(s.latest());
    if (s.points.size() >= 2) {
      out << " median=" << num(s.baselineMedian) << " ("
          << pct(relDeltaPct(s.baselineMedian, s.latest())) << ", "
          << num(s.deviation) << " sigma)";
    }
    if (s.regression) {
      out << " REGRESSION";
    } else if (s.flagged) {
      out << " improved";
    }
    out << "\n";
  }
  out << "  " << regressions() << " regression(s), " << flaggedSeries()
      << " flagged of " << series.size() << " series\n";
  return out.str();
}

std::string TrendReport::renderCheck() const {
  std::ostringstream out;
  for (const auto& s : series) {
    if (!s.regression) continue;
    out << "REGRESSION " << s.title() << ": " << num(s.latest()) << " vs "
        << "median " << num(s.baselineMedian) << " ("
        << pct(relDeltaPct(s.baselineMedian, s.latest())) << ", "
        << num(s.deviation) << " sigma over " << (s.points.size() - 1)
        << " prior runs, label " << s.points.back().label << ")\n";
  }
  return out.str();
}

std::string TrendReport::renderHtml() const {
  std::ostringstream out;
  out << "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      << "<title>iop-trend report</title>\n<style>\n"
      << "body{font:14px/1.4 system-ui,sans-serif;margin:2em;"
      << "color:#1a1a1a}\n"
      << "table{border-collapse:collapse;width:100%}\n"
      << "th,td{text-align:left;padding:4px 10px;"
      << "border-bottom:1px solid #ddd;white-space:nowrap}\n"
      << "td.num{text-align:right;font-variant-numeric:tabular-nums}\n"
      << ".bad{color:#b00020;font-weight:600}\n"
      << ".good{color:#1e7d32}\n"
      << "svg{vertical-align:middle}\n"
      << "</style></head><body>\n"
      << "<h1>iop-trend report</h1>\n"
      << "<p>" << series.size() << " series &middot; threshold "
      << num(options.madThreshold) << " sigma &middot; rel floor "
      << num(options.relFloorPct) << "% &middot; min history "
      << options.minHistory << " &middot; " << regressions()
      << " regression(s)</p>\n"
      << "<table>\n<tr><th>series</th><th>trend</th><th>n</th>"
      << "<th>last</th><th>median</th><th>&Delta;</th><th>sigma</th>"
      << "<th>verdict</th></tr>\n";
  for (const auto& s : series) {
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const auto& p : s.points) values.push_back(p.value);
    // Inline SVG polyline, min-max normalized; the last point gets a dot.
    const int w = 120, h = 24, pad = 2;
    const auto [minIt, maxIt] =
        std::minmax_element(values.begin(), values.end());
    const double lo = *minIt, hi = *maxIt;
    std::ostringstream pts;
    double lastX = pad, lastY = h / 2.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double x =
          values.size() == 1
              ? pad
              : pad + static_cast<double>(i) * (w - 2 * pad) /
                          static_cast<double>(values.size() - 1);
      const double y =
          hi > lo ? h - pad - (values[i] - lo) / (hi - lo) * (h - 2 * pad)
                  : h / 2.0;
      if (i > 0) pts << " ";
      pts << num(x) << "," << num(y);
      lastX = x;
      lastY = y;
    }
    const char* stroke = s.regression ? "#b00020"
                         : s.flagged  ? "#1e7d32"
                                      : "#4a6fa5";
    out << "<tr><td>" << htmlEscape(s.title()) << "</td><td>"
        << "<svg width=\"" << w << "\" height=\"" << h << "\">"
        << "<polyline fill=\"none\" stroke=\"" << stroke
        << "\" stroke-width=\"1.5\" points=\"" << pts.str() << "\"/>"
        << "<circle cx=\"" << num(lastX) << "\" cy=\"" << num(lastY)
        << "\" r=\"2.5\" fill=\"" << stroke << "\"/></svg></td>"
        << "<td class=\"num\">" << s.points.size() << "</td>"
        << "<td class=\"num\">" << num(s.latest()) << "</td>";
    if (s.points.size() >= 2) {
      out << "<td class=\"num\">" << num(s.baselineMedian) << "</td>"
          << "<td class=\"num\">"
          << pct(relDeltaPct(s.baselineMedian, s.latest())) << "</td>"
          << "<td class=\"num\">" << num(s.deviation) << "</td>";
    } else {
      out << "<td class=\"num\"></td><td class=\"num\"></td>"
          << "<td class=\"num\"></td>";
    }
    out << "<td>"
        << (s.regression ? "<span class=\"bad\">REGRESSION</span>"
            : s.flagged  ? "<span class=\"good\">improved</span>"
                         : "ok")
        << "</td></tr>\n";
  }
  out << "</table>\n</body></html>\n";
  return out.str();
}

}  // namespace iop::obs
