#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace iop::obs {

namespace {

constexpr double kUsPerSec = 1e6;

const char* processName(TrackKind kind) {
  switch (kind) {
    case TrackKind::Rank: return "mpi ranks";
    case TrackKind::Device: return "storage devices";
    case TrackKind::Profiler: return "analysis profiler (wall clock)";
    case TrackKind::Sim: return "simulation engine";
    case TrackKind::Worker: return "sweep workers (wall clock)";
  }
  return "?";
}

/// Render a double the way the rest of the repo renders times: enough
/// precision to round-trip microsecond timestamps, no locale surprises.
std::string renderNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string TraceRecorder::jsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  const auto* s = reinterpret_cast<const unsigned char*>(raw.data());
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n;) {
    const unsigned char c = s[i];
    if (c < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
      ++i;
      continue;
    }
    // Non-ASCII: pass through only well-formed UTF-8 (the output must be a
    // valid JSON document even for hostile track/span names); anything
    // else — stray continuation bytes, overlong encodings, surrogates,
    // truncated sequences, Latin-1 bytes — becomes U+FFFD.
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if ((c & 0xe0) == 0xc0) {
      len = 2;
      cp = c & 0x1fu;
    } else if ((c & 0xf0) == 0xe0) {
      len = 3;
      cp = c & 0x0fu;
    } else if ((c & 0xf8) == 0xf0) {
      len = 4;
      cp = c & 0x07u;
    }
    bool ok = len > 0 && i + len <= n;
    for (std::size_t k = 1; ok && k < len; ++k) {
      if ((s[i + k] & 0xc0) != 0x80) {
        ok = false;
      } else {
        cp = (cp << 6) | (s[i + k] & 0x3fu);
      }
    }
    if (ok) {
      ok = (len == 2 && cp >= 0x80) || (len == 3 && cp >= 0x800) ||
           (len == 4 && cp >= 0x10000);
      if (cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff)) ok = false;
    }
    if (ok) {
      out.append(raw, i, len);
      i += len;
    } else {
      out += "\xef\xbf\xbd";  // U+FFFD replacement character
      ++i;
    }
  }
  return out;
}

int TraceRecorder::track(TrackKind kind, const std::string& name) {
  const int pid = static_cast<int>(kind);
  auto key = std::make_pair(pid, name);
  auto it = trackIds_.find(key);
  if (it != trackIds_.end()) return it->second;
  const int tid = nextTid_[pid]++;
  trackIds_.emplace(std::move(key), tid);
  tracks_.push_back(Track{kind, tid, name});
  return tid;
}

int TraceRecorder::rankTrack(int rank) {
  return track(TrackKind::Rank, "rank " + std::to_string(rank));
}

void TraceRecorder::span(TrackKind kind, int tid, const std::string& name,
                         const std::string& cat, double beginSec,
                         double endSec, std::string argsJson) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = EventPhase::Complete;
  ev.pid = static_cast<int>(kind);
  ev.tid = tid;
  ev.tsUs = beginSec * kUsPerSec;
  ev.durUs = (endSec - beginSec) * kUsPerSec;
  if (ev.durUs < 0) ev.durUs = 0;
  ev.argsJson = std::move(argsJson);
  events_.push_back(std::move(ev));
}

void TraceRecorder::instant(TrackKind kind, int tid, const std::string& name,
                            const std::string& cat, double atSec,
                            std::string argsJson) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = EventPhase::Instant;
  ev.pid = static_cast<int>(kind);
  ev.tid = tid;
  ev.tsUs = atSec * kUsPerSec;
  ev.argsJson = std::move(argsJson);
  events_.push_back(std::move(ev));
}

void TraceRecorder::counterSample(TrackKind kind, int tid,
                                  const std::string& name, double atSec,
                                  double value) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "counter";
  ev.phase = EventPhase::Counter;
  ev.pid = static_cast<int>(kind);
  ev.tid = tid;
  ev.tsUs = atSec * kUsPerSec;
  ev.argsJson = "\"value\":" + renderNumber(value);
  events_.push_back(std::move(ev));
}

void TraceRecorder::writeJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata first: name the process groups and the tracks inside them.
  std::vector<int> namedPids;
  for (const auto& t : tracks_) {
    const int pid = static_cast<int>(t.kind);
    if (std::find(namedPids.begin(), namedPids.end(), pid) ==
        namedPids.end()) {
      namedPids.push_back(pid);
      comma();
      out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":0,\"args\":{\"name\":\""
          << jsonEscape(processName(t.kind)) << "\"}}";
    }
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\""
        << jsonEscape(t.name) << "\"}}";
  }

  // Data events in timestamp order (stable sort keeps same-ts events in
  // recording order, which for a deterministic sim is itself
  // deterministic).
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const auto& ev : events_) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->tsUs < b->tsUs;
                   });
  for (const TraceEvent* ev : ordered) {
    comma();
    out << "{\"name\":\"" << jsonEscape(ev->name) << "\",\"cat\":\""
        << jsonEscape(ev->cat) << "\",\"ph\":\""
        << static_cast<char>(ev->phase) << "\",\"pid\":" << ev->pid
        << ",\"tid\":" << ev->tid << ",\"ts\":" << renderNumber(ev->tsUs);
    if (ev->phase == EventPhase::Complete) {
      out << ",\"dur\":" << renderNumber(ev->durUs);
    }
    if (ev->phase == EventPhase::Instant) {
      out << ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!ev->argsJson.empty()) {
      out << ",\"args\":{" << ev->argsJson << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

void TraceRecorder::saveJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("obs: cannot open trace output " + path);
  }
  writeJson(file);
}

}  // namespace iop::obs
