#include "obs/log.hpp"

#include <stdexcept>

#include "obs/recorder.hpp"

namespace iop::obs {

LogLevel parseLogLevel(const std::string& name) {
  if (name == "off") return LogLevel::Off;
  if (name == "warn") return LogLevel::Warn;
  if (name == "info") return LogLevel::Info;
  if (name == "debug") return LogLevel::Debug;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (use off, warn, info or debug)");
}

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Off: return "off";
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
  }
  return "?";
}

void Logger::log(LogLevel lvl, const std::string& component,
                 const std::string& event, const std::string& fieldsJson) {
  if (!enabled(lvl)) return;
  std::string line = "{\"level\":\"";
  line += logLevelName(lvl);
  line += "\",\"component\":\"";
  line += TraceRecorder::jsonEscape(component);
  line += "\",\"event\":\"";
  line += TraceRecorder::jsonEscape(event);
  line += "\"";
  if (!fieldsJson.empty()) {
    line += ",";
    line += fieldsJson;
  }
  line += "}\n";
  ++lines_;
  if (capture_ != nullptr) {
    *capture_ += line;
    return;
  }
  std::fputs(line.c_str(), out_ != nullptr ? out_ : stderr);
}

}  // namespace iop::obs
