#include "obs/edges.hpp"

namespace iop::obs {

const char* actKindName(ActKind kind) {
  switch (kind) {
    case ActKind::MpiIo: return "mpi-io";
    case ActKind::Collective: return "collective";
    case ActKind::Network: return "network";
    case ActKind::Cache: return "cache";
    case ActKind::Disk: return "disk";
    case ActKind::Other: return "other";
  }
  return "?";
}

std::int64_t EdgeRecorder::begin(ActKind kind, int rank, std::string label,
                                 double at, std::uint64_t bytes,
                                 std::int64_t cause) {
  Activity a;
  a.id = static_cast<std::int64_t>(activities_.size());
  a.kind = kind;
  a.rank = rank;
  a.begin = at;
  a.end = at - 1;  // open
  a.bytes = bytes;
  a.cause = cause >= 0 && cause < a.id ? cause : kNoCause;
  a.label = std::move(label);
  activities_.push_back(std::move(a));
  return activities_.back().id;
}

void EdgeRecorder::end(std::int64_t id, double at) {
  if (id < 0 || id >= static_cast<std::int64_t>(activities_.size())) return;
  Activity& a = activities_[static_cast<std::size_t>(id)];
  a.end = at < a.begin ? a.begin : at;
}

std::int64_t EdgeRecorder::instant(ActKind kind, int rank, std::string label,
                                   double at, std::int64_t cause) {
  const std::int64_t id =
      begin(kind, rank, std::move(label), at, 0, cause);
  end(id, at);
  return id;
}

void EdgeRecorder::link(std::int64_t pred, std::int64_t succ) {
  const auto n = static_cast<std::int64_t>(activities_.size());
  if (pred < 0 || succ < 0 || pred >= n || succ >= n || pred == succ) return;
  links_.push_back(CausalLink{pred, succ});
}

}  // namespace iop::obs
