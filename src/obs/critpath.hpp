// Critical-path extraction and blame attribution over the edge graph.
//
// Post-run analysis: starting from the last-completing rank-owned
// activity, walk causal predecessors backwards through time and tile the
// whole interval [0, makespan] with *blame segments* — slices of the
// longest dependency chain, each attributed to one activity (a disk
// request, a network transfer, a cache service, an MPI-IO or collective
// op) or to a gap (startup, compute between ops, finalize).  The tiling
// is contiguous by construction, so the blame table sums to the makespan
// exactly — the invariant the acceptance tests pin at 1e-9.
//
// Predecessor candidates of an activity A are:
//   * its recorded children (activities with cause == A.id) — A awaited
//     them before completing;
//   * explicit links (rendezvous member arrivals -> releasing op);
//   * the previous non-overlapping activity with the same cause (a
//     sequential chunk loop inside one op);
//   * the previous non-overlapping rank-owned activity on the same rank
//     (program order).
// The chosen predecessor is the latest-ending candidate strictly earlier
// than A in (end, id) order, which guarantees the walk terminates.
//
// Phase attribution clips the activity segments against the application's
// phase windows (from the extracted model); overlapping windows — phases
// whose repetitions interleave — are resolved smallest-window-first so
// every instant is attributed exactly once.  Per phase this yields an
// attributed I/O time and bandwidth BW_attr = weight / T_attr, directly
// comparable to the paper's eq. 1-2 estimate; the residual is the
// critical time the phase model does not explain.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/edges.hpp"

namespace iop::obs {

/// One slice of the critical path's tiling of [0, makespan].
struct BlameSegment {
  double begin = 0;
  double end = 0;
  std::int64_t activity = -1;     ///< -1 for gap segments
  ActKind kind = ActKind::Other;  ///< meaningful when activity >= 0
  int rank = -1;
  std::string label;  ///< activity label, or gap category

  double seconds() const noexcept { return end - begin; }
  bool isGap() const noexcept { return activity < 0; }
};

struct CriticalPathResult {
  double makespan = 0;
  /// Ascending in time; contiguous: segments[i].end == segments[i+1].begin.
  std::vector<BlameSegment> segments;
  std::map<std::string, double> byCategory;  ///< kind / gap label -> s
  std::map<std::string, double> byLabel;     ///< device / op label -> s
  std::map<int, double> byRank;              ///< rank -> s (-1 = none)

  /// Sum of segment durations; equals makespan by construction.
  double totalSeconds() const noexcept;
  /// Critical time spent in gaps (startup / compute / finalize).
  double gapSeconds() const noexcept;
};

/// Extract the critical path.  `makespan` is the application elapsed time
/// (cache drain excluded); activities ending after it (background
/// write-back) are never chosen as the chain head.
CriticalPathResult computeCriticalPath(const EdgeRecorder& edges,
                                       double makespan);

/// One application I/O phase as a time window (from core::Phase).
struct PhaseWindow {
  int id = 0;
  std::string label;  ///< e.g. "W" / "R" / "W-R" plus file id
  double begin = 0;
  double end = 0;
  std::uint64_t weightBytes = 0;
};

struct PhaseBlame {
  PhaseWindow phase;
  double attrSeconds = 0;    ///< critical activity time inside the window
  double attrBandwidth = 0;  ///< weightBytes / attrSeconds (0 if no time)
  std::map<std::string, double> byCategory;  ///< kind -> s in the window
};

struct BlameTable {
  double makespan = 0;
  std::vector<PhaseBlame> rows;
  double gapSeconds = 0;      ///< critical gap time (any window)
  double outsideSeconds = 0;  ///< critical activity time in no window

  /// Sum of per-phase attributed I/O time.
  double attributedIoSeconds() const noexcept;
  /// Eq. 1-2 style estimate built from the attributed bandwidths:
  /// sum(weight / BW_attr).  Identical to attributedIoSeconds() by
  /// construction — reported separately so the identity is checkable.
  double estimateSeconds() const noexcept;
  /// Critical time the phase attribution does not explain.
  double residualSeconds() const noexcept {
    return makespan - attributedIoSeconds();
  }
};

BlameTable attributePhases(const CriticalPathResult& path,
                           const std::vector<PhaseWindow>& phases);

/// Human-readable decomposition tables (tool output).
std::string renderCriticalPath(const CriticalPathResult& path);
std::string renderBlameTable(const BlameTable& table);

}  // namespace iop::obs
