// Structured JSONL logging for engine warnings and tool diagnostics.
//
// One line per event: {"level":"warn","component":"disk","event":...,...}.
// Components reach the logger through the obs::Hub (engine.obs()->log), so
// an unattached run pays only a pointer test — the same contract as the
// trace and metrics sinks.  The iop-* tools own one Logger each, driven by
// the shared --log-level flag; this replaces ad-hoc stderr prints.
//
// The logger writes wall-clock-free, locale-free lines so output is
// deterministic for a deterministic simulation (callers pass simulated
// time as an explicit field when it matters).
#pragma once

#include <cstdio>
#include <string>

namespace iop::obs {

enum class LogLevel : int { Off = 0, Warn = 1, Info = 2, Debug = 3 };

/// "off" | "warn" | "info" | "debug" (throws std::invalid_argument).
LogLevel parseLogLevel(const std::string& name);
const char* logLevelName(LogLevel level);

class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::Warn, std::FILE* out = nullptr)
      : level_(level), out_(out) {}

  LogLevel level() const noexcept { return level_; }
  void setLevel(LogLevel level) noexcept { level_ = level; }

  bool enabled(LogLevel lvl) const noexcept {
    return lvl != LogLevel::Off && static_cast<int>(lvl) <=
                                       static_cast<int>(level_);
  }

  /// Emit one JSONL line.  `fieldsJson` is a pre-rendered `"k":v,...` tail
  /// (same convention as TraceRecorder argsJson); may be empty.  Strings
  /// inside fieldsJson must already be JSON-escaped by the caller.
  void log(LogLevel lvl, const std::string& component,
           const std::string& event, const std::string& fieldsJson = {});

  void warn(const std::string& component, const std::string& event,
            const std::string& fieldsJson = {}) {
    log(LogLevel::Warn, component, event, fieldsJson);
  }
  void info(const std::string& component, const std::string& event,
            const std::string& fieldsJson = {}) {
    log(LogLevel::Info, component, event, fieldsJson);
  }
  void debug(const std::string& component, const std::string& event,
             const std::string& fieldsJson = {}) {
    log(LogLevel::Debug, component, event, fieldsJson);
  }

  /// Redirect output into a string (tests); nullptr restores the FILE*.
  void captureTo(std::string* sink) noexcept { capture_ = sink; }

  std::size_t lineCount() const noexcept { return lines_; }

 private:
  LogLevel level_;
  std::FILE* out_;  ///< nullptr = stderr
  std::string* capture_ = nullptr;
  std::size_t lines_ = 0;
};

}  // namespace iop::obs
