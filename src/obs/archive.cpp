#include "obs/archive.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/codec.hpp"
#include "obs/recorder.hpp"
#include "util/fsatomic.hpp"
#include "util/vfs.hpp"

namespace iop::obs {

namespace {

constexpr const char* kSchema = "iop-archive/1";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("archive: " + what);
}

std::string hashHex(const std::string& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    codec::fnv1a(bytes.data(), bytes.size())));
  return buf;
}

std::string readFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void skipSpace(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool parseJsonString(const std::string& s, std::size_t& i,
                     std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') return true;
    if (c == '\\') {
      if (i >= s.size()) return false;
      const char esc = s[i++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: return false;
      }
    } else {
      out += c;
    }
  }
  return false;
}

/// One flat manifest line `{"k":"v"|number,...}` -> field map.  Returns
/// false on anything torn or nested; list() skips such lines the way the
/// run journal does.
bool parseManifestLine(const std::string& line,
                       std::map<std::string, std::string>& fields) {
  fields.clear();
  std::size_t i = 0;
  skipSpace(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  for (;;) {
    skipSpace(line, i);
    std::string key;
    if (!parseJsonString(line, i, key)) return false;
    skipSpace(line, i);
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skipSpace(line, i);
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parseJsonString(line, i, value)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        if (line[i] == '{' || line[i] == '[') return false;
        ++i;
      }
      value = line.substr(start, i - start);
      while (!value.empty() && value.back() == ' ') value.pop_back();
      if (value.empty()) return false;
    }
    fields[key] = value;
    skipSpace(line, i);
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      break;
    }
    return false;
  }
  skipSpace(line, i);
  return i == line.size();
}

bool toU64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

bool entryFromFields(const std::map<std::string, std::string>& fields,
                     ArchiveEntry& out) {
  const auto get = [&fields](const char* key) -> const std::string* {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  };
  const std::string* schema = get("schema");
  const std::string* seq = get("seq");
  const std::string* kind = get("kind");
  const std::string* app = get("app");
  const std::string* config = get("config");
  const std::string* np = get("np");
  const std::string* label = get("label");
  const std::string* hash = get("hash");
  const std::string* bytes = get("bytes");
  if (schema == nullptr || *schema != kSchema || seq == nullptr ||
      kind == nullptr || app == nullptr || config == nullptr ||
      np == nullptr || label == nullptr || hash == nullptr ||
      bytes == nullptr) {
    return false;
  }
  if (*kind != "capture" && *kind != "bench") return false;
  std::uint64_t seqV = 0, npV = 0, bytesV = 0;
  if (!toU64(*seq, seqV) || !toU64(*np, npV) || !toU64(*bytes, bytesV)) {
    return false;
  }
  if (hash->size() != 16 ||
      hash->find_first_not_of("0123456789abcdef") != std::string::npos) {
    return false;
  }
  out.seq = seqV;
  out.kind = *kind;
  out.app = *app;
  out.config = *config;
  out.np = static_cast<int>(npV);
  out.label = *label;
  out.hash = *hash;
  out.bytes = bytesV;
  return true;
}

}  // namespace

std::string archivePayloadHash(const std::string& bytes) {
  return hashHex(bytes);
}

std::string renderArchiveManifestLine(const ArchiveEntry& e) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kSchema << "\",\"seq\":" << e.seq
      << ",\"kind\":\"" << e.kind << "\",\"app\":\""
      << TraceRecorder::jsonEscape(e.app) << "\",\"config\":\""
      << TraceRecorder::jsonEscape(e.config) << "\",\"np\":" << e.np
      << ",\"label\":\"" << TraceRecorder::jsonEscape(e.label)
      << "\",\"hash\":\"" << e.hash << "\",\"bytes\":" << e.bytes << "}\n";
  return out.str();
}

bool parseArchiveManifestLine(const std::string& line, ArchiveEntry& out) {
  // Tolerate the trailing newline render emits, so render/parse round-
  // trip without the caller having to strip it.
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r')) {
    trimmed.pop_back();
  }
  std::map<std::string, std::string> fields;
  return parseManifestLine(trimmed, fields) && entryFromFields(fields, out);
}

std::string ArchiveEntry::seriesKey() const {
  return app + "/" + config + "/" + std::to_string(np);
}

std::string ArchiveEntry::objectName() const {
  return hash + (kind == "capture" ? ".capv2" : ".bench.json");
}

Archive::Archive(std::filesystem::path root) : root_(std::move(root)) {}

std::filesystem::path Archive::manifestPath() const {
  return root_ / "MANIFEST.jsonl";
}

std::filesystem::path Archive::objectPath(const ArchiveEntry& entry) const {
  return root_ / "objects" / entry.objectName();
}

std::vector<ArchiveEntry> Archive::list(std::size_t* badLines) const {
  std::vector<ArchiveEntry> entries;
  std::size_t bad = 0;
  std::ifstream in(manifestPath(), std::ios::binary);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      const bool torn = end == std::string::npos;
      if (torn) end = text.size();
      const std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      std::map<std::string, std::string> fields;
      ArchiveEntry entry;
      // A line without its newline was cut mid-append: torn by
      // definition, whether or not it happens to parse.
      if (!torn && parseManifestLine(line, fields) &&
          entryFromFields(fields, entry)) {
        entries.push_back(std::move(entry));
      } else {
        ++bad;
      }
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ArchiveEntry& a, const ArchiveEntry& b) {
                     return a.seq < b.seq;
                   });
  if (badLines != nullptr) *badLines = bad;
  return entries;
}

ArchiveEntry Archive::append(std::string kind, std::string app,
                             std::string config, int np, std::string label,
                             const std::string& payload,
                             const std::string& extension) {
  std::filesystem::create_directories(root_ / "objects");
  ArchiveEntry entry;
  entry.kind = std::move(kind);
  entry.app = std::move(app);
  entry.config = std::move(config);
  entry.np = np;
  entry.label = std::move(label);
  entry.hash = hashHex(payload);
  entry.bytes = payload.size();
  std::uint64_t maxSeq = 0;
  for (const auto& existing : list()) maxSeq = existing.seq;  // seq-sorted
  entry.seq = maxSeq + 1;

  const std::filesystem::path object =
      root_ / "objects" / (entry.hash + extension);
  // Content-addressed: identical payloads dedup; racing writers of the
  // same bytes rename identical files into place.
  if (!std::filesystem::exists(object)) {
    util::writeFileAtomically(object, payload);
  }

  // A writer that died mid-line left the manifest without a trailing
  // newline; terminate that torn tail first so this entry starts on a
  // fresh line instead of gluing onto the fragment (which would lose
  // both).  Live concurrent writers always emit whole lines, so a
  // missing newline can only come from a crash.
  bool tornTail = false;
  {
    std::ifstream tail(manifestPath(), std::ios::binary | std::ios::ate);
    if (tail && tail.tellg() > 0) {
      tail.seekg(-1, std::ios::end);
      char last = '\n';
      tornTail = tail.get(last) && last != '\n';
    }
  }

  // Append-only manifest: one short line per entry, appended with full
  // durability barriers (flush + fsync, parent-dir fsync on creation) so
  // a crash costs at most this line.
  std::string line = renderArchiveManifestLine(entry);
  if (tornTail) line.insert(line.begin(), '\n');
  try {
    util::vfs::appendFile(manifestPath(), line, util::vfs::Durability::Durable);
  } catch (const std::exception& e) {
    fail("failed appending to " + manifestPath().string() + ": " + e.what());
  }
  return entry;
}

ArchiveEntry Archive::addCapture(const RunCapture& capture,
                                 const std::string& label) {
  return append("capture", capture.app, capture.config, capture.np, label,
                capture.serialize(CaptureFormat::V2), ".capv2");
}

ArchiveEntry Archive::addBench(const std::string& benchJson,
                               const std::string& name,
                               const std::string& label) {
  parseBenchJson(benchJson);  // reject malformed snapshots up front
  return append("bench", name, "bench", 0, label, benchJson, ".bench.json");
}

std::string Archive::loadObject(const ArchiveEntry& entry) const {
  const std::string bytes = readFileText(objectPath(entry));
  if (hashHex(bytes) != entry.hash) {
    fail("object " + entry.objectName() +
         " does not match its manifest hash (corrupt or clobbered)");
  }
  return bytes;
}

RunCapture Archive::loadCapture(const ArchiveEntry& entry) const {
  if (entry.kind != "capture") {
    fail("entry seq " + std::to_string(entry.seq) + " is a " + entry.kind +
         ", not a capture");
  }
  return RunCapture::parse(loadObject(entry));
}

std::vector<BenchEntry> Archive::loadBench(const ArchiveEntry& entry) const {
  if (entry.kind != "bench") {
    fail("entry seq " + std::to_string(entry.seq) + " is a " + entry.kind +
         ", not a bench snapshot");
  }
  return parseBenchJson(loadObject(entry));
}

Archive::GcResult Archive::gc(std::size_t keepLastPerSeries) {
  GcResult result;
  const auto entries = list();
  std::vector<ArchiveEntry> kept;
  if (keepLastPerSeries == 0) {
    kept = entries;
  } else {
    // Newest-first within each series, keep the first K, restore order.
    std::map<std::string, std::size_t> seen;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (seen[it->kind + ":" + it->seriesKey()]++ < keepLastPerSeries) {
        kept.push_back(*it);
      }
    }
    std::reverse(kept.begin(), kept.end());
    result.prunedEntries = entries.size() - kept.size();
    std::string manifest;
    for (const auto& e : kept) manifest += renderArchiveManifestLine(e);
    util::writeFileAtomically(manifestPath(), manifest);
  }
  std::set<std::string> live;
  for (const auto& e : kept) live.insert(e.objectName());
  const auto objectsDir = root_ / "objects";
  std::error_code ec;
  for (const auto& file :
       std::filesystem::directory_iterator(objectsDir, ec)) {
    if (!file.is_regular_file()) continue;
    if (live.count(file.path().filename().string()) == 0) {
      std::filesystem::remove(file.path(), ec);
      if (!ec) ++result.removedFiles;
    }
  }
  return result;
}

}  // namespace iop::obs
