// Attachment point for simulation-wide observability.
//
// A Hub bundles the two optional sinks — a TraceRecorder (timeline spans,
// instants, counter tracks) and a MetricsRegistry (named counters, gauges,
// histograms).  Instrumented components reach the hub through their
// sim::Engine (`engine.obs()`), which is null unless a caller attached one,
// so the only cost of instrumentation in an unobserved run is a pointer
// test.  Recording must never perturb the simulation: hub users may not
// touch Engine::rng() or schedule/reorder events.
//
// Session is the convenience owner used by tools and tests: it owns one
// recorder + one registry and exposes the Hub view to attach to engines.
#pragma once

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace iop::obs {

struct Hub {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool wantsTrace() const noexcept { return trace != nullptr; }
  bool wantsMetrics() const noexcept { return metrics != nullptr; }
};

/// Owns one recorder and one registry; hand `hub()` to Engine::setObs.
class Session {
 public:
  Session() { hub_.trace = &recorder_; hub_.metrics = &metrics_; }

  Hub* hub() noexcept { return &hub_; }
  TraceRecorder& recorder() noexcept { return recorder_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  TraceRecorder recorder_;
  MetricsRegistry metrics_;
  Hub hub_;
};

}  // namespace iop::obs
