// Attachment point for simulation-wide observability.
//
// A Hub bundles the optional sinks — a TraceRecorder (timeline spans,
// instants, counter tracks), a MetricsRegistry (named counters, gauges,
// histograms), an EdgeRecorder (causal dependency edges for critical-path
// analysis), and a Logger (structured JSONL warnings/diagnostics).
// Instrumented components reach the hub through their sim::Engine
// (`engine.obs()`), which is null unless a caller attached one, so the
// only cost of instrumentation in an unobserved run is a pointer test.
// Recording must never perturb the simulation: hub users may not touch
// Engine::rng() or schedule/reorder events.
//
// Session is the convenience owner used by tools and tests: it owns one
// instance of each sink and exposes the Hub view to attach to engines.
// Unwanted sinks are disabled by nulling the corresponding Hub pointer.
#pragma once

#include "obs/edges.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace iop::obs {

struct Hub {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  EdgeRecorder* edges = nullptr;
  Logger* log = nullptr;

  bool wantsTrace() const noexcept { return trace != nullptr; }
  bool wantsMetrics() const noexcept { return metrics != nullptr; }
  bool wantsEdges() const noexcept { return edges != nullptr; }
  bool wantsLog(LogLevel lvl) const noexcept {
    return log != nullptr && log->enabled(lvl);
  }
};

/// Owns one sink of each kind; hand `hub()` to Engine::setObs.
class Session {
 public:
  Session() {
    hub_.trace = &recorder_;
    hub_.metrics = &metrics_;
    hub_.edges = &edges_;
    hub_.log = &log_;
  }

  Hub* hub() noexcept { return &hub_; }
  TraceRecorder& recorder() noexcept { return recorder_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  EdgeRecorder& edges() noexcept { return edges_; }
  Logger& log() noexcept { return log_; }

 private:
  TraceRecorder recorder_;
  MetricsRegistry metrics_;
  EdgeRecorder edges_;
  Logger log_;
  Hub hub_;
};

}  // namespace iop::obs
