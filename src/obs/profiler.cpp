#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/recorder.hpp"

namespace iop::obs {

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

void Profiler::attachTrace(TraceRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  recorder_ = recorder;
  epoch_ = Clock::now();
}

void Profiler::record(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& s = stats_[name];
  if (s.calls == 0) {
    s.minSec = seconds;
    s.maxSec = seconds;
  } else {
    s.minSec = std::min(s.minSec, seconds);
    s.maxSec = std::max(s.maxSec, seconds);
  }
  ++s.calls;
  s.totalSec += seconds;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
}

std::map<std::string, ProfileStats> Profiler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Profiler::emitSpan(const std::string& name, Clock::time_point begin,
                        Clock::time_point end) {
  // The recorder itself is not synchronized; spans are only mirrored when
  // one is attached, which tools do for single-threaded pipelines.
  std::lock_guard<std::mutex> lock(mutex_);
  if (recorder_ == nullptr) return;
  auto sec = [this](Clock::time_point t) {
    return std::chrono::duration<double>(t - epoch_).count();
  };
  const int tid = recorder_->track(TrackKind::Profiler, "pipeline");
  recorder_->span(TrackKind::Profiler, tid, name, "profile",
                  std::max(0.0, sec(begin)), std::max(0.0, sec(end)));
}

Profiler::Scope::~Scope() {
  const auto end = Clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  profiler_->record(name_, seconds);
  profiler_->emitSpan(name_, start_, end);
}

std::string Profiler::renderReport() const {
  const auto snapshot = stats();
  std::vector<std::pair<std::string, ProfileStats>> rows(snapshot.begin(),
                                                         snapshot.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.totalSec != b.second.totalSec) {
      return a.second.totalSec > b.second.totalSec;
    }
    return a.first < b.first;
  });
  std::ostringstream out;
  out << "section                        calls     total ms      mean ms\n";
  char buf[160];
  for (const auto& [name, s] : rows) {
    std::snprintf(buf, sizeof buf, "%-28s %7llu %12.3f %12.3f\n",
                  name.c_str(), static_cast<unsigned long long>(s.calls),
                  s.totalSec * 1e3,
                  s.calls ? s.totalSec * 1e3 / static_cast<double>(s.calls)
                          : 0.0);
    out << buf;
  }
  return out.str();
}

}  // namespace iop::obs
