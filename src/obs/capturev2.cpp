// Capture format v2: the columnar, block-compressed encoding of
// RunCapture ("iop-capture v2").  Self-contained — no external
// compression library — built from three primitives:
//
//  * varint + zigzag-delta + run-length columns for the phase table
//    (phase ids ascend by 1, family ids and weights repeat, so whole
//    columns collapse into a handful of RLE pairs),
//  * a label dictionary (phase labels draw from a tiny alphabet),
//  * front-coded metrics CSV lines (each line stores only the byte count
//    it shares with its predecessor plus the differing suffix — metric
//    names and histogram-bucket rows share long prefixes).
//
// Layout after the sniffable "iop-capture v2\n" first line is a block
// sequence; each block is
//
//   [1 byte tag][varint payloadLen][payload][8 bytes LE FNV-1a64(payload)]
//
// with tags 'H' (header: np, makespan, app, config), 'P' (phase columns),
// 'M' (front-coded metrics CSV) and 'E' (end marker, empty payload,
// nothing may follow).  Every block's checksum is verified before its
// payload is parsed, so a torn tail, a truncated download or a flipped
// bit is rejected with a byte-offset diagnostic instead of mis-parsing
// into a plausible-looking capture.  Doubles travel as raw IEEE-754 bits:
// read-back is bit-exact, which is what lets iop-diff compare a v1
// capture against its v2 re-encoding with zero findings.
#include "obs/capture.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/codec.hpp"

namespace iop::obs::detail {

namespace {

constexpr const char* kMagicV2 = "iop-capture v2\n";
constexpr char kBlockHeader = 'H';
constexpr char kBlockPhases = 'P';
constexpr char kBlockMetrics = 'M';
constexpr char kBlockEnd = 'E';

using codec::fnv1a;
using codec::getF64;
using codec::getVarint;
using codec::putF64;
using codec::putString;
using codec::putVarint;
using codec::putZigzag;
using codec::unzigzag;

[[noreturn]] void bad(const std::string& what, std::size_t offset) {
  throw std::runtime_error("capture v2: " + what + " at byte offset " +
                           std::to_string(offset));
}

/// Append one RLE pair stream encoding `values`: repeated
/// { varint runLength, zigzag varint value } until the column is covered.
void putRleColumn(std::string& out, const std::vector<std::int64_t>& values) {
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    putVarint(out, run);
    putZigzag(out, values[i]);
    i += run;
  }
}

void appendBlock(std::string& out, char tag, const std::string& payload) {
  out.push_back(tag);
  putVarint(out, payload.size());
  out.append(payload);
  const std::uint64_t sum = fnv1a(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  }
}

/// Split text into lines; a trailing fragment without '\n' counts as a
/// line (mirrors the v1 writer's line accounting).
std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::size_t commonPrefix(const std::string& a, const std::string& b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

// ---- decoding ----------------------------------------------------------

/// One verified block, pointing into the file's byte buffer.
struct Block {
  char tag = 0;
  const char* payload = nullptr;
  std::size_t size = 0;
  std::size_t offset = 0;  ///< payload start in the file (diagnostics)
};

/// Bounds- and checksum-verified block walk.
class BlockReader {
 public:
  BlockReader(const std::string& bytes, std::size_t pos)
      : data_(bytes.data()), size_(bytes.size()), pos_(pos) {}

  /// Next block, checksum-verified.  Returns false at a clean end of
  /// file; throws on truncation, a bad checksum, or trailing bytes after
  /// the end block.
  bool next(Block& out) {
    if (sawEnd_) {
      if (pos_ != size_) bad("trailing bytes after end block", pos_);
      return false;
    }
    if (pos_ >= size_) bad("truncated before end block", pos_);
    const std::size_t blockStart = pos_;
    const char tag = data_[pos_++];
    std::uint64_t len = 0;
    if (!getVarint(data_, size_, pos_, len)) {
      bad("truncated block length", blockStart);
    }
    if (len > size_ - pos_ || size_ - pos_ - len < 8) {
      bad("block payload overruns the file (torn or truncated capture)",
          blockStart);
    }
    const char* payload = data_ + pos_;
    const std::size_t payloadOffset = pos_;
    pos_ += len;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 8;
    if (stored != fnv1a(payload, len)) {
      bad(std::string("checksum mismatch in '") + tag +
              "' block (bit flip or torn write)",
          blockStart);
    }
    if (tag == kBlockEnd) sawEnd_ = true;
    out = Block{tag, payload, static_cast<std::size_t>(len), payloadOffset};
    return true;
  }

  bool sawEnd() const noexcept { return sawEnd_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_;
  bool sawEnd_ = false;
};

/// Cursor over one verified block payload with throwing accessors.
class PayloadReader {
 public:
  explicit PayloadReader(const Block& block)
      : data_(block.payload), size_(block.size), base_(block.offset) {}

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    if (!getVarint(data_, size_, pos_, v)) {
      bad(std::string("truncated ") + what, base_ + pos_);
    }
    return v;
  }

  std::int64_t zigzag(const char* what) {
    return unzigzag(varint(what));
  }

  double f64(const char* what) {
    double v = 0;
    if (!getF64(data_, size_, pos_, v)) {
      bad(std::string("truncated ") + what, base_ + pos_);
    }
    return v;
  }

  std::string str(const char* what) {
    const std::uint64_t len = varint(what);
    if (len > size_ - pos_ || pos_ > size_) {
      bad(std::string(what) + " length overruns its block", base_ + pos_);
    }
    std::string out(data_ + pos_, len);
    pos_ += len;
    return out;
  }

  /// Decode an RLE column of exactly `n` values.
  std::vector<std::int64_t> rleColumn(std::size_t n, const char* what) {
    std::vector<std::int64_t> values;
    values.reserve(n);
    while (values.size() < n) {
      const std::uint64_t run = varint(what);
      if (run == 0 || run > n - values.size()) {
        bad(std::string("bad run length in ") + what, base_ + pos_);
      }
      const std::int64_t v = zigzag(what);
      values.insert(values.end(), static_cast<std::size_t>(run), v);
    }
    return values;
  }

  void expectExhausted(const char* what) {
    if (pos_ != size_) {
      bad(std::string("trailing bytes in ") + what + " block",
          base_ + pos_);
    }
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  std::size_t offset() const noexcept { return base_ + pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encodeCaptureV2(const RunCapture& cap) {
  std::string out(kMagicV2);

  std::string header;
  putZigzag(header, cap.np);
  putF64(header, cap.makespan);
  putString(header, cap.app);
  putString(header, cap.config);
  appendBlock(out, kBlockHeader, header);

  std::string phases;
  const std::size_t n = cap.phases.size();
  putVarint(phases, n);
  if (n > 0) {
    // Delta columns: consecutive phases have ascending ids (delta 1),
    // slowly-changing family ids and frequently-identical weights, so
    // each column's delta stream is runs of a constant.
    std::vector<std::int64_t> ids, families, weights;
    ids.reserve(n);
    families.reserve(n);
    weights.reserve(n);
    std::int64_t prevId = 0, prevFamily = 0;
    std::int64_t prevWeight = 0;
    for (const auto& p : cap.phases) {
      ids.push_back(p.id - prevId);
      families.push_back(p.familyId - prevFamily);
      weights.push_back(static_cast<std::int64_t>(p.weightBytes) -
                        prevWeight);
      prevId = p.id;
      prevFamily = p.familyId;
      prevWeight = static_cast<std::int64_t>(p.weightBytes);
    }
    putRleColumn(phases, ids);
    putRleColumn(phases, families);
    putRleColumn(phases, weights);
    for (const auto& p : cap.phases) putF64(phases, p.ioSeconds);
    for (const auto& p : cap.phases) putF64(phases, p.bandwidth);
    // Label dictionary in first-appearance order + RLE'd indices.
    std::vector<std::string> dict;
    std::vector<std::int64_t> indices;
    indices.reserve(n);
    for (const auto& p : cap.phases) {
      std::size_t idx = 0;
      while (idx < dict.size() && dict[idx] != p.label) ++idx;
      if (idx == dict.size()) dict.push_back(p.label);
      indices.push_back(static_cast<std::int64_t>(idx));
    }
    putVarint(phases, dict.size());
    for (const auto& label : dict) putString(phases, label);
    putRleColumn(phases, indices);
  }
  appendBlock(out, kBlockPhases, phases);

  std::string metrics;
  const auto lines = splitLines(cap.metricsCsv);
  putVarint(metrics, lines.size());
  // The v1 writer normalizes a missing trailing newline away; record
  // whether one was present so v2 round-trips the exact byte string.
  metrics.push_back(
      !cap.metricsCsv.empty() && cap.metricsCsv.back() != '\n' ? 1 : 0);
  std::string prev;
  for (const auto& line : lines) {
    const std::size_t shared = commonPrefix(prev, line);
    putVarint(metrics, shared);
    putVarint(metrics, line.size() - shared);
    metrics.append(line, shared, line.size() - shared);
    prev = line;
  }
  appendBlock(out, kBlockMetrics, metrics);

  appendBlock(out, kBlockEnd, std::string());
  return out;
}

RunCapture decodeCaptureV2(const std::string& bytes) {
  const std::size_t magicLen = std::strlen(kMagicV2);
  if (bytes.compare(0, magicLen, kMagicV2) != 0) {
    bad("missing 'iop-capture v2' header line", 0);
  }
  RunCapture cap;
  bool sawHeader = false, sawPhases = false, sawMetrics = false;
  BlockReader blocks(bytes, magicLen);
  Block block;
  while (blocks.next(block)) {
    PayloadReader in(block);
    switch (block.tag) {
      case kBlockHeader: {
        if (sawHeader) bad("duplicate header block", block.offset);
        sawHeader = true;
        const std::int64_t np = in.zigzag("np");
        if (np < 0 || np > (1 << 30)) bad("implausible np", block.offset);
        cap.np = static_cast<int>(np);
        cap.makespan = in.f64("makespan");
        cap.app = in.str("app name");
        cap.config = in.str("config name");
        in.expectExhausted("header");
        break;
      }
      case kBlockPhases: {
        if (sawPhases) bad("duplicate phases block", block.offset);
        sawPhases = true;
        const std::uint64_t n = in.varint("phase count");
        // Each phase carries two raw doubles, so the payload bounds the
        // plausible count long before any allocation happens.
        if (n > 0 && n > in.remaining() / 16) {
          bad("phase count exceeds block size", block.offset);
        }
        if (n == 0) break;
        const auto count = static_cast<std::size_t>(n);
        const auto ids = in.rleColumn(count, "phase id column");
        const auto families = in.rleColumn(count, "family id column");
        const auto weights = in.rleColumn(count, "weight column");
        cap.phases.resize(count);
        std::int64_t id = 0, family = 0, weight = 0;
        for (std::size_t i = 0; i < count; ++i) {
          id += ids[i];
          family += families[i];
          weight += weights[i];
          if (weight < 0) bad("negative phase weight", block.offset);
          cap.phases[i].id = static_cast<int>(id);
          cap.phases[i].familyId = static_cast<int>(family);
          cap.phases[i].weightBytes = static_cast<std::uint64_t>(weight);
        }
        for (std::size_t i = 0; i < count; ++i) {
          cap.phases[i].ioSeconds = in.f64("ioSeconds column");
        }
        for (std::size_t i = 0; i < count; ++i) {
          cap.phases[i].bandwidth = in.f64("bandwidth column");
        }
        const std::uint64_t dictSize = in.varint("label dictionary size");
        if (dictSize > count) {
          bad("label dictionary larger than the phase table", block.offset);
        }
        std::vector<std::string> dict;
        dict.reserve(static_cast<std::size_t>(dictSize));
        for (std::uint64_t i = 0; i < dictSize; ++i) {
          dict.push_back(in.str("label dictionary entry"));
        }
        const auto indices = in.rleColumn(count, "label index column");
        for (std::size_t i = 0; i < count; ++i) {
          if (indices[i] < 0 ||
              static_cast<std::uint64_t>(indices[i]) >= dictSize) {
            bad("label index outside the dictionary", block.offset);
          }
          cap.phases[i].label = dict[static_cast<std::size_t>(indices[i])];
        }
        in.expectExhausted("phases");
        break;
      }
      case kBlockMetrics: {
        if (sawMetrics) bad("duplicate metrics block", block.offset);
        sawMetrics = true;
        const std::uint64_t lineCount = in.varint("metrics line count");
        const bool noTrailingNewline =
            in.varint("trailing-newline flag") != 0;
        if (lineCount > in.remaining() / 2 + 1) {
          // Every line costs at least a two-varint prefix/suffix pair.
          bad("metrics line count exceeds block size", block.offset);
        }
        std::string prev;
        std::string csv;
        for (std::uint64_t i = 0; i < lineCount; ++i) {
          const std::uint64_t shared = in.varint("shared prefix length");
          if (shared > prev.size()) {
            bad("front-coded prefix longer than the previous line",
                in.offset());
          }
          std::string line = prev.substr(0, static_cast<std::size_t>(shared));
          line += in.str("metrics line suffix");
          csv += line;
          if (i + 1 < lineCount || !noTrailingNewline) csv += '\n';
          prev = std::move(line);
        }
        in.expectExhausted("metrics");
        cap.metricsCsv = std::move(csv);
        break;
      }
      case kBlockEnd:
        in.expectExhausted("end");
        break;
      default:
        bad(std::string("unknown block tag '") + block.tag + "'",
            block.offset);
    }
  }
  if (!sawHeader) bad("capture has no header block", bytes.size());
  return cap;
}

}  // namespace iop::obs::detail
