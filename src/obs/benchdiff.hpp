// Trend comparison over two BENCH_*.json documents (iop-bench/1 schema,
// written by bench::writeBenchJson and the micro-benchmarks).
//
// Results are matched by name; a benchmark whose ns_per_op grew or whose
// bytes_per_second shrank beyond the threshold is a regression, which
// drives iop-diff --bench's non-zero CI exit code and closes the
// perf-trajectory loop over the per-commit bench artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iop::obs {

struct BenchEntry {
  std::string name;
  std::int64_t iterations = 0;
  double nsPerOp = 0;          ///< 0 = not measured
  double bytesPerSecond = 0;   ///< 0 = not measured
};

/// Parse an iop-bench/1 document.  Throws std::invalid_argument on a
/// schema mismatch or malformed JSON.
std::vector<BenchEntry> parseBenchJson(const std::string& text);

struct BenchDiffOptions {
  /// Relative change (%) beyond which a ns_per_op / bytes_per_second delta
  /// counts as a finding.
  double thresholdPct = 10.0;
};

struct BenchDiffFinding {
  enum class Kind { NsPerOp, BytesPerSecond, Missing };
  Kind kind = Kind::NsPerOp;
  bool regression = false;  ///< true when B is worse than A
  std::string name;
  double before = 0;
  double after = 0;
  double deltaPct = 0;
  std::string describe() const;
};

struct BenchDiffResult {
  BenchDiffOptions options;
  std::vector<BenchDiffFinding> findings;
  std::size_t comparedResults = 0;

  std::size_t regressions() const noexcept;
  std::string render() const;
};

BenchDiffResult diffBenchResults(const std::vector<BenchEntry>& a,
                                 const std::vector<BenchEntry>& b,
                                 const BenchDiffOptions& options = {});

}  // namespace iop::obs
