// Trend comparison over two BENCH_*.json documents (iop-bench/1 schema,
// written by bench::writeBenchJson and the micro-benchmarks; parsing
// lives in obs/benchjson.hpp, shared with the capture archive).
//
// Results are matched by name; a benchmark whose ns_per_op grew or whose
// bytes_per_second shrank beyond the threshold is a regression, which
// drives iop-diff --bench's non-zero CI exit code and closes the
// perf-trajectory loop over the per-commit bench artifacts.
#pragma once

#include <string>
#include <vector>

#include "obs/benchjson.hpp"

namespace iop::obs {

struct BenchDiffOptions {
  /// Relative change (%) beyond which a ns_per_op / bytes_per_second delta
  /// counts as a finding.
  double thresholdPct = 10.0;
};

struct BenchDiffFinding {
  enum class Kind { NsPerOp, BytesPerSecond, Missing };
  Kind kind = Kind::NsPerOp;
  bool regression = false;  ///< true when B is worse than A
  std::string name;
  double before = 0;
  double after = 0;
  double deltaPct = 0;
  std::string describe() const;
};

struct BenchDiffResult {
  BenchDiffOptions options;
  std::vector<BenchDiffFinding> findings;
  std::size_t comparedResults = 0;

  std::size_t regressions() const noexcept;
  std::string render() const;
};

BenchDiffResult diffBenchResults(const std::vector<BenchEntry>& a,
                                 const std::vector<BenchEntry>& b,
                                 const BenchDiffOptions& options = {});

}  // namespace iop::obs
