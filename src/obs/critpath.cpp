#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace iop::obs {

namespace {

std::string fmtSec(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string fmtMb(double bytes) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.2f", bytes / 1.0e6);
  return buf;
}

}  // namespace

double CriticalPathResult::totalSeconds() const noexcept {
  double s = 0;
  for (const auto& seg : segments) s += seg.seconds();
  return s;
}

double CriticalPathResult::gapSeconds() const noexcept {
  double s = 0;
  for (const auto& seg : segments) {
    if (seg.isGap()) s += seg.seconds();
  }
  return s;
}

CriticalPathResult computeCriticalPath(const EdgeRecorder& rec,
                                       double makespan) {
  CriticalPathResult out;
  out.makespan = makespan;
  const auto& acts = rec.activities();

  // Predecessor candidates per activity, from all four edge sources.
  std::vector<std::vector<std::int64_t>> preds(acts.size());
  for (const auto& a : acts) {
    if (a.cause >= 0) {
      preds[static_cast<std::size_t>(a.cause)].push_back(a.id);
    }
  }
  for (const auto& l : rec.links()) {
    preds[static_cast<std::size_t>(l.succ)].push_back(l.pred);
  }

  // Sequence edges within a group: each member gets the latest-ending
  // non-overlapping earlier member (binary search over (end, id)).
  auto chainGroup = [&](const std::vector<std::int64_t>& ids) {
    std::vector<std::pair<double, std::int64_t>> byEnd;
    byEnd.reserve(ids.size());
    for (std::int64_t id : ids) {
      const Activity& a = acts[static_cast<std::size_t>(id)];
      if (a.closed()) byEnd.emplace_back(a.end, id);
    }
    std::sort(byEnd.begin(), byEnd.end());
    for (std::int64_t id : ids) {
      const double b = acts[static_cast<std::size_t>(id)].begin;
      auto it = std::upper_bound(
          byEnd.begin(), byEnd.end(),
          std::make_pair(b, std::numeric_limits<std::int64_t>::max()));
      while (it != byEnd.begin()) {
        const auto& cand = *(it - 1);
        if (cand.second == id) {  // a zero-duration self-match
          --it;
          continue;
        }
        preds[static_cast<std::size_t>(id)].push_back(cand.second);
        break;
      }
    }
  };

  {
    // Siblings: children sharing one cause (sequential chunk loops).
    std::map<std::int64_t, std::vector<std::int64_t>> byCause;
    // Program order: root activities owned by one rank.
    std::map<int, std::vector<std::int64_t>> byRank;
    for (const auto& a : acts) {
      if (a.cause >= 0) {
        byCause[a.cause].push_back(a.id);
      } else if (a.rank >= 0) {
        byRank[a.rank].push_back(a.id);
      }
    }
    for (const auto& [cause, ids] : byCause) chainGroup(ids);
    for (const auto& [rank, ids] : byRank) chainGroup(ids);
  }

  // Chain head: the latest-ending closed activity not past the makespan,
  // preferring rank-owned work (ranks define the application's end).
  const double lim = makespan + 1e-12;
  std::int64_t head = -1;
  bool headRankOwned = false;
  for (const auto& a : acts) {
    if (!a.closed() || a.end > lim) continue;
    const bool ro = a.rank >= 0;
    if (head >= 0) {
      const Activity& h = acts[static_cast<std::size_t>(head)];
      if (headRankOwned && !ro) continue;
      if (ro == headRankOwned) {
        if (a.end < h.end) continue;
        if (a.end == h.end && a.id < head) continue;
      }
    }
    head = a.id;
    headRankOwned = ro;
  }

  // Backward walk, tiling [0, makespan] from the right.
  std::vector<BlameSegment> segs;  // built back-to-front
  double cursor = makespan;
  auto pushGap = [&](double from, const char* label) {
    if (from < cursor) {
      BlameSegment g;
      g.begin = from;
      g.end = cursor;
      g.label = label;
      segs.push_back(std::move(g));
      cursor = from;
    }
  };

  if (head < 0) {
    pushGap(0, "startup");
  } else {
    std::int64_t cur = head;
    // Monotonic (end, id) key that guarantees termination: it only moves
    // when the walk steps to a predecessor, never when it climbs to a
    // parent, so every candidate must be strictly earlier than the most
    // recent real step.
    double keyEnd = acts[static_cast<std::size_t>(cur)].end;
    std::int64_t keyId = cur;
    pushGap(keyEnd, "finalize");
    auto pushSeg = [&](const Activity& a, double from) {
      const double segStart = std::min(cursor, from);
      if (segStart < cursor) {
        BlameSegment s;
        s.begin = segStart;
        s.end = cursor;
        s.activity = a.id;
        s.kind = a.kind;
        s.rank = a.rank;
        s.label = a.label;
        segs.push_back(std::move(s));
        cursor = segStart;
      }
    };
    for (;;) {
      const Activity& a = acts[static_cast<std::size_t>(cur)];
      std::int64_t best = -1;
      for (std::int64_t p : preds[static_cast<std::size_t>(cur)]) {
        const Activity& ap = acts[static_cast<std::size_t>(p)];
        if (!ap.closed()) continue;
        if (ap.end > keyEnd || (ap.end == keyEnd && p >= keyId)) continue;
        if (best >= 0) {
          const Activity& ab = acts[static_cast<std::size_t>(best)];
          if (ap.end < ab.end || (ap.end == ab.end && p < best)) continue;
        }
        best = p;
      }
      if (best < 0) {
        // Nothing precedes `a` itself — blame it down to its start, then
        // climb to the activity it serves: whatever precedes the parent
        // (program order, earlier siblings) also precedes this child.
        pushSeg(a, a.begin);
        if (a.cause >= 0) {
          cur = a.cause;
          continue;
        }
        pushGap(0, "startup");
        break;
      }
      const double predEnd = acts[static_cast<std::size_t>(best)].end;
      pushSeg(a, std::max(a.begin, predEnd));
      pushGap(predEnd, "compute");
      cur = best;
      keyEnd = predEnd;
      keyId = best;
    }
  }

  std::reverse(segs.begin(), segs.end());
  out.segments = std::move(segs);
  for (const auto& s : out.segments) {
    const std::string cat = s.isGap() ? s.label : actKindName(s.kind);
    out.byCategory[cat] += s.seconds();
    if (!s.isGap()) {
      out.byLabel[s.label] += s.seconds();
      out.byRank[s.rank] += s.seconds();
    }
  }
  return out;
}

double BlameTable::attributedIoSeconds() const noexcept {
  double s = 0;
  for (const auto& r : rows) s += r.attrSeconds;
  return s;
}

double BlameTable::estimateSeconds() const noexcept {
  // Round-trip through the attributed bandwidths on purpose: the identity
  // estimate == attributed time is what --blame reports and tests check.
  double s = 0;
  for (const auto& r : rows) {
    if (r.attrBandwidth > 0) {
      s += static_cast<double>(r.phase.weightBytes) / r.attrBandwidth;
    }
  }
  return s;
}

BlameTable attributePhases(const CriticalPathResult& path,
                           const std::vector<PhaseWindow>& phases) {
  BlameTable table;
  table.makespan = path.makespan;
  table.rows.reserve(phases.size());
  for (const auto& p : phases) {
    PhaseBlame row;
    row.phase = p;
    table.rows.push_back(std::move(row));
  }

  // Elementary intervals over all window boundaries.  Phase windows may
  // overlap (repetitions of one phase interleaved with another), so each
  // instant is owned by the *smallest* covering window — the most
  // specific phase — breaking ties by lower phase id.
  std::vector<double> bounds;
  bounds.reserve(phases.size() * 2);
  for (const auto& p : phases) {
    bounds.push_back(p.begin);
    bounds.push_back(p.end);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  auto ownerOf = [&](double t0, double t1) -> int {
    const double mid = 0.5 * (t0 + t1);
    int best = -1;
    double bestSpan = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const PhaseWindow& p = phases[i];
      if (p.begin <= mid && mid < p.end) {
        const double span = p.end - p.begin;
        if (span < bestSpan) {
          bestSpan = span;
          best = static_cast<int>(i);
        }
      }
    }
    return best;
  };

  for (const auto& s : path.segments) {
    if (s.isGap()) {
      table.gapSeconds += s.seconds();
      continue;
    }
    double cur = s.begin;
    while (cur < s.end) {
      auto it = std::upper_bound(bounds.begin(), bounds.end(), cur);
      const double next = it == bounds.end() ? s.end : std::min(*it, s.end);
      if (next <= cur) break;  // defensive; bounds are strictly increasing
      const int owner = ownerOf(cur, next);
      if (owner >= 0) {
        PhaseBlame& row = table.rows[static_cast<std::size_t>(owner)];
        row.attrSeconds += next - cur;
        row.byCategory[actKindName(s.kind)] += next - cur;
      } else {
        table.outsideSeconds += next - cur;
      }
      cur = next;
    }
  }

  for (auto& row : table.rows) {
    if (row.attrSeconds > 0) {
      row.attrBandwidth =
          static_cast<double>(row.phase.weightBytes) / row.attrSeconds;
    }
  }
  return table;
}

std::string renderCriticalPath(const CriticalPathResult& path) {
  std::ostringstream out;
  out << "critical path: " << path.segments.size() << " segments, "
      << fmtSec(path.totalSeconds()) << " s of " << fmtSec(path.makespan)
      << " s makespan\n";
  out << "  by category:\n";
  for (const auto& [cat, sec] : path.byCategory) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%5.1f%%",
                  path.makespan > 0 ? 100.0 * sec / path.makespan : 0.0);
    out << "    " << pct << "  " << fmtSec(sec) << " s  " << cat << "\n";
  }
  if (!path.byLabel.empty()) {
    // Top contributors by label, largest first.
    std::vector<std::pair<std::string, double>> labels(path.byLabel.begin(),
                                                       path.byLabel.end());
    std::sort(labels.begin(), labels.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    out << "  by component:\n";
    const std::size_t top = std::min<std::size_t>(labels.size(), 10);
    for (std::size_t i = 0; i < top; ++i) {
      out << "    " << fmtSec(labels[i].second) << " s  " << labels[i].first
          << "\n";
    }
  }
  if (!path.byRank.empty()) {
    out << "  by rank:\n";
    for (const auto& [rank, sec] : path.byRank) {
      out << "    rank " << rank << ": " << fmtSec(sec) << " s\n";
    }
  }
  return out.str();
}

std::string renderBlameTable(const BlameTable& table) {
  std::ostringstream out;
  out << "phase blame table (critical-path attribution):\n";
  out << "  id  label          weight MB   T_attr s    BW_attr MB/s\n";
  for (const auto& row : table.rows) {
    char line[160];
    std::snprintf(line, sizeof line, "  %-3d %-14s %10s  %10s  %12s\n",
                  row.phase.id, row.phase.label.c_str(),
                  fmtMb(static_cast<double>(row.phase.weightBytes)).c_str(),
                  fmtSec(row.attrSeconds).c_str(),
                  row.attrBandwidth > 0 ? fmtMb(row.attrBandwidth).c_str()
                                        : "-");
    out << line;
  }
  out << "  attributed I/O time  " << fmtSec(table.attributedIoSeconds())
      << " s\n";
  out << "  eq.1-2 from BW_attr  " << fmtSec(table.estimateSeconds())
      << " s\n";
  out << "  critical gap time    " << fmtSec(table.gapSeconds) << " s\n";
  out << "  outside phases       " << fmtSec(table.outsideSeconds) << " s\n";
  out << "  residual             " << fmtSec(table.residualSeconds())
      << " s (makespan " << fmtSec(table.makespan) << " s)\n";
  return out.str();
}

}  // namespace iop::obs
