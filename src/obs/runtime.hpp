// Wall-clock runtime telemetry: the operational counterpart of the
// simulated-time sinks in hub.hpp.
//
// Three pieces, all safe to share between threads:
//
//  * RuntimeMetrics — a lock-cheap registry of atomic counters, gauges
//    and fixed-bucket latency histograms.  Registration takes a mutex
//    once; after that every increment is a relaxed atomic op on a stable
//    address, so instrumenting a hot path costs one add.  Rendered as
//    Prometheus text exposition (name-ordered, deterministic for a given
//    state), optionally snapshotted to a file on a timer by
//    TelemetrySnapshotter.
//
//  * RunJournal — the flight recorder: an append-only JSONL event stream
//    ({"t":<seconds since open>,"event":...,...}), one fflush()ed line
//    per event so a SIGKILLed process leaves at most one torn final
//    line.  loadJournal()/parseJournal() read a journal back tolerantly
//    (torn tails are counted, not fatal) for postmortem reconstruction.
//
//  * ExecTrace — a mutex-guarded TraceRecorder on a wall-clock timebase
//    (seconds since construction) with one track per executor worker, so
//    the *execution* of a campaign exports to the same Chrome/Perfetto
//    JSON as its simulated-time traces.
//
// None of this may perturb results: every instrument is write-only from
// the instrumented code's point of view, and nothing here is consulted
// by any decision the sweep executor or the simulation makes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "util/vfs.hpp"

namespace iop::obs {

class RuntimeCounter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class RuntimeGauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram with atomic buckets.  Same "le" semantics as
/// obs::Histogram (a value lands in the first bucket whose upper bound is
/// >= it; an implicit +Inf bucket catches the rest), but safe for
/// concurrent observe() from any number of threads.
class RuntimeHistogram {
 public:
  /// `bounds` are ascending bucket upper bounds (at least one).
  explicit RuntimeHistogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Snapshot of the per-bucket counts; size() == bounds().size() + 1
  /// (last is overflow).  Concurrent observers may make the snapshot
  /// internally torn; totals converge once writers stop.
  std::vector<std::uint64_t> bucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Thread-safe registry of runtime instruments.  Names follow the same
/// `<subsystem>.<quantity>` convention as MetricsRegistry; the Prometheus
/// rendering mangles them to `iop_<subsystem>_<quantity>` (counters get a
/// `_total` suffix).
class RuntimeMetrics {
 public:
  /// Get-or-create by name.  Returned references are stable for the
  /// registry's lifetime; cache them outside hot loops.  A name may hold
  /// only one instrument kind (std::logic_error otherwise).
  RuntimeCounter& counter(const std::string& name);
  RuntimeGauge& gauge(const std::string& name);
  /// For an existing histogram the bounds argument is ignored.
  RuntimeHistogram& histogram(const std::string& name,
                              std::vector<double> bounds);

  const RuntimeCounter* findCounter(const std::string& name) const;
  const RuntimeGauge* findGauge(const std::string& name) const;
  const RuntimeHistogram* findHistogram(const std::string& name) const;

  /// Prometheus text exposition (version 0.0.4): name-ordered, with
  /// cumulative histogram buckets.  Deterministic for a given state.
  std::string renderProm() const;
  /// Atomically (temp + rename) replace `path` with renderProm(), so a
  /// scraper or a human tailing the file never sees a partial snapshot.
  void writeProm(const std::filesystem::path& path) const;

 private:
  void checkFree(const std::string& name, char wanted) const;

  mutable std::mutex mutex_;  ///< guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<RuntimeCounter>> counters_;
  std::map<std::string, std::unique_ptr<RuntimeGauge>> gauges_;
  std::map<std::string, std::unique_ptr<RuntimeHistogram>> histograms_;
};

/// Background thread re-writing a RuntimeMetrics exposition file every
/// `intervalMs`.  stop() (or destruction) joins the thread and writes one
/// final snapshot, so the file always ends at the run's last state.
class TelemetrySnapshotter {
 public:
  TelemetrySnapshotter(const RuntimeMetrics& metrics,
                       std::filesystem::path path, int intervalMs);
  ~TelemetrySnapshotter();

  void stop();

  std::size_t snapshots() const noexcept {
    return snapshots_.load(std::memory_order_relaxed);
  }

 private:
  void writeOnce();

  const RuntimeMetrics& metrics_;
  std::filesystem::path path_;
  int intervalMs_;
  std::atomic<std::size_t> snapshots_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Append-only JSONL flight recorder.  Each event is one line
///   {"t":12.345678,"event":"cell_claim","worker":0,...}
/// where `t` is wall-clock seconds since the journal was opened.  The
/// first line is always a `journal_start` event carrying the schema
/// version and the wall epoch, so a journal is self-describing.
class RunJournal {
 public:
  static constexpr const char* kSchema = "iop-journal/1";

  /// Creates parent directories and truncates/creates `path`.
  explicit RunJournal(std::filesystem::path path);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Seconds since the journal was opened (the `t` of an event recorded
  /// now).  Thread-safe.
  double elapsedSeconds() const;

  /// Append one event line, flushed and fsync()ed (util::vfs barrier
  /// semantics).  `fieldsJson` is a pre-rendered `"k":v,...` tail
  /// (TraceRecorder::jsonEscape strings first); may be empty.
  /// Thread-safe.  A write failure (ENOSPC, typically) disables the
  /// journal with a one-time stderr warning instead of throwing — the
  /// flight recorder must never take the campaign down.
  void event(const std::string& name, const std::string& fieldsJson = {});

  std::size_t eventCount() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

  /// True once a write failure silenced the journal.
  bool disabled() const noexcept {
    return disabled_.load(std::memory_order_relaxed);
  }

 private:
  std::filesystem::path path_;
  std::unique_ptr<util::vfs::AppendStream> stream_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::atomic<std::size_t> events_{0};
  std::atomic<bool> disabled_{false};
};

/// One parsed journal line.  `fields` holds every member of the JSON
/// object keyed by name: string values are unescaped, everything else
/// (numbers, booleans, null) keeps its literal JSON text.
struct JournalEvent {
  double t = 0;
  std::string name;                          ///< the "event" field
  std::map<std::string, std::string> fields; ///< includes "t" and "event"

  const std::string* field(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

struct JournalParse {
  std::vector<JournalEvent> events;
  std::size_t badLines = 0;  ///< torn/malformed lines skipped (a SIGKILL
                             ///< mid-write leaves at most one)
};

/// Parse journal text tolerantly: malformed lines are counted in
/// badLines, not fatal — a crashed process's journal must still load.
JournalParse parseJournal(const std::string& text);
JournalParse loadJournal(const std::filesystem::path& path);

/// Mutex-guarded Chrome/Perfetto emitter on a wall-clock timebase for
/// tracing the sweep execution itself (TrackKind::Worker tracks).
class ExecTrace {
 public:
  ExecTrace();

  /// Wall-clock seconds since construction.
  double now() const;

  /// Track ids for the per-worker timelines and the executor's own
  /// (probe/manifest) control track.  Thread-safe, stable.
  int workerTrack(std::size_t worker);
  int controlTrack();

  void span(int tid, const std::string& name, const std::string& cat,
            double beginSec, double endSec, std::string argsJson = {});
  void instant(int tid, const std::string& name, const std::string& cat,
               double atSec, std::string argsJson = {});
  void counterSample(int tid, const std::string& name, double atSec,
                     double value);

  std::size_t eventCount() const;
  void saveJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  TraceRecorder recorder_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace iop::obs
