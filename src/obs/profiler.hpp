// Wall-clock profiler for the analysis pipeline (RAII scoped timers).
//
// Unlike the TraceRecorder and MetricsRegistry — which observe *simulated*
// time and must stay deterministic — the profiler measures real elapsed
// time of the host process: trace parsing, LAP segmentation, phase
// grouping, replay.  Its numbers therefore never feed the metrics CSV
// (which must be byte-identical across runs); they go to a human-readable
// report and, when a recorder is attached, to the Profiler track of the
// exported Chrome trace.
//
// The pipeline instruments itself against the process-wide instance via
// IOP_PROFILE_SCOPE("name"); an unattached profiler still aggregates
// (nanoseconds per scope), which is cheap enough to leave on everywhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace iop::obs {

class TraceRecorder;

struct ProfileStats {
  std::uint64_t calls = 0;
  double totalSec = 0;
  double minSec = 0;
  double maxSec = 0;
};

class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Process-wide instance the pipeline macros use.
  static Profiler& global();

  /// Mirror every completed scope into `recorder`'s Profiler track
  /// (timestamps = wall seconds since this call).  Pass nullptr to detach.
  void attachTrace(TraceRecorder* recorder);

  /// Record one completed section (seconds of wall time).  Thread-safe:
  /// sweep workers profile concurrently into the global instance.
  void record(const std::string& name, double seconds);

  /// Snapshot of the per-scope aggregates.
  std::map<std::string, ProfileStats> stats() const;
  void reset();

  /// Aligned text report, longest total first.
  std::string renderReport() const;

  /// RAII scope: times construction..destruction into the profiler.
  class Scope {
   public:
    Scope(Profiler& profiler, const char* name)
        : profiler_(&profiler), name_(name), start_(Clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    Profiler* profiler_;
    const char* name_;
    Clock::time_point start_;
  };

  Scope scope(const char* name) { return Scope(*this, name); }

 private:
  void emitSpan(const std::string& name, Clock::time_point begin,
                Clock::time_point end);
  friend class Scope;

  mutable std::mutex mutex_;
  std::map<std::string, ProfileStats> stats_;
  TraceRecorder* recorder_ = nullptr;
  Clock::time_point epoch_{};
};

}  // namespace iop::obs

#define IOP_OBS_CONCAT_IMPL(a, b) a##b
#define IOP_OBS_CONCAT(a, b) IOP_OBS_CONCAT_IMPL(a, b)

/// Time the current C++ scope into the global profiler under `name`.
#define IOP_PROFILE_SCOPE(name)                                      \
  ::iop::obs::Profiler::Scope IOP_OBS_CONCAT(iop_profile_scope_,     \
                                             __LINE__)(             \
      ::iop::obs::Profiler::global(), name)
