// Named metrics: counters, gauges, and fixed-bucket histograms.
//
// The registry owns its instruments (stable addresses; components cache
// the pointer returned by counter()/gauge()/histogram() so the per-event
// cost is one pointer dereference plus an add).  Rendering iterates a
// name-ordered map, so the CSV output of a deterministic simulation is
// byte-identical across same-seed runs — the property the obs tests pin.
//
// Histogram bucket semantics are Prometheus-style cumulative "le" bounds
// made non-cumulative: a value v lands in the first bucket whose upper
// bound satisfies v <= bound; values above the last bound land in the
// overflow bucket (+Inf).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace iop::obs {

class Counter {
 public:
  void add(double delta = 1.0) noexcept {
    value_ += delta;
    ++events_;
  }
  double value() const noexcept { return value_; }
  std::uint64_t events() const noexcept { return events_; }

  /// Fold another counter in: sums both the value and the event count.
  void merge(const Counter& other) noexcept {
    value_ += other.value_;
    events_ += other.events_;
  }

 private:
  double value_ = 0;
  std::uint64_t events_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_ = value;
    if (value > max_) max_ = value;
    if (value < min_) min_ = value;
  }
  double value() const noexcept { return value_; }
  double max() const noexcept { return max_; }
  double min() const noexcept { return min_; }
  /// True once set() has been called at least once.
  bool touched() const noexcept { return max_ >= min_; }

  /// Fold another gauge in: the merged-in value wins if the other gauge
  /// was ever set (merge order = observation order), and the min/max
  /// envelope covers both histories.  Merging an untouched gauge is a
  /// no-op.
  void merge(const Gauge& other) noexcept {
    if (!other.touched()) return;
    value_ = other.value_;
    if (other.max_ > max_) max_ = other.max_;
    if (other.min_ < min_) min_ = other.min_;
  }

 private:
  double value_ = 0;
  double max_ = -std::numeric_limits<double>::infinity();
  double min_ = std::numeric_limits<double>::infinity();
};

class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds; an implicit +Inf bucket
  /// catches the rest.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  const std::vector<std::uint64_t>& bucketCounts() const noexcept {
    return counts_;
  }
  /// Index of the bucket a value would land in.
  std::size_t bucketIndex(double value) const noexcept;

  /// Fold another histogram in bucket-by-bucket.  Both histograms must
  /// have identical bounds (std::invalid_argument otherwise); merging an
  /// empty histogram is a no-op and leaves min/max untouched.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  /// Get-or-create by name.  A name may hold only one instrument kind;
  /// re-requesting with a different kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// For an existing histogram the bounds argument is ignored.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  const Counter* findCounter(const std::string& name) const;
  const Gauge* findGauge(const std::string& name) const;
  const Histogram* findHistogram(const std::string& name) const;

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic CSV: `metric,kind,field,value` rows, name-ordered.
  std::string renderCsv() const;
  void saveCsv(const std::string& path) const;

  /// Human-readable summary table for tool output.
  std::string renderSummary() const;

  /// Fold every instrument of `other` into this registry, creating
  /// same-named instruments as needed.  Kind conflicts throw
  /// std::logic_error, mismatched histogram bounds std::invalid_argument;
  /// merging an empty registry is a no-op.  Useful for aggregating
  /// per-shard registries into one report.
  void merge(const MetricsRegistry& other);

 private:
  void checkFree(const std::string& name, const char* wanted) const;

  // node-based maps: instrument addresses are stable across inserts.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Default bucket bounds for second-valued latency histograms (1 us .. 100 s,
/// roughly logarithmic).
std::vector<double> latencyBucketsSeconds();

/// Default bucket bounds for queue-depth style small-integer histograms.
std::vector<double> depthBuckets();

}  // namespace iop::obs
