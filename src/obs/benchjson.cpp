#include "obs/benchjson.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace iop::obs {

namespace {

// Minimal scanner for the iop-bench/1 documents this repo writes: one
// top-level object with a "schema" string and a "results" array of flat
// objects holding string/number fields.  Anything outside that shape is
// rejected with a position, which is all the robustness machine-written
// bench artifacts need (no external JSON dependency).
class BenchScanner {
 public:
  explicit BenchScanner(const std::string& text) : text_(text) {}

  std::vector<BenchEntry> parse() {
    skipSpace();
    expect('{');
    std::string schema;
    std::vector<BenchEntry> entries;
    bool first = true;
    while (true) {
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skipSpace();
      }
      first = false;
      const std::string key = parseString();
      skipSpace();
      expect(':');
      skipSpace();
      if (key == "schema") {
        schema = parseString();
      } else if (key == "results") {
        entries = parseResults();
      } else {
        skipValue();
      }
    }
    if (schema != "iop-bench/1") {
      throw std::invalid_argument("bench json: schema '" + schema +
                                  "' is not iop-bench/1");
    }
    return entries;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("bench json, offset " +
                                std::to_string(pos_) + ": " + message);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Bench names are ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  void skipValue() {
    const char c = peek();
    if (c == '"') {
      parseString();
      return;
    }
    if (c == '{' || c == '[') {
      // Depth-count over the container, string-aware.
      int depth = 0;
      while (true) {
        const char d = peek();
        if (d == '"') {
          parseString();
          continue;
        }
        ++pos_;
        if (d == '{' || d == '[') {
          ++depth;
        } else if (d == '}' || d == ']') {
          if (--depth == 0) return;
        }
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return;
    }
    parseNumber();
  }

  std::vector<BenchEntry> parseResults() {
    std::vector<BenchEntry> out;
    expect('[');
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parseResult());
      skipSpace();
      if (peek() == ']') {
        ++pos_;
        return out;
      }
      expect(',');
      skipSpace();
    }
  }

  BenchEntry parseResult() {
    BenchEntry entry;
    expect('{');
    bool first = true;
    while (true) {
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skipSpace();
      }
      first = false;
      const std::string key = parseString();
      skipSpace();
      expect(':');
      skipSpace();
      if (key == "name") {
        entry.name = parseString();
      } else if (key == "iterations") {
        entry.iterations = static_cast<std::int64_t>(parseNumber());
      } else if (key == "ns_per_op") {
        entry.nsPerOp = parseNumber();
      } else if (key == "bytes_per_second") {
        entry.bytesPerSecond = parseNumber();
      } else {
        skipValue();
      }
    }
    if (entry.name.empty()) fail("result without a name");
    return entry;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<BenchEntry> parseBenchJson(const std::string& text) {
  return BenchScanner(text).parse();
}

}  // namespace iop::obs
