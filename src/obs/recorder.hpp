// Timeline recorder with Chrome trace-event JSON export.
//
// Captures begin/end spans, instant events, and counter samples keyed to
// *simulated* time (or, for the wall-clock profiler track, microseconds
// since the profiler epoch) and serializes them in the Trace Event Format
// that Perfetto and chrome://tracing load natively.
//
// Track model: a track is one (pid, tid) pair.  Track kinds map to fixed
// pids so Perfetto groups related timelines — one process group for MPI
// ranks (one thread per rank), one for storage devices, one for the
// analysis profiler, one for the engine itself.  Metadata events name the
// groups and tracks.
//
// The recorder is deliberately passive: it never reads the engine RNG and
// never schedules anything, so attaching it cannot perturb a simulation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace iop::obs {

/// Track kind == Chrome trace "process" group.  Values are the exported
/// pids (stable, part of the file format the tests check).
enum class TrackKind : int {
  Rank = 1,      ///< one track per MPI rank
  Device = 2,    ///< one track per storage device / cache
  Profiler = 3,  ///< wall-clock analysis-pipeline spans
  Sim = 4,       ///< engine-level counters (queue depth, dispatch rate)
  Worker = 5,    ///< wall-clock sweep-executor workers (obs::ExecTrace)
};

/// Event phases we emit (subset of the Trace Event Format).
enum class EventPhase : char {
  Complete = 'X',  ///< span with ts + dur
  Instant = 'i',
  Counter = 'C',
};

struct TraceEvent {
  std::string name;
  std::string cat;
  EventPhase phase = EventPhase::Instant;
  int pid = 0;
  int tid = 0;
  double tsUs = 0;   ///< microseconds (simulated or wall, by track kind)
  double durUs = 0;  ///< Complete events only
  /// Pre-rendered JSON args object body ("\"k\":1,..."), empty = no args.
  std::string argsJson;
};

class TraceRecorder {
 public:
  /// Get-or-create the track for (kind, name); returns its tid.  Names are
  /// unique per kind; re-registering an existing name returns the same
  /// track.
  int track(TrackKind kind, const std::string& name);

  /// Convenience for the per-rank tracks ("rank 0", "rank 1", ...).
  int rankTrack(int rank);

  /// Span over [beginSec, endSec] in the track's timebase (seconds).
  void span(TrackKind kind, int tid, const std::string& name,
            const std::string& cat, double beginSec, double endSec,
            std::string argsJson = {});

  void instant(TrackKind kind, int tid, const std::string& name,
               const std::string& cat, double atSec,
               std::string argsJson = {});

  /// One sample of a counter series.  Chrome plots one series per
  /// (track, name); `value` lands in args as {"value": v}.
  void counterSample(TrackKind kind, int tid, const std::string& name,
                     double atSec, double value);

  std::size_t eventCount() const noexcept { return events_.size(); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Serialize as a Chrome trace JSON object.  Events are emitted sorted
  /// by timestamp (stable: insertion order breaks ties), so the output is
  /// strictly time-ordered and deterministic for a deterministic run.
  void writeJson(std::ostream& out) const;
  void saveJson(const std::string& path) const;

  /// Escape a string for embedding in a JSON string literal (exposed for
  /// callers pre-rendering argsJson).
  static std::string jsonEscape(const std::string& raw);

 private:
  struct Track {
    TrackKind kind;
    int tid = 0;
    std::string name;
  };

  std::map<std::pair<int, std::string>, int> trackIds_;  ///< (pid,name)->tid
  std::vector<Track> tracks_;
  std::map<int, int> nextTid_;  ///< per pid
  std::vector<TraceEvent> events_;
};

}  // namespace iop::obs
