// Byte-level codec primitives for the columnar capture format v2:
// LEB128 varints, zigzag signed mapping, little-endian IEEE doubles, and
// FNV-1a 64 block checksums.  Header-only and deliberately tiny — this
// is a first-party file format, not a general serialization library.
//
// Every decode helper takes (data, size, pos) and throws via the caller's
// error function on truncation or malformed input; nothing here reads out
// of bounds, which is what lets the capture reader survive the hostile
// corpus in tests/trend_test.cpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace iop::obs::codec {

inline void putVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void putZigzag(std::string& out, std::int64_t v) {
  putVarint(out, zigzag(v));
}

inline void putF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

inline void putString(std::string& out, const std::string& s) {
  putVarint(out, s.size());
  out.append(s);
}

/// FNV-1a 64 over a byte range (same function family as the sweep cache
/// keys; this is torn-file detection, not a security boundary).
inline std::uint64_t fnv1a(const char* data, std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Bounds-checked varint decode.  Returns false on truncation or an
/// over-long (> 10 byte) encoding; `pos` advances only on success.
inline bool getVarint(const char* data, std::size_t size, std::size_t& pos,
                      std::uint64_t& out) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t p = pos;
  while (p < size && shift < 64) {
    const auto byte = static_cast<unsigned char>(data[p++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos = p;
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool getF64(const char* data, std::size_t size, std::size_t& pos,
                   double& out) noexcept {
  if (size - pos < 8 || pos > size) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
  }
  pos += 8;
  std::memcpy(&out, &bits, sizeof out);
  return true;
}

}  // namespace iop::obs::codec
