#include "obs/benchdiff.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace iop::obs {

namespace {

double relChange(double a, double b) {
  if (a == 0) return b == 0 ? 0 : 100.0;
  return 100.0 * (b - a) / a;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string BenchDiffFinding::describe() const {
  if (kind == Kind::Missing) {
    return name + ": present in only one run";
  }
  const char* dim = kind == Kind::NsPerOp ? "ns/op" : "bytes/s";
  char pct[32];
  std::snprintf(pct, sizeof pct, "%+.1f%%", deltaPct);
  return name + " " + dim + ": " + num(before) + " -> " + num(after) +
         " (" + pct + (regression ? ", regression)" : ")");
}

std::size_t BenchDiffResult::regressions() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.regression) ++n;
  }
  return n;
}

std::string BenchDiffResult::render() const {
  std::ostringstream out;
  out << "bench diff: " << comparedResults << " shared result(s), "
      << "threshold " << num(options.thresholdPct) << "%\n";
  if (findings.empty()) {
    out << "  no changes beyond threshold\n";
  } else {
    for (const auto& f : findings) {
      out << "  " << (f.regression ? "REGRESSION  " : "change      ")
          << f.describe() << "\n";
    }
  }
  out << "  " << regressions() << " regression(s), " << findings.size()
      << " finding(s)\n";
  return out.str();
}

BenchDiffResult diffBenchResults(const std::vector<BenchEntry>& a,
                                 const std::vector<BenchEntry>& b,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;
  result.options = options;
  std::map<std::string, const BenchEntry*> byNameB;
  for (const auto& e : b) byNameB[e.name] = &e;
  std::map<std::string, bool> matchedB;

  for (const auto& ea : a) {
    const auto it = byNameB.find(ea.name);
    if (it == byNameB.end()) {
      BenchDiffFinding x;
      x.kind = BenchDiffFinding::Kind::Missing;
      x.name = ea.name;
      result.findings.push_back(std::move(x));
      continue;
    }
    matchedB[ea.name] = true;
    ++result.comparedResults;
    const BenchEntry& eb = *it->second;
    if (ea.nsPerOp > 0 && eb.nsPerOp > 0) {
      const double d = relChange(ea.nsPerOp, eb.nsPerOp);
      if (std::fabs(d) > options.thresholdPct) {
        BenchDiffFinding x;
        x.kind = BenchDiffFinding::Kind::NsPerOp;
        x.regression = eb.nsPerOp > ea.nsPerOp;
        x.name = ea.name;
        x.before = ea.nsPerOp;
        x.after = eb.nsPerOp;
        x.deltaPct = d;
        result.findings.push_back(std::move(x));
      }
    }
    if (ea.bytesPerSecond > 0 && eb.bytesPerSecond > 0) {
      const double d = relChange(ea.bytesPerSecond, eb.bytesPerSecond);
      if (std::fabs(d) > options.thresholdPct) {
        BenchDiffFinding x;
        x.kind = BenchDiffFinding::Kind::BytesPerSecond;
        x.regression = eb.bytesPerSecond < ea.bytesPerSecond;
        x.name = ea.name;
        x.before = ea.bytesPerSecond;
        x.after = eb.bytesPerSecond;
        x.deltaPct = d;
        result.findings.push_back(std::move(x));
      }
    }
  }
  for (const auto& eb : b) {
    if (matchedB.count(eb.name) != 0) continue;
    BenchDiffFinding x;
    x.kind = BenchDiffFinding::Kind::Missing;
    x.name = eb.name;
    result.findings.push_back(std::move(x));
  }
  return result;
}

}  // namespace iop::obs
