#include "obs/benchdiff.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace iop::obs {

namespace {

// Minimal scanner for the iop-bench/1 documents this repo writes: one
// top-level object with a "schema" string and a "results" array of flat
// objects holding string/number fields.  Anything outside that shape is
// rejected with a position, which is all the robustness machine-written
// bench artifacts need (no external JSON dependency).
class BenchScanner {
 public:
  explicit BenchScanner(const std::string& text) : text_(text) {}

  std::vector<BenchEntry> parse() {
    skipSpace();
    expect('{');
    std::string schema;
    std::vector<BenchEntry> entries;
    bool first = true;
    while (true) {
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skipSpace();
      }
      first = false;
      const std::string key = parseString();
      skipSpace();
      expect(':');
      skipSpace();
      if (key == "schema") {
        schema = parseString();
      } else if (key == "results") {
        entries = parseResults();
      } else {
        skipValue();
      }
    }
    if (schema != "iop-bench/1") {
      throw std::invalid_argument("bench json: schema '" + schema +
                                  "' is not iop-bench/1");
    }
    return entries;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("bench json, offset " +
                                std::to_string(pos_) + ": " + message);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Bench names are ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  void skipValue() {
    const char c = peek();
    if (c == '"') {
      parseString();
      return;
    }
    if (c == '{' || c == '[') {
      // Depth-count over the container, string-aware.
      int depth = 0;
      while (true) {
        const char d = peek();
        if (d == '"') {
          parseString();
          continue;
        }
        ++pos_;
        if (d == '{' || d == '[') {
          ++depth;
        } else if (d == '}' || d == ']') {
          if (--depth == 0) return;
        }
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return;
    }
    parseNumber();
  }

  std::vector<BenchEntry> parseResults() {
    std::vector<BenchEntry> out;
    expect('[');
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parseResult());
      skipSpace();
      if (peek() == ']') {
        ++pos_;
        return out;
      }
      expect(',');
      skipSpace();
    }
  }

  BenchEntry parseResult() {
    BenchEntry entry;
    expect('{');
    bool first = true;
    while (true) {
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skipSpace();
      }
      first = false;
      const std::string key = parseString();
      skipSpace();
      expect(':');
      skipSpace();
      if (key == "name") {
        entry.name = parseString();
      } else if (key == "iterations") {
        entry.iterations = static_cast<std::int64_t>(parseNumber());
      } else if (key == "ns_per_op") {
        entry.nsPerOp = parseNumber();
      } else if (key == "bytes_per_second") {
        entry.bytesPerSecond = parseNumber();
      } else {
        skipValue();
      }
    }
    if (entry.name.empty()) fail("result without a name");
    return entry;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double relChange(double a, double b) {
  if (a == 0) return b == 0 ? 0 : 100.0;
  return 100.0 * (b - a) / a;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::vector<BenchEntry> parseBenchJson(const std::string& text) {
  return BenchScanner(text).parse();
}

std::string BenchDiffFinding::describe() const {
  if (kind == Kind::Missing) {
    return name + ": present in only one run";
  }
  const char* dim = kind == Kind::NsPerOp ? "ns/op" : "bytes/s";
  char pct[32];
  std::snprintf(pct, sizeof pct, "%+.1f%%", deltaPct);
  return name + " " + dim + ": " + num(before) + " -> " + num(after) +
         " (" + pct + (regression ? ", regression)" : ")");
}

std::size_t BenchDiffResult::regressions() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.regression) ++n;
  }
  return n;
}

std::string BenchDiffResult::render() const {
  std::ostringstream out;
  out << "bench diff: " << comparedResults << " shared result(s), "
      << "threshold " << num(options.thresholdPct) << "%\n";
  if (findings.empty()) {
    out << "  no changes beyond threshold\n";
  } else {
    for (const auto& f : findings) {
      out << "  " << (f.regression ? "REGRESSION  " : "change      ")
          << f.describe() << "\n";
    }
  }
  out << "  " << regressions() << " regression(s), " << findings.size()
      << " finding(s)\n";
  return out.str();
}

BenchDiffResult diffBenchResults(const std::vector<BenchEntry>& a,
                                 const std::vector<BenchEntry>& b,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;
  result.options = options;
  std::map<std::string, const BenchEntry*> byNameB;
  for (const auto& e : b) byNameB[e.name] = &e;
  std::map<std::string, bool> matchedB;

  for (const auto& ea : a) {
    const auto it = byNameB.find(ea.name);
    if (it == byNameB.end()) {
      BenchDiffFinding x;
      x.kind = BenchDiffFinding::Kind::Missing;
      x.name = ea.name;
      result.findings.push_back(std::move(x));
      continue;
    }
    matchedB[ea.name] = true;
    ++result.comparedResults;
    const BenchEntry& eb = *it->second;
    if (ea.nsPerOp > 0 && eb.nsPerOp > 0) {
      const double d = relChange(ea.nsPerOp, eb.nsPerOp);
      if (std::fabs(d) > options.thresholdPct) {
        BenchDiffFinding x;
        x.kind = BenchDiffFinding::Kind::NsPerOp;
        x.regression = eb.nsPerOp > ea.nsPerOp;
        x.name = ea.name;
        x.before = ea.nsPerOp;
        x.after = eb.nsPerOp;
        x.deltaPct = d;
        result.findings.push_back(std::move(x));
      }
    }
    if (ea.bytesPerSecond > 0 && eb.bytesPerSecond > 0) {
      const double d = relChange(ea.bytesPerSecond, eb.bytesPerSecond);
      if (std::fabs(d) > options.thresholdPct) {
        BenchDiffFinding x;
        x.kind = BenchDiffFinding::Kind::BytesPerSecond;
        x.regression = eb.bytesPerSecond < ea.bytesPerSecond;
        x.name = ea.name;
        x.before = ea.bytesPerSecond;
        x.after = eb.bytesPerSecond;
        x.deltaPct = d;
        result.findings.push_back(std::move(x));
      }
    }
  }
  for (const auto& eb : b) {
    if (matchedB.count(eb.name) != 0) continue;
    BenchDiffFinding x;
    x.kind = BenchDiffFinding::Kind::Missing;
    x.name = eb.name;
    result.findings.push_back(std::move(x));
  }
  return result;
}

}  // namespace iop::obs
