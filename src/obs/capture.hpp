// Run captures: the persisted per-run summary that iop-diff compares.
//
// A capture is a small, versioned file holding the identity of a run
// (app, np, configuration), its makespan, the per-phase measured times and
// bandwidths, and the full metrics CSV (so histogram shapes travel with
// it).  Produced by `iop-stats --capture-out`, consumed by `iop-diff` and
// archived per-commit by the capture archive (obs/archive.hpp).
//
// Two on-disk formats share one first-line version stamp, so load()
// sniffs and reads either transparently:
//
// v1 (line-oriented text, '#'-free, labels last so they may hold spaces):
//   iop-capture v1
//   app <name>
//   np <n>
//   config <name>
//   makespan <seconds>
//   phases <count>
//   phase <id> <familyId> <weightBytes> <ioSeconds> <bandwidth> <label...>
//   metrics <lineCount>
//   <raw metrics CSV lines>
//   end
//
// v2 (columnar binary, self-contained — varint + delta + RLE + label
// dictionary + front-coded metrics CSV, one FNV-1a64 checksum per block
// so torn or bit-flipped files are detected, never mis-parsed; see
// capturev2.cpp for the exact layout).  Typically 3-5x smaller than the
// v1 encoding of the same run and byte-semantics-identical on read-back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace iop::obs {

struct CapturePhase {
  int id = 0;
  int familyId = 0;
  std::uint64_t weightBytes = 0;
  double ioSeconds = 0;   ///< measured I/O time of the phase
  double bandwidth = 0;   ///< weight / ioSeconds (bytes/s)
  std::string label;      ///< "W"/"R"/"W-R" plus file id
};

enum class CaptureFormat { V1, V2 };

/// "v1" | "v2" (throws std::invalid_argument).
CaptureFormat parseCaptureFormat(const std::string& name);

struct RunCapture {
  std::string app;
  int np = 0;
  std::string config;
  double makespan = 0;
  std::vector<CapturePhase> phases;
  std::string metricsCsv;  ///< may be empty when metrics were off

  void write(std::ostream& out) const;  ///< v1 text
  void save(const std::string& path,
            CaptureFormat format = CaptureFormat::V1) const;

  /// Serialize to a byte string in the requested format.
  std::string serialize(CaptureFormat format) const;

  static RunCapture read(std::istream& in);  ///< v1 text only (throws)
  /// Version-sniffing parse of a whole file's bytes: reads v1 and v2.
  static RunCapture parse(const std::string& bytes);
  static RunCapture load(const std::string& path);  ///< sniffs v1/v2
};

namespace detail {
/// v2 codec internals (capturev2.cpp); use RunCapture::parse/serialize.
std::string encodeCaptureV2(const RunCapture& cap);
RunCapture decodeCaptureV2(const std::string& bytes);
}  // namespace detail

}  // namespace iop::obs
