// Run captures: the persisted per-run summary that iop-diff compares.
//
// A capture is a small, versioned text file holding the identity of a run
// (app, np, configuration), its makespan, the per-phase measured times and
// bandwidths, and the full metrics CSV (so histogram shapes travel with
// it).  Produced by `iop-stats --capture-out`, consumed by `iop-diff`.
//
// Format (line-oriented, '#'-free, labels last so they may hold spaces):
//   iop-capture v1
//   app <name>
//   np <n>
//   config <name>
//   makespan <seconds>
//   phases <count>
//   phase <id> <familyId> <weightBytes> <ioSeconds> <bandwidth> <label...>
//   metrics <lineCount>
//   <raw metrics CSV lines>
//   end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace iop::obs {

struct CapturePhase {
  int id = 0;
  int familyId = 0;
  std::uint64_t weightBytes = 0;
  double ioSeconds = 0;   ///< measured I/O time of the phase
  double bandwidth = 0;   ///< weight / ioSeconds (bytes/s)
  std::string label;      ///< "W"/"R"/"W-R" plus file id
};

struct RunCapture {
  std::string app;
  int np = 0;
  std::string config;
  double makespan = 0;
  std::vector<CapturePhase> phases;
  std::string metricsCsv;  ///< may be empty when metrics were off

  void write(std::ostream& out) const;
  void save(const std::string& path) const;

  static RunCapture read(std::istream& in);      ///< throws on bad format
  static RunCapture load(const std::string& path);
};

}  // namespace iop::obs
