#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace iop::obs {

namespace {

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

double relChange(double a, double b) {
  if (a == 0) return b == 0 ? 0 : 100.0;
  return 100.0 * (b - a) / a;
}

/// Normalized L1 distance between two bucket-count vectors (0 = identical
/// shape, 2 = disjoint support).
double l1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double sumA = 0;
  double sumB = 0;
  for (double v : a) sumA += v;
  for (double v : b) sumB += v;
  if (sumA == 0 || sumB == 0) return sumA == sumB ? 0 : 2;
  double d = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pa = i < a.size() ? a[i] / sumA : 0;
    const double pb = i < b.size() ? b[i] / sumB : 0;
    d += std::fabs(pa - pb);
  }
  return d;
}

/// Weight similarity in [0, 1]: 1 for identical weights, approaching 0 as
/// the weights diverge.
double weightSimilarity(const CapturePhase& x, const CapturePhase& y) {
  const double wa = static_cast<double>(x.weightBytes);
  const double wb = static_cast<double>(y.weightBytes);
  const double hi = std::max({wa, wb, 1.0});
  return 1.0 - std::fabs(wa - wb) / hi;
}

/// Order-preserving alignment of two same-label phase sequences: a classic
/// gap-allowed DP maximizing total weight similarity, with matches below
/// kMinSimilarity forbidden (those phases are better reported missing than
/// force-paired).  Group sizes are phase counts, so O(n*m) is fine.
constexpr double kMinSimilarity = 0.5;

std::vector<std::pair<const CapturePhase*, const CapturePhase*>>
alignGroup(const std::vector<const CapturePhase*>& as,
           const std::vector<const CapturePhase*>& bs) {
  const std::size_t n = as.size();
  const std::size_t m = bs.size();
  std::vector<std::vector<double>> score(n + 1,
                                         std::vector<double>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      double best = std::max(score[i - 1][j], score[i][j - 1]);
      const double sim = weightSimilarity(*as[i - 1], *bs[j - 1]);
      if (sim >= kMinSimilarity) {
        best = std::max(best, score[i - 1][j - 1] + sim);
      }
      score[i][j] = best;
    }
  }
  std::vector<std::pair<const CapturePhase*, const CapturePhase*>> rev;
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0) {
      const double sim = weightSimilarity(*as[i - 1], *bs[j - 1]);
      if (sim >= kMinSimilarity &&
          score[i][j] == score[i - 1][j - 1] + sim) {
        rev.emplace_back(as[i - 1], bs[j - 1]);
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && (j == 0 || score[i][j] == score[i - 1][j])) {
      rev.emplace_back(as[i - 1], nullptr);
      --i;
    } else {
      rev.emplace_back(nullptr, bs[j - 1]);
      --j;
    }
  }
  return {rev.rbegin(), rev.rend()};
}

}  // namespace

AlignMode parseAlignMode(const std::string& name) {
  if (name == "id") return AlignMode::ById;
  if (name == "similarity") return AlignMode::BySimilarity;
  throw std::invalid_argument("unknown align mode '" + name +
                              "' (use id or similarity)");
}

std::vector<std::pair<const CapturePhase*, const CapturePhase*>>
alignPhases(const RunCapture& a, const RunCapture& b, AlignMode mode) {
  std::vector<std::pair<const CapturePhase*, const CapturePhase*>> pairs;
  if (mode == AlignMode::ById) {
    std::map<int, const CapturePhase*> phasesB;
    for (const auto& p : b.phases) phasesB[p.id] = &p;
    std::map<int, const CapturePhase*> matchedB;
    for (const auto& pa : a.phases) {
      const auto it = phasesB.find(pa.id);
      if (it == phasesB.end()) {
        pairs.emplace_back(&pa, nullptr);
      } else {
        pairs.emplace_back(&pa, it->second);
        matchedB[pa.id] = it->second;
      }
    }
    for (const auto& pb : b.phases) {
      if (matchedB.count(pb.id) == 0) pairs.emplace_back(nullptr, &pb);
    }
    return pairs;
  }

  // BySimilarity: bucket both sides by label (keyed in a's order of first
  // appearance, b-only labels after), then align each bucket's sequences.
  std::vector<std::string> labelOrder;
  std::map<std::string, std::vector<const CapturePhase*>> groupA;
  std::map<std::string, std::vector<const CapturePhase*>> groupB;
  for (const auto& pa : a.phases) {
    if (groupA.count(pa.label) == 0 && groupB.count(pa.label) == 0) {
      labelOrder.push_back(pa.label);
    }
    groupA[pa.label].push_back(&pa);
  }
  for (const auto& pb : b.phases) {
    if (groupA.count(pb.label) == 0 && groupB.count(pb.label) == 0) {
      labelOrder.push_back(pb.label);
    }
    groupB[pb.label].push_back(&pb);
  }
  std::vector<std::pair<const CapturePhase*, const CapturePhase*>> bOnly;
  for (const auto& label : labelOrder) {
    for (auto& pair : alignGroup(groupA[label], groupB[label])) {
      (pair.first != nullptr ? pairs : bOnly).push_back(pair);
    }
  }
  pairs.insert(pairs.end(), bOnly.begin(), bOnly.end());
  return pairs;
}

std::vector<std::pair<std::string, std::vector<double>>>
parseHistogramBuckets(const std::string& metricsCsv) {
  std::vector<std::pair<std::string, std::vector<double>>> out;
  std::istringstream in(metricsCsv);
  std::string line;
  while (std::getline(in, line)) {
    // metric,kind,field,value — histogram bucket rows have field le_*.
    const auto c1 = line.find(',');
    if (c1 == std::string::npos) continue;
    const auto c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos) continue;
    const auto c3 = line.find(',', c2 + 1);
    if (c3 == std::string::npos) continue;
    if (line.compare(c1 + 1, c2 - c1 - 1, "histogram") != 0) continue;
    if (line.compare(c2 + 1, 3, "le_") != 0) continue;
    const std::string name = line.substr(0, c1);
    const double value = std::strtod(line.c_str() + c3 + 1, nullptr);
    if (out.empty() || out.back().first != name) {
      out.emplace_back(name, std::vector<double>{});
    }
    out.back().second.push_back(value);
  }
  return out;
}

std::string DiffFinding::describe() const {
  std::string what;
  switch (kind) {
    case Kind::Makespan: what = "makespan"; break;
    case Kind::PhaseTime:
      what = "phase " + std::to_string(phaseId) + " [" + subject + "] time";
      break;
    case Kind::PhaseBandwidth:
      what = "phase " + std::to_string(phaseId) + " [" + subject +
             "] bandwidth";
      break;
    case Kind::PhaseMissing:
      what = "phase " + std::to_string(phaseId) + " [" + subject + "]";
      break;
    case Kind::HistogramShape:
      what = "histogram " + subject + " shape";
      break;
  }
  if (kind == Kind::PhaseMissing) {
    return what + ": present in only one run";
  }
  if (kind == Kind::HistogramShape) {
    return what + ": L1 distance " + num(after) +
           (regression ? " (changed)" : "");
  }
  return what + ": " + num(before) + " -> " + num(after) + " (" +
         pct(deltaPct) + (regression ? ", regression)" : ")");
}

std::size_t DiffResult::regressions() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.regression) ++n;
  }
  return n;
}

std::string DiffResult::render(const RunCapture& a,
                               const RunCapture& b) const {
  std::ostringstream out;
  out << "diff: " << a.app << " np=" << a.np << " on " << a.config
      << "  vs  " << b.app << " np=" << b.np << " on " << b.config << "\n";
  out << "  makespan " << num(a.makespan) << " s -> " << num(b.makespan)
      << " s (" << pct(relChange(a.makespan, b.makespan)) << ")\n";
  if (findings.empty()) {
    out << "  no changes beyond thresholds ("
        << num(options.thresholdPct) << "% / L1 "
        << num(options.histThreshold) << ")\n";
  } else {
    for (const auto& f : findings) {
      out << "  " << (f.regression ? "REGRESSION  " : "change      ")
          << f.describe() << "\n";
    }
  }
  out << "  " << regressions() << " regression(s), " << findings.size()
      << " finding(s)\n";
  return out.str();
}

DiffResult diffCaptures(const RunCapture& a, const RunCapture& b,
                        const DiffOptions& options) {
  DiffResult result;
  result.options = options;
  auto& f = result.findings;

  {
    const double d = relChange(a.makespan, b.makespan);
    if (std::fabs(d) > options.thresholdPct &&
        std::fabs(b.makespan - a.makespan) > options.minSeconds) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::Makespan;
      x.regression = b.makespan > a.makespan;
      x.subject = "makespan";
      x.before = a.makespan;
      x.after = b.makespan;
      x.deltaPct = d;
      f.push_back(std::move(x));
    }
  }

  for (const auto& [paPtr, pbPtr] : alignPhases(a, b, options.align)) {
    if (paPtr == nullptr || pbPtr == nullptr) {
      const CapturePhase& only = paPtr != nullptr ? *paPtr : *pbPtr;
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseMissing;
      x.regression = true;
      x.phaseId = only.id;
      x.subject = only.label;
      f.push_back(std::move(x));
      continue;
    }
    const CapturePhase& pa = *paPtr;
    const CapturePhase& pb = *pbPtr;
    // Under similarity alignment a pair may carry two different ids; name
    // the match in the subject so findings stay traceable to both runs.
    const std::string subject =
        pa.id == pb.id ? pa.label
                       : pa.label + " ~ b:" + std::to_string(pb.id);
    const double dt = relChange(pa.ioSeconds, pb.ioSeconds);
    if (std::fabs(dt) > options.thresholdPct &&
        std::fabs(pb.ioSeconds - pa.ioSeconds) > options.minSeconds) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseTime;
      x.regression = pb.ioSeconds > pa.ioSeconds;
      x.phaseId = pa.id;
      x.subject = subject;
      x.before = pa.ioSeconds;
      x.after = pb.ioSeconds;
      x.deltaPct = dt;
      f.push_back(std::move(x));
    }
    const double db = relChange(pa.bandwidth, pb.bandwidth);
    if (std::fabs(db) > options.thresholdPct && pa.bandwidth > 0 &&
        pb.bandwidth > 0) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseBandwidth;
      x.regression = pb.bandwidth < pa.bandwidth;
      x.phaseId = pa.id;
      x.subject = subject;
      x.before = pa.bandwidth;
      x.after = pb.bandwidth;
      x.deltaPct = db;
      f.push_back(std::move(x));
    }
  }

  if (!a.metricsCsv.empty() && !b.metricsCsv.empty()) {
    const auto histA = parseHistogramBuckets(a.metricsCsv);
    std::map<std::string, const std::vector<double>*> histB;
    const auto parsedB = parseHistogramBuckets(b.metricsCsv);
    for (const auto& [name, buckets] : parsedB) histB[name] = &buckets;
    for (const auto& [name, bucketsA] : histA) {
      const auto it = histB.find(name);
      if (it == histB.end()) continue;
      const double d = l1Distance(bucketsA, *it->second);
      if (d > options.histThreshold) {
        DiffFinding x;
        x.kind = DiffFinding::Kind::HistogramShape;
        x.regression = true;  // a shape change is always worth a look in CI
        x.subject = name;
        x.after = d;
        f.push_back(std::move(x));
      }
    }
  }

  return result;
}

}  // namespace iop::obs
