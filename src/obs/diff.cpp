#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace iop::obs {

namespace {

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

double relChange(double a, double b) {
  if (a == 0) return b == 0 ? 0 : 100.0;
  return 100.0 * (b - a) / a;
}

/// Normalized L1 distance between two bucket-count vectors (0 = identical
/// shape, 2 = disjoint support).
double l1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double sumA = 0;
  double sumB = 0;
  for (double v : a) sumA += v;
  for (double v : b) sumB += v;
  if (sumA == 0 || sumB == 0) return sumA == sumB ? 0 : 2;
  double d = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pa = i < a.size() ? a[i] / sumA : 0;
    const double pb = i < b.size() ? b[i] / sumB : 0;
    d += std::fabs(pa - pb);
  }
  return d;
}

}  // namespace

std::vector<std::pair<std::string, std::vector<double>>>
parseHistogramBuckets(const std::string& metricsCsv) {
  std::vector<std::pair<std::string, std::vector<double>>> out;
  std::istringstream in(metricsCsv);
  std::string line;
  while (std::getline(in, line)) {
    // metric,kind,field,value — histogram bucket rows have field le_*.
    const auto c1 = line.find(',');
    if (c1 == std::string::npos) continue;
    const auto c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos) continue;
    const auto c3 = line.find(',', c2 + 1);
    if (c3 == std::string::npos) continue;
    if (line.compare(c1 + 1, c2 - c1 - 1, "histogram") != 0) continue;
    if (line.compare(c2 + 1, 3, "le_") != 0) continue;
    const std::string name = line.substr(0, c1);
    const double value = std::strtod(line.c_str() + c3 + 1, nullptr);
    if (out.empty() || out.back().first != name) {
      out.emplace_back(name, std::vector<double>{});
    }
    out.back().second.push_back(value);
  }
  return out;
}

std::string DiffFinding::describe() const {
  std::string what;
  switch (kind) {
    case Kind::Makespan: what = "makespan"; break;
    case Kind::PhaseTime:
      what = "phase " + std::to_string(phaseId) + " [" + subject + "] time";
      break;
    case Kind::PhaseBandwidth:
      what = "phase " + std::to_string(phaseId) + " [" + subject +
             "] bandwidth";
      break;
    case Kind::PhaseMissing:
      what = "phase " + std::to_string(phaseId) + " [" + subject + "]";
      break;
    case Kind::HistogramShape:
      what = "histogram " + subject + " shape";
      break;
  }
  if (kind == Kind::PhaseMissing) {
    return what + ": present in only one run";
  }
  if (kind == Kind::HistogramShape) {
    return what + ": L1 distance " + num(after) +
           (regression ? " (changed)" : "");
  }
  return what + ": " + num(before) + " -> " + num(after) + " (" +
         pct(deltaPct) + (regression ? ", regression)" : ")");
}

std::size_t DiffResult::regressions() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.regression) ++n;
  }
  return n;
}

std::string DiffResult::render(const RunCapture& a,
                               const RunCapture& b) const {
  std::ostringstream out;
  out << "diff: " << a.app << " np=" << a.np << " on " << a.config
      << "  vs  " << b.app << " np=" << b.np << " on " << b.config << "\n";
  out << "  makespan " << num(a.makespan) << " s -> " << num(b.makespan)
      << " s (" << pct(relChange(a.makespan, b.makespan)) << ")\n";
  if (findings.empty()) {
    out << "  no changes beyond thresholds ("
        << num(options.thresholdPct) << "% / L1 "
        << num(options.histThreshold) << ")\n";
  } else {
    for (const auto& f : findings) {
      out << "  " << (f.regression ? "REGRESSION  " : "change      ")
          << f.describe() << "\n";
    }
  }
  out << "  " << regressions() << " regression(s), " << findings.size()
      << " finding(s)\n";
  return out.str();
}

DiffResult diffCaptures(const RunCapture& a, const RunCapture& b,
                        const DiffOptions& options) {
  DiffResult result;
  result.options = options;
  auto& f = result.findings;

  {
    const double d = relChange(a.makespan, b.makespan);
    if (std::fabs(d) > options.thresholdPct &&
        std::fabs(b.makespan - a.makespan) > options.minSeconds) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::Makespan;
      x.regression = b.makespan > a.makespan;
      x.subject = "makespan";
      x.before = a.makespan;
      x.after = b.makespan;
      x.deltaPct = d;
      f.push_back(std::move(x));
    }
  }

  std::map<int, const CapturePhase*> phasesB;
  for (const auto& p : b.phases) phasesB[p.id] = &p;
  std::map<int, const CapturePhase*> phasesA;
  for (const auto& p : a.phases) phasesA[p.id] = &p;

  for (const auto& pa : a.phases) {
    const auto it = phasesB.find(pa.id);
    if (it == phasesB.end()) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseMissing;
      x.regression = true;
      x.phaseId = pa.id;
      x.subject = pa.label;
      f.push_back(std::move(x));
      continue;
    }
    const CapturePhase& pb = *it->second;
    const double dt = relChange(pa.ioSeconds, pb.ioSeconds);
    if (std::fabs(dt) > options.thresholdPct &&
        std::fabs(pb.ioSeconds - pa.ioSeconds) > options.minSeconds) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseTime;
      x.regression = pb.ioSeconds > pa.ioSeconds;
      x.phaseId = pa.id;
      x.subject = pa.label;
      x.before = pa.ioSeconds;
      x.after = pb.ioSeconds;
      x.deltaPct = dt;
      f.push_back(std::move(x));
    }
    const double db = relChange(pa.bandwidth, pb.bandwidth);
    if (std::fabs(db) > options.thresholdPct && pa.bandwidth > 0 &&
        pb.bandwidth > 0) {
      DiffFinding x;
      x.kind = DiffFinding::Kind::PhaseBandwidth;
      x.regression = pb.bandwidth < pa.bandwidth;
      x.phaseId = pa.id;
      x.subject = pa.label;
      x.before = pa.bandwidth;
      x.after = pb.bandwidth;
      x.deltaPct = db;
      f.push_back(std::move(x));
    }
  }
  for (const auto& pb : b.phases) {
    if (phasesA.count(pb.id) != 0) continue;
    DiffFinding x;
    x.kind = DiffFinding::Kind::PhaseMissing;
    x.regression = true;
    x.phaseId = pb.id;
    x.subject = pb.label;
    f.push_back(std::move(x));
  }

  if (!a.metricsCsv.empty() && !b.metricsCsv.empty()) {
    const auto histA = parseHistogramBuckets(a.metricsCsv);
    std::map<std::string, const std::vector<double>*> histB;
    const auto parsedB = parseHistogramBuckets(b.metricsCsv);
    for (const auto& [name, buckets] : parsedB) histB[name] = &buckets;
    for (const auto& [name, bucketsA] : histA) {
      const auto it = histB.find(name);
      if (it == histB.end()) continue;
      const double d = l1Distance(bucketsA, *it->second);
      if (d > options.histThreshold) {
        DiffFinding x;
        x.kind = DiffFinding::Kind::HistogramShape;
        x.regression = true;  // a shape change is always worth a look in CI
        x.subject = name;
        x.after = d;
        f.push_back(std::move(x));
      }
    }
  }

  return result;
}

}  // namespace iop::obs
