#include "core/offsetfn.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/units.hpp"

namespace iop::core {

namespace {

constexpr double kTolerance = 0.5;  // bytes: offsets are integers

bool nearlyInteger(double v) {
  return std::abs(v - std::round(v)) < 1e-9 * std::max(1.0, std::abs(v));
}

/// Render one "<coeff>*rs" style term; coeff expressed as a multiple of rs
/// when integral, else raw bytes.
std::string renderCoeff(double bytes, std::uint64_t rsBytes) {
  if (rsBytes > 0) {
    const double mult = bytes / static_cast<double>(rsBytes);
    if (nearlyInteger(mult)) {
      const long long m = static_cast<long long>(std::llround(mult));
      // Show the concrete size only when it is a clean MB/GB multiple
      // ("idP*8*32MB"); otherwise stay symbolic ("idP*rs"), like Table XI.
      const bool clean = rsBytes % (1ULL << 20) == 0;
      const std::string rsText = clean ? util::formatBytes(rsBytes) : "rs";
      if (m == 1) return rsText;
      return std::to_string(m) + "*" + rsText;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fB", bytes);
  return buf;
}

}  // namespace

std::string OffsetFn::render(std::uint64_t rsBytes, int np) const {
  if (!exact) return "(irregular)";
  std::string out;
  if (aBytes != 0) {
    out += "idP*" + renderCoeff(aBytes, rsBytes);
  }
  if (cBytes != 0) {
    if (!out.empty()) out += " + ";
    // Prefer the Table XI form when the coefficient is rs*np.
    if (rsBytes > 0 && np > 0 &&
        std::abs(cBytes - static_cast<double>(rsBytes) * np) < kTolerance) {
      out += renderCoeff(static_cast<double>(rsBytes), rsBytes) + "*np*(ph-1)";
    } else {
      out += renderCoeff(cBytes, rsBytes) + "*(ph-1)";
    }
  }
  if (bBytes != 0) {
    if (!out.empty()) out += bBytes >= 0 ? " + " : " - ";
    out += renderCoeff(std::abs(bBytes), rsBytes);
  }
  if (out.empty()) out = "0";
  return out;
}

OffsetFn fitRankOffsets(const std::vector<int>& ranks,
                        const std::vector<std::uint64_t>& offsets) {
  if (ranks.size() != offsets.size() || ranks.empty()) {
    throw std::invalid_argument("fitRankOffsets: bad input sizes");
  }
  OffsetFn fn;
  if (ranks.size() == 1) {
    fn.exact = true;
    fn.aBytes = 0;
    fn.bBytes = static_cast<double>(offsets[0]);
    return fn;
  }
  // Use the first two distinct ranks to solve a*idP + b, verify the rest.
  std::size_t second = 1;
  while (second < ranks.size() && ranks[second] == ranks[0]) ++second;
  if (second == ranks.size()) {
    // All the same rank: degenerate; treat like a single sample.
    fn.exact = true;
    fn.bBytes = static_cast<double>(offsets[0]);
    return fn;
  }
  const double a = (static_cast<double>(offsets[second]) -
                    static_cast<double>(offsets[0])) /
                   (ranks[second] - ranks[0]);
  const double b = static_cast<double>(offsets[0]) - a * ranks[0];
  fn.aBytes = a;
  fn.bBytes = b;
  fn.exact = true;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const double predicted = a * ranks[i] + b;
    if (std::abs(predicted - static_cast<double>(offsets[i])) > kTolerance) {
      fn.exact = false;
      break;
    }
  }
  return fn;
}

OffsetFn fitPhaseFamily(const std::vector<OffsetFn>& phaseFns) {
  if (phaseFns.empty()) {
    throw std::invalid_argument("fitPhaseFamily: empty family");
  }
  OffsetFn fn = phaseFns[0];
  if (!fn.exact) return fn;
  if (phaseFns.size() == 1) {
    fn.cBytes = 0;
    return fn;
  }
  for (const auto& p : phaseFns) {
    if (!p.exact || std::abs(p.aBytes - fn.aBytes) > kTolerance) {
      fn.exact = false;
      return fn;
    }
  }
  const double c = phaseFns[1].bBytes - phaseFns[0].bBytes;
  for (std::size_t ph = 0; ph < phaseFns.size(); ++ph) {
    const double predicted = phaseFns[0].bBytes + c * static_cast<double>(ph);
    if (std::abs(predicted - phaseFns[ph].bBytes) > kTolerance) {
      fn.exact = false;
      return fn;
    }
  }
  fn.bBytes = phaseFns[0].bBytes;
  fn.cBytes = c;
  return fn;
}

}  // namespace iop::core
