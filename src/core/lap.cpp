#include "core/lap.hpp"

#include "obs/profiler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/table.hpp"

namespace iop::core {

namespace {

void requireHomogeneous(const std::vector<trace::Record>& records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].rank != records[0].rank ||
        records[i].fileId != records[0].fileId) {
      throw std::invalid_argument(
          "records must belong to a single (rank, file) pair");
    }
  }
}

bool sameSig(const trace::Record& a, const trace::Record& b) {
  return a.op == b.op && a.requestBytes == b.requestBytes;
}

std::int64_t offsetDelta(const trace::Record& later,
                         const trace::Record& earlier) {
  return static_cast<std::int64_t>(later.offsetUnits) -
         static_cast<std::int64_t>(earlier.offsetUnits);
}

}  // namespace

std::vector<Lap> extractLaps(const std::vector<trace::Record>& records) {
  requireHomogeneous(records);
  std::vector<Lap> laps;
  std::size_t i = 0;
  const std::size_t n = records.size();
  while (i < n) {
    Lap lap;
    lap.idP = records[i].rank;
    lap.idF = records[i].fileId;
    lap.op = records[i].op;
    lap.rsBytes = records[i].requestBytes;
    lap.initOffsetUnits = records[i].offsetUnits;
    lap.firstTick = records[i].tick;
    lap.lastTick = records[i].tick;
    lap.rep = 1;
    std::size_t j = i + 1;
    while (j < n && sameSig(records[j], records[i])) {
      const std::int64_t delta = offsetDelta(records[j], records[j - 1]);
      if (lap.rep == 1) {
        lap.dispUnits = delta;
      } else if (delta != lap.dispUnits) {
        break;
      }
      lap.lastTick = records[j].tick;
      ++lap.rep;
      ++j;
    }
    laps.push_back(std::move(lap));
    i = j;
  }
  return laps;
}

std::uint64_t Segment::bytesPerRep() const {
  std::uint64_t total = 0;
  for (const auto& op : ops) total += op.rsBytes;
  return total;
}

namespace {

/// Largest c such that records[i .. i + c*k) is c repetitions of the cycle
/// records[i .. i+k) with per-position constant offset deltas.
std::uint64_t maxCycles(const std::vector<trace::Record>& r, std::size_t i,
                        std::size_t k) {
  const std::size_t n = r.size();
  std::vector<std::int64_t> disp(k, 0);
  std::uint64_t c = 1;
  for (;;) {
    const std::size_t base = i + static_cast<std::size_t>(c) * k;
    if (base + k > n) break;
    bool match = true;
    for (std::size_t j = 0; j < k && match; ++j) {
      if (!sameSig(r[base + j], r[i + j])) {
        match = false;
        break;
      }
      const std::int64_t delta = offsetDelta(r[base + j], r[base + j - k]);
      if (c == 1) {
        disp[j] = delta;
      } else if (delta != disp[j]) {
        match = false;
      }
    }
    if (!match) break;
    ++c;
  }
  return c;
}

Segment makeSegment(const std::vector<trace::Record>& r, std::size_t i,
                    std::size_t k, std::uint64_t c) {
  Segment seg;
  seg.idP = r[i].rank;
  seg.idF = r[i].fileId;
  for (std::size_t j = 0; j < k; ++j) {
    CycleOp op;
    op.op = r[i + j].op;
    op.rsBytes = r[i + j].requestBytes;
    op.initOffsetUnits = r[i + j].offsetUnits;
    op.dispUnits = c >= 2 ? offsetDelta(r[i + k + j], r[i + j]) : 0;
    seg.ops.push_back(std::move(op));
  }
  seg.rep = c;
  for (std::uint64_t m = 0; m < c; ++m) {
    const std::size_t first = i + static_cast<std::size_t>(m) * k;
    const std::size_t last = first + k - 1;
    seg.repFirstTicks.push_back(r[first].tick);
    seg.repLastTicks.push_back(r[last].tick);
    seg.repStartTimes.push_back(r[first].time);
    seg.repEndTimes.push_back(r[last].time + r[last].duration);
    double io = 0;
    for (std::size_t p = first; p <= last; ++p) {
      io += r[p].duration;
      seg.opWindows.emplace_back(r[p].time, r[p].time + r[p].duration);
    }
    seg.repIoDurations.push_back(io);
  }
  return seg;
}

std::vector<Segment> segmentGreedy(const std::vector<trace::Record>& r,
                                   const SegmentOptions& options) {
  std::vector<Segment> out;
  std::size_t i = 0;
  const std::size_t n = r.size();
  while (i < n) {
    std::size_t bestK = 1;
    std::uint64_t bestC = 1;
    std::uint64_t bestCoverage = 1;
    for (std::size_t k = 1;
         k <= static_cast<std::size_t>(options.maxCycle) && i + k <= n; ++k) {
      const std::uint64_t c = maxCycles(r, i, k);
      if (k > 1 && c < 2) continue;
      const std::uint64_t coverage = c * k;
      if (coverage > bestCoverage) {
        bestCoverage = coverage;
        bestK = k;
        bestC = c;
      }
    }
    out.push_back(makeSegment(r, i, bestK, bestC));
    i += static_cast<std::size_t>(bestCoverage);
  }
  return out;
}

}  // namespace

std::vector<Segment> segmentRecords(const std::vector<trace::Record>& records,
                                    const SegmentOptions& options) {
  IOP_PROFILE_SCOPE("lap.segment");
  requireHomogeneous(records);
  if (options.maxCycle < 1) {
    throw std::invalid_argument("maxCycle must be >= 1");
  }
  const std::size_t n = records.size();
  if (n == 0) return {};
  if (n > options.dpLimit) return segmentGreedy(records, options);

  // DP over suffixes: minimize segment count, tie-break on maximal
  // sum-of-squared segment lengths (prefers long cycles — e.g. the paper's
  // [R x2][(R,W) x6][W x2] split of MADbench2's W function over the greedy
  // [R x3][(W,R) x5][W x3]).
  struct Best {
    std::uint64_t segments = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t score = 0;  // sum of squared lengths
    std::size_t k = 1;
    std::uint64_t c = 1;
  };
  std::vector<Best> best(n + 1);
  best[n] = Best{0, 0, 1, 0};
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = 1;
         k <= static_cast<std::size_t>(options.maxCycle) && i + k <= n; ++k) {
      const std::uint64_t cMax = maxCycles(records, i, k);
      const std::uint64_t cMin = k == 1 ? 1 : 2;
      if (cMax < cMin) continue;
      for (std::uint64_t c = cMin; c <= cMax; ++c) {
        const std::size_t next = i + static_cast<std::size_t>(c) * k;
        if (best[next].segments ==
            std::numeric_limits<std::uint64_t>::max()) {
          continue;
        }
        const std::uint64_t len = c * k;
        const std::uint64_t segs = best[next].segments + 1;
        const std::uint64_t score = best[next].score + len * len;
        Best& cur = best[i];
        if (segs < cur.segments ||
            (segs == cur.segments && score > cur.score) ||
            (segs == cur.segments && score == cur.score && k < cur.k)) {
          cur = Best{segs, score, k, c};
        }
      }
    }
  }

  std::vector<Segment> out;
  std::size_t i = 0;
  while (i < n) {
    const Best& b = best[i];
    out.push_back(makeSegment(records, i, b.k, b.c));
    i += static_cast<std::size_t>(b.c) * b.k;
  }
  return out;
}

std::string renderLapTable(const std::vector<Lap>& laps) {
  util::Table table;
  table.setHeader({"IdP", "IdF", "MPI-Operation", "Rep", "RequestSize",
                   "Disp", "OffsetInit"},
                  {util::Align::Right, util::Align::Right, util::Align::Left,
                   util::Align::Right, util::Align::Right, util::Align::Right,
                   util::Align::Right});
  for (const auto& lap : laps) {
    table.addRow({std::to_string(lap.idP), std::to_string(lap.idF), lap.op,
                  std::to_string(lap.rep), std::to_string(lap.rsBytes),
                  std::to_string(lap.dispUnits),
                  std::to_string(lap.initOffsetUnits)});
  }
  return table.render();
}

}  // namespace iop::core
