#include "core/phase.hpp"

#include "obs/profiler.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"
#include "util/units.hpp"

namespace iop::core {

namespace {

/// A tick-contiguous slice of one rank's segment: a candidate phase member.
struct LocalPhase {
  int idP = 0;
  int idF = 0;
  std::vector<CycleOp> ops;  ///< initOffsetUnits adjusted to the slice
  std::uint64_t rep = 0;
  std::uint64_t firstTick = 0;
  std::uint64_t lastTick = 0;
  double startTime = 0;
  double endTime = 0;
  double ioDuration = 0;
  std::vector<std::pair<double, double>> opWindows;
  std::string signature;  ///< grouping key (ops/rs/disp/rep)
  std::size_t occurrence = 0;  ///< n-th local phase with this signature
};

std::string signatureOf(const std::vector<CycleOp>& ops, std::uint64_t rep) {
  std::ostringstream sig;
  sig << rep << '|';
  for (const auto& op : ops) {
    sig << op.op << ':' << op.rsBytes << ':' << op.dispUnits << ';';
  }
  return sig.str();
}

/// Split one segment at tick gaps into local phases.
void splitSegment(const Segment& seg, std::uint64_t maxGap,
                  std::vector<LocalPhase>& out) {
  std::uint64_t m = 0;
  while (m < seg.rep) {
    std::uint64_t end = m + 1;
    while (end < seg.rep &&
           seg.repFirstTicks[end] - seg.repLastTicks[end - 1] <= maxGap) {
      ++end;
    }
    LocalPhase lp;
    lp.idP = seg.idP;
    lp.idF = seg.idF;
    lp.rep = end - m;
    lp.ops = seg.ops;
    for (auto& op : lp.ops) {
      op.initOffsetUnits = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(op.initOffsetUnits) +
          op.dispUnits * static_cast<std::int64_t>(m));
    }
    lp.firstTick = seg.repFirstTicks[m];
    lp.lastTick = seg.repLastTicks[end - 1];
    lp.startTime = seg.repStartTimes[m];
    lp.endTime = seg.repEndTimes[end - 1];
    const std::size_t k = seg.ops.size();
    for (std::uint64_t i = m; i < end; ++i) {
      lp.ioDuration += seg.repIoDurations[i];
      for (std::size_t j = 0; j < k; ++j) {
        lp.opWindows.push_back(
            seg.opWindows[static_cast<std::size_t>(i) * k + j]);
      }
    }
    lp.signature = signatureOf(lp.ops, lp.rep);
    out.push_back(std::move(lp));
    m = end;
  }
}

/// Total length of the union of wall windows.
double unionSeconds(std::vector<std::pair<double, double>> windows) {
  if (windows.empty()) return 0;
  std::sort(windows.begin(), windows.end());
  double total = 0;
  double curBegin = windows.front().first;
  double curEnd = windows.front().second;
  for (const auto& [b, e] : windows) {
    if (b > curEnd) {
      total += curEnd - curBegin;
      curBegin = b;
      curEnd = e;
    } else {
      curEnd = std::max(curEnd, e);
    }
  }
  total += curEnd - curBegin;
  return total;
}

}  // namespace

bool Phase::anyCollective() const {
  for (const auto& op : ops) {
    if (trace::isCollectiveOp(op.op)) return true;
  }
  return false;
}

std::string Phase::opTypeLabel() const {
  bool hasWrite = false;
  bool hasRead = false;
  for (const auto& op : ops) {
    if (op.isWrite()) {
      hasWrite = true;
    } else {
      hasRead = true;
    }
  }
  if (hasWrite && hasRead) return "W-R";
  return hasWrite ? "W" : "R";
}

std::vector<Phase> detectPhases(const trace::TraceData& data,
                                const PhaseDetectionOptions& options) {
  IOP_PROFILE_SCOPE("phase.group");
  // 1. Per (rank, file): segment + tick-split into local phases.
  std::vector<LocalPhase> locals;
  for (int rank = 0; rank < data.np; ++rank) {
    const auto& records = data.perRank[static_cast<std::size_t>(rank)];
    // Partition this rank's records by file, preserving order; drop
    // metadata noise when a threshold is configured.
    std::map<int, std::vector<trace::Record>> byFile;
    for (const auto& r : records) {
      if (r.requestBytes < options.ignoreOpsSmallerThan) continue;
      byFile[r.fileId].push_back(r);
    }
    for (auto& [fileId, fileRecords] : byFile) {
      auto segments = segmentRecords(fileRecords, options.segmentation);
      for (const auto& seg : segments) {
        splitSegment(seg, options.maxIntraPhaseTickGap, locals);
      }
    }
  }

  // 2. Assign per-rank occurrence counters so the k-th local phase with a
  // given signature groups with the other ranks' k-th occurrence.
  std::map<std::pair<int, std::string>, std::size_t> occurrenceCounter;
  // locals are currently ordered rank-major, tick-minor within each rank,
  // which is exactly what the occurrence counter needs.
  for (auto& lp : locals) {
    auto key = std::make_pair(
        lp.idP, std::to_string(lp.idF) + "|" + lp.signature);
    lp.occurrence = occurrenceCounter[key]++;
  }

  // 3. Group by (file, signature, occurrence).
  std::map<std::tuple<int, std::string, std::size_t>, std::vector<LocalPhase>>
      groups;
  for (auto& lp : locals) {
    groups[{lp.idF, lp.signature, lp.occurrence}].push_back(std::move(lp));
  }

  // 3b. Temporal validation: members of one phase must overlap in logical
  // time (the paper's traces show +-1 tick of skew).  If a group's members
  // cluster at distant ticks — ranks executing the same pattern at truly
  // different times — split it into tick clusters separated by more than
  // the tolerance.
  std::vector<std::vector<LocalPhase>> memberSets;
  for (auto& [key, members] : groups) {
    std::sort(members.begin(), members.end(),
              [](const LocalPhase& a, const LocalPhase& b) {
                return a.firstTick < b.firstTick;
              });
    std::vector<LocalPhase> cluster;
    for (auto& lp : members) {
      if (!cluster.empty() &&
          lp.firstTick - cluster.back().firstTick >
              options.crossRankTickTolerance) {
        memberSets.push_back(std::move(cluster));
        cluster.clear();
      }
      cluster.push_back(std::move(lp));
    }
    if (!cluster.empty()) memberSets.push_back(std::move(cluster));
  }

  // 4. Build global phases.
  std::vector<Phase> phases;
  for (auto& members : memberSets) {
    std::sort(members.begin(), members.end(),
              [](const LocalPhase& a, const LocalPhase& b) {
                return a.idP < b.idP;
              });
    Phase phase;
    phase.idF = members.front().idF;
    phase.rep = members.front().rep;
    phase.firstTick = members.front().firstTick;
    phase.lastTick = members.front().lastTick;
    phase.startTime = members.front().startTime;
    phase.endTime = members.front().endTime;
    const std::uint64_t etype =
        data.fileMeta(phase.idF) != nullptr
            ? data.fileMeta(phase.idF)->etypeBytes
            : 1;
    for (const auto& op : members.front().ops) {
      PhaseOp po;
      po.op = op.op;
      po.rsBytes = op.rsBytes;
      po.dispBytes = op.dispUnits * static_cast<std::int64_t>(etype);
      phase.ops.push_back(std::move(po));
    }
    for (const auto& lp : members) {
      phase.ranks.push_back(lp.idP);
      phase.firstTick = std::min(phase.firstTick, lp.firstTick);
      phase.lastTick = std::max(phase.lastTick, lp.lastTick);
      phase.startTime = std::min(phase.startTime, lp.startTime);
      phase.endTime = std::max(phase.endTime, lp.endTime);
      phase.sumIoDuration += lp.ioDuration;
      phase.maxRankIoDuration = std::max(phase.maxRankIoDuration,
                                         lp.ioDuration);
      for (std::size_t j = 0; j < lp.ops.size(); ++j) {
        phase.ops[j].initOffsetBytes.push_back(lp.ops[j].initOffsetUnits *
                                               etype);
      }
    }
    std::vector<std::pair<double, double>> allWindows;
    for (const auto& lp : members) {
      allWindows.insert(allWindows.end(), lp.opWindows.begin(),
                        lp.opWindows.end());
    }
    phase.ioUnionSeconds = unionSeconds(std::move(allWindows));
    std::uint64_t cycleBytes = 0;
    for (const auto& op : phase.ops) cycleBytes += op.rsBytes;
    phase.weightBytes = static_cast<std::uint64_t>(phase.ranks.size()) *
                        phase.rep * cycleBytes;
    phases.push_back(std::move(phase));
  }

  // 5. Order by first tick (stable on weight/file for determinism).
  std::sort(phases.begin(), phases.end(), [](const Phase& a, const Phase& b) {
    if (a.firstTick != b.firstTick) return a.firstTick < b.firstTick;
    if (a.idF != b.idF) return a.idF < b.idF;
    return a.weightBytes > b.weightBytes;
  });

  // 6. Assign ids, then families and offset functions.  Families group
  // consecutive same-signature phases *of the same file*, so interleaved
  // multi-file timelines (e.g. a restart record between history records)
  // do not break a file's progression.
  for (std::size_t i = 0; i < phases.size(); ++i) {
    phases[i].id = static_cast<int>(i) + 1;
  }
  auto sameFamily = [](const Phase& a, const Phase& b) {
    if (a.rep != b.rep || a.ranks != b.ranks ||
        a.ops.size() != b.ops.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.ops.size(); ++j) {
      if (a.ops[j].op != b.ops[j].op ||
          a.ops[j].rsBytes != b.ops[j].rsBytes) {
        return false;
      }
    }
    return true;
  };
  std::map<int, std::vector<std::size_t>> byFile;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    byFile[phases[i].idF].push_back(i);
  }
  int nextFamily = 0;
  auto closeFamily = [&phases, &nextFamily](
                         const std::vector<std::size_t>& members) {
    const std::size_t opCount = phases[members.front()].ops.size();
    for (std::size_t j = 0; j < opCount; ++j) {
      std::vector<OffsetFn> fns;
      for (std::size_t p : members) {
        fns.push_back(fitRankOffsets(phases[p].ranks,
                                     phases[p].ops[j].initOffsetBytes));
      }
      const OffsetFn family = fitPhaseFamily(fns);
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::size_t p = members[m];
        phases[p].ops[j].offsetFn = family.exact ? family : fns[m];
        phases[p].familyId = nextFamily;
        phases[p].familyIndex = static_cast<int>(m);
      }
    }
    ++nextFamily;
  };
  for (auto& [fileId, indices] : byFile) {
    std::vector<std::size_t> family;
    for (std::size_t idx : indices) {
      if (!family.empty() &&
          !sameFamily(phases[family.back()], phases[idx])) {
        closeFamily(family);
        family.clear();
      }
      family.push_back(idx);
    }
    if (!family.empty()) closeFamily(family);
  }
  return phases;
}

std::string renderPhaseTable(const std::vector<Phase>& phases,
                             const std::string& title) {
  util::Table table(title);
  table.setHeader({"Phase", "#Oper.", "InitOffset", "Rep", "weight"},
                  {util::Align::Left, util::Align::Left, util::Align::Left,
                   util::Align::Right, util::Align::Right});
  for (const auto& phase : phases) {
    for (std::size_t j = 0; j < phase.ops.size(); ++j) {
      const auto& op = phase.ops[j];
      const std::string phaseLabel =
          j == 0 ? std::to_string(phase.id) : std::string{};
      table.addRow(
          {phaseLabel,
           std::to_string(phase.np()) + " " + (op.isWrite() ? "write"
                                                            : "read"),
           op.offsetFn.render(op.rsBytes, phase.np()),
           std::to_string(phase.rep),
           util::formatBytes(static_cast<std::uint64_t>(phase.np()) *
                             phase.rep * op.rsBytes)});
    }
  }
  return table.render();
}

}  // namespace iop::core
