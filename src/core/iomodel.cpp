#include "core/iomodel.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "util/text.hpp"
#include "util/units.hpp"

namespace iop::core {

std::string ModelMetadata::describe() const {
  std::ostringstream out;
  out << (explicitOffsets ? "Explicit offset" : "Individual file pointers")
      << ", " << (collectiveIo ? "Collective" : "Non-collective")
      << " I/O operations, "
      << (blockingIo ? "Blocking" : "Non-blocking") << " I/O operations\n";
  out << accessMode << " access mode, " << accessType << " access type\n";
  if (etypeBytes != 1) out << "etype of " << etypeBytes << "\n";
  return out.str();
}

IOModel::IOModel(std::string appName, int np,
                 std::vector<trace::FileMeta> files,
                 std::vector<Phase> phases)
    : appName_(std::move(appName)), np_(np), files_(std::move(files)),
      phases_(std::move(phases)) {}

ModelMetadata IOModel::metadataFor(int fileId) const {
  ModelMetadata meta;
  const trace::FileMeta* fm = nullptr;
  for (const auto& f : files_) {
    if (f.fileId == fileId) fm = &f;
  }
  if (fm != nullptr) {
    meta.collectiveIo = fm->sawCollective;
    meta.blockingIo = !fm->sawNonBlocking;
    meta.explicitOffsets = fm->sawExplicitOffsets;
    meta.individualPointers = fm->sawIndividualPointers;
    meta.accessType = fm->shared ? "Shared" : "Unique";
    meta.etypeBytes = fm->etypeBytes;
  }
  // Access mode: a strided file view, or per-process strides larger than
  // the request size (each process leaves holes for the others), means
  // strided; a constant displacement equal to rs means sequential;
  // anything irregular is random.
  bool strided = fm != nullptr && fm->filetypeStride > fm->filetypeBlock;
  bool irregular = false;
  for (const auto& phase : phases_) {
    if (phase.idF != fileId) continue;
    for (const auto& op : phase.ops) {
      if (!op.offsetFn.exact) irregular = true;
      const std::int64_t rs = static_cast<std::int64_t>(op.rsBytes);
      if (phase.rep > 1 && op.dispBytes != rs) {
        if (op.dispBytes > rs) {
          strided = true;
        } else {
          irregular = true;
        }
      }
      if (phase.rep == 1 && op.offsetFn.exact &&
          op.offsetFn.cBytes > static_cast<double>(op.rsBytes)) {
        strided = true;  // consecutive single-shot phases striding the file
      }
    }
  }
  meta.accessMode = irregular ? "Random" : (strided ? "Strided"
                                                    : "Sequential");
  return meta;
}

std::uint64_t IOModel::totalWeightBytes() const {
  std::uint64_t total = 0;
  for (const auto& p : phases_) total += p.weightBytes;
  return total;
}

std::string IOModel::renderSummary() const {
  std::ostringstream out;
  out << "I/O model of " << appName_ << " for " << np_ << " processes\n";
  for (const auto& f : files_) {
    out << "file " << f.fileId << " (" << f.path << "):\n"
        << metadataFor(f.fileId).describe();
  }
  out << renderPhaseTable(phases_);
  return out.str();
}

std::string IOModel::renderGlobalPatternSeries(std::size_t maxPoints) const {
  std::ostringstream out;
  out << "# phase idP tick fileOffsetBytes requestBytes opType\n";
  std::size_t points = 0;
  for (const auto& phase : phases_) {
    // Approximate per-repetition ticks by linear interpolation over the
    // phase's tick window (exact for the common gap-free case).
    const double tickStep =
        phase.rep > 1 ? static_cast<double>(phase.lastTick -
                                            phase.firstTick) /
                            static_cast<double>(phase.rep - 1)
                      : 0.0;
    for (std::size_t r = 0; r < phase.ranks.size(); ++r) {
      for (std::uint64_t m = 0; m < phase.rep; ++m) {
        for (const auto& op : phase.ops) {
          if (maxPoints != 0 && points >= maxPoints) return out.str();
          const std::uint64_t offset = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(op.initOffsetBytes[r]) +
              op.dispBytes * static_cast<std::int64_t>(m));
          out << phase.id << ' ' << phase.ranks[r] << ' '
              << static_cast<std::uint64_t>(
                     static_cast<double>(phase.firstTick) + tickStep * m)
              << ' ' << offset << ' ' << op.rsBytes << ' '
              << (op.isWrite() ? 'W' : 'R') << '\n';
          ++points;
        }
      }
    }
  }
  return out.str();
}

void IOModel::save(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  write(out);
  if (!out) throw std::runtime_error("model write failed");
}

std::string IOModel::renderText() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

void IOModel::write(std::ostream& out) const {
  out << "# iop-model v1\n";
  out << "app " << appName_ << "\n";
  out << "np " << np_ << "\n";
  for (const auto& f : files_) {
    out << "file " << f.fileId << ' ' << f.path << ' ' << (f.shared ? 1 : 0)
        << ' ' << f.etypeBytes << ' ' << f.viewDisp << ' ' << f.filetypeBlock
        << ' ' << f.filetypeStride << ' ' << (f.sawCollective ? 1 : 0) << ' '
        << (f.sawExplicitOffsets ? 1 : 0) << ' '
        << (f.sawIndividualPointers ? 1 : 0) << ' ' << f.np << "\n";
  }
  char buf[512];
  for (const auto& p : phases_) {
    std::snprintf(buf, sizeof buf,
                  "phase %d %d %" PRIu64 " %d %d %" PRIu64 " %" PRIu64
                  " %.9f %.9f %.9f %.9f %.9f %" PRIu64 "\n",
                  p.id, p.idF, p.rep, p.familyId, p.familyIndex, p.firstTick,
                  p.lastTick, p.startTime, p.endTime, p.sumIoDuration,
                  p.maxRankIoDuration, p.ioUnionSeconds, p.weightBytes);
    out << buf;
    out << "ranks " << p.id;
    for (int r : p.ranks) out << ' ' << r;
    out << "\n";
    for (std::size_t j = 0; j < p.ops.size(); ++j) {
      const auto& op = p.ops[j];
      std::snprintf(buf, sizeof buf,
                    "op %d %zu %s %" PRIu64 " %" PRId64 " %d %.6f %.6f %.6f",
                    p.id, j, op.op.c_str(), op.rsBytes, op.dispBytes,
                    op.offsetFn.exact ? 1 : 0, op.offsetFn.aBytes,
                    op.offsetFn.bBytes, op.offsetFn.cBytes);
      out << buf;
      for (auto o : op.initOffsetBytes) out << ' ' << o;
      out << "\n";
    }
  }
}

IOModel IOModel::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::string appName;
  int np = 0;
  std::vector<trace::FileMeta> files;
  std::vector<Phase> phases;
  std::string line;
  while (std::getline(in, line)) {
    auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto t = util::splitWhitespace(trimmed);
    if (t[0] == "app") {
      appName = t.at(1);
    } else if (t[0] == "np") {
      np = std::stoi(t.at(1));
    } else if (t[0] == "file") {
      trace::FileMeta f;
      f.fileId = std::stoi(t.at(1));
      f.path = t.at(2);
      f.shared = t.at(3) == "1";
      f.etypeBytes = std::stoull(t.at(4));
      f.viewDisp = std::stoull(t.at(5));
      f.filetypeBlock = std::stoull(t.at(6));
      f.filetypeStride = std::stoull(t.at(7));
      f.sawCollective = t.at(8) == "1";
      f.sawExplicitOffsets = t.at(9) == "1";
      f.sawIndividualPointers = t.at(10) == "1";
      f.np = std::stoi(t.at(11));
      if (t.size() > 12) f.sawNonBlocking = t[12] == "1";
      files.push_back(std::move(f));
    } else if (t[0] == "phase") {
      Phase p;
      p.id = std::stoi(t.at(1));
      p.idF = std::stoi(t.at(2));
      p.rep = std::stoull(t.at(3));
      p.familyId = std::stoi(t.at(4));
      p.familyIndex = std::stoi(t.at(5));
      p.firstTick = std::stoull(t.at(6));
      p.lastTick = std::stoull(t.at(7));
      p.startTime = std::stod(t.at(8));
      p.endTime = std::stod(t.at(9));
      p.sumIoDuration = std::stod(t.at(10));
      p.maxRankIoDuration = std::stod(t.at(11));
      p.ioUnionSeconds = std::stod(t.at(12));
      p.weightBytes = std::stoull(t.at(13));
      phases.push_back(std::move(p));
    } else if (t[0] == "ranks") {
      const int id = std::stoi(t.at(1));
      for (auto& p : phases) {
        if (p.id == id) {
          for (std::size_t i = 2; i < t.size(); ++i) {
            p.ranks.push_back(std::stoi(t[i]));
          }
        }
      }
    } else if (t[0] == "op") {
      const int id = std::stoi(t.at(1));
      PhaseOp op;
      op.op = t.at(3);
      op.rsBytes = std::stoull(t.at(4));
      op.dispBytes = std::stoll(t.at(5));
      op.offsetFn.exact = t.at(6) == "1";
      op.offsetFn.aBytes = std::stod(t.at(7));
      op.offsetFn.bBytes = std::stod(t.at(8));
      op.offsetFn.cBytes = std::stod(t.at(9));
      for (std::size_t i = 10; i < t.size(); ++i) {
        op.initOffsetBytes.push_back(std::stoull(t[i]));
      }
      for (auto& p : phases) {
        if (p.id == id) p.ops.push_back(std::move(op));
      }
    }
  }
  if (np <= 0) throw std::runtime_error("model file missing np");
  return IOModel(appName, np, std::move(files), std::move(phases));
}

IOModel extractModel(const trace::TraceData& data,
                     const PhaseDetectionOptions& options) {
  IOP_PROFILE_SCOPE("model.extract");
  return IOModel(data.appName, data.np, data.files,
                 detectPhases(data, options));
}

}  // namespace iop::core
