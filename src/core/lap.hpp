// Local access patterns (LAPs) and per-process pattern segmentation.
//
// Two related compressions of a process's I/O record stream:
//
//  * extractLaps — the paper's Figure-3 view: maximal runs of one
//    operation with constant request size and constant displacement,
//    collapsed to (op, rep, rs, disp, initOffset).  Ticks are ignored; this
//    is the human-readable pattern summary.
//
//  * segmentRecords — the input to phase detection: an optimal (fewest
//    segments, then longest cycles) segmentation of the record stream into
//    repeating cycles of up to K distinct operations, so interleaved
//    patterns like MADbench2's read/write pipeline in its W function
//    compress to one multi-op segment instead of 2N single-op fragments.
#pragma once

#include <cstdint>
#include <utility>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace iop::core {

/// One Figure-3 row: a repeated single-operation access pattern local to a
/// process.  Offsets/displacements are in the trace's offset units (etypes
/// of the file view); byte conversion happens at the phase level using the
/// file metadata.
struct Lap {
  int idP = 0;
  int idF = 0;
  std::string op;
  std::uint64_t rep = 0;
  std::uint64_t rsBytes = 0;
  std::int64_t dispUnits = 0;       ///< offset delta per repetition
  std::uint64_t initOffsetUnits = 0;
  std::uint64_t firstTick = 0;
  std::uint64_t lastTick = 0;
};

/// Extract Figure-3 LAPs from one rank's records of one file (records must
/// be in tick order, as traced).
std::vector<Lap> extractLaps(const std::vector<trace::Record>& records);

/// One position of a segment's operation cycle.
struct CycleOp {
  std::string op;
  std::uint64_t rsBytes = 0;
  /// Offset delta between consecutive cycle repetitions at this position
  /// (offset units).  Meaningless when the segment has rep == 1.
  std::int64_t dispUnits = 0;
  std::uint64_t initOffsetUnits = 0;  ///< offset of the first repetition
};

/// A maximal repeated cycle in one rank's record stream.
struct Segment {
  int idP = 0;
  int idF = 0;
  std::vector<CycleOp> ops;  ///< the cycle (size 1 for plain runs)
  std::uint64_t rep = 0;     ///< number of cycle repetitions
  /// tick / time of each repetition boundary: tick of the first op of each
  /// repetition, used by phase splitting.
  std::vector<std::uint64_t> repFirstTicks;
  std::vector<std::uint64_t> repLastTicks;
  std::vector<double> repStartTimes;
  std::vector<double> repEndTimes;
  /// Sum of per-repetition durations (all ops), for measured bandwidth.
  std::vector<double> repIoDurations;
  /// [start, end) wall window of every individual operation, rep-major
  /// (rep * ops.size() entries): the raw material for exact busy-time
  /// union computations.
  std::vector<std::pair<double, double>> opWindows;

  std::uint64_t bytesPerRep() const;
};

struct SegmentOptions {
  /// Maximum cycle length considered (>= 1).
  int maxCycle = 4;
  /// Above this record count the exact DP is replaced by a greedy scan.
  std::size_t dpLimit = 4000;
};

/// Segment one rank's records of one file into repeated cycles.
std::vector<Segment> segmentRecords(const std::vector<trace::Record>& records,
                                    const SegmentOptions& options = {});

/// Render LAPs as the paper's Figure-3 table.
std::string renderLapTable(const std::vector<Lap>& laps);

}  // namespace iop::core
