// The application's I/O abstract model (Section III-A1).
//
// An IOModel = metadata + spatial global pattern + temporal global pattern,
// expressed as an ordered sequence of I/O phases.  It is extracted once,
// offline, from a trace, and is *independent of the I/O subsystem*: the
// same model drives IOR-based replay on any number of target
// configurations (the paper's key claim).  save()/load() demonstrate that
// decoupling concretely.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/phase.hpp"
#include "trace/tracer.hpp"

namespace iop::core {

/// Flattened per-file metadata in the paper's bullet-list vocabulary.
struct ModelMetadata {
  bool collectiveIo = false;
  bool blockingIo = true;  ///< this runtime only models blocking I/O
  bool explicitOffsets = false;
  bool individualPointers = false;
  std::string accessMode;  ///< "sequential" | "strided" | "random"
  std::string accessType;  ///< "shared" | "unique"
  std::uint64_t etypeBytes = 1;

  std::string describe() const;
};

class IOModel {
 public:
  IOModel() = default;
  IOModel(std::string appName, int np, std::vector<trace::FileMeta> files,
          std::vector<Phase> phases);

  const std::string& appName() const noexcept { return appName_; }
  int np() const noexcept { return np_; }
  const std::vector<Phase>& phases() const noexcept { return phases_; }
  std::vector<Phase>& phases() noexcept { return phases_; }
  const std::vector<trace::FileMeta>& files() const noexcept {
    return files_;
  }

  /// Derived metadata for one file of the model.
  ModelMetadata metadataFor(int fileId) const;

  /// Total bytes the application moves (sum of phase weights).
  std::uint64_t totalWeightBytes() const;

  /// Human-readable summary: metadata + phase table.
  std::string renderSummary() const;

  /// Data series for the paper's 3-D global-access-pattern figures
  /// (Figs. 5, 7, 9, 10): one line per repetition per rank per op:
  ///   phase idP tick fileOffsetBytes requestBytes W|R
  std::string renderGlobalPatternSeries(std::size_t maxPoints = 0) const;

  /// Persist / restore (text format, versioned).
  void save(const std::filesystem::path& path) const;
  static IOModel load(const std::filesystem::path& path);

  /// The save() serialization, to a stream / as a string.  renderText() is
  /// the model's canonical content identity: the sweep cache hashes it, so
  /// two models with identical text are interchangeable.
  void write(std::ostream& out) const;
  std::string renderText() const;

 private:
  std::string appName_;
  int np_ = 0;
  std::vector<trace::FileMeta> files_;
  std::vector<Phase> phases_;
};

/// The full characterization pipeline: trace -> segments -> phases -> model.
IOModel extractModel(const trace::TraceData& data,
                     const PhaseDetectionOptions& options = {});

}  // namespace iop::core
