// Structural comparison of I/O models.
//
// The paper's central claim is that the same application yields the same
// model on every subsystem; this is the machine-checkable form of "the
// same model": phase count, per-phase operations, request sizes,
// repetitions, participating ranks, and per-rank initial offsets.
// Timings (measured bandwidths, windows) are configuration-dependent and
// excluded.
#pragma once

#include <string>
#include <vector>

#include "core/iomodel.hpp"

namespace iop::core {

struct ModelDiff {
  bool identical = true;
  /// Human-readable differences, most significant first (empty when
  /// identical).
  std::vector<std::string> differences;

  explicit operator bool() const noexcept { return identical; }
};

/// Compare the structural content of two models.
ModelDiff compareModels(const IOModel& a, const IOModel& b);

}  // namespace iop::core
