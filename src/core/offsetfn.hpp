// Inference and rendering of the paper's f(initOffset): a closed-form
// expression for each process's initial offset in a phase, as a function of
// the process rank idP and the phase index ph (Table VIII's
// "idP*8*32MB + 2*32MB", Table XI's "rs*idP + rs*(np-1+1)*(ph-1)").
//
// The fitted form is
//    initOffset(idP, ph) = a*idP*rs + b*rs + c*(ph-1)*rs      [bytes]
// with a,b,c rational multiples of the request size rs.  `exact` is false
// when the observed offsets do not fit the linear model (the analysis then
// falls back to per-rank offset lists).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iop::core {

struct OffsetFn {
  bool exact = false;
  double aBytes = 0;  ///< coefficient of idP
  double bBytes = 0;  ///< constant term
  double cBytes = 0;  ///< coefficient of (ph-1)

  std::uint64_t eval(int idP, int phIndex) const noexcept {
    const double v = aBytes * idP + bBytes + cBytes * phIndex;
    return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

  /// Render in the paper's style, expressing coefficients as multiples of
  /// `rsBytes` where exact ("idP*8*32MB + 2*32MB"), falling back to raw
  /// byte values.  `np` lets the (ph-1) coefficient be shown as "rs*np"
  /// when it matches (the Table XI form).
  std::string render(std::uint64_t rsBytes, int np) const;
};

/// Fit initOffset(idP) = a*idP + b over one phase's per-rank offsets
/// (bytes).  `ranks[i]` is the rank of `offsets[i]`.
OffsetFn fitRankOffsets(const std::vector<int>& ranks,
                        const std::vector<std::uint64_t>& offsets);

/// Given per-phase constant terms b[ph] of a family of phases with equal
/// a, fit b[ph] = b0 + c*(ph-1); returns exact=false on misfit.
/// `phaseFns` must all have exact == true and equal aBytes.
OffsetFn fitPhaseFamily(const std::vector<OffsetFn>& phaseFns);

}  // namespace iop::core
