// I/O phases: the paper's central abstraction.
//
// "An I/O phase is a repetitive sequence of the same pattern on a file for
// a number of processes of the parallel application."  Phases are built
// from per-rank pattern segments (core/lap.hpp) in two steps:
//
//  1. tick splitting — repetitions of a segment separated by other MPI
//     activity (tick gap > maxIntraPhaseTickGap) belong to different
//     phases.  This is what turns NAS BT-IO's 40 dumps (solver
//     communication between them) into phases 1..40 while its 40
//     back-to-back verification reads stay one phase (the paper's
//     Figure 9 / Table XI structure).
//
//  2. cross-rank grouping — local phases with the same signature (op
//     cycle, request size, displacement, repetitions) and overlapping tick
//     windows group into one global phase; initial offsets may differ per
//     process and are captured by f(initOffset).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lap.hpp"
#include "core/offsetfn.hpp"
#include "trace/tracer.hpp"

namespace iop::core {

/// One operation of a phase's cycle, aggregated across ranks.
struct PhaseOp {
  std::string op;                ///< MPI operation name
  std::uint64_t rsBytes = 0;     ///< request size
  std::int64_t dispBytes = 0;    ///< displacement per repetition
  /// Initial offset of each participating rank (bytes), parallel to
  /// Phase::ranks.
  std::vector<std::uint64_t> initOffsetBytes;
  /// Fitted f(initOffset); family-aware (may carry a (ph-1) term).
  OffsetFn offsetFn;

  bool isWrite() const { return trace::isWriteOp(op); }
};

struct Phase {
  int id = 0;   ///< 1-based position in the application's phase sequence
  int idF = 0;  ///< file the phase operates on
  std::vector<int> ranks;  ///< participating processes
  std::uint64_t rep = 0;   ///< repetitions of the cycle inside the phase
  std::vector<PhaseOp> ops;

  /// weight = np * rep * sum(rs): bytes moved by the phase (the paper's
  /// Figure-4 "weight = 40MB" for 4 procs x 1 rep x ~10MB).
  std::uint64_t weightBytes = 0;

  std::uint64_t firstTick = 0;
  std::uint64_t lastTick = 0;

  /// Measured wall-clock window of the phase in the traced run (includes
  /// any busy-work interleaved between the phase's operations).
  double startTime = 0;
  double endTime = 0;
  /// Sum of per-op durations across all ranks (CPU-side I/O time).
  double sumIoDuration = 0;
  /// Largest per-rank sum of op durations: the pure-I/O makespan of the
  /// phase (the paper's MADbench2 busy-work is excluded from this).
  double maxRankIoDuration = 0;
  /// Length of the union of all member operations' wall windows: the
  /// exact time during which *any* rank of the phase was doing I/O.
  /// Robust to both overlapped and skewed execution.
  double ioUnionSeconds = 0;

  /// Phases with identical signatures occurring consecutively form a
  /// family; f(initOffset) is fitted per family with a (ph-1) term.
  int familyId = 0;
  int familyIndex = 0;  ///< zero-based (ph-1) within the family

  int np() const noexcept { return static_cast<int>(ranks.size()); }

  /// "W", "R" or "W-R": the paper's operation-type label.
  std::string opTypeLabel() const;

  /// Total individual MPI operations in the phase (Table IX "#Oper.").
  std::uint64_t opCount() const noexcept {
    return static_cast<std::uint64_t>(ranks.size()) * rep * ops.size();
  }

  /// Measured aggregate bandwidth BW_MD = weight / measured I/O time,
  /// where the I/O time is the slowest rank's summed op durations (falls
  /// back to the wall window when durations are absent).
  double measuredBandwidth() const noexcept {
    const double dt = measuredIoTime();
    return dt > 0 ? static_cast<double>(weightBytes) / dt : 0.0;
  }

  /// Measured I/O time of the phase (Time_io(MD) contribution): the union
  /// of member op windows, falling back to per-rank durations / the wall
  /// window for models loaded from older files.
  double measuredIoTime() const noexcept {
    if (ioUnionSeconds > 0) return ioUnionSeconds;
    return maxRankIoDuration > 0 ? maxRankIoDuration
                                 : endTime - startTime;
  }

  bool anyCollective() const;
};

struct PhaseDetectionOptions {
  /// Repetitions whose tick gap exceeds this stay in one phase only if the
  /// gap is <= the threshold; the default 1 means "no other MPI event in
  /// between".
  std::uint64_t maxIntraPhaseTickGap = 1;
  /// Cross-rank tick skew allowed inside one phase (the paper's traces
  /// show +-1; collective completion order gives a few more).
  std::uint64_t crossRankTickTolerance = 16;
  /// Drop operations smaller than this before segmentation: the
  /// "metadata noise" filter for HDF5-style workloads, where rank 0's
  /// object-header writes interleave with the bulk data stream and would
  /// otherwise split it off from the other ranks' phases.  0 = keep all.
  /// Filtered bytes are NOT represented in the model's weights.
  std::uint64_t ignoreOpsSmallerThan = 0;
  SegmentOptions segmentation;
};

/// Detect the global phase sequence of an application trace.
std::vector<Phase> detectPhases(const trace::TraceData& data,
                                const PhaseDetectionOptions& options = {});

/// Render phases as the paper's Table VIII / Table XI style description.
std::string renderPhaseTable(const std::vector<Phase>& phases,
                             const std::string& title = {});

}  // namespace iop::core
