#include "core/compare.hpp"

#include <sstream>

namespace iop::core {

namespace {

void note(ModelDiff& diff, const std::string& message) {
  diff.identical = false;
  diff.differences.push_back(message);
}

std::string phaseRef(const Phase& p) {
  return "phase " + std::to_string(p.id);
}

}  // namespace

ModelDiff compareModels(const IOModel& a, const IOModel& b) {
  ModelDiff diff;
  if (a.np() != b.np()) {
    note(diff, "process counts differ: " + std::to_string(a.np()) +
                   " vs " + std::to_string(b.np()));
  }
  if (a.files().size() != b.files().size()) {
    note(diff, "file counts differ: " + std::to_string(a.files().size()) +
                   " vs " + std::to_string(b.files().size()));
  }
  if (a.phases().size() != b.phases().size()) {
    note(diff,
         "phase counts differ: " + std::to_string(a.phases().size()) +
             " vs " + std::to_string(b.phases().size()));
    return diff;  // positional comparison below would be meaningless
  }
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    const Phase& pa = a.phases()[i];
    const Phase& pb = b.phases()[i];
    if (pa.idF != pb.idF) {
      note(diff, phaseRef(pa) + ": file ids differ");
    }
    if (pa.rep != pb.rep) {
      note(diff, phaseRef(pa) + ": repetitions differ (" +
                     std::to_string(pa.rep) + " vs " +
                     std::to_string(pb.rep) + ")");
    }
    if (pa.ranks != pb.ranks) {
      note(diff, phaseRef(pa) + ": participating ranks differ");
    }
    if (pa.weightBytes != pb.weightBytes) {
      note(diff, phaseRef(pa) + ": weights differ (" +
                     std::to_string(pa.weightBytes) + " vs " +
                     std::to_string(pb.weightBytes) + ")");
    }
    if (pa.ops.size() != pb.ops.size()) {
      note(diff, phaseRef(pa) + ": operation cycles differ in length");
      continue;
    }
    for (std::size_t j = 0; j < pa.ops.size(); ++j) {
      const PhaseOp& oa = pa.ops[j];
      const PhaseOp& ob = pb.ops[j];
      if (oa.op != ob.op) {
        note(diff, phaseRef(pa) + " op " + std::to_string(j) +
                       ": operations differ (" + oa.op + " vs " + ob.op +
                       ")");
      }
      if (oa.rsBytes != ob.rsBytes) {
        note(diff, phaseRef(pa) + " op " + std::to_string(j) +
                       ": request sizes differ");
      }
      if (oa.dispBytes != ob.dispBytes) {
        note(diff, phaseRef(pa) + " op " + std::to_string(j) +
                       ": displacements differ");
      }
      if (oa.initOffsetBytes != ob.initOffsetBytes) {
        note(diff, phaseRef(pa) + " op " + std::to_string(j) +
                       ": initial offsets differ");
      }
    }
  }
  return diff;
}

}  // namespace iop::core
