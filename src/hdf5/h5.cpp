#include "hdf5/h5.hpp"

#include <algorithm>
#include <stdexcept>

namespace iop::hdf5 {

sim::Task<std::shared_ptr<H5File>> H5File::create(mpi::Rank& rank,
                                                  const std::string& mount,
                                                  const std::string& path) {
  auto h5 = std::shared_ptr<H5File>(new H5File());
  h5->file_ = co_await rank.open(mount, path, mpi::AccessType::Shared);
  h5->file_->setView(0, 1, 1, 1);
  if (rank.id() == 0) {
    co_await h5->file_->writeAt(0, kSuperblockBytes);
  }
  co_await rank.barrier();
  co_return h5;
}

sim::Task<Dataset> H5File::createDataset(mpi::Rank& rank,
                                         const std::string& name,
                                         std::uint64_t totalBytes,
                                         std::uint64_t chunkBytes) {
  // Validate eagerly: coroutine bodies run lazily, but bad arguments must
  // surface at the call site, before any rank entered a collective.
  if (totalBytes == 0) {
    throw std::invalid_argument("dataset must not be empty");
  }
  if (chunkBytes != 0 && totalBytes % chunkBytes != 0) {
    throw std::invalid_argument(
        "chunked dataset size must be a whole number of chunks");
  }
  return createDatasetImpl(rank, name, totalBytes, chunkBytes);
}

sim::Task<Dataset> H5File::createDatasetImpl(mpi::Rank& rank,
                                             const std::string& name,
                                             std::uint64_t totalBytes,
                                             std::uint64_t chunkBytes) {
  // Deterministic local allocation: all ranks call collectively with the
  // same arguments, so every rank computes the same offsets.
  const std::uint64_t headerOffset = eof_;
  const std::uint64_t dataOffset = headerOffset + kObjectHeaderBytes;
  eof_ = dataOffset + totalBytes;
  if (rank.id() == 0) {
    co_await file_->writeAt(headerOffset, kObjectHeaderBytes);
  }
  co_await rank.barrier();
  co_return Dataset(*this, name, dataOffset, totalBytes, chunkBytes);
}

sim::Task<void> H5File::close(mpi::Rank& rank) {
  // Metadata cache flush on rank 0 (free-space info, symbol table).
  if (rank.id() == 0) {
    co_await file_->writeAt(kSuperblockBytes / 2, kSuperblockBytes / 2);
  }
  co_await rank.barrier();
  co_await file_->close();
}

sim::Task<void> Dataset::hyperslab(mpi::Rank& rank, std::uint64_t offset,
                                   std::uint64_t bytes, bool isWrite) {
  // Eager validation (the body below runs lazily at first co_await).
  if (offset + bytes > totalBytes_) {
    throw std::out_of_range("hyperslab outside the dataset extent");
  }
  // Chunk-aligned selections only: unaligned selections would give ranks
  // different collective-call counts (a deadlock in real HDF5 too).
  if (chunkBytes_ != 0 &&
      (offset % chunkBytes_ != 0 || bytes % chunkBytes_ != 0)) {
    throw std::invalid_argument(
        "hyperslab must be chunk-aligned for chunked datasets");
  }
  return hyperslabImpl(rank, offset, bytes, isWrite);
}

sim::Task<void> Dataset::hyperslabImpl(mpi::Rank& rank,
                                       std::uint64_t offset,
                                       std::uint64_t bytes, bool isWrite) {
  (void)rank;  // participation is implied by the rank-bound mpi::File
  mpi::File& file = file_->mpiFile();
  // Chunked layout: one collective call per chunk the selection crosses
  // (the HDF5 library's per-chunk I/O under collective transfer).
  const std::uint64_t step = chunkBytes_ == 0 ? bytes : chunkBytes_;
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + bytes;
  while (cursor < end) {
    const std::uint64_t within = cursor % step;
    const std::uint64_t take = std::min(end - cursor, step - within);
    const std::uint64_t fileOffset = dataOffset_ + cursor;
    if (isWrite) {
      co_await file.writeAtAll(fileOffset, take);
    } else {
      co_await file.readAtAll(fileOffset, take);
    }
    cursor += take;
  }
}

sim::Task<void> Dataset::writeIndependent(std::uint64_t offsetInDataset,
                                          std::uint64_t bytes) {
  if (offsetInDataset + bytes > totalBytes_) {
    throw std::out_of_range("write outside the dataset extent");
  }
  return file_->mpiFile().writeAt(dataOffset_ + offsetInDataset, bytes);
}

sim::Task<void> Dataset::writeHyperslab(mpi::Rank& rank,
                                        std::uint64_t offsetInDataset,
                                        std::uint64_t bytes) {
  return hyperslab(rank, offsetInDataset, bytes, true);
}

sim::Task<void> Dataset::readHyperslab(mpi::Rank& rank,
                                       std::uint64_t offsetInDataset,
                                       std::uint64_t bytes) {
  return hyperslab(rank, offsetInDataset, bytes, false);
}

}  // namespace iop::hdf5
