// Simplified parallel-HDF5 layer on the simulated MPI-IO runtime.
//
// The paper's clusters ran "mpich2, HDF5" and its conclusion singles out
// HDF5 support as the open refinement ("still is necessary refine the
// methodology ... to the I/O library HDF5").  This layer models the
// behaviour that matters for phase analysis:
//
//  * a file is a superblock + object headers + dataset raw data;
//  * metadata (superblock, dataset headers, the close-time flush) is
//    written by rank 0 only, as small writes at low offsets — the
//    "metadata noise" that complicates HDF5 models;
//  * dataset raw data is written/read with collective MPI-IO hyperslabs
//    (H5Dwrite with a collective transfer property list);
//  * chunked datasets issue one collective call per chunk row instead of
//    one for the whole selection.
//
// Layout bookkeeping is deterministic and local: HDF5 requires dataset
// creation to be collective with identical arguments on every rank, so
// each rank computes the same allocation without shared state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpi/file.hpp"
#include "mpi/runtime.hpp"

namespace iop::hdf5 {

inline constexpr std::uint64_t kSuperblockBytes = 2048;
inline constexpr std::uint64_t kObjectHeaderBytes = 1024;

class H5File;

/// An open dataset: a named contiguous region of raw data in the file.
class Dataset {
 public:
  /// Collective hyperslab write: this rank contributes `bytes` at
  /// `offsetInDataset`.  All ranks of the file must participate.
  sim::Task<void> writeHyperslab(mpi::Rank& rank,
                                 std::uint64_t offsetInDataset,
                                 std::uint64_t bytes);
  /// Collective hyperslab read.
  sim::Task<void> readHyperslab(mpi::Rank& rank,
                                std::uint64_t offsetInDataset,
                                std::uint64_t bytes);

  /// Independent write (H5Dwrite with the default transfer property
  /// list): only the calling rank participates — how header/metadata
  /// datasets are typically written by rank 0.
  sim::Task<void> writeIndependent(std::uint64_t offsetInDataset,
                                   std::uint64_t bytes);

  const std::string& name() const noexcept { return name_; }
  std::uint64_t totalBytes() const noexcept { return totalBytes_; }
  std::uint64_t dataOffset() const noexcept { return dataOffset_; }
  std::uint64_t chunkBytes() const noexcept { return chunkBytes_; }

 private:
  friend class H5File;
  Dataset(H5File& file, std::string name, std::uint64_t dataOffset,
          std::uint64_t totalBytes, std::uint64_t chunkBytes)
      : file_(&file), name_(std::move(name)), dataOffset_(dataOffset),
        totalBytes_(totalBytes), chunkBytes_(chunkBytes) {}

  sim::Task<void> hyperslab(mpi::Rank& rank, std::uint64_t offset,
                            std::uint64_t bytes, bool isWrite);
  sim::Task<void> hyperslabImpl(mpi::Rank& rank, std::uint64_t offset,
                                std::uint64_t bytes, bool isWrite);

  H5File* file_;
  std::string name_;
  std::uint64_t dataOffset_;
  std::uint64_t totalBytes_;
  std::uint64_t chunkBytes_;  ///< 0 = contiguous layout
};

class H5File {
 public:
  /// Collective create (H5Fcreate with an MPI-IO fapl): rank 0 writes the
  /// superblock; everyone synchronizes.
  static sim::Task<std::shared_ptr<H5File>> create(mpi::Rank& rank,
                                                   const std::string& mount,
                                                   const std::string& path);

  /// Collective dataset creation: identical arguments on every rank (an
  /// HDF5 requirement); rank 0 writes the object header.  `chunkBytes`
  /// of 0 selects contiguous layout.
  sim::Task<Dataset> createDataset(mpi::Rank& rank, const std::string& name,
                                   std::uint64_t totalBytes,
                                   std::uint64_t chunkBytes = 0);

  /// Collective close: rank 0 flushes the metadata cache (small write),
  /// everyone closes the MPI file.
  sim::Task<void> close(mpi::Rank& rank);

 private:
  sim::Task<Dataset> createDatasetImpl(mpi::Rank& rank,
                                       const std::string& name,
                                       std::uint64_t totalBytes,
                                       std::uint64_t chunkBytes);

 public:

  std::uint64_t endOfFile() const noexcept { return eof_; }
  mpi::File& mpiFile() noexcept { return *file_; }

 private:
  friend class Dataset;
  H5File() = default;

  std::shared_ptr<mpi::File> file_;
  std::uint64_t eof_ = kSuperblockBytes;
};

}  // namespace iop::hdf5
