// Reimplementation of the IOR benchmark's MPI-IO core (the paper's
// Table III parameter set), running on the simulated runtime.
//
// Parameter mapping to IOR's CLI:
//   blockSize    -b     bytes per task per segment
//   transferSize -t     bytes per I/O call
//   segments     -s     number of (np * blockSize) segments
//   uniqueFilePerProc -F  one file per process instead of one shared file
//   collective   -c     use MPI_File_write_at_all / read_at_all
//   accessMode          sequential or random transfer order (IOR -z);
//                       strided is not supported, exactly the limitation
//                       the paper works around for NAS BT-IO (§IV-B)
//
// File layout (IOR "segmented"): segment s, rank r, transfer i lives at
//   s * np * blockSize + r * blockSize + i * transferSize.
#pragma once

#include <cstdint>
#include <string>

#include "configs/configs.hpp"
#include "mpi/runtime.hpp"

namespace iop::ior {

enum class AccessMode { Sequential, Random };

struct IorParams {
  std::string mount;
  std::string testFileName = "ior.dat";
  std::uint64_t blockSize = 1ULL << 20;
  std::uint64_t transferSize = 256ULL << 10;
  int segments = 1;
  int np = 1;
  bool uniqueFilePerProc = false;
  bool collective = false;
  AccessMode accessMode = AccessMode::Sequential;
  bool doWrite = true;
  bool doRead = true;
  /// Drop server caches between the write and read pass, emulating the
  /// separate-run / re-mount discipline real IOR measurements use.
  bool dropCachesBeforeRead = true;
  std::uint64_t randomSeed = 7;
};

/// Table V's output metrics.
struct IorResult {
  double writeTimeSec = 0;
  double readTimeSec = 0;
  double writeBandwidth = 0;  ///< bytes/s aggregate (BW_w)
  double readBandwidth = 0;   ///< bytes/s aggregate (BW_r)
  double writeOpsPerSec = 0;  ///< IOPS_w
  double readOpsPerSec = 0;   ///< IOPS_r
  std::uint64_t totalBytes = 0;

  std::string summary() const;
};

/// Run IOR on a (fresh) cluster configuration.  Pass a TraceSink to trace
/// IOR itself (the paper's Figure 6).  The cluster's engine is consumed by
/// the run; reuse only if cold caches are not required.
IorResult runIor(configs::ClusterConfig& cluster, const IorParams& params,
                 mpi::TraceSink* sink = nullptr);

}  // namespace iop::ior
