#include "ior/ior.hpp"

#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mpi/file.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace iop::ior {

namespace {

/// Timestamps shared across ranks (rank 0 records at the pass barriers).
struct PassTimes {
  double writeStart = 0;
  double writeEnd = 0;
  double readStart = 0;
  double readEnd = 0;
};

/// Per-rank transfer order for one segment.
std::vector<std::uint64_t> transferOrder(const IorParams& p, int rank) {
  const std::uint64_t perBlock = p.blockSize / p.transferSize;
  std::vector<std::uint64_t> order(perBlock);
  std::iota(order.begin(), order.end(), 0);
  if (p.accessMode == AccessMode::Random) {
    util::Rng rng(p.randomSeed + static_cast<std::uint64_t>(rank) * 7919);
    rng.shuffle(order);
  }
  return order;
}

sim::Task<void> pass(mpi::Rank& rank, mpi::File& file, const IorParams& p,
                     bool isWrite) {
  const std::uint64_t npU = static_cast<std::uint64_t>(p.np);
  const std::uint64_t rankU = static_cast<std::uint64_t>(rank.id());
  for (int s = 0; s < p.segments; ++s) {
    const std::uint64_t segBase =
        static_cast<std::uint64_t>(s) *
        (p.uniqueFilePerProc ? p.blockSize : npU * p.blockSize);
    const std::uint64_t blockBase =
        segBase + (p.uniqueFilePerProc ? 0 : rankU * p.blockSize);
    for (std::uint64_t i : transferOrder(p, rank.id())) {
      const std::uint64_t offset = blockBase + i * p.transferSize;
      if (p.collective) {
        if (isWrite) {
          co_await file.writeAtAll(offset, p.transferSize);
        } else {
          co_await file.readAtAll(offset, p.transferSize);
        }
      } else {
        if (isWrite) {
          co_await file.writeAt(offset, p.transferSize);
        } else {
          co_await file.readAt(offset, p.transferSize);
        }
      }
    }
  }
}

sim::Task<void> iorRank(mpi::Rank& rank, const IorParams& p,
                        storage::Topology& topology, PassTimes& times) {
  auto file = co_await rank.open(p.mount, p.testFileName,
                                 p.uniqueFilePerProc
                                     ? mpi::AccessType::Unique
                                     : mpi::AccessType::Shared);
  if (p.doWrite) {
    co_await rank.barrier();
    if (rank.id() == 0) times.writeStart = rank.engine().now();
    co_await pass(rank, *file, p, /*isWrite=*/true);
    co_await rank.barrier();
    if (rank.id() == 0) times.writeEnd = rank.engine().now();
  }
  if (p.doRead) {
    if (p.dropCachesBeforeRead && rank.id() == 0) topology.dropCaches();
    co_await rank.barrier();
    if (rank.id() == 0) times.readStart = rank.engine().now();
    co_await pass(rank, *file, p, /*isWrite=*/false);
    co_await rank.barrier();
    if (rank.id() == 0) times.readEnd = rank.engine().now();
  }
  co_await file->close();
}

}  // namespace

std::string IorResult::summary() const {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "write: %8.2f MB/s  %8.1f IOPS  %9.3f s\n",
                util::toMiBs(writeBandwidth), writeOpsPerSec, writeTimeSec);
  out << buf;
  std::snprintf(buf, sizeof buf,
                "read:  %8.2f MB/s  %8.1f IOPS  %9.3f s\n",
                util::toMiBs(readBandwidth), readOpsPerSec, readTimeSec);
  out << buf;
  return out.str();
}

IorResult runIor(configs::ClusterConfig& cluster, const IorParams& params,
                 mpi::TraceSink* sink) {
  if (params.transferSize == 0 || params.blockSize == 0 ||
      params.blockSize % params.transferSize != 0) {
    throw std::invalid_argument(
        "IOR requires transferSize | blockSize, both nonzero");
  }
  if (params.np <= 0 || params.segments <= 0) {
    throw std::invalid_argument("IOR requires np > 0 and segments > 0");
  }

  auto opts = cluster.runtimeOptions(params.np, sink);
  mpi::Runtime runtime(*cluster.topology, opts);
  PassTimes times;
  storage::Topology& topo = *cluster.topology;
  const IorParams& p = params;
  runtime.runToCompletion(
      [&p, &topo, &times](mpi::Rank& rank) -> sim::Task<void> {
        return iorRank(rank, p, topo, times);
      });

  IorResult result;
  const std::uint64_t perRank =
      params.blockSize * static_cast<std::uint64_t>(params.segments);
  result.totalBytes = perRank * static_cast<std::uint64_t>(params.np);
  const std::uint64_t ops =
      result.totalBytes / params.transferSize;
  if (params.doWrite) {
    result.writeTimeSec = times.writeEnd - times.writeStart;
    if (result.writeTimeSec > 0) {
      result.writeBandwidth =
          static_cast<double>(result.totalBytes) / result.writeTimeSec;
      result.writeOpsPerSec =
          static_cast<double>(ops) / result.writeTimeSec;
    }
  }
  if (params.doRead) {
    result.readTimeSec = times.readEnd - times.readStart;
    if (result.readTimeSec > 0) {
      result.readBandwidth =
          static_cast<double>(result.totalBytes) / result.readTimeSec;
      result.readOpsPerSec = static_cast<double>(ops) / result.readTimeSec;
    }
  }
  return result;
}

}  // namespace iop::ior
