// Scenario: two applications share one storage system.  The paper's
// closing observation — the phase view "can be useful ... for the
// planning the parallel applications taking into account when the I/O
// phases are done" — made concrete: use the two apps' I/O models to pick
// a launch stagger that keeps their heavy phases from colliding, and
// verify the prediction by actually co-running them.
#include <algorithm>
#include <cstdio>

#include "analysis/planner.hpp"
#include "analysis/runner.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "mpi/runtime.hpp"
#include "trace/tracer.hpp"

using namespace iop;

namespace {

/// Co-run two MADbench2 instances on one configuration-B topology, the
/// second delayed by `staggerSeconds`; returns the pair of makespans.
std::pair<double, double> corun(double staggerSeconds) {
  auto cfg = configs::makeConfig(configs::ConfigId::B);
  apps::MadbenchParams params;
  params.kpix = 4;
  params.mount = cfg.mount;

  auto opts = cfg.runtimeOptions(8);
  opts.shutdownTopologyOnCompletion = false;
  mpi::Runtime first(*cfg.topology, opts);
  mpi::Runtime second(*cfg.topology, opts);

  first.launch(apps::makeMadbench(params));
  auto delayed = [params, staggerSeconds](mpi::Rank& rank)
      -> sim::Task<void> {
    co_await rank.compute(staggerSeconds);
    co_await apps::makeMadbench(params)(rank);
  };
  second.launch(delayed);

  // Shut the shared topology down once both apps finished.
  cfg.engine->spawn([](mpi::Runtime& a, mpi::Runtime& b,
                       storage::Topology& topo) -> sim::Task<void> {
    co_await a.completed().wait();
    co_await b.completed().wait();
    topo.shutdown();
  }(first, second, *cfg.topology));
  cfg.engine->run();
  return {first.appElapsed(), second.appElapsed() - staggerSeconds};
}

}  // namespace

int main() {
  // 1. Each app alone: the baseline and the model that guides the plan.
  auto solo = configs::makeConfig(configs::ConfigId::B);
  apps::MadbenchParams params;
  params.kpix = 4;
  params.mount = solo.mount;
  auto run = analysis::runAndTrace(solo, "madbench2",
                                   apps::makeMadbench(params), 8);
  std::printf("solo makespan: %.1f s; phases:\n", run.makespanSeconds);
  for (const auto& ph : run.model.phases()) {
    std::printf("  phase %d (%s): %.1f .. %.1f s\n", ph.id,
                ph.opTypeLabel().c_str(), ph.startTime, ph.endTime);
  }

  // 2. The model-informed stagger, computed by the planner: the smallest
  //    launch offset that keeps the two apps' I/O windows from
  //    overlapping.
  std::vector<const core::IOModel*> apps{&run.model, &run.model};
  auto plan = analysis::planStaggeredLaunch(apps);
  const double informedStagger = plan[1].startOffset;
  std::printf("\nplanner-chosen stagger: %.1f s (predicted I/O overlap "
              "%.1f s -> %.1f s)\n",
              informedStagger,
              analysis::ioOverlapSeconds(run.model, 0, run.model, 0),
              analysis::ioOverlapSeconds(run.model, 0, run.model,
                                         informedStagger));

  // 3. Compare collide vs stagger by actually co-running.
  auto [a0, b0] = corun(0.0);
  auto [a1, b1] = corun(informedStagger);
  std::printf("\nco-run, no stagger:    app1 %.1f s, app2 %.1f s "
              "(worst %.1f)\n",
              a0, b0, std::max(a0, b0));
  std::printf("co-run, with stagger:  app1 %.1f s, app2 %.1f s "
              "(worst %.1f)\n",
              a1, b1, std::max(a1, b1));
  const double worst0 = std::max(a0, b0);
  const double worst1 = std::max(a1, b1);
  std::printf("\nslowdown vs solo: %.0f%% -> %.0f%% — the stagger chosen "
              "from the phase model, no trial runs needed.\n",
              100.0 * (worst0 / run.makespanSeconds - 1.0),
              100.0 * (worst1 / run.makespanSeconds - 1.0));
  return 0;
}
