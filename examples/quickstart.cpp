// Quickstart: the complete methodology in ~60 lines.
//
//  1. run an application on a simulated cluster with tracing,
//  2. extract its I/O abstract model (phases + f(initOffset)),
//  3. save the model, reload it (characterize once, analyze anywhere),
//  4. estimate the app's I/O time on a *different* cluster using only the
//     model and IOR phase replay — without running the app there.
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "configs/configs.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;

  // 1. Characterize: NAS BT-IO class A, 4 processes, on configuration A.
  auto home = configs::makeConfig(configs::ConfigId::A);
  apps::BtioParams app;
  app.mount = home.mount;
  app.cls = apps::BtClass::A;
  auto run = analysis::runAndTrace(home, "btio-quickstart",
                                   apps::makeBtio(app), 4);
  std::printf("application ran in %.1f simulated seconds\n",
              run.makespanSeconds);

  // 2. The extracted I/O abstract model.
  std::printf("\n%s\n", run.model.renderSummary().c_str());

  // 3. Persist and reload — the model is independent of the machine it
  //    was traced on.
  run.model.save("quickstart.model");
  auto model = core::IOModel::load("quickstart.model");
  std::printf("model round-tripped through quickstart.model (%zu phases)\n",
              model.phases().size());

  // 4. Estimate the I/O time on configuration B (PVFS2) via IOR replay.
  analysis::Replayer replayer(
      [] { return configs::makeConfig(configs::ConfigId::B); },
      "/mnt/pvfs2");
  auto estimate = analysis::estimateIoTime(model, replayer);
  std::printf("\nestimated I/O time on %s: %.2f s "
              "(%zu IOR runs for %zu phases — identical phases replay "
              "once)\n",
              "configuration B", estimate.totalTimeSec,
              replayer.benchmarkRuns(), estimate.phases.size());
  for (const auto& row : estimate.familyRows()) {
    std::printf("  phases %d-%d: %.2f s for %s\n", row.firstPhase,
                row.lastPhase, row.timeCH,
                util::formatBytesApprox(row.weightBytes).c_str());
  }
  return 0;
}
