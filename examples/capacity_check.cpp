// Scenario: a system administrator wants to know whether the cluster's
// I/O subsystem is the bottleneck for a production workload — how much of
// the storage's capacity does the application actually use, and do the
// devices saturate?
//
// Workflow (the paper's Section IV-A): trace the application, extract its
// phases, measure the device-level peak with the IOzone sweep (eqs. 3-4),
// compute per-phase SystemUsage (eq. 5), and watch the disks with the
// iostat-style monitor while it runs.
#include <algorithm>
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/peaks.hpp"
#include "analysis/runner.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;

  // The production workload: MADbench2 (cosmology) on the PVFS2 cluster.
  auto cfg = configs::makeConfig(configs::ConfigId::B);
  apps::MadbenchParams app;
  app.mount = cfg.mount;
  app.kpix = 8;

  // Trace + monitor in one run.
  trace::Tracer tracer("madbench2", 16);
  monitor::DeviceMonitor mon(*cfg.engine, cfg.topology->allDisks(), 1.0);
  mon.start();
  auto opts = cfg.runtimeOptions(16, &tracer);
  opts.onAppComplete = [&mon] { mon.stop(); };
  mpi::Runtime runtime(*cfg.topology, opts);
  const double makespan = runtime.runToCompletion(apps::makeMadbench(app));
  auto model = core::extractModel(tracer.data());
  std::printf("run finished in %.0f s; %zu I/O phases\n", makespan,
              model.phases().size());

  // Device peaks (fresh instance so the sweep starts cold).
  auto peakCfg = configs::makeConfig(configs::ConfigId::B);
  auto peaks = analysis::measurePeaks(peakCfg);
  std::printf("device peaks (eq. 4): write %.0f MB/s, read %.0f MB/s\n\n",
              util::toMiBs(peaks.writePeak), util::toMiBs(peaks.readPeak));

  // Usage per phase.
  for (const auto& row :
       analysis::systemUsage(model, peaks.writePeak, peaks.readPeak)) {
    std::printf("phase %d (%-8s %5s): BW_MD %4.0f MB/s -> %3.0f%% of peak\n",
                row.phaseId, row.opsLabel.c_str(),
                util::formatBytes(row.weightBytes).c_str(),
                util::toMiBs(row.measuredBandwidth), row.usagePct);
  }

  // The verdict, the way an admin would phrase it.
  std::printf("\npeak disk utilization during the run: %.0f%%\n",
              mon.peakUtilization() * 100);
  std::printf("interpretation: the devices saturate (seek-bound) long "
              "before the ideal sequential peak is reached — the access "
              "pattern, not raw capacity, is the bottleneck.\n");
  return 0;
}
