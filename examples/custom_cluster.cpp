// Scenario: capacity planning — "should we buy a RAID5 NAS upgrade or two
// more PVFS I/O nodes?".  This example builds *custom* topologies with the
// storage-simulator API (not the canned paper configurations) and replays
// a previously saved application model on each candidate design.
//
// It demonstrates the public topology-building API end to end: nodes,
// links, devices (RAID5 vs JBOD), caches, filesystems, and mounts.
#include <cstdio>
#include <memory>

#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "storage/blockdev.hpp"
#include "storage/filesystem.hpp"
#include "util/units.hpp"

using namespace iop;
using iop::util::GiB;
using iop::util::KiB;
using iop::util::MiB;

namespace {

storage::DiskParams commodityDisk(const std::string& name) {
  storage::DiskParams p;
  p.name = name;
  p.seqReadBw = 110.0e6;
  p.seqWriteBw = 105.0e6;
  p.positionTime = 8.0e-3;
  return p;
}

/// Candidate 1: one beefy NAS with an 8-disk RAID5 behind NFS.
configs::ClusterConfig bigNas() {
  configs::ClusterConfig cfg;
  cfg.name = "big-NAS (8-disk RAID5, NFS)";
  cfg.engine = std::make_unique<sim::Engine>(7);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  for (int i = 0; i < 8; ++i) {
    cfg.topology->addNode("c" + std::to_string(i),
                          storage::gigabitEthernet());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  auto& nas = cfg.topology->addNode("nas", storage::gigabitEthernet());
  std::vector<storage::DiskParams> members;
  for (int i = 0; i < 8; ++i) members.push_back(commodityDisk("raid-d"));
  storage::ServerParams sp;
  sp.cache.sizeBytes = 4 * GiB;
  auto& server = cfg.topology->addServer(
      nas, std::make_unique<storage::Raid5>(*cfg.engine, members, 256 * KiB),
      sp);
  cfg.topology->mount(
      "/data", std::make_unique<storage::NfsFS>(*cfg.engine, server));
  cfg.mount = "/data";
  cfg.hints.cbNodes = 1;
  return cfg;
}

/// Candidate 2: five thin striped I/O nodes (PVFS-style), one disk each.
configs::ClusterConfig wideStripe() {
  configs::ClusterConfig cfg;
  cfg.name = "wide-stripe (5 I/O nodes, PVFS)";
  cfg.engine = std::make_unique<sim::Engine>(7);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  for (int i = 0; i < 8; ++i) {
    cfg.topology->addNode("c" + std::to_string(i),
                          storage::gigabitEthernet());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  std::vector<storage::IoServer*> ions;
  for (int i = 0; i < 5; ++i) {
    auto& node = cfg.topology->addNode("ion" + std::to_string(i),
                                       storage::gigabitEthernet());
    storage::ServerParams sp;
    sp.cache.sizeBytes = 1 * GiB;
    ions.push_back(&cfg.topology->addServer(
        node,
        std::make_unique<storage::SingleDisk>(*cfg.engine,
                                              commodityDisk("ion-d")),
        sp));
  }
  storage::StripedParams pvfs;
  pvfs.stripeUnit = 64 * KiB;
  cfg.topology->mount("/data", std::make_unique<storage::StripedFS>(
                                   *cfg.engine, ions, nullptr, pvfs));
  cfg.mount = "/data";
  cfg.hints.cbNodes = 5;
  return cfg;
}

}  // namespace

int main() {
  // Characterize the workload once (on the existing production cluster).
  auto prod = configs::makeConfig(configs::ConfigId::A);
  apps::MadbenchParams app;
  app.mount = prod.mount;
  app.kpix = 8;
  auto run = analysis::runAndTrace(prod, "madbench2",
                                   apps::makeMadbench(app), 16);
  std::printf("workload model: %zu phases, %s total\n\n",
              run.model.phases().size(),
              util::formatBytesApprox(run.model.totalWeightBytes()).c_str());

  // Replay the model on each candidate design.
  struct Design {
    const char* label;
    configs::ClusterConfig (*make)();
  };
  const Design designs[] = {{"big-NAS", bigNas},
                            {"wide-stripe", wideStripe}};
  for (const auto& d : designs) {
    analysis::Replayer replayer(d.make, "/data");
    auto estimate = analysis::estimateIoTime(run.model, replayer);
    std::printf("%-12s estimated I/O time: %7.1f s\n", d.label,
                estimate.totalTimeSec);
    for (const auto& row : estimate.familyRows()) {
      std::printf("    phases %d-%d (%s): %7.1f s\n", row.firstPhase,
                  row.lastPhase,
                  util::formatBytesApprox(row.weightBytes).c_str(),
                  row.timeCH);
    }
  }
  std::printf("\nThe design with the smaller estimate wins for *this*\n"
              "workload — a different access pattern may prefer the other\n"
              "candidate, which is exactly why the model is extracted per\n"
              "application.\n");
  return 0;
}
