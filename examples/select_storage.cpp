// Scenario: a user must choose where to run a checkpoint-heavy solver —
// the local NFS cluster or the shared Lustre machine — without burning an
// allocation on trial runs.
//
// Workflow: characterize the application once on the local cluster, then
// replay its phases with IOR on every candidate and pick the configuration
// with the smallest estimated I/O time (the paper's Table XII workflow).
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "configs/configs.hpp"

int main() {
  using namespace iop;

  // The "application": BT-IO class C on 16 processes (checkpoint every 5
  // steps + verification read-back).
  auto local = configs::makeConfig(configs::ConfigId::A);
  apps::BtioParams app;
  app.mount = local.mount;
  app.cls = apps::BtClass::C;
  std::printf("characterizing on %s...\n", local.name.c_str());
  auto run =
      analysis::runAndTrace(local, "solver", apps::makeBtio(app), 16);

  struct Candidate {
    configs::ConfigId id;
    const char* mount;
  };
  const Candidate candidates[] = {
      {configs::ConfigId::B, "/mnt/pvfs2"},
      {configs::ConfigId::C, "/home"},
      {configs::ConfigId::Finisterrae, "homesfs"},
  };

  std::vector<analysis::SelectionCandidate> evaluated;
  for (const auto& c : candidates) {
    analysis::Replayer replayer(
        [id = c.id] { return configs::makeConfig(id); }, c.mount);
    analysis::SelectionCandidate sc;
    sc.name = configs::configName(c.id);
    sc.estimate = analysis::estimateIoTime(run.model, replayer);
    std::printf("  %-16s estimated I/O time %8.2f s (%zu IOR runs)\n",
                sc.name.c_str(), sc.estimate.totalTimeSec,
                replayer.benchmarkRuns());
    evaluated.push_back(std::move(sc));
  }

  const auto* best = analysis::selectConfiguration(evaluated);
  std::printf("\n=> run the solver on: %s\n", best->name.c_str());
  std::printf("   (no application run was needed on any candidate — only "
              "the model + IOR)\n");
  return 0;
}
