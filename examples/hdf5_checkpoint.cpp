// Scenario: an application team wants to know what their HDF5 checkpoint
// actually costs before porting to a new machine — including the
// metadata operations parallel HDF5 issues behind their backs.
//
// Demonstrates the hdf5 layer's public API directly (H5File/Dataset), the
// metadata-noise filter, and estimation from the filtered model.
#include <cstdio>

#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "configs/configs.hpp"
#include "hdf5/h5.hpp"
#include "mpi/runtime.hpp"
#include "trace/summary.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

using namespace iop;
using iop::util::MiB;

namespace {

/// A hand-written checkpoint: 3D field + particle data + a header.
sim::Task<void> checkpoint(mpi::Rank& rank, const std::string& mount) {
  const std::uint64_t np = static_cast<std::uint64_t>(rank.np());
  auto file = co_await hdf5::H5File::create(rank, mount, "checkpoint.h5");

  // Header: written independently by rank 0.
  auto header = co_await file->createDataset(rank, "/meta/run_info",
                                             64 * 1024);
  if (rank.id() == 0) co_await header.writeIndependent(0, 64 * 1024);
  co_await rank.barrier();

  // Field: one collective hyperslab per rank, contiguous layout.
  const std::uint64_t fieldSlab = 24 * MiB;
  auto field = co_await file->createDataset(rank, "/fields/density",
                                            fieldSlab * np);
  co_await field.writeHyperslab(
      rank, fieldSlab * static_cast<std::uint64_t>(rank.id()), fieldSlab);

  // Particles: chunked dataset, two records per rank.
  const std::uint64_t particleSlab = 8 * MiB;
  auto particles = co_await file->createDataset(
      rank, "/particles/positions", particleSlab * np * 2, 4 * MiB);
  for (int rec = 0; rec < 2; ++rec) {
    co_await rank.compute(0.3);  // advance the simulation
    co_await particles.writeHyperslab(
        rank,
        particleSlab * (np * static_cast<std::uint64_t>(rec) +
                        static_cast<std::uint64_t>(rank.id())),
        particleSlab);
  }
  co_await file->close(rank);
}

}  // namespace

int main() {
  auto cfg = configs::makeConfig(configs::ConfigId::Finisterrae);
  const std::string mount = cfg.mount;
  trace::Tracer tracer("hdf5-checkpoint", 16);
  auto opts = cfg.runtimeOptions(16, &tracer);
  mpi::Runtime runtime(*cfg.topology, opts);
  const double makespan = runtime.runToCompletion(
      [mount](mpi::Rank& rank) { return checkpoint(rank, mount); });
  auto data = tracer.takeData();
  std::printf("checkpoint wrote in %.2f s (simulated, on Finisterrae)\n\n",
              makespan);
  std::printf("%s\n", trace::summarizeTrace(data).render().c_str());

  // Raw model: rank-0 metadata writes fragment the phases.
  auto raw = core::extractModel(data);
  core::PhaseDetectionOptions filter;
  filter.ignoreOpsSmallerThan = 1 * MiB;
  auto clean = core::extractModel(data, filter);
  std::printf("phases raw: %zu, with 1MB metadata filter: %zu\n\n",
              raw.phases().size(), clean.phases().size());
  std::printf("%s\n", clean.renderSummary().c_str());

  // What would this checkpoint cost on the old NFS cluster?
  analysis::Replayer replayer(
      [] { return configs::makeConfig(configs::ConfigId::A); },
      "/raid/raid5");
  auto estimate = analysis::estimateIoTime(clean, replayer);
  std::printf("estimated checkpoint I/O time on configuration A: %.2f s\n",
              estimate.totalTimeSec);
  return 0;
}
