// iop-peaks: IOzone-style device-level characterization of a
// configuration (eqs. 3-4): the per-node sweep and the aggregated BW_PK.
//
//   iop-peaks --config B
#include <cstdio>

#include "analysis/peaks.hpp"
#include "iozone/iozone.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "configuration");
  args.addFlag("sweep", "print the full per-pattern IOzone sweep of the "
                        "first I/O node");
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    obs::Logger log(tools::toolLogLevel(args));
    if (args.helpRequested()) {
      std::printf("%s", args.usage("iop-peaks",
                                   "Measure BW_PK at device level "
                                   "(the system-characterization stage).")
                            .c_str());
      return 0;
    }
    auto cluster = tools::makeConfiguredCluster(args);
    std::printf("%s\n%s", cluster.name.c_str(),
                cluster.topology->describe().c_str());
    if (args.flag("sweep")) {
      auto& fs = cluster.topology->fs(cluster.mount);
      auto sweep =
          iozone::runIozone(*cluster.engine, *fs.dataServers().front());
      std::printf("\n%s", sweep.renderTable().c_str());
    }
    auto fresh = tools::configuredBuilder(args)();
    auto peaks = analysis::measurePeaks(fresh);
    std::printf("\nper-node peaks:\n");
    for (const auto& s : peaks.perServer) {
      std::printf("  %-12s write %7.1f MB/s  read %7.1f MB/s\n",
                  s.nodeName.c_str(), util::toMiBs(s.writePeak),
                  util::toMiBs(s.readPeak));
    }
    std::printf("BW_PK (eqs. 3-4): write %.1f MB/s, read %.1f MB/s\n",
                util::toMiBs(peaks.writePeak),
                util::toMiBs(peaks.readPeak));
    log.info("tool", "complete");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-peaks: %s\n", e.what());
    return 1;
  }
}
