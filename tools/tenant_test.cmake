# iop-tenant smoke test, run as a CTest:
#   the committed 3-job example spec must produce a fairness report,
#   rerunning with the same seed must be byte-identical (report and
#   captures), and a different seed may differ but must still succeed.
# Inputs: -DTENANT=... -DSPEC=... -DWORKDIR=...
function(run_step)
  execute_process(COMMAND ${ARGV}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(MAKE_DIRECTORY ${WORKDIR})

set(base run --spec ${SPEC} --config B --seed 7)
run_step(${TENANT} ${base} --report-out run1.txt --capture-out caps1)
string(FIND "${STEP_OUTPUT}" "Jain fairness index" found)
if(found EQUAL -1)
  message(FATAL_ERROR "report missing fairness line:\n${STEP_OUTPUT}")
endif()

run_step(${TENANT} ${base} --report-out run2.txt --capture-out caps2)

foreach(file run1.txt caps1/fg.capture caps1/ckpt.capture caps1/bg.capture)
  if(NOT EXISTS ${WORKDIR}/${file})
    message(FATAL_ERROR "missing output ${file}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/run1.txt ${WORKDIR}/run2.txt
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "same-seed reruns produced different reports")
endif()
foreach(job fg ckpt bg)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORKDIR}/caps1/${job}.capture
                  ${WORKDIR}/caps2/${job}.capture
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "same-seed reruns differ in ${job}.capture")
  endif()
endforeach()

# Different seed: still succeeds, still renders the fairness report.
run_step(${TENANT} report --spec ${SPEC} --config B --seed 8)
string(FIND "${STEP_OUTPUT}" "Jain fairness index" found)
if(found EQUAL -1)
  message(FATAL_ERROR "seed-8 report missing fairness line:\n${STEP_OUTPUT}")
endif()

message(STATUS "tenant smoke test passed")
