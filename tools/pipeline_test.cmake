# End-to-end smoke test of the iop-* pipeline, run as a CTest:
#   trace -> model -> estimate -> synthesize --verify
# Inputs: -DTRACE=... -DMODEL=... -DESTIMATE=... -DSYNTH=... -DWORKDIR=...
function(run_step)
  execute_process(COMMAND ${ARGV}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(MAKE_DIRECTORY ${WORKDIR})

run_step(${TRACE} --app btio --class A --np 4 --config A --out traces)
run_step(${MODEL} --traces traces --app btio --out pipeline.model)
string(FIND "${STEP_OUTPUT}" "idP*rs" found)
if(found EQUAL -1)
  message(FATAL_ERROR "iop-model output missing the offset formula:\n"
                      "${STEP_OUTPUT}")
endif()

run_step(${ESTIMATE} --model pipeline.model --config B)
string(FIND "${STEP_OUTPUT}" "total estimated I/O time" found)
if(found EQUAL -1)
  message(FATAL_ERROR "iop-estimate output missing the total:\n"
                      "${STEP_OUTPUT}")
endif()

run_step(${SYNTH} --model pipeline.model --config C --verify)
string(FIND "${STEP_OUTPUT}" "round-trip fidelity: OK" found)
if(found EQUAL -1)
  message(FATAL_ERROR "iop-synthesize round trip failed:\n${STEP_OUTPUT}")
endif()

message(STATUS "pipeline smoke test passed")
