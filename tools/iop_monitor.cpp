// iop-monitor: run an application with iostat-style device monitoring and
// dump the per-disk time series (the paper's Figure 8 workflow).
//
//   iop-monitor --app madbench2 --np 16 --config B --out devices.csv
#include <cstdio>
#include <fstream>

#include "monitor/monitor.hpp"
#include "obs/hub.hpp"
#include "mpi/runtime.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "configuration to run on");
  args.addOption("np", "number of MPI processes", "16");
  args.addOption("interval", "sampling interval in simulated seconds", "1");
  args.addOption("out", "CSV output file (- = stdout)", "-");
  tools::addAppOptions(args);
  tools::addObsOptions(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested()) {
      std::printf("%s", args.usage("iop-monitor",
                                   "Monitor device activity while an "
                                   "application runs (iostat -x -p 1).")
                            .c_str());
      return 0;
    }
    auto cluster = tools::makeConfiguredCluster(args);
    tools::ObsSession obsSession(args);
    obs::Logger& log = obsSession.log();
    obsSession.attach(*cluster.engine);
    const int np = static_cast<int>(args.getInt("np", 16));
    monitor::DeviceMonitor mon(*cluster.engine,
                               cluster.topology->allDisks(),
                               args.getDouble("interval", 1.0));
    mon.start();
    auto opts = cluster.runtimeOptions(np);
    opts.onAppComplete = [&mon] { mon.stop(); };
    mpi::Runtime runtime(*cluster.topology, opts);
    const double makespan =
        runtime.runToCompletion(tools::makeAppMain(args, cluster));
    log.info("tool", "run_complete",
             "\"app\":\"" +
                 obs::TraceRecorder::jsonEscape(args.get("app")) +
                 "\",\"makespan\":" + std::to_string(makespan) +
                 ",\"samples\":" + std::to_string(mon.samples().size()) +
                 ",\"disks\":" + std::to_string(mon.disks().size()) +
                 ",\"peak_utilization\":" +
                 std::to_string(mon.peakUtilization()));
    auto csv = mon.renderCsv();
    if (args.get("out") == "-") {
      std::printf("%s", csv.c_str());
    } else {
      std::ofstream file(args.get("out"));
      if (!file) throw std::runtime_error("cannot open " + args.get("out"));
      file << csv;
      log.info("tool", "wrote_csv",
               "\"path\":\"" +
                   obs::TraceRecorder::jsonEscape(args.get("out")) + "\"");
    }
    obsSession.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-monitor: %s\n", e.what());
    return 1;
  }
}
