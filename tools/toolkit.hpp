// Shared plumbing for the iop-* command-line tools: configuration and
// application specs parsed from CLI options, plus the observability
// session behind the --trace-out / --metrics-out flags.
#pragma once

#include <memory>
#include <string>

#include "configs/configs.hpp"
#include "mpi/runtime.hpp"
#include "obs/hub.hpp"
#include "util/args.hpp"

namespace iop::tools {

/// "A" | "B" | "C" | "finisterrae" (case-insensitive).
configs::ConfigId parseConfigId(const std::string& name);

/// Register --config / --config-file and resolve them: --config-file (a
/// cluster description, see configs/configfile.hpp) wins over the named
/// paper configuration.
void addConfigOptions(util::Args& args, const std::string& role);
configs::ClusterConfig makeConfiguredCluster(const util::Args& args);
/// A builder producing fresh instances of the selected configuration.
std::function<configs::ClusterConfig()> configuredBuilder(
    const util::Args& args);

/// Register the application-selection options (--app and its knobs).
void addAppOptions(util::Args& args);

/// Build the rank-main for the app selected by --app using the cluster's
/// mount point.  Knows: madbench2, btio, roms, example, and "ior".
mpi::Runtime::RankMain makeAppMain(const util::Args& args,
                                   const configs::ClusterConfig& cluster);

/// Register --log-level (structured JSONL diagnostics on stderr); shared
/// by every iop-* tool, including the offline ones.
void addLogOption(util::Args& args);

/// Resolve --log-level (default: warn).  Throws on unknown names.
obs::LogLevel toolLogLevel(const util::Args& args);

/// Register --trace-out (Chrome/Perfetto JSON), --metrics-out (CSV) and
/// --log-level.
void addObsOptions(util::Args& args);

/// Tool-side observability session driven by the flags above.  Inactive
/// (and free) unless the user asked for at least one output; when active,
/// attach() wires every engine the tool creates to the shared sinks and
/// finish() writes the requested files.
class ObsSession {
 public:
  explicit ObsSession(const util::Args& args);
  ~ObsSession();  ///< detaches the profiler if finish() never ran

  bool active() const noexcept { return session_ != nullptr; }
  obs::Session* session() noexcept { return session_.get(); }

  /// The tool's structured logger (level from --log-level).  Usable even
  /// when the session is inactive — offline notices go through it too.
  obs::Logger& log() noexcept { return log_; }

  /// Attach the sinks to an engine (no-op when inactive).  Call for every
  /// engine the tool builds — including fresh replay clusters.
  void attach(sim::Engine& engine);

  /// Wrap a config builder so replay clusters are attached on creation.
  configs::ClusterConfig attachedBuild(
      const std::function<configs::ClusterConfig()>& build);

  /// Write --trace-out / --metrics-out and report to stderr.
  void finish();

 private:
  void detachProfiler();

  std::unique_ptr<obs::Session> session_;
  obs::Logger log_;
  std::string traceOut_;
  std::string metricsOut_;
  bool profilerAttached_ = false;
};

}  // namespace iop::tools
