// Shared plumbing for the iop-* command-line tools: configuration and
// application specs parsed from CLI options.
#pragma once

#include <string>

#include "configs/configs.hpp"
#include "mpi/runtime.hpp"
#include "util/args.hpp"

namespace iop::tools {

/// "A" | "B" | "C" | "finisterrae" (case-insensitive).
configs::ConfigId parseConfigId(const std::string& name);

/// Register --config / --config-file and resolve them: --config-file (a
/// cluster description, see configs/configfile.hpp) wins over the named
/// paper configuration.
void addConfigOptions(util::Args& args, const std::string& role);
configs::ClusterConfig makeConfiguredCluster(const util::Args& args);
/// A builder producing fresh instances of the selected configuration.
std::function<configs::ClusterConfig()> configuredBuilder(
    const util::Args& args);

/// Register the application-selection options (--app and its knobs).
void addAppOptions(util::Args& args);

/// Build the rank-main for the app selected by --app using the cluster's
/// mount point.  Knows: madbench2, btio, roms, example, and "ior".
mpi::Runtime::RankMain makeAppMain(const util::Args& args,
                                   const configs::ClusterConfig& cluster);

}  // namespace iop::tools
