// iop-sweep: parallel what-if campaigns over (model x configuration x
// fault) grids, with a content-addressed on-disk result cache.
//
//   iop-sweep run    --campaign c.campaign --store out/ -j4
//   iop-sweep resume --campaign c.campaign --store out/ -j4
//   iop-sweep report --campaign c.campaign --store out/
//   iop-sweep gc     --campaign c.campaign --store out/
//   iop-sweep postmortem --store out/
//
// `run` evaluates every cell of the campaign grid, reusing any cell whose
// cache key is already in the store; `resume` is the same operation by a
// clearer name (an interrupted run left whole cells behind, so resuming
// simply recomputes the missing ones).  `report` ranks the stored results
// per model/fault group by estimated Time_io (the paper's configuration
// selection).  `gc` drops cells orphaned by campaign edits.
// `postmortem` reconstructs the newest run's timeline from its flight
// recorder journal (<store>/journal/run-*.jsonl, written by default) and
// names the cells that were in flight when a crashed run ended.
//
// Runtime telemetry: every `run` journals its lifecycle events;
// --telemetry-out FILE additionally snapshots live Prometheus-style
// metrics on a timer, --progress draws a status line, and
// --exec-trace-out FILE exports the execution itself (one track per
// worker) as a Chrome/Perfetto trace.  None of this perturbs results:
// the store bytes are identical with telemetry on or off.
//
// Exit codes: 0 ok, 1 cell failures (or missing cells in report, or an
// incomplete journal in postmortem), 2 usage or campaign errors.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "obs/archive.hpp"
#include "obs/profiler.hpp"
#include "obs/runtime.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/fsck.hpp"
#include "sweep/hash.hpp"
#include "sweep/postmortem.hpp"
#include "sweep/rank.hpp"
#include "sweep/store.hpp"
#include "sweep/telemetry.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

namespace {

using namespace iop;

/// SIGINT/SIGTERM request graceful shutdown: workers finish and commit
/// the cells in flight, untouched cells stay resumable.  A second signal
/// falls through to the default handler (immediate kill) — the store is
/// safe either way because cells commit via atomic renames.
std::atomic<bool> gCancelRequested{false};

extern "C" void onShutdownSignal(int signum) {
  gCancelRequested.store(true, std::memory_order_relaxed);
  std::signal(signum, SIG_DFL);
}

void installShutdownHandlers() {
  std::signal(SIGINT, onShutdownSignal);
  std::signal(SIGTERM, onShutdownSignal);
}

/// Expand the familiar make-style "-j4" / "-j 4" into "--jobs 4".
std::vector<std::string> expandJobsShorthand(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() > 2 && arg.rfind("-j", 0) == 0) {
      out.push_back("--jobs");
      out.push_back(arg.substr(2));
    } else if (arg == "-j") {
      out.push_back("--jobs");
    } else {
      out.push_back(arg);
    }
  }
  return out;
}

int parseJobs(const util::Args& args) {
  const std::string text = args.getOr("jobs", "1");
  std::size_t used = 0;
  const int jobs = std::stoi(text, &used);
  if (used != text.size() || jobs < 1) {
    throw std::invalid_argument("--jobs must be a positive integer");
  }
  return jobs;
}

/// The shared cache directory: --shared-store, falling back to the
/// IOP_SWEEP_STORE environment variable.  Empty means no sharing.
std::string sharedStorePath(const util::Args& args) {
  std::string path = args.getOr("shared-store", "");
  if (path.empty()) {
    if (const char* env = std::getenv("IOP_SWEEP_STORE")) path = env;
  }
  return path;
}

int parseTelemetryInterval(const util::Args& args) {
  const std::string text = args.getOr("telemetry-interval-ms", "500");
  std::size_t used = 0;
  const int ms = std::stoi(text, &used);
  if (used != text.size() || ms < 10) {
    throw std::invalid_argument(
        "--telemetry-interval-ms must be an integer >= 10");
  }
  return ms;
}

/// A fresh journal filename: run-<unix-ms>-<pid>.jsonl.  The embedded
/// timestamp makes `postmortem` pick the newest run without trusting
/// filesystem mtimes.
std::string journalFileName() {
  const auto unixMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  return "run-" + std::to_string(unixMs) + "-" +
         std::to_string(static_cast<long>(getpid())) + ".jsonl";
}

/// Telemetry knobs shared by `run` and `resume`.  Journaling is on by
/// default: it is cheap (one flushed line per event), lives outside the
/// content-addressed areas of the store, and is the only record of what a
/// crashed run was doing.
sweep::TelemetryConfig telemetryConfig(const util::Args& args,
                                       const sweep::CampaignStore& store) {
  sweep::TelemetryConfig config;
  if (!args.flag("no-journal")) {
    config.journalPath =
        (store.root() / "journal" / journalFileName()).string();
  }
  config.telemetryOut = args.getOr("telemetry-out", "");
  config.telemetryIntervalMs = parseTelemetryInterval(args);
  config.progress = args.flag("progress");
  config.execTraceOut = args.getOr("exec-trace-out", "");
  return config;
}

/// Load + resolve the campaign named by --campaign (characterizing any
/// `app` entries across `jobs` workers, reusing cached models from the
/// campaign and shared stores) and bind the store.
struct LoadedCampaign {
  sweep::ResolvedCampaign campaign;
  sweep::CampaignStore store;
  std::string sharedStore;  ///< empty: no shared cache
};

LoadedCampaign loadFor(const util::Args& args, obs::Logger& log, int jobs) {
  const std::string campaignPath = args.get("campaign");
  sweep::CampaignStore store(args.get("store"));
  std::string shared = sharedStorePath(args);
  auto spec = sweep::loadCampaign(campaignPath);
  sweep::ResolveOptions options;
  options.jobs = jobs;
  options.log = &log;
  options.modelCacheDirs.push_back(store.root() / "models");
  if (!shared.empty()) {
    options.modelCacheDirs.push_back(sweep::SharedStore(shared).modelDir());
  }
  return LoadedCampaign{sweep::resolveCampaign(spec, options),
                        std::move(store), std::move(shared)};
}

int cmdRun(const util::Args& args, tools::ObsSession& obs) {
  const int jobs = parseJobs(args);
  sweep::CampaignStore store(args.get("store"));
  const std::string shared = sharedStorePath(args);
  auto spec = sweep::loadCampaign(args.get("campaign"));

  // Quick crash-recovery preflight (iop-fsck's library check): quarantine
  // a torn campaign.txt or cached model, truncate dead writers' journal
  // tails, sweep their temp files — before anything in the store is
  // opened.  Quiet when the store is clean.
  {
    sweep::FsckOptions fsck;
    fsck.expectedCampaign = spec.canonicalText();
    const auto preflight = sweep::fsckCampaignStore(store.root(), fsck);
    if (!preflight.clean()) {
      std::fprintf(
          stderr, "%s",
          preflight.render("preflight " + store.root().string()).c_str());
    }
  }

  // Telemetry comes up before resolution so characterization events land
  // in the journal and on the exec trace too.
  sweep::SweepTelemetry telemetry(telemetryConfig(args, store));
  telemetry.campaignStart(spec.name, sweep::hashHex(spec.canonicalText()),
                          jobs);

  sweep::ResolveOptions resolve;
  resolve.jobs = jobs;
  resolve.log = &obs.log();
  resolve.telemetry = &telemetry;
  resolve.modelCacheDirs.push_back(store.root() / "models");
  if (!shared.empty()) {
    resolve.modelCacheDirs.push_back(sweep::SharedStore(shared).modelDir());
  }
  const auto campaign = sweep::resolveCampaign(spec, resolve);

  sweep::SweepOptions options;
  options.jobs = jobs;
  options.force = args.flag("force");
  options.writeCaptures = !args.flag("no-captures");
  options.sharedStore = shared;
  options.cancel = &gCancelRequested;
  options.telemetry = &telemetry;
  options.softDeadlineSeconds = args.getDouble("soft-deadline-s", 0.0);
  options.hardDeadlineSeconds = args.getDouble("hard-deadline-s", 0.0);
  if (options.softDeadlineSeconds < 0 || options.hardDeadlineSeconds < 0) {
    throw std::invalid_argument(
        "--soft-deadline-s / --hard-deadline-s must be >= 0");
  }
  installShutdownHandlers();

  obs::MetricsRegistry* metrics =
      obs.active() ? &obs.session()->metrics() : nullptr;
  const auto outcome =
      sweep::runSweep(campaign, store, options, &obs.log(), metrics);
  telemetry.finish();

  std::string note =
      shared.empty()
          ? std::string()
          : ", " + std::to_string(outcome.sharedHits) + " shared hits";
  if (outcome.skipped > 0) {
    note += ", " + std::to_string(outcome.skipped) + " skipped";
  }
  if (outcome.quarantined > 0) {
    note += ", " + std::to_string(outcome.quarantined) + " quarantined";
  }
  if (outcome.stuck > 0) {
    note += ", " + std::to_string(outcome.stuck) + " stuck";
  }
  std::printf("campaign %s: %zu cells, %zu cached, %zu computed, "
              "%zu failed (%.2fs wall, %zu IOR runs, -j%d%s)\n",
              campaign.spec.name.c_str(), outcome.cells.size(),
              outcome.cacheHits, outcome.computed, outcome.failures,
              outcome.wallSeconds, outcome.iorRuns, options.jobs,
              note.c_str());
  for (const auto& cell : outcome.cells) {
    if (cell.status == sweep::CellOutcome::Status::Failed) {
      std::fprintf(stderr, "iop-sweep: cell %s failed: %s\n",
                   campaign.cellTitle(cell.spec).c_str(),
                   cell.error.c_str());
    }
  }
  std::printf("%s", sweep::renderReport(campaign, outcome).c_str());
  if (args.has("archive") && !outcome.interrupted) {
    // Archive each rank group's winning configuration, so iop-trend can
    // watch the selected candidates' Time_io across campaign runs.
    obs::Archive archive(args.get("archive"));
    const std::string label = args.getOr("archive-label", "");
    std::size_t archived = 0;
    for (const auto& group : sweep::rankOutcome(campaign, outcome)) {
      for (const auto& entry : group.entries) {
        if (!entry.selected || entry.cell == nullptr) continue;
        archive.addCapture(sweep::makeCellCapture(entry.cell->result),
                           label);
        ++archived;
      }
    }
    std::printf("archived %zu campaign winner(s) into %s\n", archived,
                args.get("archive").c_str());
  }
  if (outcome.interrupted) {
    std::fprintf(stderr,
                 "iop-sweep: interrupted — %zu completed cells are "
                 "committed; rerun `iop-sweep resume --campaign %s "
                 "--store %s` to finish the remaining %zu\n",
                 outcome.cacheHits + outcome.computed,
                 args.get("campaign").c_str(), args.get("store").c_str(),
                 outcome.skipped);
    return 130;
  }
  return outcome.ok() ? 0 : 1;
}

int cmdReport(const util::Args& args, tools::ObsSession& obs) {
  auto loaded = loadFor(args, obs.log(), parseJobs(args));
  // Build the outcome purely from the store: report never simulates.
  sweep::SweepOutcome outcome;
  std::size_t missing = 0;
  for (const auto& cell : loaded.campaign.planCells()) {
    sweep::CellOutcome out;
    out.spec = cell;
    std::string whyBad;
    std::optional<sweep::CellResult> result;
    if (loaded.store.hasCell(cell.key)) {
      // Corrupt cells are quarantined and reported missing, pointing the
      // user at a resume instead of aborting the whole report.
      result = loaded.store.tryLoadCell(cell.key, &whyBad);
    }
    if (result) {
      out.status = sweep::CellOutcome::Status::Cached;
      out.result = std::move(*result);
      ++outcome.cacheHits;
    } else {
      out.status = sweep::CellOutcome::Status::Failed;
      out.error = whyBad.empty()
                      ? "not in store (run the campaign first)"
                      : "quarantined (" + whyBad + "); resume to recompute";
      ++outcome.failures;
      ++missing;
    }
    outcome.cells.push_back(std::move(out));
  }
  std::printf("%s", sweep::renderReport(loaded.campaign, outcome).c_str());
  if (missing > 0) {
    std::fprintf(stderr,
                 "iop-sweep: %zu of %zu cells missing from %s\n", missing,
                 outcome.cells.size(), loaded.store.root().c_str());
    return 1;
  }
  return 0;
}

int cmdPostmortem(const util::Args& args) {
  std::filesystem::path path = args.getOr("journal", "");
  if (path.empty()) {
    path = sweep::newestJournal(args.get("store"));
    if (path.empty()) {
      std::fprintf(stderr,
                   "iop-sweep: no run journals under %s/journal "
                   "(journaling is on by default for `run`; was "
                   "--no-journal used?)\n",
                   args.get("store").c_str());
      return 2;
    }
  }
  const auto parsed = obs::loadJournal(path);
  const auto pm = sweep::analyzeJournal(parsed);
  std::printf("%s", sweep::renderPostmortem(pm, path).c_str());
  return pm.complete ? 0 : 1;
}

int cmdGc(const util::Args& args, tools::ObsSession& obs) {
  auto loaded = loadFor(args, obs.log(), parseJobs(args));
  std::set<std::string> live;
  for (const auto& cell : loaded.campaign.planCells()) {
    live.insert(cell.key);
  }
  const std::size_t removed = loaded.store.gc(live);
  std::printf("gc: %zu live keys, %zu stale files removed\n", live.size(),
              removed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.addOption("campaign", "campaign file (see docs/SWEEP.md)");
  args.addOption("store", "campaign store directory (created on demand)");
  args.addOption("jobs",
                 "worker threads for `run` and characterization (also -jN)",
                 "1");
  args.addOption("shared-store",
                 "campaign-independent shared cache directory reused "
                 "across overlapping campaigns (env: IOP_SWEEP_STORE)");
  args.addFlag("force",
               "recompute cached cells; also replaces a store bound to a "
               "different campaign");
  args.addFlag("no-captures", "skip writing per-cell run captures");
  args.addOption("archive",
                 "after `run`, archive each rank group's winning cell "
                 "into this trend-archive directory (see iop-trend)");
  args.addOption("archive-label",
                 "commit / tag label recorded with --archive entries", "");
  args.addOption("telemetry-out",
                 "snapshot live runtime metrics (Prometheus text "
                 "exposition) to this file on a timer");
  args.addOption("telemetry-interval-ms",
                 "snapshot period for --telemetry-out", "500");
  args.addOption("exec-trace-out",
                 "export the run's execution (one Chrome/Perfetto track "
                 "per worker) to this JSON file");
  args.addOption("journal",
                 "journal file for `postmortem` (default: newest "
                 "run-*.jsonl under <store>/journal)");
  args.addFlag("progress", "live status line on stderr during `run`");
  args.addFlag("no-journal",
               "disable the flight-recorder journal for this run");
  args.addOption("soft-deadline-s",
                 "watchdog: journal `cell_slow` when a cell evaluates "
                 "longer than this many wall seconds (0 = off)",
                 "0");
  args.addOption("hard-deadline-s",
                 "watchdog: abandon a cell stuck past this many wall "
                 "seconds, quarantine a .stuck marker, retry it once "
                 "(0 = off)",
                 "0");
  tools::addObsOptions(args);

  const auto expanded = expandJobsShorthand(argc, argv);
  std::vector<char*> argvVec;
  argvVec.reserve(expanded.size());
  for (const auto& arg : expanded) {
    argvVec.push_back(const_cast<char*>(arg.c_str()));
  }

  try {
    args.parse(static_cast<int>(argvVec.size()), argvVec.data());
    const auto& pos = args.positional();
    const std::string usage = args.usage(
        "iop-sweep <run|resume|report|gc|postmortem> --campaign FILE "
        "--store DIR",
        "Parallel what-if campaigns with a content-addressed result "
        "cache.");
    if (args.helpRequested() || pos.size() != 1) {
      std::printf("%s", usage.c_str());
      return args.helpRequested() ? 0 : 2;
    }
    tools::ObsSession obs(args);
    const std::string& command = pos[0];
    int rc = 2;
    if (command == "run" || command == "resume") {
      rc = cmdRun(args, obs);
    } else if (command == "report") {
      rc = cmdReport(args, obs);
    } else if (command == "gc") {
      rc = cmdGc(args, obs);
    } else if (command == "postmortem") {
      rc = cmdPostmortem(args);
    } else {
      std::fprintf(stderr, "iop-sweep: unknown command '%s'\n%s",
                   command.c_str(), usage.c_str());
      return 2;
    }
    obs.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-sweep: %s\n", e.what());
    return 2;
  }
}
