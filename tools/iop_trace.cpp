// iop-trace: run an application on a simulated cluster configuration with
// tracing enabled, writing Figure-2-style per-process trace files.
//
//   iop-trace --app btio --class C --np 16 --config A --out traces/
#include <cstdio>

#include "analysis/runner.hpp"
#include "toolkit.hpp"
#include "trace/summary.hpp"
#include "trace/tracefile.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "configuration to trace on");
  args.addOption("np", "number of MPI processes", "16");
  args.addOption("out", "output directory for the trace files", "traces");
  tools::addAppOptions(args);
  tools::addObsOptions(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested()) {
      std::printf("%s", args.usage("iop-trace",
                                   "Trace an application on a simulated "
                                   "cluster (the characterization stage).")
                            .c_str());
      return 0;
    }
    auto cluster = tools::makeConfiguredCluster(args);
    tools::ObsSession obsSession(args);
    obsSession.attach(*cluster.engine);
    const int np = static_cast<int>(args.getInt("np", 16));
    const std::string appName = args.get("app");
    std::printf("running %s with %d processes on %s...\n", appName.c_str(),
                np, cluster.name.c_str());
    auto run = analysis::runAndTrace(cluster, appName,
                                     tools::makeAppMain(args, cluster), np);
    trace::writeTraces(args.get("out"), run.trace);
    obsSession.finish();
    std::printf("makespan: %.2f simulated seconds\n", run.makespanSeconds);
    std::printf("%s", trace::summarizeTrace(run.trace).render().c_str());
    std::printf("wrote %d trace files + metadata to %s/\n", np,
                args.get("out").c_str());
    std::printf("next: iop-model --traces %s --app %s\n",
                args.get("out").c_str(), appName.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-trace: %s\n", e.what());
    return 1;
  }
}
