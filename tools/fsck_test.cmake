# iop-fsck exit-code contract, run as a CTest:
#   --help exits 0; a clean (empty) store exits 0; a garbage cell exits 1
#   and a second pass over the repaired store exits 0; a manifest entry
#   whose archive object is missing exits 2.
# Inputs: -DFSCK=... -DWORKDIR=...
function(run_fsck expected_rc)
  execute_process(COMMAND ${FSCK} ${ARGN}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "iop-fsck ${ARGN} exited ${rc}, expected "
                        "${expected_rc}:\n${out}\n${err}")
  endif()
  set(FSCK_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

# --help prints usage and exits 0.
run_fsck(0 --help)
string(FIND "${FSCK_OUTPUT}" "Exit codes" found)
if(found EQUAL -1)
  message(FATAL_ERROR "--help output missing exit-code contract:\n"
                      "${FSCK_OUTPUT}")
endif()

# No targets is a usage error (3).
run_fsck(3)

# A clean store: directories exist, nothing damaged.
file(MAKE_DIRECTORY ${WORKDIR}/store/cells)
run_fsck(0 --store store)

# Garbage where a cell should be -> repaired (1), quarantined, and the
# second pass is clean (0).
file(WRITE ${WORKDIR}/store/cells/deadbeef.cell "not a cell at all\n")
run_fsck(1 --store store)
string(FIND "${FSCK_OUTPUT}" "torn-cell" found)
if(found EQUAL -1)
  message(FATAL_ERROR "garbage cell not classified torn-cell:\n"
                      "${FSCK_OUTPUT}")
endif()
if(EXISTS ${WORKDIR}/store/cells/deadbeef.cell)
  message(FATAL_ERROR "garbage cell was not quarantined")
endif()
if(NOT EXISTS ${WORKDIR}/store/quarantine/deadbeef.cell)
  message(FATAL_ERROR "quarantine copy of the garbage cell is missing")
endif()
run_fsck(0 --store store)

# --dry-run classifies without touching anything and uses the same codes.
file(WRITE ${WORKDIR}/store/cells/feedface.cell "garbage again\n")
run_fsck(1 --store store --dry-run)
if(NOT EXISTS ${WORKDIR}/store/cells/feedface.cell)
  message(FATAL_ERROR "--dry-run removed the damaged cell")
endif()
run_fsck(1 --store store)
run_fsck(0 --store store)

# An archive manifest entry whose object payload is gone is unrecoverable
# (2); repair drops the entry, so the second pass is clean.
file(MAKE_DIRECTORY ${WORKDIR}/trends/objects)
file(WRITE ${WORKDIR}/trends/MANIFEST.jsonl
     "{\"schema\":\"iop-archive/1\",\"seq\":1,\"kind\":\"bench\",\"app\":\"x\",\"config\":\"bench\",\"np\":0,\"label\":\"t\",\"hash\":\"00000000deadbeef\",\"bytes\":4}\n")
run_fsck(2 --archive trends)
string(FIND "${FSCK_OUTPUT}" "missing-object" found)
if(found EQUAL -1)
  message(FATAL_ERROR "missing object not classified:\n${FSCK_OUTPUT}")
endif()
run_fsck(0 --archive trends)

message(STATUS "fsck contract test passed")
