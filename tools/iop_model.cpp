// iop-model: extract the I/O abstract model from trace files.
//
//   iop-model --traces traces/ --app btio --out btio.model
#include <cstdio>

#include "core/iomodel.hpp"
#include "trace/tracefile.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("traces", "directory written by iop-trace", "traces");
  args.addOption("app", "application name used when tracing", "btio");
  args.addOption("out", "output model file", "app.model");
  args.addOption("max-gap",
                 "max intra-phase tick gap (phase-splitting threshold)",
                 "1");
  args.addFlag("series", "also print the global-access-pattern series");
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    obs::Logger log(tools::toolLogLevel(args));
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-model",
                             "Extract the phase-based I/O abstract model "
                             "from a trace (the analysis stage).")
                      .c_str());
      return 0;
    }
    auto data = trace::readTraces(args.get("traces"), args.get("app"));
    core::PhaseDetectionOptions opt;
    opt.maxIntraPhaseTickGap =
        static_cast<std::uint64_t>(args.getInt("max-gap", 1));
    auto model = core::extractModel(data, opt);
    std::printf("%s\n", model.renderSummary().c_str());
    if (args.flag("series")) {
      std::printf("%s", model.renderGlobalPatternSeries().c_str());
    }
    model.save(args.get("out"));
    std::printf("model saved to %s\n", args.get("out").c_str());
    std::printf("next: iop-estimate --model %s --config <target>\n",
                args.get("out").c_str());
    log.info("tool", "complete");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-model: %s\n", e.what());
    return 1;
  }
}
