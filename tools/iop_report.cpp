// iop-report: the whole methodology in one command — trace an application
// on a source configuration, extract its model, and produce a markdown
// report with phase structure, system usage, and estimated I/O time on
// every candidate configuration.
//
//   iop-report --app madbench2 --np 16 --config A --out report.md
#include <cstdio>
#include <fstream>

#include "analysis/report.hpp"
#include "analysis/runner.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "source configuration to trace on");
  args.addOption("np", "number of MPI processes", "16");
  args.addOption("out", "output markdown file (- = stdout)", "-");
  args.addFlag("no-usage", "skip the IOzone peak + usage section");
  tools::addAppOptions(args);
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    obs::Logger log(tools::toolLogLevel(args));
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-report",
                             "Trace, model, and evaluate an application "
                             "across all configurations in one step.")
                      .c_str());
      return 0;
    }
    const auto sourceId = tools::parseConfigId(args.get("config"));
    auto cluster = tools::makeConfiguredCluster(args);
    const int np = static_cast<int>(args.getInt("np", 16));
    auto run = analysis::runAndTrace(cluster, args.get("app"),
                                     tools::makeAppMain(args, cluster), np);
    analysis::ReportOptions options;
    options.includeUsage = !args.flag("no-usage") && !args.has("config-file");
    auto report = analysis::generateReport(run, sourceId, options);
    if (args.get("out") == "-") {
      std::printf("%s", report.c_str());
    } else {
      std::ofstream file(args.get("out"));
      if (!file) throw std::runtime_error("cannot open " + args.get("out"));
      file << report;
      std::printf("report written to %s\n", args.get("out").c_str());
    }
    log.info("tool", "complete");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-report: %s\n", e.what());
    return 1;
  }
}
