// iop-stats: run an application with the full observability stack attached
// — per-rank MPI-IO spans, per-device activity tracks, simulation metrics,
// and wall-clock profiling of the analysis pipeline — then print the
// metric and profiler summaries and optionally export the timeline as
// Chrome/Perfetto trace-event JSON.
//
//   iop-stats --app btio --class A --np 4 --config A
//             --trace-out run.json --metrics-out run.csv
#include <cstdio>

#include "core/iomodel.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"
#include "obs/hub.hpp"
#include "obs/profiler.hpp"
#include "toolkit.hpp"
#include "trace/tracer.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "configuration to observe");
  args.addOption("np", "number of MPI processes", "16");
  args.addOption("interval", "device sampling interval in simulated seconds",
                 "1");
  tools::addAppOptions(args);
  tools::addObsOptions(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-stats",
                             "Run an application with tracing, metrics and "
                             "profiling attached; summarize and export.")
                      .c_str());
      return 0;
    }
    // Unlike the other tools, observability is the whole point here: build
    // the session unconditionally and only gate the file exports on flags.
    obs::Session session;
    obs::Profiler::global().attachTrace(&session.recorder());

    auto cluster = tools::makeConfiguredCluster(args);
    cluster.engine->setObs(session.hub());
    const int np = static_cast<int>(args.getInt("np", 16));
    const std::string appName = args.get("app");

    monitor::DeviceMonitor mon(*cluster.engine, cluster.topology->allDisks(),
                               args.getDouble("interval", 1.0));
    mon.start();
    trace::Tracer tracer(appName, np);
    auto opts = cluster.runtimeOptions(np, &tracer);
    opts.onAppComplete = [&mon] { mon.stop(); };
    mpi::Runtime runtime(*cluster.topology, opts);
    double makespan = 0;
    {
      IOP_PROFILE_SCOPE("app.run");
      makespan = runtime.runToCompletion(tools::makeAppMain(args, cluster));
    }
    auto data = tracer.takeData();
    auto model = core::extractModel(data, {});
    obs::Profiler::global().attachTrace(nullptr);

    std::printf("%s ran %.2f simulated seconds with %d processes on %s; "
                "%zu phases detected\n\n",
                appName.c_str(), makespan, np, cluster.name.c_str(),
                model.phases().size());
    std::printf("%s\n", session.metrics().renderSummary().c_str());
    std::printf("%s", obs::Profiler::global().renderReport().c_str());

    if (args.has("trace-out")) {
      session.recorder().saveJson(args.get("trace-out"));
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  session.recorder().eventCount(),
                  args.get("trace-out").c_str());
    }
    if (args.has("metrics-out")) {
      if (args.get("metrics-out") == "-") {
        std::printf("%s", session.metrics().renderCsv().c_str());
      } else {
        session.metrics().saveCsv(args.get("metrics-out"));
        std::printf("wrote %zu metrics to %s\n", session.metrics().size(),
                    args.get("metrics-out").c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-stats: %s\n", e.what());
    return 1;
  }
}
