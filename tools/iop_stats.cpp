// iop-stats: run an application with the full observability stack attached
// — per-rank MPI-IO spans, per-device activity tracks, dependency edges,
// simulation metrics, and wall-clock profiling of the analysis pipeline —
// then print the metric and profiler summaries and optionally export the
// timeline, a critical-path blame table, or a capture file for iop-diff.
//
//   iop-stats --app btio --class A --np 4 --config A
//             --trace-out run.json --metrics-out run.csv
//   iop-stats --app btio --class A --np 4 --blame
//   iop-stats --app btio --np 4 --capture-out base.cap
//   iop-stats --app btio --np 4 --degrade-disks 3 --capture-out slow.cap
//   iop-stats --app btio --np 4 --archive trends/ --archive-label v1.2
#include <cstdio>

#include "analysis/blame.hpp"
#include "core/iomodel.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"
#include "obs/archive.hpp"
#include "obs/capture.hpp"
#include "obs/hub.hpp"
#include "obs/profiler.hpp"
#include "storage/topology.hpp"
#include "toolkit.hpp"
#include "trace/tracer.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  tools::addConfigOptions(args, "configuration to observe");
  args.addOption("np", "number of MPI processes", "16");
  args.addOption("interval", "device sampling interval in simulated seconds",
                 "1");
  tools::addAppOptions(args);
  tools::addObsOptions(args);
  args.addFlag("blame",
               "print the critical path and the per-phase blame table "
               "derived from the dependency edges");
  args.addOption("capture-out",
                 "write a run capture (phases + metrics) for iop-diff");
  args.addOption("capture-format",
                 "capture file format for --capture-out: v1 (text) or v2 "
                 "(columnar, block-compressed)",
                 "v1");
  args.addOption("archive",
                 "archive the run capture into this trend-archive "
                 "directory (see iop-trend)");
  args.addOption("archive-label",
                 "commit / tag label recorded with --archive entries", "");
  args.addOption("degrade-disks",
                 "scale every disk's service time by this factor (>= 1); "
                 "fault injection for regression testing");
  args.addOption("degrade-net",
                 "scale every network transfer by this factor (>= 1); "
                 "fault injection for transfer-bound configurations");
  args.addOption("fault-plan",
                 "fault plan file (docs/FAULTS.md): seeded transient "
                 "errors, down windows, crashes, and stragglers with "
                 "retry/backoff/failover recovery");
  args.addOption("fault-seed", "replica seed for --fault-plan", "1");
  try {
    args.parse(argc, argv);
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-stats",
                             "Run an application with tracing, metrics and "
                             "profiling attached; summarize and export.")
                      .c_str());
      return 0;
    }
    // Unlike the other tools, observability is the whole point here: build
    // the session unconditionally and only gate the file exports on flags.
    obs::Session session;
    session.log().setLevel(tools::toolLogLevel(args));
    obs::Profiler::global().attachTrace(&session.recorder());

    auto cluster = tools::makeConfiguredCluster(args);
    cluster.engine->setObs(session.hub());
    if (args.has("degrade-disks")) {
      const double factor = args.getDouble("degrade-disks", 1.0);
      for (storage::Disk* d : cluster.topology->allDisks()) {
        d->setDegradation(factor);
      }
      session.log().info("tool", "disks_degraded",
                         "\"factor\":" + std::to_string(factor));
    }
    if (args.has("degrade-net")) {
      const double factor = args.getDouble("degrade-net", 1.0);
      for (storage::Node* n : cluster.topology->allNodes()) {
        n->setDegradation(factor);
      }
      session.log().info("tool", "net_degraded",
                         "\"factor\":" + std::to_string(factor));
    }
    std::shared_ptr<fault::FaultInjector> injector;
    if (args.has("fault-plan")) {
      const auto plan = fault::loadFaultPlan(args.get("fault-plan"));
      const auto seed =
          static_cast<std::uint64_t>(args.getInt("fault-seed", 1));
      injector = fault::installFaults(cluster, plan, seed);
      session.log().info(
          "tool", "faults_attached",
          "\"plan\":\"" +
              obs::TraceRecorder::jsonEscape(args.get("fault-plan")) +
              "\",\"seed\":" + std::to_string(seed) +
              ",\"rules\":" + std::to_string(plan.rules.size()));
    }
    const int np = static_cast<int>(args.getInt("np", 16));
    const std::string appName = args.get("app");

    monitor::DeviceMonitor mon(*cluster.engine, cluster.topology->allDisks(),
                               args.getDouble("interval", 1.0));
    mon.start();
    trace::Tracer tracer(appName, np);
    auto opts = cluster.runtimeOptions(np, &tracer);
    opts.onAppComplete = [&mon] { mon.stop(); };
    mpi::Runtime runtime(*cluster.topology, opts);
    double makespan = 0;
    std::string runError;
    {
      IOP_PROFILE_SCOPE("app.run");
      try {
        makespan =
            runtime.runToCompletion(tools::makeAppMain(args, cluster));
      } catch (const storage::IoFault& e) {
        // The fault plan killed the run (retries exhausted, no failover
        // left).  Surface the phase-level error but still report what the
        // injector observed up to that point.
        runError = e.what();
        makespan = cluster.engine->now();
      }
    }
    auto data = tracer.takeData();
    auto model = core::extractModel(data, {});
    obs::Profiler::global().attachTrace(nullptr);

    std::printf("%s ran %.2f simulated seconds with %d processes on %s; "
                "%zu phases detected\n\n",
                appName.c_str(), makespan, np, cluster.name.c_str(),
                model.phases().size());
    std::printf("%s\n", session.metrics().renderSummary().c_str());
    std::printf("%s", obs::Profiler::global().renderReport().c_str());

    if (injector != nullptr) {
      const auto& acct = injector->accounting();
      std::printf("\nfault plan %s (seed %llu): %llu retries, %llu "
                  "exhausted, %llu failovers, %.3f s stalled, %zu events\n",
                  args.get("fault-plan").c_str(),
                  static_cast<unsigned long long>(injector->seed()),
                  static_cast<unsigned long long>(acct.retries),
                  static_cast<unsigned long long>(acct.exhausted),
                  static_cast<unsigned long long>(acct.failovers),
                  acct.stallSeconds, injector->events().size());
    }
    if (!runError.empty()) {
      std::fprintf(stderr, "iop-stats: run failed under fault plan: %s\n",
                   runError.c_str());
    }

    if (args.flag("blame")) {
      std::printf("\n%s",
                  analysis::renderBlameReport(session.edges(), makespan,
                                              model)
                      .c_str());
    }
    if (args.has("capture-out") || args.has("archive")) {
      obs::RunCapture cap;
      cap.app = appName;
      cap.np = np;
      cap.config = cluster.name;
      cap.makespan = makespan;
      for (const core::Phase& p : model.phases()) {
        obs::CapturePhase cp;
        cp.id = p.id;
        cp.familyId = p.familyId;
        cp.weightBytes = p.weightBytes;
        cp.ioSeconds = p.measuredIoTime();
        cp.bandwidth = p.measuredBandwidth();
        cp.label = p.opTypeLabel() + " f" + std::to_string(p.idF);
        cap.phases.push_back(std::move(cp));
      }
      cap.metricsCsv = session.metrics().renderCsv();
      if (args.has("capture-out")) {
        cap.save(args.get("capture-out"),
                 obs::parseCaptureFormat(args.get("capture-format")));
        session.log().info(
            "tool", "wrote_capture",
            "\"path\":\"" +
                obs::TraceRecorder::jsonEscape(args.get("capture-out")) +
                "\",\"phases\":" + std::to_string(cap.phases.size()));
      }
      if (args.has("archive")) {
        obs::Archive archive(args.get("archive"));
        const auto entry =
            archive.addCapture(cap, args.get("archive-label"));
        std::printf("archived capture seq %llu (%s, %llu bytes) into %s\n",
                    static_cast<unsigned long long>(entry.seq),
                    entry.hash.c_str(),
                    static_cast<unsigned long long>(entry.bytes),
                    args.get("archive").c_str());
      }
    }
    if (args.has("trace-out")) {
      session.recorder().saveJson(args.get("trace-out"));
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  session.recorder().eventCount(),
                  args.get("trace-out").c_str());
    }
    if (args.has("metrics-out")) {
      if (args.get("metrics-out") == "-") {
        std::printf("%s", session.metrics().renderCsv().c_str());
      } else {
        session.metrics().saveCsv(args.get("metrics-out"));
        std::printf("wrote %zu metrics to %s\n", session.metrics().size(),
                    args.get("metrics-out").c_str());
      }
    }
    return runError.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-stats: %s\n", e.what());
    return 1;
  }
}
